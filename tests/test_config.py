"""Tests for the reference configuration module (paper Table 1)."""

from __future__ import annotations

import pytest

from repro.config import (
    DDCConfig,
    GC4016_GSM_EXAMPLE,
    REFERENCE_DDC,
    StageConfig,
    TOTAL_DECIMATION,
)
from repro.errors import ConfigurationError


class TestReferenceConfig:
    def test_total_decimation_2688(self):
        assert REFERENCE_DDC.total_decimation == TOTAL_DECIMATION == 2688

    def test_output_rate_24khz(self):
        assert REFERENCE_DDC.output_rate_hz == pytest.approx(24_000.0)

    def test_stage_rates_match_table1(self):
        stages = {s.name: s for s in REFERENCE_DDC.stages()}
        assert stages["NCO"].input_rate_hz == pytest.approx(64.512e6)
        assert stages["CIC2"].input_rate_hz == pytest.approx(64.512e6)
        assert stages["CIC5"].input_rate_hz == pytest.approx(4.032e6)
        assert stages["125 taps FIR"].input_rate_hz == pytest.approx(192e3)

    def test_table1_rows_include_output(self):
        rows = REFERENCE_DDC.table1_rows()
        assert rows[-1][0] == "Output"
        assert rows[-1][1] == pytest.approx(24_000.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            REFERENCE_DDC.cic2_decimation = 8  # type: ignore[misc]


class TestGSMExample:
    """Section 3.1.2's GC4016 GSM configuration."""

    def test_total_decimation_256(self):
        assert GC4016_GSM_EXAMPLE.total_decimation == 256

    def test_output_rate_is_270k(self):
        assert GC4016_GSM_EXAMPLE.output_rate_hz == pytest.approx(
            270_832.0, rel=1e-3
        )

    def test_no_cic2(self):
        assert GC4016_GSM_EXAMPLE.cic2_order == 0
        assert GC4016_GSM_EXAMPLE.cic2_decimation == 1

    def test_output_roughly_10x_drm(self):
        """'roughly ten times the required sample rate for a DRM receiver'."""
        ratio = GC4016_GSM_EXAMPLE.output_rate_hz / REFERENCE_DDC.output_rate_hz
        assert 10 <= ratio <= 12


class TestValidation:
    def test_bad_decimation(self):
        with pytest.raises(ConfigurationError):
            DDCConfig(cic5_decimation=0)

    def test_bad_taps(self):
        with pytest.raises(ConfigurationError):
            DDCConfig(fir_taps=-1)

    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            DDCConfig(input_rate_hz=0.0)

    def test_bad_order(self):
        with pytest.raises(ConfigurationError):
            DDCConfig(cic2_order=-1)

    def test_stage_config_validation(self):
        with pytest.raises(ConfigurationError):
            StageConfig("x", 1e6, 0)
        with pytest.raises(ConfigurationError):
            StageConfig("x", -1e6, 2)

    def test_stage_output_rate(self):
        s = StageConfig("x", 64.512e6, 16)
        assert s.output_rate_hz == pytest.approx(4.032e6)
