"""Tests for the cycle-driven simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simkernel import ClockDomain, Component, Simulator, Wire, WaveTrace


class Counter(Component):
    """Test component: increments its output wire every cycle."""

    def __init__(self, name: str, out: Wire, step: int = 1) -> None:
        super().__init__(name)
        self.add_output("q", out)
        self._out_wire = out
        self.step_size = step

    def tick(self, cycle: int) -> None:
        nxt = self._out_wire.value + self.step_size
        # wrap manually within the width
        lo, hi = -(1 << (self._out_wire.width - 1)), (1 << (self._out_wire.width - 1)) - 1
        if nxt > hi:
            nxt = lo + (nxt - hi - 1)
        self.write("q", nxt)


class Follower(Component):
    """Test component: registers its input to its output (1-cycle delay)."""

    def __init__(self, name: str, inp: Wire, out: Wire) -> None:
        super().__init__(name)
        self.add_input("d", inp)
        self.add_output("q", out)

    def tick(self, cycle: int) -> None:
        self.write("q", self.read("d"))


class TestClockDomain:
    def test_period(self):
        clk = ClockDomain("main", 64.512e6)
        assert clk.period_s == pytest.approx(1 / 64.512e6)

    def test_cycles_for(self):
        clk = ClockDomain("main", 1000.0)
        assert clk.cycles_for(1.0) == 1000

    def test_time_of(self):
        clk = ClockDomain("main", 1000.0)
        assert clk.time_of(500) == pytest.approx(0.5)

    def test_invalid_frequency(self):
        with pytest.raises(Exception):
            ClockDomain("bad", 0.0)


class TestWire:
    def test_initial_value(self):
        w = Wire("w", 12)
        assert w.value == 0

    def test_drive_commit(self):
        w = Wire("w", 12)
        w.drive(100)
        assert w.value == 0  # not yet committed
        w.commit()
        assert w.value == 100

    def test_hold_without_drive(self):
        w = Wire("w", 12, reset_value=7)
        w.commit()
        assert w.value == 7

    def test_double_drive_rejected(self):
        w = Wire("w", 12)
        w.drive(1, "a")
        with pytest.raises(SimulationError):
            w.drive(2, "b")

    def test_out_of_range_rejected(self):
        w = Wire("w", 4)
        with pytest.raises(SimulationError):
            w.drive(8)

    def test_single_bit_range(self):
        w = Wire("valid", 1)
        w.drive(1)
        w.commit()
        assert w.value == 1
        with pytest.raises(SimulationError):
            w.drive(2)

    def test_toggle_counting(self):
        w = Wire("w", 4)
        w.drive(0b0101)
        w.commit()  # 0000 -> 0101: 2 toggles
        w.drive(0b0110)
        w.commit()  # 0101 -> 0110: 2 toggles
        assert w.toggles == 4
        assert w.commits == 2
        assert w.toggle_rate == pytest.approx(4 / (2 * 4))

    def test_toggle_counting_negative_values(self):
        w = Wire("w", 4)
        w.drive(-1)  # 1111
        w.commit()
        assert w.toggles == 4

    def test_reset(self):
        w = Wire("w", 4, reset_value=3)
        w.drive(5)
        w.commit()
        w.reset()
        assert w.value == 3 and w.toggles == 0 and w.commits == 0

    def test_width_bounds(self):
        with pytest.raises(SimulationError):
            Wire("w", 0)
        with pytest.raises(SimulationError):
            Wire("w", 65)


class TestSimulator:
    def _sim(self):
        return Simulator(ClockDomain("clk", 1e6))

    def test_counter_counts(self):
        sim = self._sim()
        q = sim.wire("q", 16)
        sim.add(Counter("ctr", q))
        sim.step(5)
        assert q.value == 5

    def test_follower_delays_one_cycle(self):
        sim = self._sim()
        a = sim.wire("a", 16)
        b = sim.wire("b", 16)
        sim.add(Counter("ctr", a))
        sim.add(Follower("fol", a, b))
        sim.step(3)
        assert a.value == 3
        assert b.value == 2  # one cycle behind

    def test_component_order_does_not_matter(self):
        """Two-phase update: registering fol before ctr gives same result."""
        sim = self._sim()
        a = sim.wire("a", 16)
        b = sim.wire("b", 16)
        sim.add(Follower("fol", a, b))
        sim.add(Counter("ctr", a))
        sim.step(3)
        assert (a.value, b.value) == (3, 2)

    def test_duplicate_wire_rejected(self):
        sim = self._sim()
        sim.wire("w", 4)
        with pytest.raises(SimulationError):
            sim.wire("w", 4)

    def test_duplicate_component_rejected(self):
        sim = self._sim()
        q = sim.wire("q", 8)
        q2 = sim.wire("q2", 8)
        sim.add(Counter("c", q))
        with pytest.raises(SimulationError):
            sim.add(Counter("c", q2))

    def test_unconnected_read_raises(self):
        class Bad(Component):
            def tick(self, cycle):
                self.read("nope")

        sim = self._sim()
        sim.add(Bad("bad"))
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_until(self):
        sim = self._sim()
        q = sim.wire("q", 16)
        sim.add(Counter("ctr", q))
        n = sim.run_until(lambda s: s.wires["q"].value >= 10)
        assert n == 10

    def test_run_until_timeout(self):
        sim = self._sim()
        sim.wire("q", 16)
        with pytest.raises(SimulationError):
            sim.run_until(lambda s: False, max_cycles=10)

    def test_reset(self):
        sim = self._sim()
        q = sim.wire("q", 16)
        sim.add(Counter("ctr", q))
        sim.step(5)
        sim.reset()
        assert sim.cycle == 0 and q.value == 0
        sim.step(2)
        assert q.value == 2

    def test_elapsed_time(self):
        sim = self._sim()
        sim.step(100)
        assert sim.elapsed_time_s() == pytest.approx(100e-6)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 200))
    def test_cycle_count_matches(self, n):
        sim = self._sim()
        q = sim.wire("q", 32)
        sim.add(Counter("ctr", q))
        sim.step(n)
        assert sim.cycle == n and q.value == n


class TestTraceAndActivity:
    def test_wavetrace_records(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        q = sim.wire("q", 8)
        sim.add(Counter("ctr", q))
        trace = sim.attach_trace(WaveTrace([q]))
        sim.step(4)
        assert trace.values("q") == [1, 2, 3, 4]

    def test_wavetrace_changes(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        q = sim.wire("q", 8)
        v = sim.wire("v", 8)  # never driven
        sim.add(Counter("ctr", q))
        trace = sim.attach_trace(WaveTrace([q, v]))
        sim.step(3)
        assert trace.changes("q") == [(0, 1), (1, 2), (2, 3)]
        assert trace.changes("v") == [(0, 0)]

    def test_wavetrace_unknown_wire(self):
        trace = WaveTrace([Wire("a", 4)])
        with pytest.raises(SimulationError):
            trace.values("b")

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            WaveTrace([])

    def test_activity_report_counts(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        q = sim.wire("q", 8)
        idle = sim.wire("idle", 8)
        sim.add(Counter("ctr", q))
        sim.step(16)
        rep = sim.activity_report()
        assert rep.cycles == 16
        assert rep.by_name("idle").toggle_rate == 0.0
        assert rep.by_name("q").toggle_rate > 0.0
        assert 0.0 < rep.mean_toggle_rate < 1.0

    def test_activity_busiest(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        fast = sim.wire("fast", 4)
        sim.wire("slow", 4)
        sim.add(Counter("ctr", fast))
        sim.step(8)
        rep = sim.activity_report()
        assert rep.busiest(1)[0].name == "fast"

    def test_counter_lsb_toggle_rate(self):
        """A binary counter toggles ~2 bits/cycle -> rate ~2/width."""
        sim = Simulator(ClockDomain("clk", 1e6))
        q = sim.wire("q", 16)
        sim.add(Counter("ctr", q))
        sim.step(1024)
        rate = sim.activity_report().by_name("q").toggle_rate
        assert rate == pytest.approx(2 / 16, rel=0.05)
