"""Telemetry layer: spans, counters, shard merge, CLI contracts.

The load-bearing invariants pinned here:

- the disabled path is structurally inert (nothing reaches the emit
  path) and cheap (a generous wall-clock bound on the ``parallel_map``
  hot path);
- telemetry never perturbs results: the sweep/explore/montecarlo CLIs
  produce byte-identical reports with and without ``--trace``, and all
  three ``--verify`` modes pass with tracing active;
- per-pid shard merge is deterministic (same shards -> same bytes) under
  the process backend and after a killed worker (torn shards salvaged,
  run recovered by the resilience layer);
- ``python -m repro.telemetry`` summarises a process-backend montecarlo
  trace into span stats, cache hit rates and worker utilisation.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import faults, parallel, telemetry
from repro.core.evaluator import ReportCache
from repro.explore.__main__ import main as explore_main
from repro.explore.store import ReportStore
from repro.faults import FaultPlan, FaultSpec
from repro.kernels.dispatch import ENGINES, active_engines
from repro.montecarlo.__main__ import main as montecarlo_main
from repro.sweep.__main__ import main as sweep_main
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec
from repro.telemetry.__main__ import main as telemetry_main
from repro.telemetry.collect import load_trace, merge_trace, read_shards
from repro.telemetry.summary import render, summarize


@pytest.fixture(autouse=True)
def _telemetry_disabled_after():
    """Every test leaves tracing disarmed (and the env var unset)."""
    yield
    telemetry.disable()


def _double(x: int) -> int:
    return 2 * x


def _sweep_spec(**kw) -> SweepSpec:
    return SweepSpec.from_axes(
        {"fir_taps": (63, 127, 255)}, duty_cycle_steps=5, **kw
    )


# ----------------------------------------------------------------- core API
class TestCoreAPI:
    def test_disabled_by_default_and_null_span_is_shared(self):
        assert not telemetry.enabled()
        assert telemetry.span("a") is telemetry.span("b", k=1)

    def test_enable_emit_flush_shard(self, tmp_path):
        telemetry.enable(tmp_path)
        assert telemetry.enabled()
        assert os.environ[telemetry.ENV_VAR] == str(tmp_path)
        with telemetry.span("demo", cell=3):
            telemetry.counter("hits", 2)
            telemetry.gauge("depth", 1.5)
            telemetry.histogram("batch", 7)
            telemetry.event("mark")
        telemetry.flush()
        records, n_shards, salvaged = read_shards(tmp_path)
        assert n_shards == 1 and salvaged == 0
        kinds = [r["kind"] for r in records]
        assert sorted(kinds) == ["counter", "event", "gauge", "histogram", "span"]
        # every record is stamped with this process and a rising seq
        assert {r["pid"] for r in records} == {os.getpid()}
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)
        span = next(r for r in records if r["kind"] == "span")
        assert span["name"] == "demo"
        assert span["attrs"] == {"cell": 3}
        assert span["dur"] >= 0.0
        telemetry.disable()
        assert telemetry.ENV_VAR not in os.environ

    def test_tracing_context_merges_and_cleans_up(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with telemetry.tracing(out) as shard_dir:
            telemetry.counter("c")
            assert telemetry.enabled()
        assert not telemetry.enabled()
        assert not os.path.exists(shard_dir)
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == telemetry.SCHEMA
        assert header["records"] == 1 and header["salvaged"] == 0
        assert load_trace(out)[0]["name"] == "c"

    def test_tracing_none_is_a_noop(self):
        with telemetry.tracing(None) as shard_dir:
            assert shard_dir is None
            assert not telemetry.enabled()


# ------------------------------------------------------------ disabled path
class TestDisabledPath:
    def test_nothing_reaches_emit_when_disabled(self, monkeypatch):
        def boom(record):
            raise AssertionError("emit path reached while disabled")

        monkeypatch.setattr(telemetry, "_emit", boom)
        telemetry.counter("x")
        telemetry.gauge("x", 1.0)
        telemetry.histogram("x", 1.0)
        telemetry.event("x")
        telemetry.record_span("x", 0.0, 0.0)
        with telemetry.span("x"):
            pass
        assert parallel.parallel_map(
            _double, [1, 2, 3], workers=2, backend="thread"
        ) == [2, 4, 6]
        assert run_sweep(_sweep_spec()).points

    def test_disabled_overhead_bound_on_parallel_map_hot_path(self):
        """Pinned bound: the disabled checks add microseconds, not more.

        The bound is two orders of magnitude above the measured cost on
        a laptop — it exists to catch a structural regression (work on
        the disabled path), not to benchmark CI hardware.
        """
        assert not telemetry.enabled()
        items = list(range(2000))
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            parallel.parallel_map(_double, items)
            best = min(best, time.perf_counter() - t0)
        assert best / len(items) < 50e-6  # < 50 us per item end to end

        # and the primitive calls themselves: < 5 us each, best-of-3
        n = 20_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(n):
                telemetry.counter("x")
                telemetry.span("x")
            best = min(best, time.perf_counter() - t0)
        assert best / (2 * n) < 5e-6


# ------------------------------------------------------------- shard merge
class TestShardMerge:
    def _write_shards(self, d):
        (d / "shard-2.jsonl").write_text(
            json.dumps({"kind": "counter", "name": "b", "pid": 2, "seq": 0}) + "\n"
        )
        (d / "shard-1.jsonl").write_text(
            json.dumps({"kind": "counter", "name": "a", "pid": 1, "seq": 1})
            + "\n"
            + json.dumps({"kind": "counter", "name": "a", "pid": 1, "seq": 0})
            + "\n"
            + '{"kind": "counter", "torn tail...'
        )

    def test_merge_sorts_salvages_and_is_deterministic(self, tmp_path):
        self._write_shards(tmp_path)
        out1, out2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        header = merge_trace(tmp_path, out1)
        merge_trace(tmp_path, out2)
        assert out1.read_bytes() == out2.read_bytes()
        assert header == {
            "schema": telemetry.SCHEMA,
            "records": 3,
            "shards": 2,
            "salvaged": 1,
        }
        records = load_trace(out1)
        assert [(r["pid"], r["seq"]) for r in records] == [(1, 0), (1, 1), (2, 0)]

    def test_process_backend_workers_write_their_own_shards(self, tmp_path):
        parallel.shutdown()  # workers must spawn after tracing is armed
        telemetry.enable(tmp_path / "shards")
        try:
            result = parallel.parallel_map(
                _double, list(range(8)), workers=2, backend="process"
            )
        finally:
            telemetry.disable()
            parallel.shutdown()
        assert result == [2 * x for x in range(8)]
        records, n_shards, _ = read_shards(tmp_path / "shards")
        task_pids = {r["pid"] for r in records if r.get("name") == "parallel.task"}
        # every task ran in a pool worker, never the parent
        assert task_pids and os.getpid() not in task_pids
        assert n_shards >= 2  # parent shard + at least one worker shard
        out1, out2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        merge_trace(tmp_path / "shards", out1)
        merge_trace(tmp_path / "shards", out2)
        assert out1.read_bytes() == out2.read_bytes()

    @pytest.mark.faults
    def test_killed_worker_shard_merge_is_deterministic(self, tmp_path):
        """A SIGKILLed worker loses its buffer mid-run; the merge still
        succeeds (torn tails salvaged) and stays byte-deterministic,
        while the resilience layer recovers the run itself."""
        baseline = run_sweep(_sweep_spec()).render()
        parallel.shutdown()
        telemetry.enable(tmp_path / "shards")
        plan = FaultPlan(
            (FaultSpec("sweep.point", kind="kill", keys=(1,)),),
            scratch=str(tmp_path),
        )
        try:
            with faults.inject(plan):
                report = run_sweep(
                    _sweep_spec(on_error="retry"), workers=2, backend="process"
                )
        finally:
            telemetry.disable()
            parallel.shutdown()
        assert not report.partial
        assert (
            json.loads(report.render())["points"]
            == json.loads(baseline)["points"]
        )
        out1, out2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        h1 = merge_trace(tmp_path / "shards", out1)
        merge_trace(tmp_path / "shards", out2)
        assert out1.read_bytes() == out2.read_bytes()
        assert h1["records"] > 0
        # the parent observed the broken pool on the telemetry channel
        names = {r["name"] for r in load_trace(out1)}
        assert "parallel.broken_pool" in names


# ------------------------------------------------------- instrumented seams
class TestInstrumentation:
    def test_sweep_and_cache_records(self, tmp_path):
        telemetry.enable(tmp_path)
        try:
            run_sweep(_sweep_spec())
            telemetry.flush()
        finally:
            telemetry.disable()
        records, _, _ = read_shards(tmp_path)
        names = {r["name"] for r in records}
        assert "sweep.point" in names
        assert "cache.miss" in names or "cache.hit" in names
        assert "evaluator.batch_size" in names

    def test_store_spans_and_counters(self, tmp_path):
        from repro.workloads import get as get_workload

        models = get_workload("ddc").shared_evaluator().models
        telemetry.enable(tmp_path / "shards")
        try:
            store = ReportStore(tmp_path / "store.jsonl")
            cache = ReportCache()
            store.save(cache)
            store.load(cache, models)
            telemetry.flush()
        finally:
            telemetry.disable()
        records, _, _ = read_shards(tmp_path / "shards")
        names = [r["name"] for r in records]
        assert "store.save" in names and "store.load" in names

    def test_kernel_dispatch_counter_and_active_engines(self, tmp_path):
        from repro.kernels.dispatch import resolve

        tiers = active_engines()
        assert set(tiers) >= {"nco", "cic", "fir"}
        assert all(v in ENGINES for v in tiers.values())
        # the python selector pins every primitive to the oracle tier
        assert set(active_engines("python").values()) == {"python"}
        telemetry.enable(tmp_path)
        try:
            resolved = resolve("nco")
            telemetry.flush()
        finally:
            telemetry.disable()
        records, _, _ = read_shards(tmp_path)
        rec = next(r for r in records if r["name"] == "kernel.dispatch")
        assert rec["attrs"] == {"primitive": "nco", "engine": resolved}


# ------------------------------------------------------------ CLI contracts
class TestCLIByteIdentity:
    def _stdout(self, capsys) -> str:
        return capsys.readouterr().out

    def test_sweep_report_identical_with_trace(self, tmp_path, capsys):
        assert sweep_main(["--steps", "5"]) == 0
        plain = self._stdout(capsys)
        trace = tmp_path / "t.jsonl"
        assert sweep_main(["--steps", "5", "--trace", str(trace)]) == 0
        assert self._stdout(capsys) == plain
        assert load_trace(trace)

    def test_explore_report_identical_with_trace(self, tmp_path, capsys):
        argv = ["--coarse", "3", "--target", "5", "--steps", "5"]
        assert explore_main(argv) == 0
        plain = self._stdout(capsys)
        trace = tmp_path / "t.jsonl"
        assert explore_main(argv + ["--trace", str(trace)]) == 0
        assert self._stdout(capsys) == plain
        assert load_trace(trace)

    def test_montecarlo_report_identical_with_trace(self, tmp_path, capsys):
        argv = ["--samples", "500", "--chunk-samples", "256"]
        assert montecarlo_main(argv) == 0
        plain = self._stdout(capsys)
        trace = tmp_path / "t.jsonl"
        assert montecarlo_main(argv + ["--trace", str(trace)]) == 0
        assert self._stdout(capsys) == plain
        assert load_trace(trace)

    def test_all_three_verifies_pass_with_trace(self, tmp_path, capsys):
        sweep_argv = ["--steps", "5", "--verify"]
        explore_argv = ["--coarse", "3", "--target", "5", "--steps", "5", "--verify"]
        mc_argv = ["--samples", "400", "--chunk-samples", "128", "--verify"]
        for main, argv, name in (
            (sweep_main, sweep_argv, "sweep.jsonl"),
            (explore_main, explore_argv, "explore.jsonl"),
            (montecarlo_main, mc_argv, "mc.jsonl"),
        ):
            trace = tmp_path / name
            assert main(argv + ["--trace", str(trace)]) == 0
            assert "verify OK" in self._stdout(capsys)
            assert load_trace(trace)

    def test_metrics_goes_to_stderr_not_stdout(self, capsys):
        assert sweep_main(["--steps", "5", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "report-cache:" not in captured.out
        assert "report-cache:" in captured.err
        assert "kernel tiers:" in captured.err

    def test_summary_surfaces_cache_and_warm_hit_rate(self, tmp_path, capsys):
        assert sweep_main(["--steps", "5", "--summary"]) == 0
        assert "report-cache:" in self._stdout(capsys)
        store = tmp_path / "store.jsonl"
        argv = ["--coarse", "3", "--target", "5", "--steps", "5", "--summary"]
        argv += ["--store", str(store)]
        assert explore_main(argv) == 0
        capsys.readouterr()
        assert explore_main(argv) == 0
        captured = capsys.readouterr()
        assert "store warm-hit rate: 100.0%" in captured.out


class TestTelemetryCLI:
    def test_summarises_process_backend_montecarlo_run(self, tmp_path, capsys):
        trace = tmp_path / "mc.jsonl"
        argv = ["--samples", "2000", "--chunk-samples", "256", "--workers", "2"]
        argv += ["--backend", "process", "--trace", str(trace)]
        parallel.shutdown()  # fresh pool, spawned inside the traced run
        try:
            assert montecarlo_main(argv) == 0
        finally:
            parallel.shutdown()
        capsys.readouterr()
        assert telemetry_main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "montecarlo.chunk" in out
        assert "report-cache:" in out
        assert "worker utilisation" in out
        assert "slowest" in out
        # machine-readable path: per-worker task accounting is present
        doc = summarize(load_trace(trace))
        assert doc["workers"]
        assert sum(w["tasks"] for w in doc["workers"].values()) >= 8
        assert render(doc, top=3)

    def test_summary_accepts_a_raw_shard_dir(self, tmp_path, capsys):
        telemetry.enable(tmp_path / "shards")
        with telemetry.span("demo"):
            pass
        telemetry.disable()
        assert telemetry_main([str(tmp_path / "shards")]) == 0
        assert "demo" in capsys.readouterr().out

    def test_unreadable_trace_is_a_clean_error(self, tmp_path, capsys):
        assert telemetry_main([str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
