"""Equivalence suite for the fast-execution engine.

Three families of guarantees:

1. block-mode RTL components == the bit-true numpy models == the
   cycle-accurate RTL, sample for sample, under arbitrary block splits;
2. the compiled ``Simulator.step`` fast path == a reference per-cycle
   interpretation of the same design (identical wire traces *and* toggle
   counts), with ``activity=False`` latching identically;
3. the block-mode RTLDDC reconstructs the cycle-accurate activity report
   exactly, not just approximately.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import REFERENCE_DDC, FixedDDC
from repro.archs.fpga import RTLDDC
from repro.archs.fpga.block import popcount_sum, stream_toggles
from repro.archs.fpga.rtl_cic import RTLCIC
from repro.archs.fpga.rtl_fir import RTLPolyphaseFIR
from repro.archs.fpga.rtl_nco import RTLNCOMixer
from repro.dsp.cic import FixedCICDecimator
from repro.dsp.fir import FixedPolyphaseDecimator
from repro.dsp.firdesign import quantize_taps, reference_fir_taps
from repro.dsp.signals import quantize_to_adc, tone
from repro.errors import SimulationError
from repro.simkernel import ClockDomain, Component, Simulator, Wire, WaveTrace


def _split(x: np.ndarray, cuts: list[int]) -> list[np.ndarray]:
    """Split ``x`` at the given (possibly duplicate) cut points."""
    return [b for b in np.split(x, sorted(c % (len(x) + 1) for c in cuts))]


# --------------------------------------------------------------------------
# 1. block-mode components vs the bit-true models, arbitrary splits
# --------------------------------------------------------------------------

samples_strategy = st.lists(
    st.integers(-2048, 2047), min_size=1, max_size=400
)
cuts_strategy = st.lists(st.integers(0, 10_000), max_size=5)


class TestBlockSplitEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(samples=samples_strategy, cuts=cuts_strategy,
           order=st.integers(1, 5), decimation=st.integers(2, 21))
    def test_cic_block_splits(self, samples, cuts, order, decimation):
        x = np.array(samples, dtype=np.int64)
        want = FixedCICDecimator(order, decimation, input_width=12).process(x)

        sim = Simulator(ClockDomain("clk", 1e6))
        from repro.fixedpoint import cic_bit_growth

        g = 12 + cic_bit_growth(order, decimation)
        cic = RTLCIC(
            "cic", sim.wire("x", 12), sim.wire("xv", 1),
            sim.wire("y", 12), sim.wire("yv", 1),
            sim.wire("ip", g), sim.wire("cp", g), order, decimation, 12,
        )
        got = np.concatenate(
            [cic.process_block(b) for b in _split(x, cuts)]
        )
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=25, deadline=None)
    @given(samples=samples_strategy, cuts=cuts_strategy,
           decimation=st.integers(1, 8))
    def test_fir_block_splits(self, samples, cuts, decimation):
        taps = reference_fir_taps(21, 192e3, 24e3, compensate_cic5=False)
        raw, fmt = quantize_taps(taps, 12)
        shift = max(0, fmt.frac)
        x = np.array(samples, dtype=np.int64)
        want = FixedPolyphaseDecimator(
            raw, decimation, output_shift=shift
        ).process(x)

        sim = Simulator(ClockDomain("clk", 1e6))
        fir = RTLPolyphaseFIR(
            "fir", sim.wire("x", 12), sim.wire("xv", 1),
            sim.wire("y", 12), sim.wire("yv", 1),
            sim.wire("acc", 31), sim.wire("addr", 8),
            raw, decimation, 12, output_shift=shift,
        )
        got = np.concatenate(
            [fir.process_block(b) for b in _split(x, cuts)]
        )
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=15, deadline=None)
    @given(samples=st.lists(st.integers(-2048, 2047), min_size=1, max_size=120),
           cuts=cuts_strategy)
    def test_nco_mixer_block_splits_vs_cycle(self, samples, cuts):
        x = np.array(samples, dtype=np.int64)
        cfg = REFERENCE_DDC

        def build(sim):
            return RTLNCOMixer(
                "nco", sim.wire("x", 12), sim.wire("xv", 1),
                sim.wire("i", 12), sim.wire("q", 12), sim.wire("v", 1),
                sim.wire("ph", 32), sim.wire("c", 12), sim.wire("s", 12),
                frequency_hz=cfg.nco_frequency_hz,
                sample_rate_hz=cfg.input_rate_hz,
            )

        # cycle-accurate reference
        sim = Simulator(ClockDomain("clk", cfg.input_rate_hz))
        nco = build(sim)
        xw, xv = nco.inputs["x"], nco.inputs["x_valid"]
        iw, qw, vw = nco.outputs["i"], nco.outputs["q"], nco.outputs["iq_valid"]
        i_ref, q_ref = [], []
        for v in x:
            # two-phase: commit the inputs first so tick sees them
            xw.drive(int(v))
            xv.drive(1)
            xw.commit()
            xv.commit()
            nco.tick(0)
            for w in (iw, qw, vw, *(nco.outputs[p] for p in
                                    ("phase", "cos", "sin"))):
                w.commit()
            assert vw.value == 1
            i_ref.append(iw.value)
            q_ref.append(qw.value)

        # block mode, arbitrary splits
        sim2 = Simulator(ClockDomain("clk", cfg.input_rate_hz))
        nco2 = build(sim2)
        i_blk, q_blk = [], []
        for b in _split(x, cuts):
            i, q = nco2.process_block(b)
            i_blk.extend(i)
            q_blk.extend(q)
        np.testing.assert_array_equal(i_blk, i_ref)
        np.testing.assert_array_equal(q_blk, q_ref)

    def test_fir_block_refuses_mid_mac(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        fir = RTLPolyphaseFIR(
            "fir", sim.wire("x", 12), sim.wire("xv", 1),
            sim.wire("y", 12), sim.wire("yv", 1),
            sim.wire("acc", 31), sim.wire("addr", 8),
            np.ones(8, dtype=np.int64), 8, 12,
        )
        fir.inputs["x"].value = 5
        fir.inputs["x_valid"].value = 1
        fir.tick(0)  # trigger: MAC loop now busy
        with pytest.raises(SimulationError):
            fir.process_block(np.zeros(4, dtype=np.int64))


# --------------------------------------------------------------------------
# 2. full-chain: block RTLDDC vs FixedDDC vs cycle RTLDDC
# --------------------------------------------------------------------------

class TestRTLDDCBlockMode:
    @pytest.fixture(scope="class")
    def adc(self):
        cfg = REFERENCE_DDC
        n = 2688 * 3
        return quantize_to_adc(
            tone(n, cfg.nco_frequency_hz + 5e3, cfg.input_rate_hz, 0.8), 12
        )

    def test_block_matches_fixed_ddc(self, adc):
        res = RTLDDC().run(adc, mode="block")
        i_ref, q_ref = FixedDDC().process(adc)
        np.testing.assert_array_equal(res.i, i_ref)
        np.testing.assert_array_equal(res.q, q_ref)

    @settings(max_examples=10, deadline=None)
    @given(cuts=st.lists(st.integers(0, 10_000), max_size=4))
    def test_block_split_invariance(self, adc, cuts):
        """Feeding the burst in arbitrary sub-blocks changes nothing."""
        rtl = RTLDDC()
        i_parts, q_parts = [], []
        for b in _split(adc, cuts):
            res = rtl.run(b, mode="block", activity=False)
            i_parts.append(res.i)
            q_parts.append(res.q)
        i_ref, q_ref = FixedDDC().process(adc)
        np.testing.assert_array_equal(np.concatenate(i_parts), i_ref)
        np.testing.assert_array_equal(np.concatenate(q_parts), q_ref)

    def test_block_matches_cycle_exactly(self, adc):
        cyc = RTLDDC().run(adc)
        blk = RTLDDC().run(adc, mode="block")
        n = min(len(cyc.i), len(blk.i))
        assert n >= 2
        np.testing.assert_array_equal(blk.i[:n], cyc.i[:n])
        np.testing.assert_array_equal(blk.q[:n], cyc.q[:n])
        assert blk.cycles == cyc.cycles

    def test_block_activity_matches_cycle(self, adc):
        """The analytic report reproduces every wire's toggle count."""
        cyc = RTLDDC().run(adc)
        blk = RTLDDC().run(adc, mode="block")
        for wa in cyc.activity.wires:
            wb = blk.activity.by_name(wa.name)
            assert wa.toggles == wb.toggles, wa.name
            assert wa.commits == wb.commits, wa.name
        assert blk.activity.mean_toggle_rate == pytest.approx(
            cyc.activity.mean_toggle_rate
        )

    def test_activity_opt_out(self, adc):
        res = RTLDDC().run(adc, mode="block", activity=False)
        assert res.activity.mean_toggle_rate == 0.0
        res_c = RTLDDC().run(adc, mode="cycle", activity=False)
        assert res_c.activity.mean_toggle_rate == 0.0
        i_ref, _ = FixedDDC().process(adc)
        np.testing.assert_array_equal(res.i, i_ref)
        n = min(len(res_c.i), len(i_ref))
        np.testing.assert_array_equal(res_c.i[:n], i_ref[:n])


# --------------------------------------------------------------------------
# 3. compiled Simulator vs reference interpretation
# --------------------------------------------------------------------------

class _Player(Component):
    """Drives a wire from a fixed pattern, one value per cycle."""

    def __init__(self, name: str, out: Wire, pattern: list[int]) -> None:
        super().__init__(name)
        self.add_output("q", out)
        self.pattern = pattern

    def tick(self, cycle: int) -> None:
        if cycle < len(self.pattern):
            self.write("q", self.pattern[cycle])


class _Delay(Component):
    """Registers its input to its output."""

    def __init__(self, name: str, inp: Wire, out: Wire) -> None:
        super().__init__(name)
        self.add_input("d", inp)
        self.add_output("q", out)

    def tick(self, cycle: int) -> None:
        self.write("q", self.read("d"))


def _build(pattern: list[int]) -> tuple[Simulator, WaveTrace]:
    sim = Simulator(ClockDomain("clk", 1e6))
    a = sim.wire("a", 12)
    b = sim.wire("b", 12)
    sim.add(_Player("src", a, pattern))
    sim.add(_Delay("dly", a, b))
    trace = sim.attach_trace(WaveTrace([a, b]))
    return sim, trace


def _reference_step(sim: Simulator, cycles: int) -> None:
    """The seed's uncompiled per-cycle loop, kept as the oracle."""
    for _ in range(cycles):
        for comp in sim.components.values():
            comp.tick(sim.cycle)
        for w in sim.wires.values():
            w.commit()
        for t in sim._traces:
            t.sample(sim.cycle)
        sim.cycle += 1


class TestCompiledSimulator:
    @settings(max_examples=25, deadline=None)
    @given(pattern=st.lists(st.integers(-2048, 2047), min_size=1, max_size=64),
           extra=st.integers(0, 8))
    def test_traces_and_toggles_identical(self, pattern, extra):
        n = len(pattern) + extra
        fast, fast_trace = _build(pattern)
        fast.compile()
        fast.step(n)

        ref, ref_trace = _build(pattern)
        _reference_step(ref, n)

        assert fast_trace.values("a") == ref_trace.values("a")
        assert fast_trace.values("b") == ref_trace.values("b")
        for name in ("a", "b"):
            wf, wr = fast.wires[name], ref.wires[name]
            assert (wf.toggles, wf.commits) == (wr.toggles, wr.commits)
        assert fast.cycle == ref.cycle

    def test_structural_change_invalidates_plan(self):
        sim, _ = _build([1, 2, 3])
        sim.compile()
        assert sim.compiled
        c = sim.wire("c", 4)
        assert not sim.compiled
        sim.add(_Delay("dly2", sim.wires["b"], c))
        sim.step(4)  # recompiles lazily; new component must run
        assert c.value == sim.wires["a"].reset_value or c.commits == 4

    def test_activity_off_latches_identically(self):
        pattern = list(range(-30, 30, 3))
        on, _ = _build(pattern)
        on.step(len(pattern))
        off, _ = _build(pattern)
        off.activity = False
        off.step(len(pattern))
        for name in ("a", "b"):
            assert off.wires[name].value == on.wires[name].value
            assert off.wires[name].toggles == 0
            assert on.wires[name].toggles > 0

    def test_mid_step_error_counts_completed_cycles(self):
        class Bomb(Component):
            def tick(self, cycle):
                if cycle == 3:
                    raise SimulationError("boom")

        sim = Simulator(ClockDomain("clk", 1e6))
        sim.add(Bomb("bomb"))
        with pytest.raises(SimulationError):
            sim.step(10)
        assert sim.cycle == 3


# --------------------------------------------------------------------------
# 4. block-activity helpers
# --------------------------------------------------------------------------

class TestBlockHelpers:
    def test_popcount_sum(self):
        assert popcount_sum(np.array([0b1011, 0, 0b1], dtype=np.uint64)) == 4
        assert popcount_sum(np.empty(0, dtype=np.uint64)) == 0

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(-2048, 2047), max_size=100),
           width=st.integers(2, 16))
    def test_stream_toggles_matches_wire_commit(self, values, width):
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        vals = [max(lo, min(hi, v)) for v in values]
        w = Wire("w", width)
        for v in vals:
            w.drive(v)
            w.commit()
        assert stream_toggles(np.array(vals, dtype=np.int64), width) == w.toggles

    def test_numpy_scalar_drive(self):
        w = Wire("w", 12)
        w.drive(np.int64(-5))
        w.commit()
        assert w.value == -5 and isinstance(w.value, int)
