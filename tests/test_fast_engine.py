"""Equivalence suite for the fast-execution engine.

Five families of guarantees:

1. block-mode RTL components == the bit-true numpy models == the
   cycle-accurate RTL, sample for sample, under arbitrary block splits;
2. the compiled ``Simulator.step`` fast path == a reference per-cycle
   interpretation of the same design (identical wire traces *and* toggle
   counts), with ``activity=False`` latching identically;
3. the block-mode RTLDDC reconstructs the cycle-accurate activity report
   exactly, not just approximately;
4. the GPP fast engines (basic-block compiler and vectorised DDC kernel)
   == the per-instruction interpreter: same registers, flags, memory and
   bit-identical ``ExecutionStats`` — for random programs and for the
   generated DDC at arbitrary sample counts;
5. the Montium block engine == the stepped tile: same outputs, env,
   memories, cycle counts, busy-cycle occupancy and ALU utilisation,
   under arbitrary (odd) block splits and mid-macro-period resumes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import REFERENCE_DDC, FixedDDC
from repro.archs.fpga import RTLDDC
from repro.archs.fpga.block import popcount_sum, stream_toggles
from repro.archs.fpga.rtl_cic import RTLCIC
from repro.archs.fpga.rtl_fir import RTLPolyphaseFIR
from repro.archs.fpga.rtl_nco import RTLNCOMixer
from repro.dsp.cic import FixedCICDecimator
from repro.dsp.fir import FixedPolyphaseDecimator
from repro.dsp.firdesign import quantize_taps, reference_fir_taps
from repro.dsp.signals import quantize_to_adc, tone
from repro.errors import SimulationError
from repro.simkernel import ClockDomain, Component, Simulator, Wire, WaveTrace


def _split(x: np.ndarray, cuts: list[int]) -> list[np.ndarray]:
    """Split ``x`` at the given (possibly duplicate) cut points."""
    return [b for b in np.split(x, sorted(c % (len(x) + 1) for c in cuts))]


# --------------------------------------------------------------------------
# 1. block-mode components vs the bit-true models, arbitrary splits
# --------------------------------------------------------------------------

samples_strategy = st.lists(
    st.integers(-2048, 2047), min_size=1, max_size=400
)
cuts_strategy = st.lists(st.integers(0, 10_000), max_size=5)


class TestBlockSplitEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(samples=samples_strategy, cuts=cuts_strategy,
           order=st.integers(1, 5), decimation=st.integers(2, 21))
    def test_cic_block_splits(self, samples, cuts, order, decimation):
        x = np.array(samples, dtype=np.int64)
        want = FixedCICDecimator(order, decimation, input_width=12).process(x)

        sim = Simulator(ClockDomain("clk", 1e6))
        from repro.fixedpoint import cic_bit_growth

        g = 12 + cic_bit_growth(order, decimation)
        cic = RTLCIC(
            "cic", sim.wire("x", 12), sim.wire("xv", 1),
            sim.wire("y", 12), sim.wire("yv", 1),
            sim.wire("ip", g), sim.wire("cp", g), order, decimation, 12,
        )
        got = np.concatenate(
            [cic.process_block(b) for b in _split(x, cuts)]
        )
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=25, deadline=None)
    @given(samples=samples_strategy, cuts=cuts_strategy,
           decimation=st.integers(1, 8))
    def test_fir_block_splits(self, samples, cuts, decimation):
        taps = reference_fir_taps(21, 192e3, 24e3, compensate_cic5=False)
        raw, fmt = quantize_taps(taps, 12)
        shift = max(0, fmt.frac)
        x = np.array(samples, dtype=np.int64)
        want = FixedPolyphaseDecimator(
            raw, decimation, output_shift=shift
        ).process(x)

        sim = Simulator(ClockDomain("clk", 1e6))
        fir = RTLPolyphaseFIR(
            "fir", sim.wire("x", 12), sim.wire("xv", 1),
            sim.wire("y", 12), sim.wire("yv", 1),
            sim.wire("acc", 31), sim.wire("addr", 8),
            raw, decimation, 12, output_shift=shift,
        )
        got = np.concatenate(
            [fir.process_block(b) for b in _split(x, cuts)]
        )
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=15, deadline=None)
    @given(samples=st.lists(st.integers(-2048, 2047), min_size=1, max_size=120),
           cuts=cuts_strategy)
    def test_nco_mixer_block_splits_vs_cycle(self, samples, cuts):
        x = np.array(samples, dtype=np.int64)
        cfg = REFERENCE_DDC

        def build(sim):
            return RTLNCOMixer(
                "nco", sim.wire("x", 12), sim.wire("xv", 1),
                sim.wire("i", 12), sim.wire("q", 12), sim.wire("v", 1),
                sim.wire("ph", 32), sim.wire("c", 12), sim.wire("s", 12),
                frequency_hz=cfg.nco_frequency_hz,
                sample_rate_hz=cfg.input_rate_hz,
            )

        # cycle-accurate reference
        sim = Simulator(ClockDomain("clk", cfg.input_rate_hz))
        nco = build(sim)
        xw, xv = nco.inputs["x"], nco.inputs["x_valid"]
        iw, qw, vw = nco.outputs["i"], nco.outputs["q"], nco.outputs["iq_valid"]
        i_ref, q_ref = [], []
        for v in x:
            # two-phase: commit the inputs first so tick sees them
            xw.drive(int(v))
            xv.drive(1)
            xw.commit()
            xv.commit()
            nco.tick(0)
            for w in (iw, qw, vw, *(nco.outputs[p] for p in
                                    ("phase", "cos", "sin"))):
                w.commit()
            assert vw.value == 1
            i_ref.append(iw.value)
            q_ref.append(qw.value)

        # block mode, arbitrary splits
        sim2 = Simulator(ClockDomain("clk", cfg.input_rate_hz))
        nco2 = build(sim2)
        i_blk, q_blk = [], []
        for b in _split(x, cuts):
            i, q = nco2.process_block(b)
            i_blk.extend(i)
            q_blk.extend(q)
        np.testing.assert_array_equal(i_blk, i_ref)
        np.testing.assert_array_equal(q_blk, q_ref)

    def test_fir_block_refuses_mid_mac(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        fir = RTLPolyphaseFIR(
            "fir", sim.wire("x", 12), sim.wire("xv", 1),
            sim.wire("y", 12), sim.wire("yv", 1),
            sim.wire("acc", 31), sim.wire("addr", 8),
            np.ones(8, dtype=np.int64), 8, 12,
        )
        fir.inputs["x"].value = 5
        fir.inputs["x_valid"].value = 1
        fir.tick(0)  # trigger: MAC loop now busy
        with pytest.raises(SimulationError):
            fir.process_block(np.zeros(4, dtype=np.int64))


# --------------------------------------------------------------------------
# 2. full-chain: block RTLDDC vs FixedDDC vs cycle RTLDDC
# --------------------------------------------------------------------------

class TestRTLDDCBlockMode:
    @pytest.fixture(scope="class")
    def adc(self):
        cfg = REFERENCE_DDC
        n = 2688 * 3
        return quantize_to_adc(
            tone(n, cfg.nco_frequency_hz + 5e3, cfg.input_rate_hz, 0.8), 12
        )

    def test_block_matches_fixed_ddc(self, adc):
        res = RTLDDC().run(adc, engine="block")
        i_ref, q_ref = FixedDDC().process(adc)
        np.testing.assert_array_equal(res.i, i_ref)
        np.testing.assert_array_equal(res.q, q_ref)

    @settings(max_examples=10, deadline=None)
    @given(cuts=st.lists(st.integers(0, 10_000), max_size=4))
    def test_block_split_invariance(self, adc, cuts):
        """Feeding the burst in arbitrary sub-blocks changes nothing."""
        rtl = RTLDDC()
        i_parts, q_parts = [], []
        for b in _split(adc, cuts):
            res = rtl.run(b, engine="block", activity=False)
            i_parts.append(res.i)
            q_parts.append(res.q)
        i_ref, q_ref = FixedDDC().process(adc)
        np.testing.assert_array_equal(np.concatenate(i_parts), i_ref)
        np.testing.assert_array_equal(np.concatenate(q_parts), q_ref)

    def test_block_matches_cycle_exactly(self, adc):
        cyc = RTLDDC().run(adc)
        blk = RTLDDC().run(adc, engine="block")
        n = min(len(cyc.i), len(blk.i))
        assert n >= 2
        np.testing.assert_array_equal(blk.i[:n], cyc.i[:n])
        np.testing.assert_array_equal(blk.q[:n], cyc.q[:n])
        assert blk.cycles == cyc.cycles

    def test_block_activity_matches_cycle(self, adc):
        """The analytic report reproduces every wire's toggle count."""
        cyc = RTLDDC().run(adc)
        blk = RTLDDC().run(adc, engine="block")
        for wa in cyc.activity.wires:
            wb = blk.activity.by_name(wa.name)
            assert wa.toggles == wb.toggles, wa.name
            assert wa.commits == wb.commits, wa.name
        assert blk.activity.mean_toggle_rate == pytest.approx(
            cyc.activity.mean_toggle_rate
        )

    def test_activity_opt_out(self, adc):
        res = RTLDDC().run(adc, engine="block", activity=False)
        assert res.activity.mean_toggle_rate == 0.0
        res_c = RTLDDC().run(adc, engine="cycle", activity=False)
        assert res_c.activity.mean_toggle_rate == 0.0
        i_ref, _ = FixedDDC().process(adc)
        np.testing.assert_array_equal(res.i, i_ref)
        n = min(len(res_c.i), len(i_ref))
        np.testing.assert_array_equal(res_c.i[:n], i_ref[:n])


# --------------------------------------------------------------------------
# 3. compiled Simulator vs reference interpretation
# --------------------------------------------------------------------------

class _Player(Component):
    """Drives a wire from a fixed pattern, one value per cycle."""

    def __init__(self, name: str, out: Wire, pattern: list[int]) -> None:
        super().__init__(name)
        self.add_output("q", out)
        self.pattern = pattern

    def tick(self, cycle: int) -> None:
        if cycle < len(self.pattern):
            self.write("q", self.pattern[cycle])


class _Delay(Component):
    """Registers its input to its output."""

    def __init__(self, name: str, inp: Wire, out: Wire) -> None:
        super().__init__(name)
        self.add_input("d", inp)
        self.add_output("q", out)

    def tick(self, cycle: int) -> None:
        self.write("q", self.read("d"))


def _build(pattern: list[int]) -> tuple[Simulator, WaveTrace]:
    sim = Simulator(ClockDomain("clk", 1e6))
    a = sim.wire("a", 12)
    b = sim.wire("b", 12)
    sim.add(_Player("src", a, pattern))
    sim.add(_Delay("dly", a, b))
    trace = sim.attach_trace(WaveTrace([a, b]))
    return sim, trace


def _reference_step(sim: Simulator, cycles: int) -> None:
    """The seed's uncompiled per-cycle loop, kept as the oracle."""
    for _ in range(cycles):
        for comp in sim.components.values():
            comp.tick(sim.cycle)
        for w in sim.wires.values():
            w.commit()
        for t in sim._traces:
            t.sample(sim.cycle)
        sim.cycle += 1


class TestCompiledSimulator:
    @settings(max_examples=25, deadline=None)
    @given(pattern=st.lists(st.integers(-2048, 2047), min_size=1, max_size=64),
           extra=st.integers(0, 8))
    def test_traces_and_toggles_identical(self, pattern, extra):
        n = len(pattern) + extra
        fast, fast_trace = _build(pattern)
        fast.compile()
        fast.step(n)

        ref, ref_trace = _build(pattern)
        _reference_step(ref, n)

        assert fast_trace.values("a") == ref_trace.values("a")
        assert fast_trace.values("b") == ref_trace.values("b")
        for name in ("a", "b"):
            wf, wr = fast.wires[name], ref.wires[name]
            assert (wf.toggles, wf.commits) == (wr.toggles, wr.commits)
        assert fast.cycle == ref.cycle

    def test_structural_change_invalidates_plan(self):
        sim, _ = _build([1, 2, 3])
        sim.compile()
        assert sim.compiled
        c = sim.wire("c", 4)
        assert not sim.compiled
        sim.add(_Delay("dly2", sim.wires["b"], c))
        sim.step(4)  # recompiles lazily; new component must run
        assert c.value == sim.wires["a"].reset_value or c.commits == 4

    def test_activity_off_latches_identically(self):
        pattern = list(range(-30, 30, 3))
        on, _ = _build(pattern)
        on.step(len(pattern))
        off, _ = _build(pattern)
        off.activity = False
        off.step(len(pattern))
        for name in ("a", "b"):
            assert off.wires[name].value == on.wires[name].value
            assert off.wires[name].toggles == 0
            assert on.wires[name].toggles > 0

    def test_mid_step_error_counts_completed_cycles(self):
        class Bomb(Component):
            def tick(self, cycle):
                if cycle == 3:
                    raise SimulationError("boom")

        sim = Simulator(ClockDomain("clk", 1e6))
        sim.add(Bomb("bomb"))
        with pytest.raises(SimulationError):
            sim.step(10)
        assert sim.cycle == 3


# --------------------------------------------------------------------------
# 4. block-activity helpers
# --------------------------------------------------------------------------

class TestBlockHelpers:
    def test_popcount_sum(self):
        assert popcount_sum(np.array([0b1011, 0, 0b1], dtype=np.uint64)) == 4
        assert popcount_sum(np.empty(0, dtype=np.uint64)) == 0

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(-2048, 2047), max_size=100),
           width=st.integers(2, 16))
    def test_stream_toggles_matches_wire_commit(self, values, width):
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        vals = [max(lo, min(hi, v)) for v in values]
        w = Wire("w", width)
        for v in vals:
            w.drive(v)
            w.commit()
        assert stream_toggles(np.array(vals, dtype=np.int64), width) == w.toggles

    def test_numpy_scalar_drive(self):
        w = Wire("w", 12)
        w.drive(np.int64(-5))
        w.commit()
        assert w.value == -5 and isinstance(w.value, int)


# --------------------------------------------------------------------------
# 5. GPP fast engines vs the per-instruction interpreter
# --------------------------------------------------------------------------

from repro.archs.gpp import CPU, WordMemory, assemble
from repro.archs.gpp.codegen import build_memory_image, generate_ddc_program
from repro.archs.gpp.engine import CompiledProgram, discover_blocks
from repro.errors import ExecutionError


def _fresh_cpu(program, images=(), regs=None):
    cpu = CPU(program)
    for base, words in images:
        cpu.load_memory(base, words)
    if regs is not None:
        cpu.regs[:] = regs
    return cpu


def _gpp_state(cpu):
    return (
        list(cpu.regs),
        cpu.flag_n,
        cpu.flag_z,
        cpu.pc,
        cpu.halted,
        cpu.memory.nonzero_items(),
    )


def _stats_tuple(stats):
    return (
        stats.instructions,
        stats.cycles,
        dict(stats.region_instructions),
        dict(stats.region_cycles),
    )


def _assert_engines_match(program, images=(), regs=None,
                          max_instructions=200_000,
                          engines=("blocks", "auto")):
    ref = _fresh_cpu(program, images, regs)
    ref_err = None
    try:
        ref.run(max_instructions=max_instructions, engine="interp")
    except ExecutionError as exc:
        ref_err = str(exc)
    for engine in engines:
        got = _fresh_cpu(program, images, regs)
        got_err = None
        try:
            got.run(max_instructions=max_instructions, engine=engine)
        except ExecutionError as exc:
            got_err = str(exc)
        assert got_err == ref_err, engine
        assert _gpp_state(got) == _gpp_state(ref), engine
        assert _stats_tuple(got.stats) == _stats_tuple(ref.stats), engine


# a small random-program generator: arbitrary straight-line ALU/memory
# work, forward branches, and bounded counted loops — always terminates
_gpp_ops3 = ("add", "sub", "rsb", "and", "orr", "eor", "mul",
             "lsl", "lsr", "asr", "adds", "subs")

_reg = st.integers(0, 7)
_imm = st.integers(-(2**33), 2**33)  # deliberately wider than a word
# mostly small offsets, sometimes unwrapped-vs-wrapped-distinguishing ones
_mem_offset = st.one_of(
    st.integers(-40, 120),
    st.sampled_from([2**31, 2**32, 2**33 + 7, -(2**31) - 5]),
)


@st.composite
def _random_programs(draw):
    lines = []
    n_chunks = draw(st.integers(1, 4))
    for chunk in range(n_chunks):
        lines.append(f"chunk{chunk}:")
        for _ in range(draw(st.integers(1, 8))):
            kind = draw(st.integers(0, 5))
            rd, rn, rm = draw(_reg), draw(_reg), draw(_reg)
            if kind == 0:
                lines.append(f"  mov r{rd}, #{draw(_imm)}")
            elif kind == 1:
                op = draw(st.sampled_from(_gpp_ops3))
                if draw(st.booleans()):
                    lines.append(f"  {op} r{rd}, r{rn}, r{rm}")
                else:
                    lines.append(f"  {op} r{rd}, r{rn}, #{draw(_imm)}")
            elif kind == 2:
                lines.append(f"  mla r{rd}, r{rn}, r{rm}, r{draw(_reg)}")
            elif kind == 3:
                addr = draw(_mem_offset)
                if draw(st.booleans()):
                    lines.append(f"  str r{rd}, [r{rn}, #{addr}]")
                else:
                    lines.append(f"  str r{rd}, [r{rn}], #{addr}")
            elif kind == 4:
                addr = draw(_mem_offset)
                if draw(st.booleans()):
                    lines.append(f"  ldr r{rd}, [r{rn}, #{addr}]")
                else:
                    lines.append(f"  ldr r{rd}, [r{rn}], #{addr}")
            else:
                lines.append(f"  cmp r{rn}, r{rm}")
        # optional bounded counted loop over the chunk
        if draw(st.booleans()):
            trip = draw(st.integers(1, 5))
            lines.insert(-draw(st.integers(1, 2)), f"  mov r8, #{trip}")
            lines.append("  subs r8, r8, #1")
            lines.append(f"  bne chunk{chunk}_body")
            # loop back to a dedicated label so the trip count is exact
            body_at = lines.index(f"chunk{chunk}:") + 1
            lines.insert(body_at, f"chunk{chunk}_body:")
        # optional forward conditional branch to the next chunk / end
        if draw(st.booleans()):
            cond = draw(st.sampled_from(["beq", "bne", "bgt", "blt",
                                         "bge", "ble"]))
            target = f"chunk{chunk + 1}" if chunk + 1 < n_chunks else "fin"
            lines.append(f"  {cond} {target}")
    lines.append("fin:")
    lines.append("  halt")
    return "\n".join(lines)


class TestGPPEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(source=_random_programs(),
           regs=st.lists(st.integers(-(2**31), 2**31 - 1),
                         min_size=16, max_size=16))
    def test_random_programs_full_state(self, source, regs):
        """Random programs: identical regs, flags, memory and stats."""
        program = assemble(source)
        _assert_engines_match(program, regs=regs, engines=("blocks",))

    @settings(max_examples=20, deadline=None)
    @given(source=_random_programs(), budget=st.integers(0, 40))
    def test_truncation_is_bit_identical(self, source, budget):
        """A tiny instruction budget truncates at the same instruction
        with the same partial statistics and the same error."""
        program = assemble(source)
        _assert_engines_match(program, max_instructions=budget,
                              engines=("blocks",))

    @settings(max_examples=6, deadline=None)
    @given(n=st.sampled_from([1, 15, 16, 271, 336, 337, 672, 2689]),
           spill=st.booleans())
    def test_generated_ddc_all_engines(self, n, spill):
        """The generated DDC: kernel == blocks == interpreter, any n."""
        program, layout = generate_ddc_program(
            n_samples=n, spill_slots=spill
        )
        rng = np.random.default_rng(n)
        x = rng.integers(-2048, 2048, size=n).astype(np.int64)
        images = sorted(build_memory_image(layout, x).items())
        _assert_engines_match(
            program, images=images, max_instructions=400 * n + 10_000
        )

    def test_preloaded_filter_state_reaches_kernel(self):
        """The kernel must honour arbitrary preloaded state words."""
        from repro.archs.gpp.ddc_kernel import run_ddc_kernel

        n = 672
        program, layout = generate_ddc_program(n_samples=n)
        rng = np.random.default_rng(7)
        x = rng.integers(-2048, 2048, size=n).astype(np.int64)
        images = sorted(build_memory_image(layout, x).items())
        state_words = list(rng.integers(-2**31, 2**31 - 1, size=16))
        state_words[12] = 37  # FIR write index must stay in [0, taps)
        state = [(0x8000, state_words)]
        # the vectorised kernel must actually take this input (a widx
        # outside the ring makes it decline and fall back)
        probe = _fresh_cpu(program, images + state)
        assert run_ddc_kernel(probe, 400 * n + 10_000)
        _assert_engines_match(program, images=images + state,
                              max_instructions=400 * n + 10_000)

    def test_out_of_range_preloaded_widx_falls_back(self):
        """A preloaded FIR index outside the ring declines the kernel but
        still executes identically through the block engine."""
        from repro.archs.gpp.ddc_kernel import run_ddc_kernel

        n = 336
        program, layout = generate_ddc_program(n_samples=n)
        x = np.zeros(n, dtype=np.int64)
        images = sorted(build_memory_image(layout, x).items())
        state = [(0x8000 + 12, [999])]
        probe = _fresh_cpu(program, images + state)
        assert not run_ddc_kernel(probe, 400 * n + 10_000)
        _assert_engines_match(program, images=images + state,
                              max_instructions=400 * n + 10_000)

    def test_profiler_fast_path_is_bit_identical(self):
        """profile_ddc(engine='auto') == the seed interpreter output."""
        from repro.archs.gpp import profile_ddc

        fast = profile_ddc(n_samples=2688, engine="auto")
        slow = profile_ddc(n_samples=2688, engine="interp")
        assert _stats_tuple(fast.stats) == _stats_tuple(slow.stats)
        assert fast.region_fractions == slow.region_fractions
        np.testing.assert_array_equal(fast.out_samples, slow.out_samples)

    def test_unknown_engine_rejected(self):
        program = assemble("halt")
        with pytest.raises(ExecutionError):
            CPU(program).run(engine="nope")

    def test_block_discovery_covers_program(self):
        program, _ = generate_ddc_program(n_samples=16)
        blocks = discover_blocks(program)
        covered = sorted(
            pc for b in blocks for pc in range(b.start, b.end)
        )
        assert covered == list(range(len(program)))

    def test_compiled_program_reused_across_runs(self):
        program = assemble("mov r0, #1\nhalt")
        cpu = CPU(program)
        cpu.run(engine="blocks")
        first = program._compiled
        assert isinstance(first, CompiledProgram)
        again = CPU(program)
        again.run(engine="blocks")
        assert program._compiled is first  # cached, not recompiled


class TestWordMemoryBoundary:
    """Regression tests for the load/read/store coercion fix."""

    def test_negative_addresses_do_not_alias(self):
        mem = WordMemory(capacity=64)
        mem.write(63, 111)
        mem.write(-1, 222)
        assert mem.read(63) == 111
        assert mem.read(-1) == 222
        assert mem.nonzero_items() == {63: 111, -1: 222}

    def test_str_negative_address_roundtrips_through_ldr(self):
        src = """
          mov r1, #-5
          mov r2, #77
          str r2, [r1]
          ldr r3, [r1]
          halt
        """
        program = assemble(src)
        cpu = CPU(program)
        cpu.run()
        assert cpu.regs[3] == 77
        assert cpu.read_memory(-5) == 77
        # and the word did not land at any wrapped/aliased address
        assert cpu.read_memory(cpu.memory.capacity - 5) == 0

    def test_values_wrapped_once_at_the_boundary(self):
        mem = WordMemory()
        mem.write(0, 2**31)  # wraps negative, same as load_memory
        mem.load(1, [2**31])
        assert mem.read(0) == mem.read(1) == -(2**31)
        mem.write(-3, np.int64(2**33 + 5))  # spill path wraps too
        assert mem.read(-3) == 5

    def test_bulk_load_grows_dense_array(self):
        mem = WordMemory(capacity=16)
        mem.write(100, 9)  # spills
        mem.load(90, list(range(20)))  # grows past both
        assert mem.capacity >= 110
        assert mem.read(100) == 10  # load overwrote the spilled word
        assert mem._spill == {}

    def test_bulk_load_beyond_dense_cap_stays_sparse(self):
        """A load at a huge base must not allocate a huge dense array."""
        mem = WordMemory(capacity=16)
        mem.load(1 << 30, [5, 6])
        assert mem.capacity == 16  # unchanged — no gigabyte zero-fill
        assert mem.read((1 << 30) + 1) == 6
        assert mem.nonzero_items() == {1 << 30: 5, (1 << 30) + 1: 6}

    def test_numpy_scalars_normalised(self):
        mem = WordMemory()
        mem.write(np.int64(5), np.int64(-7))
        assert mem.read(np.int64(5)) == -7
        assert mem.read(5) == -7


# --------------------------------------------------------------------------
# 6. Montium block engine vs the stepped tile
# --------------------------------------------------------------------------

from repro.archs.montium import MontiumTile, build_ddc_schedule, run_ddc_on_tile
from repro.archs.montium.ddc_mapping import _load_tile
from repro.dsp.firdesign import reference_fir_taps


def _fresh_tile(samples):
    cfg = REFERENCE_DDC
    fir_rate = cfg.input_rate_hz / (16 * 21)
    taps = reference_fir_taps(cfg.fir_taps, fir_rate, cfg.output_rate_hz)
    program = build_ddc_schedule(cfg)
    tile = MontiumTile()
    _load_tile(tile, cfg, np.asarray(taps))
    tile.load_inputs([int(v) for v in samples])
    return tile, program


def _tile_state(tile):
    return {
        "env": dict(tile.env),
        "outputs": list(tile.outputs),
        "cycle": tile.cycle,
        "in_pos": tile._in_pos,
        "busy": {k: dict(v) for k, v in tile.busy_cycles.items()},
        "alus": [(a.ops_executed, a.mul_count) for a in tile.alus],
        "mems": {
            m.name: (list(m._data), m.addr, m.reads, m.writes)
            for m in tile.memories.values()
        },
        "util": tile.alu_utilisation(),
    }


montium_samples = st.lists(
    st.integers(-2048, 2047), min_size=1, max_size=1200
)


class TestMontiumBlockEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(samples=montium_samples,
           cuts=st.lists(st.integers(0, 10_000), max_size=4))
    def test_block_splits_match_stepped(self, samples, cuts):
        """Arbitrary sample blocks, arbitrary (odd) split points."""
        stepped, prog_a = _fresh_tile(samples)
        stepped.run(prog_a, len(samples))

        blocked, prog_b = _fresh_tile(samples)
        for part in _split(np.asarray(samples, dtype=np.int64), cuts):
            blocked.process_block(prog_b, len(part))
        assert _tile_state(blocked) == _tile_state(stepped)

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(1, 900), k=st.integers(1, 899))
    def test_step_then_block_resumes_mid_macro(self, n, k):
        """Stepping and block mode interleave on one tile."""
        k = min(k, n)
        stepped, prog_a = _fresh_tile(range(n))
        stepped.run(prog_a, n)

        mixed, prog_b = _fresh_tile(range(n))
        mixed.run(prog_b, k)          # oracle up to an arbitrary cycle
        mixed.process_block(prog_b, n - k)  # fast path for the rest
        assert _tile_state(mixed) == _tile_state(stepped)

    def test_full_run_matches_and_emits(self):
        cfg = REFERENCE_DDC
        n = 2688 * 3
        x = quantize_to_adc(
            tone(n, cfg.nco_frequency_hz + 5e3, cfg.input_rate_hz, 0.8), 12
        )
        blk = run_ddc_on_tile(x, engine="block")
        stp = run_ddc_on_tile(x, engine="step")
        np.testing.assert_array_equal(blk.i, stp.i)
        np.testing.assert_array_equal(blk.q, stp.q)
        assert blk.cycles == stp.cycles == n
        assert blk.tile.alu_utilisation() == stp.tile.alu_utilisation()

    def test_underrun_falls_back_to_stepped_error(self):
        """Asking for more cycles than inputs raises exactly as stepping
        does — at the cycle the stream runs dry."""
        tile, prog = _fresh_tile([1, 2, 3])
        with pytest.raises(SimulationError):
            tile.process_block(prog, 10)
        assert tile.cycle == 3  # three cycles completed before the stall

    def test_non_ddc_program_falls_back(self):
        from repro.archs.montium import ALUOp
        from repro.archs.montium.alu import Level1Fn
        from repro.archs.montium.program import TileProgram

        tile = MontiumTile()
        op = ALUOp("copy", level1=(Level1Fn.PASS_A,),
                   sources=("ext:in",), dests=("ext:out",))
        tile.load_inputs([7, 8, 9])
        tile.process_block(TileProgram([{0: op}]), 3)
        assert tile.outputs == [7, 8, 9]

    def test_measured_occupancy_matches_static_in_block_mode(self):
        from repro.archs.montium.schedule import (
            analyze_schedule,
            measured_occupancy,
        )

        n = 2688 * 2
        x = np.arange(n) % 1000 - 500
        res = run_ddc_on_tile(x.astype(np.int64), engine="block")
        static = analyze_schedule(res.program)
        dynamic = measured_occupancy(res.tile)
        for row in static.rows:
            got = dynamic.by_label(row.label)
            assert got.n_alus == row.n_alus
            assert got.percent_of_time == pytest.approx(
                row.percent_of_time, abs=0.2
            )
