"""Tests for FIR design and theoretical frequency responses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.firdesign import (
    design_cic_compensator,
    design_kaiser_lowpass,
    design_lowpass,
    design_remez_lowpass,
    quantize_taps,
    reference_fir_taps,
)
from repro.dsp.metrics import passband_ripple_db, stopband_attenuation_db
from repro.dsp.response import (
    alias_rejection,
    cascade_response,
    chain_response,
    cic_response,
    fir_response,
)
from repro.errors import ConfigurationError

FS_FIR = 192_000.0  # FIR stage rate in the reference chain


class TestDesigns:
    def test_lowpass_unit_dc(self):
        taps = design_lowpass(63, 9600.0, FS_FIR)
        assert taps.sum() == pytest.approx(1.0)

    def test_lowpass_passes_passband(self):
        taps = design_lowpass(125, 9600.0, FS_FIR)
        freqs = np.linspace(0, 5000, 50)
        h = np.abs(fir_response(freqs, taps, FS_FIR))
        assert h.min() > 0.9

    def test_lowpass_rejects_stopband(self):
        taps = design_kaiser_lowpass(125, 9600.0, FS_FIR, 70.0)
        freqs = np.linspace(30_000, 96_000, 100)
        h = np.abs(fir_response(freqs, taps, FS_FIR))
        assert 20 * np.log10(h.max()) < -55

    def test_kaiser_attenuation_scales(self):
        lo = design_kaiser_lowpass(125, 9600.0, FS_FIR, 40.0)
        hi = design_kaiser_lowpass(125, 9600.0, FS_FIR, 80.0)
        freqs = np.linspace(30_000, 96_000, 100)
        att_lo = stopband_attenuation_db(fir_response(freqs, lo, FS_FIR) /
                                         1.0, freqs, 30_000)
        # Different attenuation targets must produce different filters.
        assert not np.allclose(lo, hi)

    def test_remez_design(self):
        taps = design_remez_lowpass(63, 8000.0, 14_000.0, FS_FIR)
        freqs = np.linspace(0, 6000, 30)
        h = np.abs(fir_response(freqs, taps, FS_FIR))
        assert h.min() > 0.85

    def test_remez_bad_bands(self):
        with pytest.raises(ConfigurationError):
            design_remez_lowpass(63, 14_000.0, 8_000.0, FS_FIR)

    def test_invalid_cutoff(self):
        with pytest.raises(ConfigurationError):
            design_lowpass(63, 0.0, FS_FIR)

    def test_invalid_taps(self):
        with pytest.raises(ConfigurationError):
            design_lowpass(0, 9600.0, FS_FIR)

    def test_compensator_flattens_cascade(self):
        """CIC5 droop + compensator is flatter than CIC5 + plain lowpass."""
        comp = design_cic_compensator(
            125, 9600.0, FS_FIR, cic_order=5, cic_decimation=21,
            cic_input_rate_hz=FS_FIR * 21,
        )
        plain = design_kaiser_lowpass(125, 9600.0, FS_FIR, 70.0)
        freqs = np.linspace(100, 9000, 200)
        cic = cic_response(freqs, 5, 21, FS_FIR * 21)
        casc_comp = cascade_response([cic, fir_response(freqs, comp, FS_FIR)])
        casc_plain = cascade_response([cic, fir_response(freqs, plain, FS_FIR)])
        r_comp = passband_ripple_db(casc_comp, freqs, 9000)
        r_plain = passband_ripple_db(casc_plain, freqs, 9000)
        assert r_comp < r_plain

    def test_compensator_even_taps_rejected(self):
        with pytest.raises(ConfigurationError):
            design_cic_compensator(
                124, 9600.0, FS_FIR, 5, 21, FS_FIR * 21
            )

    def test_reference_taps_count(self):
        assert len(reference_fir_taps()) == 125

    def test_reference_taps_unit_dc(self):
        assert reference_fir_taps().sum() == pytest.approx(1.0)


class TestQuantizeTaps:
    def test_roundtrip_error_small(self):
        taps = reference_fir_taps()
        raw, fmt = quantize_taps(taps, 12)
        back = raw.astype(float) * fmt.scale
        assert np.abs(back - taps).max() <= fmt.scale

    def test_fits_width(self):
        taps = reference_fir_taps()
        raw, fmt = quantize_taps(taps, 12)
        assert raw.max() <= 2047 and raw.min() >= -2048

    def test_explicit_frac_bits(self):
        raw, fmt = quantize_taps(np.array([0.5, -0.25]), 8, frac_bits=4)
        assert fmt.frac == 4
        assert raw[0] == 8

    def test_all_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize_taps(np.zeros(4), 12)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize_taps(np.array([]), 12)


class TestCICResponse:
    def test_dc_gain_normalised(self):
        h = cic_response(np.array([0.0]), 2, 16, 64.512e6)
        assert np.abs(h[0]) == pytest.approx(1.0)

    def test_dc_gain_unnormalised(self):
        h = cic_response(np.array([0.0]), 2, 16, 64.512e6, normalize=False)
        assert np.abs(h[0]) == pytest.approx(256.0)

    def test_nulls_at_output_rate_multiples(self):
        """CIC has nulls at multiples of fs/R — the aliasing protections."""
        fs = 64.512e6
        h = cic_response(np.array([fs / 16, 2 * fs / 16]), 2, 16, fs)
        assert np.abs(h).max() < 1e-9

    def test_matches_fir_oracle(self):
        """Closed form equals the DFT of the boxcar-cascade impulse response."""
        from repro.dsp.cic import cic_impulse_response

        fs = 1000.0
        freqs = np.linspace(0, 400, 57)
        order, decim = 3, 5
        closed = cic_response(freqs, order, decim, fs, normalize=False)
        h_fir = cic_impulse_response(order, decim)
        oracle = fir_response(freqs, h_fir, fs)
        np.testing.assert_allclose(np.abs(closed), np.abs(oracle),
                                   rtol=1e-8, atol=1e-6)

    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            cic_response(np.array([0.0]), 2, 16, -1.0)


class TestChainResponse:
    def test_reference_chain_dc(self):
        freqs = np.array([0.0])
        h = chain_response(freqs, 64.512e6, [(2, 16), (5, 21)],
                           reference_fir_taps())
        assert np.abs(h[0]) == pytest.approx(1.0, rel=1e-6)

    def test_cascade_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            cascade_response([])

    def test_stopband_of_reference_chain(self):
        freqs = np.linspace(100e3, 1e6, 200)
        h = chain_response(freqs, 64.512e6, [(2, 16), (5, 21)],
                           reference_fir_taps())
        assert 20 * np.log10(np.abs(h).max()) < -30


class TestAliasRejection:
    def test_cic5_beats_cic2(self):
        """More stages = more alias rejection (why CIC5 follows CIC2)."""
        r2 = alias_rejection(2, 16, 64.512e6, 12_000.0)
        r5 = alias_rejection(5, 16, 64.512e6, 12_000.0)
        assert r5 > r2

    def test_positive_for_reference_stages(self):
        assert alias_rejection(2, 16, 64.512e6, 12_000.0) > 40
        assert alias_rejection(5, 21, 4.032e6, 12_000.0) > 50

    def test_band_edge_validation(self):
        with pytest.raises(ConfigurationError):
            alias_rejection(2, 16, 64.512e6, 64.512e6)
