"""Tests for repro.fixedpoint.ops — vectorised saturate/wrap/quantize."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import (
    Overflow,
    QFormat,
    Rounding,
    add_sat,
    from_fixed,
    mul_full,
    quantize,
    requantize,
    saturate,
    sub_sat,
    to_fixed,
    wrap,
)

Q12 = QFormat(12, 0)
Q12F = QFormat(12, 11)


class TestSaturate:
    def test_in_range_unchanged(self):
        assert saturate(100, Q12) == 100

    def test_clamps_high(self):
        assert saturate(5000, Q12) == 2047

    def test_clamps_low(self):
        assert saturate(-5000, Q12) == -2048

    def test_vector(self):
        out = saturate(np.array([-9999, 0, 9999]), Q12)
        assert list(out) == [-2048, 0, 2047]

    def test_rejects_floats(self):
        with pytest.raises(FixedPointError):
            saturate(np.array([1.5]), Q12)


class TestWrap:
    def test_in_range_unchanged(self):
        assert wrap(-2048, Q12) == -2048
        assert wrap(2047, Q12) == 2047

    def test_wraps_positive_overflow(self):
        assert wrap(2048, Q12) == -2048

    def test_wraps_negative_overflow(self):
        assert wrap(-2049, Q12) == 2047

    def test_full_period(self):
        assert wrap(4096 + 5, Q12) == 5

    @given(st.integers(-(2**40), 2**40), st.integers(2, 50))
    def test_wrap_is_mod_2w(self, value, width):
        fmt = QFormat(width, 0)
        wrapped = int(wrap(value, fmt))
        assert fmt.min_raw <= wrapped <= fmt.max_raw
        assert (wrapped - value) % (1 << width) == 0

    @given(st.integers(-(2**30), 2**30), st.integers(-(2**30), 2**30))
    def test_wrap_add_homomorphic(self, a, b):
        """Wrapping is a ring homomorphism: wrap(a)+wrap(b) ~ wrap(a+b)."""
        fmt = QFormat(16, 0)
        lhs = int(wrap(int(wrap(a, fmt)) + int(wrap(b, fmt)), fmt))
        rhs = int(wrap(a + b, fmt))
        assert lhs == rhs


class TestQuantize:
    def test_zero_shift_identity(self):
        x = np.array([1, -7, 100])
        assert list(quantize(x, 0)) == [1, -7, 100]

    def test_truncate_floors(self):
        assert quantize(np.array([7]), 2)[0] == 1
        assert quantize(np.array([-7]), 2)[0] == -2  # floor(-1.75) = -2

    def test_nearest_rounds(self):
        assert quantize(np.array([6]), 2, Rounding.NEAREST)[0] == 2  # 1.5 -> 2
        assert quantize(np.array([-6]), 2, Rounding.NEAREST)[0] == -2

    def test_negative_shift_rejected(self):
        with pytest.raises(FixedPointError):
            quantize(np.array([1]), -1)

    @given(st.integers(-(2**40), 2**40), st.integers(0, 20))
    def test_truncate_equals_floor_division(self, value, shift):
        out = int(quantize(np.array([value]), shift)[0])
        assert out == value // (1 << shift)


class TestConversions:
    def test_roundtrip_exact_grid(self):
        values = np.array([-1.0, -0.5, 0.0, 0.25, 0.5])
        raw = to_fixed(values, Q12F)
        back = from_fixed(raw, Q12F)
        np.testing.assert_allclose(back, values, atol=Q12F.scale)

    def test_saturates_out_of_range(self):
        raw = to_fixed(np.array([2.0, -2.0]), Q12F)
        assert raw[0] == Q12F.max_raw
        assert raw[1] == Q12F.min_raw

    def test_wrap_policy(self):
        raw = to_fixed(np.array([1.0]), Q12F, overflow=Overflow.WRAP)
        # 1.0 * 2**11 = 2048 wraps to -2048
        assert raw[0] == -2048

    @given(st.floats(-0.999, 0.999, allow_nan=False))
    def test_quantisation_error_bounded(self, v):
        raw = to_fixed(v, Q12F)
        err = abs(float(from_fixed(raw, Q12F)) - v)
        assert err <= Q12F.scale / 2 + 1e-12


class TestArithmetic:
    def test_add_sat(self):
        assert add_sat(2000, 2000, Q12) == 2047

    def test_sub_sat(self):
        assert sub_sat(-2000, 2000, Q12) == -2048

    def test_mul_full_width_guard(self):
        with pytest.raises(FixedPointError):
            mul_full(1, 1, QFormat(40, 0), QFormat(40, 0))

    def test_mul_full_value(self):
        out = mul_full(np.array([100]), np.array([-3]), Q12, Q12)
        assert out[0] == -300

    @given(
        st.integers(-2048, 2047),
        st.integers(-2048, 2047),
    )
    def test_add_sat_never_leaves_range(self, a, b):
        out = int(add_sat(a, b, Q12))
        assert Q12.min_raw <= out <= Q12.max_raw
        # And equals the clamped true sum.
        assert out == min(max(a + b, Q12.min_raw), Q12.max_raw)


class TestRequantize:
    def test_narrowing_truncates(self):
        src = QFormat(24, 22)
        dst = QFormat(12, 11)
        raw = np.array([1 << 22])  # value 1.0
        out = requantize(raw, src, dst)
        assert out[0] == dst.max_raw  # 1.0 saturates in Q12.11

    def test_widening_exact(self):
        src = QFormat(12, 11)
        dst = QFormat(24, 22)
        raw = np.array([123])
        out = requantize(raw, src, dst)
        assert out[0] == 123 << 11

    @given(st.integers(-2048, 2047))
    def test_round_trip_widen_narrow(self, raw):
        src = QFormat(12, 11)
        wide = QFormat(24, 22)
        there = requantize(np.array([raw]), src, wide)
        back = requantize(there, wide, src)
        assert back[0] == raw
