"""Chaos suite: deterministic fault injection against the execution layer.

Marked ``faults`` (``pytest -m faults`` runs just this file — the CI
chaos leg).  Every test follows the same shape: arm a seeded
:class:`~repro.faults.FaultPlan`, run a sweep/exploration through a
recovery path, and require the output *byte-identical* to the fault-free
run (for ``retry``/resume) or an explicitly partial report with the
failure recorded (for ``skip``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults, parallel
from repro.core.evaluator import DDCEvaluator, ReportCache
from repro.errors import ConfigurationError, PartialResultError
from repro.explore.refine import run_explore
from repro.explore.spec import ExploreSpec
from repro.explore.store import ReportStore
from repro.faults import FaultPlan, FaultSpec, InjectedFault
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec

pytestmark = pytest.mark.faults

SWEEP_AXES = {"fir_taps": (63, 127, 255)}
EXPLORE_KWARGS = dict(coarse_steps=3, target_steps=9, duty_cycle_steps=5)


def sweep_spec(**kwargs) -> SweepSpec:
    return SweepSpec.from_axes(SWEEP_AXES, duty_cycle_steps=5, **kwargs)


def explore_spec(**kwargs) -> ExploreSpec:
    return ExploreSpec(**EXPLORE_KWARGS, **kwargs)


def one_fault(site: str, key, **kwargs) -> FaultPlan:
    return FaultPlan((FaultSpec(site, keys=(key,), **kwargs),))


class TestFaultHarness:
    """The injection machinery itself must be deterministic."""

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("")
        with pytest.raises(ConfigurationError):
            FaultSpec("x", kind="meteor")
        with pytest.raises(ConfigurationError):
            FaultSpec("x", times=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(())

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan(
            (
                FaultSpec("a.b", kind="kill", keys=((0, 4), 7), times=2),
                FaultSpec("c", kind="sleep", delay_s=1.5),
            ),
            scratch="/tmp/x",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_firing_counts_bound_injections(self):
        plan = one_fault("site", "k", times=2)
        with faults.inject(plan):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    faults.fault_point("site", key="k")
            # Third and later visits: the spec is spent.
            faults.fault_point("site", key="k")
            faults.fault_point("site", key="k")

    def test_keys_match_by_repr(self):
        plan = one_fault("site", (0, 4))
        with faults.inject(plan):
            faults.fault_point("site", key=(0, 3))  # no match
            with pytest.raises(InjectedFault):
                faults.fault_point("site", key=(0, 4))

    def test_scratch_markers_claim_across_counters(self, tmp_path):
        """Marker-file claims: a second claimant (fresh counters, same
        scratch) sees the firing already spent."""
        plan = FaultPlan(
            (FaultSpec("site", keys=("k",)),), scratch=str(tmp_path)
        )
        with faults.inject(plan):
            with pytest.raises(InjectedFault):
                faults.fault_point("site", key="k")
        # Re-arm from scratch: in-memory counters reset, markers persist.
        with faults.inject(plan):
            faults.fault_point("site", key="k")  # already claimed on disk

    def test_deactivate_clears_env(self):
        plan = one_fault("site", "k")
        with faults.inject(plan):
            assert os.environ.get(faults.ENV_VAR)
        assert faults.ENV_VAR not in os.environ
        assert faults.active_plan() is None


class TestSweepChaos:
    def test_skip_records_failure_and_marks_partial(self):
        with faults.inject(one_fault("sweep.point", 1)):
            report = run_sweep(sweep_spec(on_error="skip"))
        assert report.partial
        assert [f.index for f in report.failures] == [1]
        assert [p.index for p in report.points] == [0, 2]
        doc = report.to_json_doc()
        assert doc["partial"] is True
        assert doc["failures"][0]["error"]["type"] == "InjectedFault"

    def test_skip_is_engine_identical(self):
        with faults.inject(one_fault("sweep.point", 1)):
            batch = run_sweep(sweep_spec(on_error="skip"), engine="batch")
        with faults.inject(one_fault("sweep.point", 1)):
            scalar = run_sweep(sweep_spec(on_error="skip"), engine="scalar")
        assert batch.render() == scalar.render()

    def test_retry_recovers_byte_identical(self):
        baseline = run_sweep(sweep_spec()).render()
        with faults.inject(one_fault("sweep.point", 1)):
            recovered = run_sweep(sweep_spec(on_error="retry"))
        assert not recovered.partial
        doc = json.loads(recovered.render())
        assert doc["points"] == json.loads(baseline)["points"]

    def test_retry_exhaustion_is_recorded(self):
        with faults.inject(one_fault("sweep.point", 1, times=5)):
            report = run_sweep(sweep_spec(on_error="retry"))
        assert report.partial
        assert report.failures[0].attempts == 3

    def test_all_points_failing_raises(self):
        plan = FaultPlan((FaultSpec("sweep.point", times=99),))
        with faults.inject(plan):
            with pytest.raises(PartialResultError, match="all 3"):
                run_sweep(sweep_spec(on_error="skip"))

    def test_strict_mode_still_aborts(self):
        with faults.inject(one_fault("sweep.point", 1)):
            with pytest.raises(InjectedFault):
                run_sweep(sweep_spec())

    def test_worker_kill_under_retry_recovers(self, tmp_path):
        """A killed process-pool worker costs a rebuild, not the sweep:
        on_error="retry" arms BrokenExecutor recovery and the report
        comes back byte-identical to the fault-free pooled run."""
        baseline = run_sweep(sweep_spec()).render()
        parallel.shutdown()  # workers must spawn after the plan is armed
        plan = FaultPlan(
            (FaultSpec("sweep.point", kind="kill", keys=(1,)),),
            scratch=str(tmp_path),
        )
        try:
            with faults.inject(plan):
                report = run_sweep(
                    sweep_spec(on_error="retry"), workers=2,
                    backend="process",
                )
        finally:
            parallel.shutdown()
        assert not report.partial
        doc = json.loads(report.render())
        assert doc["points"] == json.loads(baseline)["points"]


class TestExploreChaos:
    def test_skip_is_engine_identical_and_partial(self):
        # (0, 4) is a coarse cell: both engines evaluate it.
        with faults.inject(one_fault("explore.cell", (0, 4))):
            adaptive = run_explore(explore_spec(on_error="skip"), "adaptive")
        with faults.inject(one_fault("explore.cell", (0, 4))):
            dense = run_explore(explore_spec(on_error="skip"), "dense")
        assert adaptive.partial and dense.partial
        assert adaptive.render() == dense.render()
        failed = [c for c in adaptive.points[0].cells if c.failed]
        assert [c.index for c in failed] == [4]
        assert failed[0].static_winner == "unavailable"

    def test_retry_recovers_byte_identical(self):
        baseline = run_explore(explore_spec(), "adaptive").render()
        with faults.inject(one_fault("explore.cell", (0, 4))):
            recovered = run_explore(explore_spec(on_error="retry"),
                                    "adaptive")
        assert not recovered.partial
        doc = json.loads(recovered.render())
        assert doc["points"] == json.loads(baseline)["points"]

    def test_all_cells_failing_raises(self):
        plan = FaultPlan((FaultSpec("explore.cell", times=9999),))
        with faults.inject(plan):
            with pytest.raises(PartialResultError):
                run_explore(explore_spec(on_error="skip"), "adaptive")


class TestCheckpointResume:
    def test_interrupted_round_resumes_byte_identical(self, tmp_path):
        baseline = run_explore(
            explore_spec(), "adaptive", DDCEvaluator(cache=ReportCache())
        ).render()
        store = ReportStore(tmp_path / "store.jsonl")
        with faults.inject(one_fault("explore.round", 1)):
            with pytest.raises(InjectedFault):
                run_explore(
                    explore_spec(), "adaptive",
                    DDCEvaluator(cache=ReportCache()), store=store,
                )
        checkpoint = store.load_checkpoint(
            explore_spec(), DDCEvaluator().models
        )
        assert checkpoint is not None and checkpoint["round"] == 1
        resumed = run_explore(
            explore_spec(), "adaptive",
            DDCEvaluator(cache=ReportCache()), store=store,
        )
        assert resumed.render() == baseline
        # Completion drops the checkpoint.
        assert store.load_checkpoint(
            explore_spec(), DDCEvaluator().models
        ) is None

    def test_store_needs_adaptive_engine(self, tmp_path):
        with pytest.raises(ConfigurationError, match="adaptive"):
            run_explore(
                explore_spec(), "dense",
                store=ReportStore(tmp_path / "s.jsonl"),
            )

    def test_cli_sigkill_resume_byte_identical(self, tmp_path):
        """The full crash story: a CLI exploration is killed dead
        mid-refinement (os._exit in round 1), rerun with the same store,
        and must print byte-identical output to an uninterrupted run."""
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        args = [
            sys.executable, "-m", "repro.explore",
            "--coarse", "3", "--target", "9", "--steps", "5",
        ]
        env = {**os.environ, "PYTHONPATH": repo_src}
        env.pop(faults.ENV_VAR, None)

        baseline = subprocess.run(
            args, env=env, capture_output=True, text=True, timeout=120
        )
        assert baseline.returncode == 0, baseline.stderr

        store = str(tmp_path / "store.jsonl")
        plan = FaultPlan(
            (FaultSpec("explore.round", kind="kill", keys=(1,)),),
            scratch=str(tmp_path),
        )
        killed = subprocess.run(
            args + ["--store", store],
            env={**env, faults.ENV_VAR: plan.to_json()},
            capture_output=True, text=True, timeout=120,
        )
        assert killed.returncode == 23  # the fault's kill_code

        resumed = subprocess.run(
            args + ["--store", store],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming from checkpoint" in resumed.stderr
        assert resumed.stdout == baseline.stdout


class TestTornWrites:
    def test_torn_store_write_is_salvaged(self, tmp_path):
        """A write that tears the published file (crash after partial
        flush) loses at most the tail: the next read salvages the valid
        prefix and quarantines the torn line."""
        store = ReportStore(tmp_path / "store.jsonl")
        cache = ReportCache()
        for model in DDCEvaluator().models:
            try:
                cache.implement(
                    model, explore_spec().config_at(
                        explore_spec().points()[0], 0
                    )
                )
            except Exception:
                pass
        store.save(cache)
        intact = store.path.read_text()
        plan = FaultPlan(
            (
                FaultSpec(
                    "store.write", kind="torn",
                    keys=("store.jsonl",), tear_bytes=10,
                ),
            )
        )
        with faults.inject(plan):
            with pytest.raises(InjectedFault):
                store.save(cache)
        assert store.path.read_text() != intact  # really torn
        labels, reports, _, _ = store._read_records()
        assert store.last_salvaged == 1
        assert store.quarantine_path.exists()
        # Salvage + rewrite: the next save restores a clean store whose
        # surviving records match what the cache still holds.
        store.save(cache)
        assert store.path.read_text() == intact
