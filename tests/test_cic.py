"""Tests for the CIC decimators (paper Fig. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.cic import (
    CICDecimator,
    FixedCICDecimator,
    cic_impulse_response,
    cic_reference_output,
)
from repro.dsp.streaming import stream_in_blocks
from repro.errors import ConfigurationError


class TestCICBasics:
    def test_dc_gain_normalised(self):
        cic = CICDecimator(2, 16)
        x = np.ones(16 * 50)
        y = cic.process(x)
        # After the transient, output settles to 1.0.
        assert y[-1] == pytest.approx(1.0)

    def test_dc_gain_unnormalised(self):
        cic = CICDecimator(2, 16, normalize=False)
        y = cic.process(np.ones(16 * 50))
        assert y[-1] == pytest.approx(256.0)

    def test_gain_property(self):
        assert CICDecimator(5, 21).gain == 21**5

    def test_output_length(self):
        cic = CICDecimator(2, 16)
        assert len(cic.process(np.zeros(160))) == 10

    def test_empty_input(self):
        cic = CICDecimator(2, 16)
        assert len(cic.process(np.array([]))) == 0

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            CICDecimator(0, 16)

    def test_invalid_decimation(self):
        with pytest.raises(ConfigurationError):
            CICDecimator(2, 0)

    def test_2d_input_rejected(self):
        with pytest.raises(ConfigurationError):
            CICDecimator(2, 16).process(np.zeros((4, 4)))

    def test_reset_restores_initial_state(self):
        cic = CICDecimator(2, 16)
        rng = np.random.default_rng(7)
        x = rng.normal(size=320)
        y1 = cic.process(x)
        cic.reset()
        y2 = cic.process(x)
        np.testing.assert_allclose(y1, y2)

    def test_impulse_response_length(self):
        h = cic_impulse_response(2, 16)
        assert len(h) == 2 * 15 + 1

    def test_impulse_response_sum_is_gain(self):
        h = cic_impulse_response(5, 21)
        assert h.sum() == pytest.approx(21**5)


class TestCICEquivalence:
    """The streaming CIC must equal the boxcar-cascade oracle."""

    @pytest.mark.parametrize("order,decimation", [(1, 2), (2, 16), (5, 21), (3, 7)])
    def test_matches_reference(self, order, decimation, rng):
        x = rng.normal(size=decimation * 40)
        cic = CICDecimator(order, decimation)
        got = cic.process(x)
        want = cic_reference_output(x, order, decimation)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        order=st.integers(1, 4),
        decimation=st.integers(1, 12),
        n_blocks=st.integers(1, 5),
        data=st.data(),
    )
    def test_block_split_invariance(self, order, decimation, n_blocks, data):
        """Output must not depend on how the stream is sliced into blocks."""
        total = decimation * 12
        rng = np.random.default_rng(42)
        x = rng.normal(size=total)
        whole = CICDecimator(order, decimation).process(x)

        block_size = data.draw(st.integers(1, total))
        split = stream_in_blocks(CICDecimator(order, decimation), x, block_size)
        np.testing.assert_allclose(split, whole, rtol=1e-9, atol=1e-9)

    def test_linearity(self, rng):
        x1 = rng.normal(size=210)
        x2 = rng.normal(size=210)
        a, b = 2.5, -1.25
        y_sum = CICDecimator(3, 7).process(a * x1 + b * x2)
        y1 = CICDecimator(3, 7).process(x1)
        y2 = CICDecimator(3, 7).process(x2)
        np.testing.assert_allclose(y_sum, a * y1 + b * y2, rtol=1e-9, atol=1e-9)

    def test_diff_delay_two(self, rng):
        x = rng.normal(size=8 * 30)
        got = CICDecimator(2, 8, diff_delay=2).process(x)
        want = cic_reference_output(x, 2, 8, diff_delay=2)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


class TestFixedCIC:
    def test_internal_width_cic2(self):
        f = FixedCICDecimator(2, 16, input_width=12)
        assert f.internal_width == 20

    def test_internal_width_cic5(self):
        f = FixedCICDecimator(5, 21, input_width=12)
        assert f.internal_width == 34

    def test_rejects_float_input(self):
        f = FixedCICDecimator(2, 16)
        with pytest.raises(ConfigurationError):
            f.process(np.array([0.5]))

    def test_rejects_out_of_range(self):
        f = FixedCICDecimator(2, 16, input_width=12)
        with pytest.raises(ConfigurationError):
            f.process(np.array([3000]))

    def test_rejects_too_wide_internal(self):
        with pytest.raises(ConfigurationError):
            FixedCICDecimator(8, 4096, input_width=16)

    def test_dc_input_reaches_near_full_scale(self):
        """Full-scale DC in -> (close to) full-scale DC out after truncation."""
        f = FixedCICDecimator(2, 16, input_width=12)
        x = np.full(16 * 60, 2047, dtype=np.int64)
        y = f.process(x)
        # Gain 256, truncation 8 bits: steady state = 2047*256 >> 8 = 2047.
        assert y[-1] == 2047

    def test_matches_float_model_within_truncation(self, rng):
        """Fixed output = floor(float unnormalised output / 2**shift)."""
        order, decimation, width = 2, 16, 12
        x = (rng.normal(size=16 * 40) * 800).astype(np.int64)
        x = np.clip(x, -2048, 2047)
        fixed = FixedCICDecimator(order, decimation, input_width=width)
        got = fixed.process(x)
        ref = cic_reference_output(
            x.astype(float), order, decimation, normalize=False
        )
        want = np.floor(ref / 2**fixed.truncation_shift)
        np.testing.assert_allclose(got, want)

    @settings(max_examples=25, deadline=None)
    @given(
        order=st.integers(1, 3),
        decimation=st.integers(2, 10),
        block_size=st.integers(1, 50),
    )
    def test_fixed_block_split_invariance(self, order, decimation, block_size):
        rng = np.random.default_rng(3)
        x = rng.integers(-2048, 2048, size=decimation * 15).astype(np.int64)
        whole = FixedCICDecimator(order, decimation).process(x)
        split = stream_in_blocks(
            FixedCICDecimator(order, decimation), x, block_size
        )
        np.testing.assert_array_equal(split, whole)

    def test_wraparound_integrators_are_harmless(self):
        """Hogenauer: wrapping integrators give exact results anyway.

        Drive with a long DC run so integrators wrap many times; the final
        decimated+combed output must still equal the FIR-oracle value.
        """
        order, decimation = 2, 16
        f = FixedCICDecimator(order, decimation, input_width=12)
        x = np.full(16 * 200, 1500, dtype=np.int64)
        got = f.process(x)
        ref = cic_reference_output(x.astype(float), order, decimation,
                                   normalize=False)
        want = np.floor(ref / 2**f.truncation_shift)
        np.testing.assert_allclose(got, want)
        # And the integrator registers really did wrap (exceeded +-2**19).
        assert f._int_state.max() <= 2**19 and f._int_state.min() >= -(2**19)
