"""Tests for repro.montecarlo: distributions, spec, engines, CLI.

The load-bearing property is *byte-identity*: the vectorised population
engine (dedup + chunked fused streaming) and the per-sample scalar
oracle loop must serialise to exactly the same JSON report, for every
workload, chunk size, worker count and pool backend — and fault
recovery under ``on_error="retry"`` must not perturb a byte either.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import faults
from repro.config import REFERENCE_DDC
from repro.energy.scenarios import (
    ScenarioCandidate,
    ScenarioAnalysis,
    check_duty_cycles,
)
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.montecarlo import (
    Choice,
    LogNormal,
    Mixture,
    Normal,
    PopulationSpec,
    Trace,
    Uniform,
    battery_life_percentile,
    nearest_rank,
    parse_distribution,
    run_population,
)
from repro.montecarlo.__main__ import main as mc_main


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


SMALL = dict(n_samples=512, chunk_samples=128)


class TestDistributions:
    def test_uniform_bounds_and_determinism(self):
        d = Uniform(low=0.2, high=0.8)
        a, b = d.sample(rng(), 1000), d.sample(rng(), 1000)
        assert np.array_equal(a, b)
        assert a.min() >= 0.2 and a.max() <= 0.8
        assert d.bounds() == (0.2, 0.8)

    def test_uniform_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            Uniform(low=1.0, high=0.0)

    def test_normal_clips_to_declared_bounds(self):
        d = Normal(mean=0.5, std=10.0, low=0.0, high=1.0)
        x = d.sample(rng(), 1000)
        assert x.min() >= 0.0 and x.max() <= 1.0
        assert d.bounds() == (0.0, 1.0)
        assert Normal(mean=0.0, std=1.0).bounds() is None

    def test_clip_bounds_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            Normal(mean=0.0, std=1.0, low=1.0, high=0.0)
        with pytest.raises(ConfigurationError):
            LogNormal(mu=0.0, sigma=-1.0)

    def test_mixture_samples_within_component_bounds(self):
        d = Mixture(
            components=(
                (0.5, Uniform(low=0.0, high=0.1)),
                (0.5, Uniform(low=0.9, high=1.0)),
            )
        )
        x = d.sample(rng(), 2000)
        assert d.bounds() == (0.0, 1.0)
        # Both modes present, nothing in the gap.
        assert (x <= 0.1).any() and (x >= 0.9).any()
        assert not ((x > 0.1) & (x < 0.9)).any()

    def test_mixture_rejects_discrete_components(self):
        with pytest.raises(ConfigurationError):
            Mixture(components=((1.0, Choice(values=(1, 2))),))

    def test_choice_validation(self):
        with pytest.raises(ConfigurationError):
            Choice(values=())
        with pytest.raises(ConfigurationError):
            Choice(values=(1, 1))
        with pytest.raises(ConfigurationError):
            Choice(values=(1, 2), weights=(1.0,))
        with pytest.raises(ConfigurationError):
            Choice(values=(1, 2), weights=(-1.0, 2.0))

    def test_choice_weights_bias_sampling(self):
        d = Choice(values=(10, 20), weights=(0.9, 0.1))
        idx = d.sample_indices(rng(), 5000)
        assert set(np.unique(idx)) <= {0, 1}
        assert (idx == 0).mean() > 0.8

    def test_trace_cycle_replays_in_order(self):
        d = Trace(trace=(5, 7, 5), replay="cycle")
        assert d.support == (5, 7)
        idx = d.sample_indices(rng(), 7)
        # positions 0..6 mod 3 -> values 5,7,5,5,7,5,5 -> support rows.
        assert idx.tolist() == [0, 1, 0, 0, 1, 0, 0]

    def test_trace_bootstrap_follows_empirical_weights(self):
        d = Trace(trace=(1, 1, 1, 2), replay="bootstrap")
        idx = d.sample_indices(rng(), 4000)
        assert 0.6 < (idx == 0).mean() < 0.9

    def test_trace_validation(self):
        with pytest.raises(ConfigurationError):
            Trace(trace=())
        with pytest.raises(ConfigurationError):
            Trace(trace=(1,), replay="backwards")

    def test_describe_hides_internal_fields(self):
        doc = Trace(trace=(1, 2), replay="cycle").describe()
        assert doc["kind"] == "trace"
        assert not any(k.startswith("_") for k in doc)


class TestParseDistribution:
    def test_grammar_round_trip(self):
        assert parse_distribution("uniform(0,1)") == Uniform(0.0, 1.0)
        assert parse_distribution("normal(0.3,0.1)") == Normal(0.3, 0.1)
        assert parse_distribution("normal(0.3,0.1,0,1)") == Normal(
            0.3, 0.1, 0.0, 1.0
        )
        assert parse_distribution("lognormal(0,0.5)") == LogNormal(0.0, 0.5)
        assert parse_distribution("choice(63,125)") == Choice(values=(63, 125))
        assert parse_distribution("choice(1:0.6,2:0.4)") == Choice(
            values=(1, 2), weights=(0.6, 0.4)
        )
        assert parse_distribution("trace(63,125,63)") == Trace(
            trace=(63, 125, 63), replay="cycle"
        )
        assert parse_distribution("point(125)") == Choice(values=(125,))

    def test_integer_values_stay_integers(self):
        values = parse_distribution("choice(63,125)").values
        assert all(isinstance(v, int) for v in values)

    def test_bad_inputs_are_clean_errors(self):
        for text in (
            "nope(1)", "uniform(1)", "choice()", "choice(1:)",
            "point(1,2)", "uniform(a,b)", "just text",
        ):
            with pytest.raises(ConfigurationError):
                parse_distribution(text)


class TestPopulationSpec:
    def test_defaults_resolve_from_workload(self):
        spec = PopulationSpec(workload="ddc", n_samples=10)
        assert spec.duty_cycle == Uniform(0.0, 1.0)
        assert dict(spec.axes)["fir_taps"].support == (63, 125, 255)
        assert spec.base_config is REFERENCE_DDC
        assert spec.n_distinct_bound() == 3

    def test_chunk_size_is_not_part_of_the_population(self):
        a = PopulationSpec(n_samples=10, chunk_samples=4).describe()
        b = PopulationSpec(n_samples=10, chunk_samples=512).describe()
        assert a == b
        assert "chunk_samples" not in a

    def test_duty_distribution_must_be_bounded_in_unit_interval(self):
        with pytest.raises(ConfigurationError, match="bounded"):
            PopulationSpec(n_samples=10, duty_cycle=Normal(0.5, 0.1))
        with pytest.raises(ConfigurationError, match="bounded"):
            PopulationSpec(n_samples=10, duty_cycle=Uniform(0.0, 1.5))

    def test_axes_must_be_discrete(self):
        with pytest.raises(ConfigurationError, match="discrete"):
            PopulationSpec(
                n_samples=10, axes=(("fir_taps", Uniform(63, 255)),)
            )

    def test_unknown_axis_field_rejected(self):
        with pytest.raises(ConfigurationError):
            PopulationSpec(
                n_samples=10, axes=(("no_such_field", Choice(values=(1,))),)
            )

    def test_numeric_validation(self):
        for kwargs in (
            dict(n_samples=0),
            dict(n_samples=10, chunk_samples=0),
            dict(n_samples=10, duty_bins=0),
            dict(n_samples=10, standby_fraction=1.5),
            dict(n_samples=10, battery_wh=0.0),
            dict(n_samples=10, percentiles=()),
            dict(n_samples=10, percentiles=(0.0,)),
            dict(n_samples=10, on_error="explode"),
        ):
            with pytest.raises(ConfigurationError):
                PopulationSpec(**kwargs)


class TestDutyCycleValidation:
    """Satellite: batch evaluators must name the offending duty cycle."""

    def test_check_duty_cycles_names_value_and_index(self):
        with pytest.raises(ConfigurationError, match=r"1\.5 at index 2"):
            check_duty_cycles([0.0, 1.0, 1.5])
        with pytest.raises(ConfigurationError, match="nan"):
            check_duty_cycles([0.5, float("nan")])
        with pytest.raises(ConfigurationError):
            check_duty_cycles([])
        with pytest.raises(ConfigurationError):
            check_duty_cycles([[0.1], [0.2]])

    def test_analysis_batch_paths_validate(self):
        cand = ScenarioCandidate("x", active_power_w=1.0,
                                 standby_power_w=0.1)
        analysis = ScenarioAnalysis((cand,))
        with pytest.raises(ConfigurationError, match="-0.25"):
            analysis.cost_batch([0.5, -0.25])
        with pytest.raises(ConfigurationError, match="2.0"):
            analysis.evaluate_batch([2.0])

    def test_scalar_effective_power_names_value(self):
        cand = ScenarioCandidate("x", active_power_w=1.0,
                                 standby_power_w=0.1)
        with pytest.raises(ConfigurationError, match="1.25"):
            cand.effective_power_w(1.25)


class TestEngineByteIdentity:
    """Identical seeds must give byte-identical JSON everywhere."""

    @pytest.mark.parametrize("workload", ["ddc", "drm"])
    def test_vector_equals_scalar_oracle(self, workload):
        spec = PopulationSpec(workload=workload, seed=3, **SMALL)
        vector = run_population(spec, engine="vector").render()
        scalar = run_population(spec, engine="scalar").render()
        assert vector.encode() == scalar.encode()

    def test_chunk_size_workers_backend_do_not_change_bytes(self):
        spec = PopulationSpec(seed=5, **SMALL)
        want = run_population(spec).render()
        for variant in (
            dataclasses.replace(spec, chunk_samples=37),
            dataclasses.replace(spec, chunk_samples=10_000),
        ):
            assert run_population(variant).render() == want
        assert run_population(spec, workers=3).render() == want
        assert (
            run_population(spec, workers=2, backend="process").render()
            == want
        )

    def test_different_seed_different_bytes(self):
        a = run_population(PopulationSpec(seed=0, **SMALL)).render()
        b = run_population(PopulationSpec(seed=1, **SMALL)).render()
        assert a != b

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            run_population(PopulationSpec(**SMALL), engine="quantum")

    def test_report_document_schema(self):
        report = run_population(PopulationSpec(seed=2, **SMALL))
        doc = json.loads(report.render())
        assert doc["schema"] == "repro-montecarlo/v1"
        assert doc["n_valid_samples"] == SMALL["n_samples"]
        assert doc["partial"] is False
        assert len(doc["duty_bin_edges"]) == doc["spec"]["duty_bins"] + 1
        assert sum(doc["duty_bin_samples"]) == SMALL["n_samples"]
        for arch in doc["architectures"]:
            assert set(arch["power_w"]) == {"p50", "p95", "p99"}
            probs = [
                p for p in arch["win_probability_by_duty"] if p is not None
            ]
            assert all(0.0 <= p <= 1.0 for p in probs)
        total = sum(a["win_probability"] for a in doc["architectures"])
        assert total == pytest.approx(1.0)


class TestFailurePolicy:
    BAD_AXES = (("fir_taps", Choice(values=(63, 0))),)

    def test_raise_mode_raises_on_poisoned_config(self):
        spec = PopulationSpec(axes=self.BAD_AXES, **SMALL)
        with pytest.raises(ConfigurationError, match="fir_taps"):
            run_population(spec)

    def test_skip_mode_records_weighted_failures(self):
        spec = PopulationSpec(axes=self.BAD_AXES, on_error="skip", **SMALL)
        report = run_population(spec)
        assert report.partial
        assert report.n_dropped_samples > 0
        (failure,) = report.failures
        assert failure.phase == "build"
        assert failure.n_samples == report.n_dropped_samples
        assert "fir_taps" in failure.message
        assert report.n_valid_samples + report.n_dropped_samples == (
            SMALL["n_samples"]
        )

    def test_skip_mode_stays_byte_identical_across_engines(self):
        spec = PopulationSpec(
            axes=self.BAD_AXES, on_error="skip", seed=4, **SMALL
        )
        vector = run_population(spec, engine="vector").render()
        scalar = run_population(spec, engine="scalar").render()
        assert vector.encode() == scalar.encode()

    def test_retry_recovers_injected_chunk_fault_byte_identical(self):
        spec = PopulationSpec(seed=6, on_error="retry", **SMALL)
        want = run_population(spec)  # fault-free reference, same spec
        plan = FaultPlan((FaultSpec("montecarlo.chunk", keys=(1,)),))
        with faults.inject(plan):
            got = run_population(spec)
        assert got.render() == want.render()
        assert not got.partial

    def test_skip_records_injected_chunk_fault_as_partial(self):
        spec = PopulationSpec(seed=6, on_error="skip", **SMALL)
        plan = FaultPlan((FaultSpec("montecarlo.chunk", keys=(1,)),))
        with faults.inject(plan):
            report = run_population(spec)
        assert report.partial
        (chunk,) = report.chunk_failures
        assert chunk.index == 1
        assert chunk.stop - chunk.start == SMALL["chunk_samples"]
        assert report.n_dropped_samples == SMALL["chunk_samples"]


class TestReportHelpers:
    def test_nearest_rank_is_an_actual_sample_value(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert nearest_rank(x, 50.0) == 2.0
        assert nearest_rank(x, 100.0) == 4.0
        assert nearest_rank(x, 1.0) == 1.0
        assert nearest_rank(np.array([]), 50.0) is None

    def test_battery_life_comes_from_the_opposite_tail(self):
        x = np.array([0.5, 1.0, 2.0])
        # p50 life <- p50-from-the-top power (here the median, 1.0 W).
        assert battery_life_percentile(x, 50.0, 3.7) == 3.7 / 1.0
        assert battery_life_percentile(x, 100.0, 3.7) == 3.7 / 0.5
        assert battery_life_percentile(np.array([0.0]), 50.0, 3.7) is None

    def test_winner_tie_matches_scalar_first_minimum_rule(self):
        from repro.energy.scenarios import winner_counts

        powers = np.array([[1.0, 1.0], [np.nan, np.nan]])
        counts = winner_counts(powers, np.array([0, 0]), 1)
        # Tie goes to the first column; the all-nan row counts nowhere.
        assert counts.tolist() == [[1, 0]]


class TestCLI:
    def test_verify_mode_passes(self, capsys):
        assert mc_main(["--samples", "300", "--chunk-samples", "128",
                        "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verify OK" in out and "speedup" in out

    def test_json_output_and_summary(self, capsys, tmp_path):
        path = tmp_path / "pop.json"
        assert mc_main(["--samples", "200", "--output", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["spec"]["n_samples"] == 200
        assert mc_main(["--samples", "200", "--summary"]) == 0
        assert "architecture" in capsys.readouterr().out

    def test_axis_and_duty_flags(self, capsys):
        assert mc_main([
            "--samples", "200", "--duty", "normal(0.2,0.1,0,1)",
            "--axis", "fir_taps=choice(63,125)", "--summary",
        ]) == 0

    def test_bad_distribution_is_a_clean_error(self, capsys):
        assert mc_main(["--duty", "nope(1)"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unbounded_duty_is_a_clean_error(self, capsys):
        assert mc_main(["--duty", "normal(0.5,0.2)"]) == 2
        assert "bounded" in capsys.readouterr().err

    def test_partial_run_exits_3(self, capsys):
        code = mc_main([
            "--samples", "200", "--axis", "fir_taps=choice(63,0)",
            "--on-error", "skip",
        ])
        assert code == 3
        assert "partial" in capsys.readouterr().err

    def test_bench_list_names_population_bench(self, capsys):
        from repro.bench.__main__ import main as bench_main

        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "montecarlo_population  [guarded]" in out
        assert "ddc_gold\n" in out  # unguarded entries are unmarked
