"""Tests for the ASIC models (Section 3: GC4016 and low-power DDC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import REFERENCE_DDC, DDCConfig
from repro.archs.asic import (
    GC4016Channel,
    GC4016Model,
    LowPowerDDCModel,
    gate_count_estimate,
)
from repro.dsp.signals import gsm_like_burst, tone
from repro.errors import ConfigurationError


class TestGC4016Channel:
    def test_datasheet_decimation_range(self):
        with pytest.raises(ConfigurationError):
            GC4016Channel(69.333e6, 10e6, cic_decimation=4)
        with pytest.raises(ConfigurationError):
            GC4016Channel(69.333e6, 10e6, cic_decimation=8192)

    def test_input_rate_limit(self):
        with pytest.raises(ConfigurationError):
            GC4016Channel(120e6, 10e6, cic_decimation=64)

    def test_total_decimation(self):
        ch = GC4016Channel(69.333e6, 10e6, cic_decimation=64)
        assert ch.total_decimation == 256

    def test_gsm_example_output_rate(self):
        """Section 3.1.2: 69.333 MHz / 256 = 270.833 kHz."""
        ch = GC4016Channel(69.333e6, 10e6, cic_decimation=64)
        assert ch.output_rate_hz == pytest.approx(270_832.0, rel=1e-3)

    def test_processes_gsm_burst(self):
        ch = GC4016Channel(69.333e6, 10e6, cic_decimation=64)
        x = gsm_like_burst(256 * 30, 69.333e6, 10e6, seed=1)
        y = ch.process(x)
        assert len(y) == 30
        assert np.iscomplexobj(y)

    def test_tone_selectivity(self):
        """In-band tone passes, out-of-band tone is rejected."""
        fs, fc = 69.333e6, 10e6
        n = 256 * 120
        ch = GC4016Channel(fs, fc, cic_decimation=64)
        y_in = ch.process(tone(n, fc + 50e3, fs, 0.5))
        ch.reset()
        y_out = ch.process(tone(n, fc + 5e6, fs, 0.5))
        p_in = np.mean(np.abs(y_in[20:]) ** 2)
        p_out = np.mean(np.abs(y_out[20:]) ** 2)
        assert 10 * np.log10(p_in / p_out) > 40

    def test_reset(self):
        ch = GC4016Channel(69.333e6, 10e6, cic_decimation=64)
        x = tone(256 * 10, 10.05e6, 69.333e6, 0.5)
        a = ch.process(x)
        ch.reset()
        b = ch.process(x)
        np.testing.assert_allclose(a, b)


class TestGC4016Model:
    def test_supports_reference_total(self):
        assert GC4016Model().supports(REFERENCE_DDC)  # 2688 in 32..16384

    def test_rejects_tiny_decimation(self):
        cfg = DDCConfig(cic2_decimation=2, cic5_decimation=2,
                        fir_decimation=2)
        assert not GC4016Model().supports(cfg)

    def test_paper_operating_point(self):
        report = GC4016Model().implement(REFERENCE_DDC)
        assert report.power_w == pytest.approx(0.115)
        assert report.clock_hz == pytest.approx(80e6)
        assert report.technology.feature_um == 0.25

    def test_scaled_operating_point(self):
        report = GC4016Model(at_paper_operating_point=False).implement(
            REFERENCE_DDC
        )
        assert report.power_w == pytest.approx(0.115 * 64.512 / 80, rel=1e-3)


class TestLowPowerModel:
    def test_reference_power_is_27mw(self):
        report = LowPowerDDCModel().implement(REFERENCE_DDC)
        assert report.power_w * 1e3 == pytest.approx(27.0, rel=1e-6)

    def test_area(self):
        report = LowPowerDDCModel().implement(REFERENCE_DDC)
        assert report.area_mm2 == pytest.approx(1.7)

    def test_decimation_range(self):
        model = LowPowerDDCModel()
        assert model.supports(REFERENCE_DDC)
        with pytest.raises(ConfigurationError):
            model.estimate_power_w(
                DDCConfig(cic2_decimation=64, cic5_decimation=64,
                          fir_decimation=32, nco_frequency_hz=1e6)
            )  # 131072 > the 65536 datasheet maximum

    def test_gate_counts_positive(self):
        stages = gate_count_estimate(REFERENCE_DDC)
        assert all(s.gates > 0 for s in stages)
        assert all(0 < s.relative_rate <= 1.0 for s in stages)

    def test_first_stages_dominate(self):
        """Section 3.1.2: 'The first stages of the DDC consume most of the
        energy, because this part is working with the highest sample
        rate.'"""
        stages = {s.name: s.weighted_gates for s in
                  gate_count_estimate(REFERENCE_DDC)}
        full_rate = stages["NCO+mixer"] + stages["CIC2-integrators"]
        rest = sum(v for k, v in stages.items()
                   if k not in ("NCO+mixer", "CIC2-integrators"))
        assert full_rate > 2 * rest

    def test_smaller_chain_costs_less(self):
        model = LowPowerDDCModel()
        narrow = DDCConfig(data_width=8)
        assert model.estimate_power_w(narrow) < model.estimate_power_w(
            REFERENCE_DDC
        )
