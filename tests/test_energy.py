"""Tests for technology scaling, comparison (Table 7) and scenarios (Sec. 7)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.energy import (
    TECH_130NM,
    TECH_180NM,
    TECH_250NM,
    TECH_90NM,
    ArchitectureComparison,
    ScenarioAnalysis,
    TechnologyNode,
    duty_cycle_crossover,
    duty_cycle_crossover_batch,
    duty_grid,
    scale_power,
    scaling_factor,
)
from repro.energy.scenarios import ScenarioCandidate
from repro.errors import ConfigurationError


class TestTechnologyScaling:
    def test_paper_gc4016_scaling(self):
        """115 mW at 0.25 um / 2.5 V -> 13.8 mW at 0.13 um / 1.2 V."""
        got = scale_power(0.115, TECH_250NM, TECH_130NM)
        assert got * 1e3 == pytest.approx(13.8, abs=0.05)

    def test_paper_lowpower_scaling(self):
        """27 mW at 0.18 um / 1.8 V -> 8.7 mW."""
        got = scale_power(0.027, TECH_180NM, TECH_130NM)
        assert got * 1e3 == pytest.approx(8.7, abs=0.05)

    def test_paper_cyclone2_upscaling(self):
        """31.11 mW dynamic at 0.09 um -> 44.94 mW at 0.13 um."""
        got = scale_power(0.03111, TECH_90NM, TECH_130NM)
        assert got * 1e3 == pytest.approx(44.94, abs=0.1)

    def test_identity_scaling(self):
        assert scaling_factor(TECH_130NM, TECH_130NM) == pytest.approx(1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_power(-1.0, TECH_250NM, TECH_130NM)

    def test_invalid_node(self):
        with pytest.raises(ConfigurationError):
            TechnologyNode(-0.13, 1.2)
        with pytest.raises(ConfigurationError):
            TechnologyNode(0.13, 0.0)

    @given(st.floats(0.01, 10.0))
    def test_scaling_roundtrip(self, power):
        there = scale_power(power, TECH_250NM, TECH_130NM)
        back = scale_power(there, TECH_130NM, TECH_250NM)
        assert back == pytest.approx(power, rel=1e-9)


class _FakeReport:
    """Duck-typed ImplementationReport for comparison tests."""

    def __init__(self, name, tech, power_w, clock_hz=64.512e6,
                 area=None, feasible=True):
        self.architecture = name
        self.technology = tech
        self.power_w = power_w
        self.clock_hz = clock_hz
        self.area_mm2 = area
        self.feasible = feasible
        self.notes = ""


class TestComparison:
    def _build(self):
        cmp = ArchitectureComparison()
        cmp.add(_FakeReport("asic", TECH_180NM, 0.027))
        cmp.add(_FakeReport("fpga", TECH_130NM, 0.1414))
        cmp.add(_FakeReport("gpp", TECH_130NM, 2.4, feasible=False))
        return cmp

    def test_best_feasible(self):
        assert self._build().best().architecture == "asic"

    def test_best_includes_infeasible_when_asked(self):
        cmp = ArchitectureComparison()
        cmp.add(_FakeReport("only", TECH_130NM, 1.0, feasible=False))
        with pytest.raises(ConfigurationError):
            cmp.best()
        assert cmp.best(feasible_only=False).architecture == "only"

    def test_ranking_sorted(self):
        ranking = self._build().ranking()
        powers = [r.power_scaled_w for r in ranking]
        assert powers == sorted(powers)

    def test_scaled_override(self):
        cmp = ArchitectureComparison()
        row = cmp.add(_FakeReport("x", TECH_90NM, 0.058),
                      scaled_power_w=0.04494)
        assert row.power_scaled_mw == pytest.approx(44.94)

    def test_render_contains_rows(self):
        text = self._build().render()
        assert "asic" in text and "fpga" in text and "NO" in text


class TestScenarios:
    def _candidates(self):
        return [
            ScenarioCandidate("asic", 0.027, standby_power_w=0.002,
                              reusable=False),
            ScenarioCandidate("fpga", 0.058, reusable=True),
        ]

    def test_static_scenario_asic_wins(self):
        """Section 7.1: full-time DDC -> ASIC."""
        analysis = ScenarioAnalysis(self._candidates())
        assert analysis.static_scenario().winner == "asic"

    def test_low_duty_cycle_fpga_wins(self):
        """Section 7.2: occasional DDC -> reconfigurable fabric."""
        analysis = ScenarioAnalysis(self._candidates())
        assert analysis.evaluate(0.01).winner == "fpga"

    def test_crossover_exists(self):
        a, b = self._candidates()
        d = duty_cycle_crossover(a, b)
        assert d is not None and 0.0 < d < 0.2
        # at the crossover the costs match
        assert a.effective_power_w(d) == pytest.approx(
            b.effective_power_w(d), rel=1e-9
        )

    def test_crossover_parallel_lines(self):
        a = ScenarioCandidate("a", 0.1, reusable=True)
        b = ScenarioCandidate("b", 0.1, reusable=True)
        assert duty_cycle_crossover(a, b) is None

    def test_winning_regions_cover_unit_interval(self):
        analysis = ScenarioAnalysis(self._candidates())
        regions = analysis.winning_regions()
        assert regions[0][0] == 0.0
        assert regions[-1][1] == 1.0
        for (lo1, hi1, _), (lo2, _, _) in zip(regions, regions[1:]):
            assert hi1 == lo2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioAnalysis([
                ScenarioCandidate("x", 1.0), ScenarioCandidate("x", 2.0)
            ])

    def test_duty_cycle_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioCandidate("x", 1.0).effective_power_w(1.5)

    def test_crossover_outside_unit_interval_is_none(self):
        """Lines that cross only at d < 0 or d > 1 report no crossover."""
        # Crossing below 0: b is cheaper at every admissible duty cycle.
        a = ScenarioCandidate("a", 1.0, standby_power_w=0.50)
        b = ScenarioCandidate("b", 1.2, standby_power_w=0.55)
        assert duty_cycle_crossover(a, b) is None
        # Crossing above 1: the idle gap never closes within [0, 1].
        c = ScenarioCandidate("c", 1.0, standby_power_w=0.10)
        e = ScenarioCandidate("e", 1.1, standby_power_w=0.30)
        assert duty_cycle_crossover(c, e) is None
        # Sanity: both pairs really do cross, just outside the interval.
        for x, y in ((a, b), (c, e)):
            denom = (x.active_power_w - x.idle_power_w) - (
                y.active_power_w - y.idle_power_w
            )
            d = (y.idle_power_w - x.idle_power_w) / denom
            assert not 0.0 <= d <= 1.0

    def test_all_reusable_candidate_set(self):
        """All-reusable sets: zero idle cost, ties resolve to first-in."""
        cands = [
            ScenarioCandidate("m", 0.0387, standby_power_w=0.01,
                              reusable=True),
            ScenarioCandidate("f", 0.0581, standby_power_w=0.02,
                              reusable=True),
            ScenarioCandidate("g", 2.435, standby_power_w=0.1,
                              reusable=True),
        ]
        analysis = ScenarioAnalysis(cands)
        # At d=0 every reusable fabric costs exactly 0.0 — standby power is
        # displaced, not charged — and the tie goes to the first candidate.
        at_zero = analysis.evaluate(0.0)
        assert set(at_zero.powers_w.values()) == {0.0}
        assert at_zero.winner == "m"
        # The cheapest active fabric wins at every d > 0, so there is a
        # single winning region and no crossover strictly inside (0, 1].
        assert analysis.winning_regions(steps=101) == [(0.0, 1.0, "m")]
        matrix = duty_cycle_crossover_batch(cands)
        off_diag = matrix[~np.eye(len(cands), dtype=bool)]
        # All pairwise "crossovers" collapse to the shared zero-cost point.
        assert all(math.isnan(v) or v == 0.0 for v in off_diag)
        assert duty_cycle_crossover(cands[0], cands[1]) == 0.0


_candidates_strategy = st.lists(
    st.builds(
        ScenarioCandidate,
        name=st.uuids().map(str),
        active_power_w=st.floats(1e-6, 10.0),
        standby_power_w=st.floats(0.0, 1.0),
        reusable=st.booleans(),
    ),
    min_size=1,
    max_size=6,
)


class TestBatchedScenarioPaths:
    """The batched grid APIs are bit-identical to the scalar oracles."""

    @given(
        _candidates_strategy,
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=32),
    )
    def test_cost_batch_equals_scalar_cost(self, cands, duties):
        analysis = ScenarioAnalysis(cands)
        grid = analysis.cost_batch(duties)
        assert grid.shape == (len(duties), len(cands))
        for k, d in enumerate(duties):
            for j, c in enumerate(cands):
                # Bitwise equality, not approx: same IEEE-754 op order.
                assert grid[k, j] == c.effective_power_w(d)

    @given(_candidates_strategy, st.integers(2, 64))
    def test_evaluate_batch_equals_scalar_sweep(self, cands, steps):
        analysis = ScenarioAnalysis(cands)
        batch = analysis.evaluate_batch(duty_grid(steps)).results()
        scalar = [
            analysis.evaluate(i / (steps - 1)) for i in range(steps)
        ]
        assert batch == scalar

    @given(_candidates_strategy)
    def test_crossover_batch_equals_scalar_pairwise(self, cands):
        matrix = duty_cycle_crossover_batch(cands)
        for i, a in enumerate(cands):
            for j, b in enumerate(cands):
                scalar = duty_cycle_crossover(a, b)
                if scalar is None:
                    assert math.isnan(matrix[i, j])
                else:
                    assert matrix[i, j] == scalar

    def test_cost_batch_validation(self):
        analysis = ScenarioAnalysis([ScenarioCandidate("x", 1.0)])
        with pytest.raises(ConfigurationError):
            analysis.cost_batch([0.5, 1.5])
        with pytest.raises(ConfigurationError):
            analysis.cost_batch([])
        with pytest.raises(ConfigurationError):
            analysis.cost_batch([[0.1], [0.2]])

    def test_comparison_scenario_grid_entry_point(self):
        cmp = ArchitectureComparison()
        cmp.add(_FakeReport("asic", TECH_180NM, 0.027))
        cmp.add(_FakeReport("fpga", TECH_130NM, 0.0581))
        cmp.add(_FakeReport("gpp", TECH_130NM, 2.4, feasible=False))
        grid = cmp.scenario_grid(
            duty_grid(11), reusable={"fpga": True}, standby_fraction=0.05
        )
        assert grid.names == ("asic", "fpga")  # infeasible row dropped
        assert grid.powers_w.shape == (11, 2)
        # fpga is reusable: zero cost at d=0; asic pays standby.
        assert grid.powers_w[0, 1] == 0.0
        assert grid.powers_w[0, 0] == pytest.approx(0.027 * 0.05)
        assert grid.winning_regions()[0][2] == "fpga"
        with pytest.raises(ConfigurationError):
            cmp.scenario_grid(duty_grid(5), standby_fraction=1.5)
