"""Tests for technology scaling, comparison (Table 7) and scenarios (Sec. 7)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.energy import (
    TECH_130NM,
    TECH_180NM,
    TECH_250NM,
    TECH_90NM,
    ArchitectureComparison,
    ScenarioAnalysis,
    TechnologyNode,
    duty_cycle_crossover,
    scale_power,
    scaling_factor,
)
from repro.energy.scenarios import ScenarioCandidate
from repro.errors import ConfigurationError


class TestTechnologyScaling:
    def test_paper_gc4016_scaling(self):
        """115 mW at 0.25 um / 2.5 V -> 13.8 mW at 0.13 um / 1.2 V."""
        got = scale_power(0.115, TECH_250NM, TECH_130NM)
        assert got * 1e3 == pytest.approx(13.8, abs=0.05)

    def test_paper_lowpower_scaling(self):
        """27 mW at 0.18 um / 1.8 V -> 8.7 mW."""
        got = scale_power(0.027, TECH_180NM, TECH_130NM)
        assert got * 1e3 == pytest.approx(8.7, abs=0.05)

    def test_paper_cyclone2_upscaling(self):
        """31.11 mW dynamic at 0.09 um -> 44.94 mW at 0.13 um."""
        got = scale_power(0.03111, TECH_90NM, TECH_130NM)
        assert got * 1e3 == pytest.approx(44.94, abs=0.1)

    def test_identity_scaling(self):
        assert scaling_factor(TECH_130NM, TECH_130NM) == pytest.approx(1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_power(-1.0, TECH_250NM, TECH_130NM)

    def test_invalid_node(self):
        with pytest.raises(ConfigurationError):
            TechnologyNode(-0.13, 1.2)
        with pytest.raises(ConfigurationError):
            TechnologyNode(0.13, 0.0)

    @given(st.floats(0.01, 10.0))
    def test_scaling_roundtrip(self, power):
        there = scale_power(power, TECH_250NM, TECH_130NM)
        back = scale_power(there, TECH_130NM, TECH_250NM)
        assert back == pytest.approx(power, rel=1e-9)


class _FakeReport:
    """Duck-typed ImplementationReport for comparison tests."""

    def __init__(self, name, tech, power_w, clock_hz=64.512e6,
                 area=None, feasible=True):
        self.architecture = name
        self.technology = tech
        self.power_w = power_w
        self.clock_hz = clock_hz
        self.area_mm2 = area
        self.feasible = feasible
        self.notes = ""


class TestComparison:
    def _build(self):
        cmp = ArchitectureComparison()
        cmp.add(_FakeReport("asic", TECH_180NM, 0.027))
        cmp.add(_FakeReport("fpga", TECH_130NM, 0.1414))
        cmp.add(_FakeReport("gpp", TECH_130NM, 2.4, feasible=False))
        return cmp

    def test_best_feasible(self):
        assert self._build().best().architecture == "asic"

    def test_best_includes_infeasible_when_asked(self):
        cmp = ArchitectureComparison()
        cmp.add(_FakeReport("only", TECH_130NM, 1.0, feasible=False))
        with pytest.raises(ConfigurationError):
            cmp.best()
        assert cmp.best(feasible_only=False).architecture == "only"

    def test_ranking_sorted(self):
        ranking = self._build().ranking()
        powers = [r.power_scaled_w for r in ranking]
        assert powers == sorted(powers)

    def test_scaled_override(self):
        cmp = ArchitectureComparison()
        row = cmp.add(_FakeReport("x", TECH_90NM, 0.058),
                      scaled_power_w=0.04494)
        assert row.power_scaled_mw == pytest.approx(44.94)

    def test_render_contains_rows(self):
        text = self._build().render()
        assert "asic" in text and "fpga" in text and "NO" in text


class TestScenarios:
    def _candidates(self):
        return [
            ScenarioCandidate("asic", 0.027, standby_power_w=0.002,
                              reusable=False),
            ScenarioCandidate("fpga", 0.058, reusable=True),
        ]

    def test_static_scenario_asic_wins(self):
        """Section 7.1: full-time DDC -> ASIC."""
        analysis = ScenarioAnalysis(self._candidates())
        assert analysis.static_scenario().winner == "asic"

    def test_low_duty_cycle_fpga_wins(self):
        """Section 7.2: occasional DDC -> reconfigurable fabric."""
        analysis = ScenarioAnalysis(self._candidates())
        assert analysis.evaluate(0.01).winner == "fpga"

    def test_crossover_exists(self):
        a, b = self._candidates()
        d = duty_cycle_crossover(a, b)
        assert d is not None and 0.0 < d < 0.2
        # at the crossover the costs match
        assert a.effective_power_w(d) == pytest.approx(
            b.effective_power_w(d), rel=1e-9
        )

    def test_crossover_parallel_lines(self):
        a = ScenarioCandidate("a", 0.1, reusable=True)
        b = ScenarioCandidate("b", 0.1, reusable=True)
        assert duty_cycle_crossover(a, b) is None

    def test_winning_regions_cover_unit_interval(self):
        analysis = ScenarioAnalysis(self._candidates())
        regions = analysis.winning_regions()
        assert regions[0][0] == 0.0
        assert regions[-1][1] == 1.0
        for (lo1, hi1, _), (lo2, _, _) in zip(regions, regions[1:]):
            assert hi1 == lo2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioAnalysis([
                ScenarioCandidate("x", 1.0), ScenarioCandidate("x", 2.0)
            ])

    def test_duty_cycle_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioCandidate("x", 1.0).effective_power_w(1.5)
