"""Tests for FIR filters and polyphase decimators (paper Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import signal as sp_signal

from repro.dsp.fir import (
    FIRFilter,
    FixedPolyphaseDecimator,
    PolyphaseDecimator,
    polyphase_decompose,
)
from repro.dsp.firdesign import quantize_taps, reference_fir_taps
from repro.dsp.streaming import stream_in_blocks
from repro.errors import ConfigurationError


class TestFIRFilter:
    def test_identity(self, rng):
        f = FIRFilter(np.array([1.0]))
        x = rng.normal(size=64)
        np.testing.assert_allclose(f.process(x), x)

    def test_matches_scipy(self, rng):
        taps = rng.normal(size=17)
        x = rng.normal(size=200)
        got = FIRFilter(taps).process(x)
        want = sp_signal.lfilter(taps, [1.0], x)
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)

    def test_streaming_matches_one_shot(self, rng):
        taps = rng.normal(size=9)
        x = rng.normal(size=100)
        f = FIRFilter(taps)
        whole = FIRFilter(taps).process(x)
        split = np.concatenate([f.process(x[:37]), f.process(x[37:])])
        np.testing.assert_allclose(split, whole, rtol=1e-10, atol=1e-12)

    def test_empty_taps_rejected(self):
        with pytest.raises(ConfigurationError):
            FIRFilter(np.array([]))

    def test_reset(self, rng):
        taps = rng.normal(size=5)
        f = FIRFilter(taps)
        x = rng.normal(size=50)
        y1 = f.process(x)
        f.reset()
        y2 = f.process(x)
        np.testing.assert_allclose(y1, y2)


class TestPolyphaseDecompose:
    def test_shape(self):
        phases = polyphase_decompose(np.arange(10.0), 5)
        assert phases.shape == (5, 2)

    def test_padding(self):
        phases = polyphase_decompose(np.arange(7.0), 3)
        assert phases.shape == (3, 3)
        assert phases[1, 2] == 0.0  # padded slot

    def test_phase_contents(self):
        phases = polyphase_decompose(np.arange(6.0), 2)
        np.testing.assert_allclose(phases[0], [0, 2, 4])
        np.testing.assert_allclose(phases[1], [1, 3, 5])

    def test_reconstruction(self):
        taps = np.arange(12.0)
        phases = polyphase_decompose(taps, 4)
        rebuilt = phases.T.reshape(-1)[: len(taps)]
        np.testing.assert_allclose(rebuilt, taps)

    def test_invalid_decimation(self):
        with pytest.raises(ConfigurationError):
            polyphase_decompose(np.arange(4.0), 0)


class TestPolyphaseDecimator:
    @pytest.mark.parametrize("decimation", [1, 2, 5, 8])
    def test_equals_filter_then_downsample(self, decimation, rng):
        """Fig. 3's polyphase trick must equal the naive FIR + decimation."""
        taps = rng.normal(size=25)
        x = rng.normal(size=decimation * 30)
        got = PolyphaseDecimator(taps, decimation).process(x)
        full = sp_signal.lfilter(taps, [1.0], x)
        want = full[::decimation]
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    def test_complex_input(self, rng):
        taps = rng.normal(size=11)
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        got = PolyphaseDecimator(taps, 4).process(x)
        want = sp_signal.lfilter(taps, [1.0], x)[::4]
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(
        n_taps=st.integers(1, 30),
        decimation=st.integers(1, 9),
        block_size=st.integers(1, 64),
    )
    def test_block_split_invariance(self, n_taps, decimation, block_size):
        rng = np.random.default_rng(11)
        taps = rng.normal(size=n_taps)
        x = rng.normal(size=decimation * 16)
        whole = PolyphaseDecimator(taps, decimation).process(x)
        split = stream_in_blocks(
            PolyphaseDecimator(taps, decimation), x, block_size
        )
        np.testing.assert_allclose(split, whole, rtol=1e-9, atol=1e-10)

    def test_reference_125_taps(self, rng):
        taps = reference_fir_taps()
        assert len(taps) == 125
        x = rng.normal(size=8 * 40)
        got = PolyphaseDecimator(taps, 8).process(x)
        want = sp_signal.lfilter(taps, [1.0], x)[::8]
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    def test_empty_input(self):
        p = PolyphaseDecimator(np.ones(5), 4)
        assert len(p.process(np.array([]))) == 0

    def test_single_tap_single_rate(self, rng):
        p = PolyphaseDecimator(np.array([2.0]), 1)
        x = rng.normal(size=10)
        np.testing.assert_allclose(p.process(x), 2 * x)


class TestFixedPolyphaseDecimator:
    def _make(self, rng, n_taps=25, decimation=8):
        taps = rng.normal(size=n_taps) / n_taps
        raw, fmt = quantize_taps(taps, 12)
        return FixedPolyphaseDecimator(
            raw, decimation, output_shift=max(0, fmt.frac)
        ), raw

    def test_accumulator_width_default_is_31_for_paper(self):
        raw = np.ones(124, dtype=np.int64)
        f = FixedPolyphaseDecimator(raw, 8)
        assert f.acc_width == 31

    def test_rejects_wide_coefficients(self):
        with pytest.raises(ConfigurationError):
            FixedPolyphaseDecimator(np.array([5000]), 2, coeff_width=12)

    def test_rejects_float_input(self, rng):
        f, _ = self._make(rng)
        with pytest.raises(ConfigurationError):
            f.process(np.array([0.5]))

    def test_matches_integer_oracle(self, rng):
        """Bit-true output = truncated saturated integer convolution."""
        f, raw = self._make(rng, n_taps=20, decimation=4)
        x = rng.integers(-2048, 2048, size=160).astype(np.int64)
        got = f.process(x)
        full = np.convolve(x, raw)[: len(x)]
        want = full[::4] >> f.output_shift
        want = np.clip(want, -2048, 2047)
        np.testing.assert_array_equal(got, want)

    def test_saturation_clamps(self):
        # All-max coefficients and input drive the output into saturation.
        raw = np.full(4, 2047, dtype=np.int64)
        f = FixedPolyphaseDecimator(raw, 1, output_shift=0)
        x = np.full(16, 2047, dtype=np.int64)
        y = f.process(x)
        assert y.max() == 2047  # saturated, not wrapped

    @settings(max_examples=25, deadline=None)
    @given(block_size=st.integers(1, 40))
    def test_block_split_invariance(self, block_size):
        rng = np.random.default_rng(5)
        taps = rng.normal(size=15) / 15
        raw, fmt = quantize_taps(taps, 12)
        x = rng.integers(-2048, 2048, size=120).astype(np.int64)
        whole = FixedPolyphaseDecimator(
            raw, 3, output_shift=max(0, fmt.frac)
        ).process(x)
        split = stream_in_blocks(
            FixedPolyphaseDecimator(raw, 3, output_shift=max(0, fmt.frac)),
            x, block_size,
        )
        np.testing.assert_array_equal(split, whole)

    def test_mac_ops_per_output(self, rng):
        f, _ = self._make(rng, n_taps=124)
        assert f.mac_ops_per_output() == 124
