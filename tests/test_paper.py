"""Tests for the paper-regeneration module (tables and figures)."""

from __future__ import annotations

from repro.paper import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure8,
    figure9,
    figure_duty_cycle,
    section7_scenarios,
    table1,
    table2,
    table4,
    table5,
    table6,
    table7,
)


class TestTables:
    def test_table1_matches_published_exactly(self):
        t = table1()
        assert t.rows == t.published

    def test_table2_has_five_parameters(self):
        assert len(table2().rows) == 5

    def test_table4_two_devices(self):
        t = table4()
        assert [r[0] for r in t.rows] == ["EP1C3T100C6", "EP2C5T144C6"]

    def test_table5_static_row_constant(self):
        t = table5()
        statics = set(t.rows[2][1:])
        assert statics == {"48.0 mW"}

    def test_table6_five_parts(self):
        t = table6()
        assert len(t.rows) == 5

    def test_table7_six_solutions(self):
        t = table7()
        assert len(t.rows) == 6

    def test_render_smoke(self):
        for t in (table1(), table2(), table4(), table5(), table6()):
            text = t.render()
            assert t.name.split(":")[0] in text
            assert len(text.splitlines()) >= 3


class TestFigures:
    def test_figure1_payload_is_reference_config(self):
        fig = figure1()
        assert fig.payload.total_decimation == 2688

    def test_figure2_payload_is_cic2(self):
        fig = figure2()
        assert fig.payload.order == 2 and fig.payload.decimation == 16

    def test_figure3_payload_decimates_by_5(self):
        fig = figure3()
        assert fig.payload.decimation == 5

    def test_figure4_payload_is_gsm_example(self):
        fig = figure4()
        assert fig.payload.total_decimation == 256

    def test_figure8_op_is_mac(self):
        from repro.archs.montium.alu import Level2Fn

        assert figure8().payload.level2 is Level2Fn.MAC

    def test_figure_duty_cycle_payload_is_batched_grid(self):
        fig = figure_duty_cycle(steps=41)
        grid = fig.payload
        assert grid.powers_w.shape == (41, len(grid.names))
        # The map must agree with the Section 7 conclusion at d=1.0.
        assert grid.winners()[-1] == "Customised Low Power DDC"
        assert "Customised Low Power DDC" in fig.text

    def test_figure9_default_40_cycles(self):
        fig = figure9()
        header = fig.text.splitlines()[0]
        assert len(header.split()[-1]) == 40

    def test_renders(self):
        for fig in (figure1(), figure2(), figure3(), figure8(), figure9()):
            assert fig.name in fig.render()


class TestScenarios:
    def test_section7_conclusions(self):
        res = section7_scenarios()
        assert res.static_winner == "Customised Low Power DDC"
        assert res.reconfigurable_winner == "Altera Cyclone II"
        assert res.winning_regions[-1][2] == "Customised Low Power DDC"

    def test_render(self):
        text = section7_scenarios().render()
        assert "static" in text and "reconfigurable" in text
