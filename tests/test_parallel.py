"""Unit tests pinning the repro.parallel.parallel_map contract."""

from __future__ import annotations

import os
import threading

import pytest

from repro.errors import ConfigurationError
from repro.parallel import parallel_map


def _square_mod(x):
    """Module-level so the process backend can pickle it."""
    return (x * x) % 11


def _current_pid(_):
    return os.getpid()


def _boom_on_two(x):
    if x == 2:
        raise ValueError("item 2")
    return x


class TestParallelMap:
    def test_preserves_input_order(self):
        """Results come back in input order even when completion order
        is scrambled (later items finish first)."""
        import time

        def slow_for_small(x):
            time.sleep(0.02 if x < 3 else 0.0)
            return x * 10

        items = list(range(6))
        assert parallel_map(slow_for_small, items, workers=6) == [
            x * 10 for x in items
        ]

    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_serial_fallback_runs_in_caller_thread(self, workers):
        seen = []

        def fn(x):
            seen.append(threading.current_thread())
            return x + 1

        assert parallel_map(fn, [1, 2, 3], workers=workers) == [2, 3, 4]
        assert all(t is threading.main_thread() for t in seen)

    def test_parallel_equals_serial(self):
        items = list(range(37))
        fn = lambda x: (x * x) % 11  # noqa: E731
        assert parallel_map(fn, items, workers=8) == parallel_map(fn, items)

    def test_empty_input(self):
        assert parallel_map(lambda x: x, [], workers=4) == []

    def test_workers_clamped_to_item_count(self):
        # more workers than items must not error or reorder
        assert parallel_map(lambda x: -x, [5], workers=64) == [-5]

    @pytest.mark.parametrize("workers", [None, 4])
    def test_exceptions_propagate(self, workers):
        def boom(x):
            if x == 2:
                raise ValueError("item 2")
            return x

        with pytest.raises(ValueError, match="item 2"):
            parallel_map(boom, [0, 1, 2, 3], workers=workers)

    def test_generator_input_consumed_once(self):
        gen = (x for x in (1, 2, 3))
        assert parallel_map(lambda x: x * 2, gen, workers=2) == [2, 4, 6]

    @pytest.mark.parametrize("workers", [-1, -4])
    def test_negative_workers_rejected(self, workers):
        """workers=-4 must be a loud error, not a silent serial run."""
        calls = []

        def fn(x):
            calls.append(x)
            return x

        with pytest.raises(ConfigurationError, match="workers"):
            parallel_map(fn, [1, 2, 3], workers=workers)
        assert calls == []  # rejected before any work ran

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            parallel_map(lambda x: x, [1], backend="fiber")


class TestProcessBackend:
    """backend="process": picklable descriptors, serial-identical results."""

    def test_matches_serial_in_input_order(self):
        items = list(range(37))
        got = parallel_map(_square_mod, items, workers=4, backend="process")
        assert got == [_square_mod(x) for x in items]

    def test_actually_fans_out_to_other_processes(self):
        pids = set(
            parallel_map(_current_pid, range(16), workers=4,
                         backend="process")
        )
        # At least one item must have run outside the parent process.
        assert pids - {os.getpid()}

    def test_serial_fallback_skips_the_pool(self):
        # workers<=1 never spawns processes, so even unpicklable closures
        # work — the backend only constrains the genuinely parallel path.
        assert parallel_map(lambda x: x + 1, [1, 2], workers=1,
                            backend="process") == [2, 3]

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError, match="item 2"):
            parallel_map(_boom_on_two, [0, 1, 2, 3], workers=2,
                         backend="process")

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            parallel_map(_square_mod, [1], workers=-2, backend="process")


class TestPersistentPools:
    """Pools outlive parallel_map calls and are reused per (backend,
    workers) key; shutdown() tears them down explicitly."""

    def test_thread_pool_object_is_reused(self):
        from repro import parallel

        parallel.shutdown()
        parallel_map(_square_mod, range(8), workers=3)
        pool = parallel._POOLS.get(("thread", 3))
        assert pool is not None
        parallel_map(_square_mod, range(8), workers=3)
        assert parallel._POOLS.get(("thread", 3)) is pool
        assert parallel.shutdown() == 1
        assert parallel._POOLS == {}

    def test_process_workers_are_reused_across_calls(self):
        from repro import parallel

        parallel.shutdown()
        first = set(
            parallel_map(_current_pid, range(8), workers=2,
                         backend="process")
        )
        second = set(
            parallel_map(_current_pid, range(8), workers=2,
                         backend="process")
        )
        # Same pool, same worker processes: spawn-up paid once.
        assert first & second
        assert parallel.shutdown() == 1

    def test_distinct_worker_counts_get_distinct_pools(self):
        from repro import parallel

        parallel.shutdown()
        parallel_map(_square_mod, range(8), workers=2)
        parallel_map(_square_mod, range(8), workers=4)
        assert set(parallel._POOLS) == {("thread", 2), ("thread", 4)}
        assert parallel.shutdown() == 2

    def test_task_exception_leaves_the_pool_alive(self):
        from repro import parallel

        parallel.shutdown()
        with pytest.raises(ValueError, match="item 2"):
            parallel_map(_boom_on_two, [0, 1, 2, 3], workers=2)
        pool = parallel._POOLS.get(("thread", 2))
        assert pool is not None
        assert parallel_map(_square_mod, [5], workers=1) == [3]
        assert parallel_map(_boom_on_two, [0, 1], workers=2) == [0, 1]
        parallel.shutdown()

    def test_reused_pool_results_stay_serial_identical(self):
        from repro import parallel

        parallel.shutdown()
        items = list(range(41))
        serial = [_square_mod(x) for x in items]
        for backend in ("thread", "process"):
            for _ in range(3):
                got = parallel_map(
                    _square_mod, items, workers=3, backend=backend
                )
                assert got == serial
        parallel.shutdown()

    def test_get_pool_validates_arguments(self):
        from repro.parallel import get_pool

        with pytest.raises(ConfigurationError, match="backend"):
            get_pool("fiber", 2)
        with pytest.raises(ConfigurationError, match="workers"):
            get_pool("thread", 0)
