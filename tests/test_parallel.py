"""Unit tests pinning the repro.parallel.parallel_map contract."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.errors import ConfigurationError, TaskFailedError
from repro.parallel import parallel_map
from repro.resilience import RetryPolicy


def _square_mod(x):
    """Module-level so the process backend can pickle it."""
    return (x * x) % 11


def _current_pid(_):
    return os.getpid()


def _boom_on_two(x):
    if x == 2:
        raise ValueError("item 2")
    return x


def _die_on_three(x):
    """Kill the worker process outright (BrokenExecutor for the pool)."""
    if x == 3:
        os._exit(13)
    return x * 10


def _die_once_marker(args):
    """Kill the worker the first time item 3 is seen, via a marker file
    (the killed worker cannot remember having fired)."""
    x, scratch = args
    if x == 3:
        marker = os.path.join(scratch, "died-once")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return x * 10
        os.close(fd)
        os._exit(13)
    return x * 10


def _slow_item_two(x):
    if x == 2:
        time.sleep(0.8)
    return x + 1


def _flaky_square(args):
    """Fail item 2 the first N times, via marker files in scratch."""
    x, scratch, n_failures = args
    if x == 2:
        for n in range(n_failures):
            marker = os.path.join(scratch, f"flaky-{n}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            raise ValueError("transient failure")
    return _square_mod(x)


class TestParallelMap:
    def test_preserves_input_order(self):
        """Results come back in input order even when completion order
        is scrambled (later items finish first)."""
        import time

        def slow_for_small(x):
            time.sleep(0.02 if x < 3 else 0.0)
            return x * 10

        items = list(range(6))
        assert parallel_map(slow_for_small, items, workers=6) == [
            x * 10 for x in items
        ]

    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_serial_fallback_runs_in_caller_thread(self, workers):
        seen = []

        def fn(x):
            seen.append(threading.current_thread())
            return x + 1

        assert parallel_map(fn, [1, 2, 3], workers=workers) == [2, 3, 4]
        assert all(t is threading.main_thread() for t in seen)

    def test_parallel_equals_serial(self):
        items = list(range(37))
        fn = lambda x: (x * x) % 11  # noqa: E731
        assert parallel_map(fn, items, workers=8) == parallel_map(fn, items)

    def test_empty_input(self):
        assert parallel_map(lambda x: x, [], workers=4) == []

    def test_workers_clamped_to_item_count(self):
        # more workers than items must not error or reorder
        assert parallel_map(lambda x: -x, [5], workers=64) == [-5]

    @pytest.mark.parametrize("workers", [None, 4])
    def test_exceptions_propagate(self, workers):
        def boom(x):
            if x == 2:
                raise ValueError("item 2")
            return x

        with pytest.raises(ValueError, match="item 2"):
            parallel_map(boom, [0, 1, 2, 3], workers=workers)

    def test_generator_input_consumed_once(self):
        gen = (x for x in (1, 2, 3))
        assert parallel_map(lambda x: x * 2, gen, workers=2) == [2, 4, 6]

    @pytest.mark.parametrize("workers", [-1, -4])
    def test_negative_workers_rejected(self, workers):
        """workers=-4 must be a loud error, not a silent serial run."""
        calls = []

        def fn(x):
            calls.append(x)
            return x

        with pytest.raises(ConfigurationError, match="workers"):
            parallel_map(fn, [1, 2, 3], workers=workers)
        assert calls == []  # rejected before any work ran

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            parallel_map(lambda x: x, [1], backend="fiber")


class TestProcessBackend:
    """backend="process": picklable descriptors, serial-identical results."""

    def test_matches_serial_in_input_order(self):
        items = list(range(37))
        got = parallel_map(_square_mod, items, workers=4, backend="process")
        assert got == [_square_mod(x) for x in items]

    def test_actually_fans_out_to_other_processes(self):
        pids = set(
            parallel_map(_current_pid, range(16), workers=4,
                         backend="process")
        )
        # At least one item must have run outside the parent process.
        assert pids - {os.getpid()}

    def test_serial_fallback_skips_the_pool(self):
        # workers<=1 never spawns processes, so even unpicklable closures
        # work — the backend only constrains the genuinely parallel path.
        assert parallel_map(lambda x: x + 1, [1, 2], workers=1,
                            backend="process") == [2, 3]

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError, match="item 2"):
            parallel_map(_boom_on_two, [0, 1, 2, 3], workers=2,
                         backend="process")

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            parallel_map(_square_mod, [1], workers=-2, backend="process")


class TestPersistentPools:
    """Pools outlive parallel_map calls and are reused per (backend,
    workers) key; shutdown() tears them down explicitly."""

    def test_thread_pool_object_is_reused(self):
        from repro import parallel

        parallel.shutdown()
        parallel_map(_square_mod, range(8), workers=3)
        pool = parallel._POOLS.get(("thread", 3))
        assert pool is not None
        parallel_map(_square_mod, range(8), workers=3)
        assert parallel._POOLS.get(("thread", 3)) is pool
        assert parallel.shutdown() == 1
        assert parallel._POOLS == {}

    def test_process_workers_are_reused_across_calls(self):
        from repro import parallel

        parallel.shutdown()
        first = set(
            parallel_map(_current_pid, range(8), workers=2,
                         backend="process")
        )
        second = set(
            parallel_map(_current_pid, range(8), workers=2,
                         backend="process")
        )
        # Same pool, same worker processes: spawn-up paid once.
        assert first & second
        assert parallel.shutdown() == 1

    def test_distinct_worker_counts_get_distinct_pools(self):
        from repro import parallel

        parallel.shutdown()
        parallel_map(_square_mod, range(8), workers=2)
        parallel_map(_square_mod, range(8), workers=4)
        assert set(parallel._POOLS) == {("thread", 2), ("thread", 4)}
        assert parallel.shutdown() == 2

    def test_task_exception_leaves_the_pool_alive(self):
        from repro import parallel

        parallel.shutdown()
        with pytest.raises(ValueError, match="item 2"):
            parallel_map(_boom_on_two, [0, 1, 2, 3], workers=2)
        pool = parallel._POOLS.get(("thread", 2))
        assert pool is not None
        assert parallel_map(_square_mod, [5], workers=1) == [3]
        assert parallel_map(_boom_on_two, [0, 1], workers=2) == [0, 1]
        parallel.shutdown()

    def test_reused_pool_results_stay_serial_identical(self):
        from repro import parallel

        parallel.shutdown()
        items = list(range(41))
        serial = [_square_mod(x) for x in items]
        for backend in ("thread", "process"):
            for _ in range(3):
                got = parallel_map(
                    _square_mod, items, workers=3, backend=backend
                )
                assert got == serial
        parallel.shutdown()

    def test_get_pool_validates_arguments(self):
        from repro.parallel import get_pool

        with pytest.raises(ConfigurationError, match="backend"):
            get_pool("fiber", 2)
        with pytest.raises(ConfigurationError, match="workers"):
            get_pool("thread", 0)

    def test_broken_pool_is_evicted_and_rebuilt(self, tmp_path):
        """A worker death mid-map (no retry armed) surfaces the error,
        evicts the carcass, and the next call gets a healthy pool."""
        from concurrent.futures import BrokenExecutor

        from repro import parallel

        parallel.shutdown()
        with pytest.raises(BrokenExecutor):
            parallel_map(_die_on_three, range(8), workers=2,
                         backend="process")
        # The dead pool must be gone, not poisoning the registry.
        assert ("process", 2) not in parallel._POOLS
        # And a fresh call simply works.
        got = parallel_map(_square_mod, range(8), workers=2,
                           backend="process")
        assert got == [_square_mod(x) for x in range(8)]
        parallel.shutdown()


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.5,
                             backoff_factor=2.0)
        assert policy.delays() == (0.5, 1.0, 2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)

    def test_serial_retry_recovers_and_records_backoff(self, tmp_path):
        from repro.faults import RecordingSleep

        sleep = RecordingSleep()
        got = parallel_map(
            _flaky_square,
            [(x, str(tmp_path), 1) for x in range(4)],
            retry=RetryPolicy(max_attempts=3, backoff_s=0.25),
            sleep=sleep,
        )
        assert got == [_square_mod(x) for x in range(4)]
        assert sleep.calls == [0.25]  # one failure, one backoff

    def test_serial_retry_exhaustion_raises_task_failed(self, tmp_path):
        with pytest.raises(TaskFailedError) as info:
            parallel_map(
                _flaky_square,
                [(x, str(tmp_path), 99) for x in range(4)],
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            )
        assert info.value.attempts == 2
        assert isinstance(info.value.__cause__, ValueError)

    def test_pooled_retry_recovers_flaky_item(self, tmp_path):
        from repro import parallel
        from repro.faults import RecordingSleep

        parallel.shutdown()
        sleep = RecordingSleep()
        got = parallel_map(
            _flaky_square,
            [(x, str(tmp_path), 2) for x in range(6)],
            workers=3,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.125),
            sleep=sleep,
        )
        assert got == [_square_mod(x) for x in range(6)]
        assert sleep.calls == [0.125, 0.25]  # exponential, deterministic
        parallel.shutdown()

    def test_pooled_retry_exhaustion_raises_task_failed(self, tmp_path):
        from repro import parallel

        parallel.shutdown()
        with pytest.raises(TaskFailedError) as info:
            parallel_map(
                _flaky_square,
                [(x, str(tmp_path), 99) for x in range(6)],
                workers=3,
                retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
            )
        assert info.value.attempts == 3
        parallel.shutdown()

    def test_per_task_timeout_raises_task_failed(self):
        from repro import parallel

        parallel.shutdown()
        with pytest.raises(TaskFailedError) as info:
            parallel_map(
                _slow_item_two, range(4), workers=4,
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0,
                                  timeout_s=0.1),
            )
        assert isinstance(info.value.__cause__, TimeoutError)
        parallel.shutdown(wait=False)

    def test_worker_kill_keeps_completed_results(self, tmp_path):
        """BrokenExecutor recovery: the pool is rebuilt and only the
        unfinished items re-run; results stay serial-identical."""
        from repro import parallel

        parallel.shutdown()
        items = [(x, str(tmp_path)) for x in range(10)]
        got = parallel_map(
            _die_once_marker, items, workers=2, backend="process",
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        assert got == [x * 10 for x in range(10)]
        parallel.shutdown()
