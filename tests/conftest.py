"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import REFERENCE_DDC


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "faults: chaos suite — deterministic fault injection against the "
        "execution layer (run with `pytest -m faults`)",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(0xDDC)


@pytest.fixture
def ref_config():
    """The paper's reference DDC configuration."""
    return REFERENCE_DDC
