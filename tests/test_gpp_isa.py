"""Tests for the GPP ISA, assembler and CPU simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.archs.gpp import CPU, assemble
from repro.archs.gpp.isa import CYCLES, Mnemonic
from repro.errors import AssemblyError, ExecutionError


def run(src: str, max_instructions: int = 100_000) -> CPU:
    cpu = CPU(assemble(src))
    cpu.run(max_instructions)
    return cpu


class TestAssembler:
    def test_mov_immediate(self):
        p = assemble("mov r0, #42\nhalt")
        assert p.instructions[0].mnemonic is Mnemonic.MOV
        assert p.instructions[0].op2.value == 42

    def test_labels(self):
        p = assemble("start:\n  b start")
        assert p.labels["start"] == 0
        assert p.instructions[0].target == 0

    def test_label_same_line(self):
        p = assemble("loop: add r0, r0, #1\n b loop")
        assert p.labels["loop"] == 0

    def test_comments_stripped(self):
        p = assemble("mov r0, #1 ; comment\n@ whole line\nhalt")
        assert len(p) == 2

    def test_regions(self):
        p = assemble(".region a\nmov r0, #1\n.region b\nhalt")
        assert p.region_of(0) == "a"
        assert p.region_of(1) == "b"

    def test_region_default(self):
        p = assemble("halt")
        assert p.region_of(0) == "default"

    def test_memory_forms(self):
        p = assemble(
            "ldr r0, [r1]\nldr r0, [r1, #4]\nldr r0, [r1, r2]\n"
            "ldr r0, [r1], #1\nhalt"
        )
        assert not p.instructions[0].post_inc
        assert p.instructions[1].op2.value == 4
        assert p.instructions[2].op2.is_reg
        assert p.instructions[3].post_inc

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r0")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("b nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a:\na:\nhalt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("mov r16, #1")

    def test_bad_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r0, r1")

    def test_hex_immediates(self):
        p = assemble("mov r0, #0x10\nhalt")
        assert p.instructions[0].op2.value == 16

    def test_mla_form(self):
        p = assemble("mla r0, r1, r2, r3\nhalt")
        i = p.instructions[0]
        assert (i.rd, i.rn, i.op2.value, i.ra) == (0, 1, 2, 3)


class TestCPUArithmetic:
    def test_mov_add_sub(self):
        cpu = run("mov r0, #5\nadd r1, r0, #3\nsub r2, r1, r0\nhalt")
        assert cpu.regs[1] == 8 and cpu.regs[2] == 3

    def test_mvn(self):
        cpu = run("mov r0, #0\nmvn r1, r0\nhalt")
        assert cpu.regs[1] == -1

    def test_rsb(self):
        cpu = run("mov r0, #3\nrsb r1, r0, #10\nhalt")
        assert cpu.regs[1] == 7

    def test_mul_mla(self):
        cpu = run("mov r0, #6\nmov r1, #7\nmul r2, r0, r1\n"
                  "mla r3, r0, r1, r2\nhalt")
        assert cpu.regs[2] == 42 and cpu.regs[3] == 84

    def test_logic_ops(self):
        cpu = run("mov r0, #12\nand r1, r0, #10\norr r2, r0, #3\n"
                  "eor r3, r0, #5\nhalt")
        assert cpu.regs[1] == 8 and cpu.regs[2] == 15 and cpu.regs[3] == 9

    def test_shifts(self):
        cpu = run("mov r0, #-8\nasr r1, r0, #1\nlsl r2, r0, #1\n"
                  "mov r3, #8\nlsr r4, r3, #2\nhalt")
        assert cpu.regs[1] == -4 and cpu.regs[2] == -16 and cpu.regs[4] == 2

    def test_lsr_is_logical(self):
        cpu = run("mov r0, #-1\nlsr r1, r0, #28\nhalt")
        assert cpu.regs[1] == 15

    def test_32bit_wraparound(self):
        cpu = run(f"mov r0, #{2**31 - 1}\nadd r1, r0, #1\nhalt")
        assert cpu.regs[1] == -(2**31)

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_add_matches_c_semantics(self, a, b):
        cpu = run(f"mov r0, #{a}\nadd r1, r0, #{b}\nhalt")
        want = (a + b) & 0xFFFFFFFF
        want = want - 2**32 if want >= 2**31 else want
        assert cpu.regs[1] == want


class TestCPUControlFlow:
    def test_loop_counts(self):
        cpu = run("""
            mov r0, #0
            mov r1, #10
        loop:
            add r0, r0, #1
            subs r1, r1, #1
            bne loop
            halt
        """)
        assert cpu.regs[0] == 10

    def test_cmp_branches(self):
        cpu = run("""
            mov r0, #5
            cmp r0, #5
            beq equal
            mov r1, #0
            halt
        equal:
            mov r1, #1
            halt
        """)
        assert cpu.regs[1] == 1

    def test_signed_compare(self):
        cpu = run("""
            mov r0, #-3
            cmp r0, #2
            blt less
            mov r1, #0
            halt
        less:
            mov r1, #1
            halt
        """)
        assert cpu.regs[1] == 1

    def test_bge_ble_bgt(self):
        cpu = run("""
            mov r2, #0
            mov r0, #4
            cmp r0, #4
            bge a
            halt
        a:  add r2, r2, #1
            cmp r0, #4
            ble b
            halt
        b:  add r2, r2, #1
            cmp r0, #3
            bgt c
            halt
        c:  add r2, r2, #1
            halt
        """)
        assert cpu.regs[2] == 3

    def test_runaway_detected(self):
        cpu = CPU(assemble("loop: b loop"))
        with pytest.raises(ExecutionError):
            cpu.run(max_instructions=100)

    def test_pc_out_of_range(self):
        cpu = CPU(assemble("mov r0, #1"))  # no halt
        with pytest.raises(ExecutionError):
            cpu.run()

    def test_step_after_halt(self):
        cpu = run("halt")
        with pytest.raises(ExecutionError):
            cpu.step()


class TestCPUMemory:
    def test_store_load(self):
        cpu = run("""
            mov r0, #123
            mov r1, #100
            str r0, [r1]
            ldr r2, [r1]
            halt
        """)
        assert cpu.regs[2] == 123

    def test_offset_addressing(self):
        cpu = run("""
            mov r0, #7
            mov r1, #200
            str r0, [r1, #5]
            ldr r2, [r1, #5]
            halt
        """)
        assert cpu.regs[2] == 7
        assert cpu.read_memory(205) == 7

    def test_register_offset(self):
        cpu = CPU(assemble("ldr r0, [r1, r2]\nhalt"))
        cpu.load_memory(30, [99])
        cpu.regs[1] = 20
        cpu.regs[2] = 10
        cpu.run()
        assert cpu.regs[0] == 99

    def test_post_increment(self):
        cpu = CPU(assemble("ldr r0, [r1], #1\nldr r2, [r1], #1\nhalt"))
        cpu.load_memory(50, [5, 6])
        cpu.regs[1] = 50
        cpu.run()
        assert cpu.regs[0] == 5 and cpu.regs[2] == 6 and cpu.regs[1] == 52

    def test_unwritten_memory_is_zero(self):
        cpu = run("mov r1, #999\nldr r0, [r1]\nhalt")
        assert cpu.regs[0] == 0


class TestCycleAccounting:
    def test_data_op_cost(self):
        cpu = run("mov r0, #1\nhalt")
        assert cpu.stats.cycles == CYCLES["data"] + CYCLES["halt"]

    def test_mul_costs_more(self):
        c1 = run("mov r0, #2\nmul r1, r0, r0\nhalt").stats.cycles
        c2 = run("mov r0, #2\nadd r1, r0, r0\nhalt").stats.cycles
        assert c1 - c2 == CYCLES["mul"] - CYCLES["data"]

    def test_branch_taken_vs_not(self):
        taken = run("mov r0, #0\ncmp r0, #0\nbeq t\nt: halt").stats.cycles
        not_taken = run("mov r0, #1\ncmp r0, #0\nbeq t\nt: halt").stats.cycles
        assert taken - not_taken == CYCLES["branch_taken"] - CYCLES["branch_not_taken"]

    def test_region_attribution(self):
        cpu = run(".region a\nmov r0, #1\n.region b\nmov r1, #2\nhalt")
        assert cpu.stats.region_cycles["a"] == CYCLES["data"]
        assert cpu.stats.region_cycles["b"] == CYCLES["data"] + CYCLES["halt"]

    def test_cpi_bounds(self):
        cpu = run("""
            mov r1, #100
        loop:
            subs r1, r1, #1
            bne loop
            halt
        """)
        assert 1.0 <= cpu.stats.cpi <= 3.0
