"""End-to-end tests of the reference DDC (gold + bit-true)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DDC, FixedDDC, REFERENCE_DDC, DDCConfig
from repro.dsp.signals import drm_like_ofdm, quantize_to_adc, tone
from repro.errors import ConfigurationError

FS = REFERENCE_DDC.input_rate_hz
FC = REFERENCE_DDC.nco_frequency_hz
D = REFERENCE_DDC.total_decimation


class TestDDCStructure:
    def test_total_decimation(self):
        assert DDC().total_decimation == 2688

    def test_output_rate(self):
        assert REFERENCE_DDC.output_rate_hz == pytest.approx(24_000.0)

    def test_output_length(self):
        ddc = DDC()
        out = ddc.process(np.zeros(D * 4))
        assert len(out.baseband) == 4

    def test_intermediates(self):
        ddc = DDC()
        out = ddc.process(np.zeros(D * 2), keep_intermediates=True)
        assert out.cic2_out is not None and len(out.cic2_out) == D * 2 // 16
        assert out.cic5_out is not None and len(out.cic5_out) == D * 2 // (16 * 21)

    def test_iq_properties(self):
        out = DDC().process(np.zeros(D))
        assert out.i.shape == out.q.shape == out.baseband.shape

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            DDC().process(np.zeros((2, 2)))

    def test_reset_reproducibility(self, rng):
        ddc = DDC()
        x = rng.normal(size=D * 3)
        a = ddc.process(x).baseband
        ddc.reset()
        b = ddc.process(x).baseband
        np.testing.assert_allclose(a, b)

    def test_streaming_equals_one_shot(self, rng):
        x = rng.normal(size=D * 4)
        whole = DDC().process(x).baseband
        ddc = DDC()
        parts = [ddc.process(x[: D + 13]).baseband,
                 ddc.process(x[D + 13 :]).baseband]
        np.testing.assert_allclose(np.concatenate(parts), whole, atol=1e-12)


class TestDDCSelectivity:
    def test_in_band_tone_passes(self):
        """A tone at carrier + 5 kHz lands at 5 kHz in the 24 kHz output."""
        n = D * 64
        x = tone(n, FC + 5_000.0, FS, amplitude=0.5)
        out = DDC().process(x).baseband
        settled = out[16:]
        spec = np.abs(np.fft.fft(settled * np.hanning(len(settled))))
        freqs = np.fft.fftfreq(len(settled), 1 / 24_000.0)
        peak_freq = freqs[np.argmax(spec)]
        assert peak_freq == pytest.approx(5_000.0, abs=24_000.0 / len(settled) * 2)

    def test_out_of_band_tone_rejected(self):
        """A tone 2 MHz from the carrier must be strongly attenuated."""
        n = D * 64
        x_in = tone(n, FC + 5_000.0, FS, amplitude=0.5)
        x_out = tone(n, FC + 2_000_000.0, FS, amplitude=0.5)
        pass_p = np.mean(np.abs(DDC().process(x_in).baseband[16:]) ** 2)
        rej_p = np.mean(np.abs(DDC().process(x_out).baseband[16:]) ** 2)
        assert 10 * np.log10(pass_p / rej_p) > 50

    def test_gain_near_unity_in_passband(self):
        n = D * 64
        x = tone(n, FC + 3_000.0, FS, amplitude=0.5)
        out = DDC().process(x).baseband[16:]
        # Real tone of amplitude a -> complex baseband amplitude a/2.
        amp = np.abs(out).mean()
        assert amp == pytest.approx(0.25, rel=0.1)

    def test_drm_signal_survives(self):
        """The DRM-like OFDM payload passes with sensible power."""
        n = D * 32
        x = drm_like_ofdm(n, FS, FC, seed=42)
        out = DDC().process(x).baseband[8:]
        assert np.mean(np.abs(out) ** 2) > 0.1 * np.mean(x**2)


class TestFixedDDC:
    def test_output_is_integer_pair(self):
        f = FixedDDC()
        x = quantize_to_adc(np.zeros(D), 12)
        i, q = f.process(x)
        assert i.dtype == np.int64 and q.dtype == np.int64

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            FixedDDC().process(np.zeros(10))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FixedDDC().process(np.array([5000]))

    def test_matches_gold_model_snr(self):
        """Fixed-point output tracks the gold model with >28 dB fidelity.

        The 12-bit chain truncates at four points (mixer, CIC2, CIC5, FIR);
        ~30 dB against the float gold model is the expected budget.
        """
        n = D * 48
        xf = tone(n, FC + 5_000.0, FS, amplitude=0.8)
        x_raw = quantize_to_adc(xf, 12)

        gold = DDC(lut_addr_bits=10)
        fixed = FixedDDC(lut_addr_bits=10)
        want = gold.process(x_raw.astype(float) * 2.0**-11).baseband
        got = fixed.process_to_float(x_raw)

        # Skip the filter transient.
        want, got = want[16:], got[16:]
        err = got - want
        p_sig = np.mean(np.abs(want) ** 2)
        p_err = np.mean(np.abs(err) ** 2)
        assert 10 * np.log10(p_sig / p_err) > 28

    def test_streaming_equals_one_shot(self):
        n = D * 6
        x = quantize_to_adc(
            tone(n, FC + 4_000.0, FS, amplitude=0.7), 12
        )
        whole_i, whole_q = FixedDDC().process(x)
        f = FixedDDC()
        i1, q1 = f.process(x[: D * 2 + 7])
        i2, q2 = f.process(x[D * 2 + 7 :])
        np.testing.assert_array_equal(np.concatenate([i1, i2]), whole_i)
        np.testing.assert_array_equal(np.concatenate([q1, q2]), whole_q)

    def test_dc_input_settles(self):
        f = FixedDDC(DDCConfig(nco_frequency_hz=0.0))
        x = np.full(D * 16, 1024, dtype=np.int64)
        i, q = f.process(x)
        assert np.abs(i[-1]) > 0  # DC passes through the whole chain

    def test_reset(self):
        f = FixedDDC()
        x = quantize_to_adc(tone(D * 2, FC, FS, 0.5), 12)
        a = f.process(x)
        f.reset()
        b = f.process(x)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestAlternateConfigs:
    def test_no_cic2_chain(self):
        """A GC4016-style chain (no CIC2) still works end to end."""
        cfg = DDCConfig(
            input_rate_hz=69_333_000.0,
            cic2_decimation=1,
            cic2_order=0,
            cic5_decimation=64,
            fir_decimation=4,
            fir_taps=63,
            nco_frequency_hz=10e6,
        )
        ddc = DDC(cfg)
        x = np.random.default_rng(0).normal(size=cfg.total_decimation * 8)
        out = ddc.process(x)
        assert len(out.baseband) == 8

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            DDCConfig(cic2_decimation=0)

    def test_nyquist_violation_rejected(self):
        with pytest.raises(ConfigurationError):
            DDCConfig(nco_frequency_hz=64e6)
