"""The paper-artifacts golden contract (what CI's paper-artifacts job runs).

``tests/goldens/`` pins the rendered text of every regenerated table and
the Section 7 summary; any model change that moves a published number
must update the golden in the same PR, and CI diffs them on every push.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.paper.__main__ import (
    FIGURES,
    TABLES,
    check_goldens,
    main,
    render_tables,
    write_artifacts,
)

GOLDENS = Path(__file__).parent / "goldens"


@pytest.fixture(scope="module")
def rendered() -> dict[str, str]:
    """Regenerate the tables once for the whole module."""
    return render_tables()


class TestCommittedGoldens:
    def test_goldens_match_regenerated_tables(self, rendered):
        """The committed goldens are exactly what the models produce."""
        for name, text in rendered.items():
            golden = (GOLDENS / f"{name}.txt").read_text()
            assert golden == text, f"{name} drifted from tests/goldens/"

    def test_every_table_has_a_golden_and_vice_versa(self, rendered):
        on_disk = {p.stem for p in GOLDENS.glob("*.txt")}
        assert on_disk == set(rendered) == set(TABLES)


class TestCheckGoldens:
    def _write(self, tmp_path: Path, rendered: dict[str, str]) -> Path:
        for name, text in rendered.items():
            (tmp_path / f"{name}.txt").write_text(text)
        return tmp_path

    def test_passes_on_faithful_goldens(self, tmp_path, rendered):
        assert check_goldens(self._write(tmp_path, rendered)) == []

    def test_detects_drift_with_a_diff(self, tmp_path, rendered):
        golden_dir = self._write(tmp_path, rendered)
        (golden_dir / "table7.txt").write_text(
            rendered["table7"].replace("Montium", "Pentium")
        )
        failures = check_goldens(golden_dir)
        assert len(failures) == 1
        assert "table7" in failures[0] and "Pentium" in failures[0]

    def test_detects_missing_and_stray_goldens(self, tmp_path, rendered):
        golden_dir = self._write(tmp_path, rendered)
        (golden_dir / "table1.txt").unlink()
        (golden_dir / "table99.txt").write_text("impostor\n")
        failures = check_goldens(golden_dir)
        assert any("table1" in f and "missing" in f for f in failures)
        assert any("table99" in f for f in failures)


class TestArtifactsCLI:
    def test_output_dir_writes_tables_and_figures(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["--output-dir", str(out)]) == 0
        names = {p.stem for p in out.glob("*.txt")}
        assert names == set(TABLES) | set(FIGURES)
        # write_artifacts is what the CLI ran; spot-check the content.
        assert "Montium" in (out / "table7.txt").read_text()

    def test_check_mode_exit_codes(self, tmp_path, capsys, rendered):
        assert main(["--check", str(GOLDENS)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad-goldens"
        bad.mkdir()
        assert main(["--check", str(bad)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_write_artifacts_returns_paths(self, tmp_path):
        written = write_artifacts(tmp_path / "x")
        assert all(p.is_file() for p in written)
        assert len(written) == len(TABLES) + len(FIGURES)
