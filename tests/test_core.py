"""Tests for the core API: spec, planner, evaluator."""

from __future__ import annotations

import pytest

from repro import REFERENCE_DDC
from repro.core import (
    DDCEvaluator,
    DDCSpec,
    enumerate_plans,
    plan_decimation,
)
from repro.errors import ConfigurationError


class TestDDCSpec:
    def test_reference_total(self):
        assert DDCSpec().total_decimation == 2688

    def test_non_integer_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            DDCSpec(input_rate_hz=1e6, output_rate_hz=300e3)

    def test_carrier_validation(self):
        with pytest.raises(ConfigurationError):
            DDCSpec(carrier_hz=40e6)

    def test_bandwidth_validation(self):
        with pytest.raises(ConfigurationError):
            DDCSpec(bandwidth_hz=100e3)  # > output rate

    def test_to_config_reference_plan(self):
        cfg = DDCSpec().to_config(16, 21, 8)
        assert cfg.total_decimation == 2688
        assert cfg.cic2_order == 2

    def test_to_config_wrong_product(self):
        with pytest.raises(ConfigurationError):
            DDCSpec().to_config(16, 21, 4)

    def test_to_config_no_cic2(self):
        cfg = DDCSpec().to_config(1, 336, 8)
        assert cfg.cic2_order == 0


class TestPlanner:
    def test_reference_plan_is_valid(self):
        plans = enumerate_plans(DDCSpec())
        assert (16, 21, 8) in [p.as_tuple() for p in plans]

    def test_plans_sorted_by_cost(self):
        plans = enumerate_plans(DDCSpec())
        costs = [p.cost for p in plans]
        assert costs == sorted(costs)

    def test_all_plans_multiply_out(self):
        for p in enumerate_plans(DDCSpec()):
            assert p.total == 2688

    def test_process_backend_identical_to_serial(self):
        """The split evaluator is a picklable descriptor: the same sweep
        fans out over a process pool with identical results."""
        spec = DDCSpec()
        serial = enumerate_plans(spec)
        procs = enumerate_plans(spec, workers=2, backend="process")
        assert procs == serial

    def test_rejection_floor_respected(self):
        for p in enumerate_plans(DDCSpec(), min_rejection_db=60.0):
            assert p.alias_rejection_db >= 60.0

    def test_best_plan(self):
        best = plan_decimation(DDCSpec())
        assert best.total == 2688
        assert best.cost > 0

    def test_impossible_spec_raises(self):
        # Prime total decimation with an out-of-range FIR factor.
        spec = DDCSpec(input_rate_hz=24_000.0 * 2687, output_rate_hz=24_000.0)
        with pytest.raises(ConfigurationError):
            plan_decimation(spec)  # 2687 is prime: no valid split

    def test_higher_rejection_never_cheaper(self):
        loose = plan_decimation(DDCSpec(), min_rejection_db=40.0)
        tight = plan_decimation(DDCSpec(), min_rejection_db=70.0)
        assert tight.cost >= loose.cost * 0.999


class TestEvaluator:
    @pytest.fixture(scope="class")
    def result(self):
        return DDCEvaluator().evaluate(REFERENCE_DDC)

    def test_six_rows(self, result):
        # 5 architectures, Cyclone counted twice (I and II) = 6 rows.
        assert len(result.reports) == 6

    def test_static_winner_is_asic(self, result):
        """Section 7.1: the customised low-power DDC wins the static case."""
        assert result.static_winner == "Customised Low Power DDC"

    def test_reconfigurable_winner_is_cyclone2(self, result):
        """Section 7.2: the Cyclone II wins the reconfigurable case."""
        assert result.reconfigurable_winner == "Altera Cyclone II"

    def test_arm_not_feasible(self, result):
        arm = next(r for r in result.reports if r.architecture == "ARM922T")
        assert not arm.feasible

    def test_montium_scaled_power(self, result):
        row = next(r for r in result.comparison.rows
                   if r.architecture == "Montium TP")
        assert row.power_scaled_mw == pytest.approx(38.7, abs=0.1)

    def test_scaled_ranking_matches_paper(self, result):
        """At 0.13 um: low-power ASIC < GC4016 < Montium < Cyclone II <
        Cyclone I < ARM (Table 7 + conclusion)."""
        scaled = {r.architecture: r.power_scaled_mw
                  for r in result.comparison.rows}
        assert (
            scaled["Customised Low Power DDC"]
            < scaled["TI GC4016"]
            < scaled["Montium TP"]
            < scaled["Altera Cyclone II"]
            < scaled["Altera Cyclone I"]
            < scaled["ARM922T"]
        )

    def test_render(self, result):
        text = result.render()
        assert "Montium" in text and "GC4016" in text

    def test_scenario_analysis_regions(self):
        ev = DDCEvaluator()
        ev.evaluate(REFERENCE_DDC)
        analysis = ev.scenario_analysis(REFERENCE_DDC)
        regions = analysis.winning_regions(steps=101)
        # High duty cycle -> the ASIC; low duty cycle -> a reconfigurable.
        assert regions[-1][2] == "Customised Low Power DDC"
        assert regions[0][2] != "Customised Low Power DDC"

    def test_empty_models_rejected(self):
        with pytest.raises(ConfigurationError):
            DDCEvaluator([])


class TestPlannerCostOnlyPath:
    """The cost pass is struct-of-arrays: no reports, identical costs."""

    def test_costs_equal_the_report_power(self):
        from repro.archs.asic.lowpower import LowPowerDDCModel

        spec = DDCSpec()
        model = LowPowerDDCModel()
        for plan in enumerate_plans(spec)[:5]:
            config = spec.to_config(
                plan.cic2, plan.cic5, plan.fir, fir_taps=125
            )
            assert plan.cost == model.implement(config).power_w

    def test_no_reports_materialised_on_the_cost_pass(self, monkeypatch):
        from repro.archs.asic import lowpower

        def boom(*args, **kwargs):
            raise AssertionError(
                "the planner cost pass must not build reports"
            )

        monkeypatch.setattr(
            lowpower.LowPowerDDCModel, "implement_batch", boom
        )
        monkeypatch.setattr(lowpower.LowPowerDDCModel, "_report", boom)
        plans = enumerate_plans(DDCSpec())
        assert (16, 21, 8) in [p.as_tuple() for p in plans]
