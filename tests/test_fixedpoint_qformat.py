"""Tests for repro.fixedpoint.qformat."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import QFormat


class TestQFormatConstruction:
    def test_basic(self):
        q = QFormat(12, 11)
        assert q.width == 12
        assert q.frac == 11

    def test_min_max_raw(self):
        q = QFormat(12, 11)
        assert q.min_raw == -2048
        assert q.max_raw == 2047

    def test_scale(self):
        assert QFormat(16, 15).scale == 2.0**-15

    def test_min_max_value(self):
        q = QFormat(8, 7)
        assert q.min_value == -1.0
        assert q.max_value == pytest.approx(1.0 - 2**-7)

    def test_negative_frac_allowed(self):
        q = QFormat(8, -2)
        assert q.max_value == 127 * 4.0

    def test_frac_beyond_width_allowed(self):
        q = QFormat(4, 8)
        assert q.max_value == 7 * 2.0**-8

    def test_width_zero_rejected(self):
        with pytest.raises(FixedPointError):
            QFormat(0, 0)

    def test_width_too_large_rejected(self):
        with pytest.raises(FixedPointError):
            QFormat(65, 0)

    def test_non_int_rejected(self):
        with pytest.raises(FixedPointError):
            QFormat(12.0, 11)  # type: ignore[arg-type]

    def test_str(self):
        assert str(QFormat(12, 11)) == "Q12.11"


class TestQFormatDerivation:
    def test_contains_raw(self):
        q = QFormat(4, 0)
        assert q.contains_raw(7)
        assert q.contains_raw(-8)
        assert not q.contains_raw(8)
        assert not q.contains_raw(-9)

    def test_grow(self):
        q = QFormat(12, 11).grow(int_bits=2, frac_bits=3)
        assert q.width == 17
        assert q.frac == 14

    def test_grow_negative_rejected(self):
        with pytest.raises(FixedPointError):
            QFormat(12, 11).grow(int_bits=-1)

    def test_for_product(self):
        p = QFormat(12, 11).for_product(QFormat(12, 11))
        assert p.width == 24
        assert p.frac == 22

    def test_for_sum_single(self):
        q = QFormat(24, 22)
        assert q.for_sum(1) == q

    def test_for_sum_124_terms_gives_31_bits(self):
        # The paper's FIR: 24-bit products, 124 taps -> 31-bit accumulator.
        q = QFormat(24, 22).for_sum(124)
        assert q.width == 31

    def test_for_sum_invalid(self):
        with pytest.raises(FixedPointError):
            QFormat(8, 0).for_sum(0)

    @given(st.integers(1, 64), st.integers(-8, 64))
    def test_range_is_symmetric_ish(self, width, frac):
        q = QFormat(width, frac)
        assert q.min_raw == -q.max_raw - 1
        assert q.contains_raw(0)
