"""Tests for the compiled hot-kernel tier (``repro.kernels``).

Every fast tier must be bit-identical to its python oracle — outputs
*and* carried state — under arbitrary block splits of the input stream.
The Hypothesis suites here are that pin.  The dispatch layer, the
``REPRO_KERNELS`` environment variable, the numba-absent degradation and
the generated ``Simulator.step`` loop are covered alongside.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.cic import FixedCICDecimator
from repro.dsp.ddc import FixedDDC
from repro.dsp.fir import FixedPolyphaseDecimator
from repro.dsp.nco import NCO, NCOMode
from repro.errors import ConfigurationError
from repro.kernels import dispatch, jit
from repro.simkernel import ClockDomain, Component, Simulator
from repro.simkernel.trace import WaveTrace

HAVE_NUMBA = jit.HAVE_NUMBA

#: The non-python tiers available in this environment.
FAST_ENGINES = ("fused", "jit") if HAVE_NUMBA else ("fused",)


def split_blocks(x: np.ndarray, cuts: list[int]) -> list[np.ndarray]:
    """Split ``x`` at the given fractional cut points (may create empties)."""
    idx = sorted({int(c * len(x)) for c in cuts})
    return np.split(x, idx)


# ------------------------------------------------------------------ dispatch
class TestDispatch:
    def test_registered_tiers(self):
        for prim in ("nco", "cic", "fir", "fixed_ddc", "sim_step"):
            tiers = dispatch.registered(prim)
            assert "python" in tiers
            assert "fused" in tiers

    def test_explicit_engine_wins(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "python")
        assert dispatch.resolve("cic", "fused") == "fused"

    def test_env_single_engine(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "python")
        assert dispatch.resolve("cic") == "python"
        assert dispatch.resolve("fir") == "python"

    def test_env_per_primitive_override(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "python,cic=fused")
        assert dispatch.resolve("cic") == "fused"
        assert dispatch.resolve("fir") == "python"

    def test_env_default_auto(self, monkeypatch):
        monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
        expected = "jit" if HAVE_NUMBA else "fused"
        assert dispatch.resolve("cic") == expected

    def test_env_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "turbo")
        with pytest.raises(ConfigurationError):
            dispatch.resolve("cic")

    def test_unknown_explicit_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            dispatch.resolve("cic", "turbo")

    def test_fused_degrades_to_python_when_unregistered(self):
        assert dispatch.resolve("no_such_primitive", "fused") == "python"

    def test_kernel_lookup_unregistered(self):
        with pytest.raises(ConfigurationError):
            dispatch.kernel("cic", "python")

    def test_env_var_reaches_process_call(self, monkeypatch, rng):
        # REPRO_KERNELS=python must make the default call run the oracle;
        # outputs are identical either way, so pin via resolve + a smoke run.
        monkeypatch.setenv(dispatch.ENV_VAR, "python")
        cic = FixedCICDecimator(2, 16, input_width=12)
        x = rng.integers(-2048, 2048, 320)
        y_default = cic.process(x)
        cic2 = FixedCICDecimator(2, 16, input_width=12)
        y_forced = cic2.process(x, engine="fused")
        assert np.array_equal(y_default, y_forced)


class TestNumbaAbsentFallback:
    def test_jit_degrades_without_numba(self, monkeypatch):
        # Simulate a numba-free install regardless of this environment.
        monkeypatch.setattr(jit, "HAVE_NUMBA", False)
        assert dispatch.resolve("cic", "jit") == "fused"
        assert dispatch.resolve("nco", "auto") == "fused"

    def test_jit_selector_still_runs(self, monkeypatch, rng):
        monkeypatch.setattr(jit, "HAVE_NUMBA", False)
        cic = FixedCICDecimator(2, 16, input_width=12)
        ref = FixedCICDecimator(2, 16, input_width=12)
        x = rng.integers(-2048, 2048, 320)
        assert np.array_equal(
            cic.process(x, engine="jit"), ref.process(x, engine="python")
        )

    def test_import_is_guarded(self):
        # The module must carry the flag and define no registrations
        # when numba is absent (the default container).
        if not HAVE_NUMBA:
            assert "jit" not in dispatch._REGISTRY.get("cic", {})


# ------------------------------------------------------------------- NCO
class TestNCOKernels:
    @given(
        fcw_hz=st.floats(min_value=-30e6, max_value=30e6),
        phase_bits=st.integers(min_value=8, max_value=40),
        lut_addr_bits=st.integers(min_value=2, max_value=8),
        amp=st.one_of(st.none(), st.integers(min_value=4, max_value=16)),
        cuts=st.lists(
            st.floats(min_value=0, max_value=1), min_size=0, max_size=4
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_block_split_bit_identity(
        self, fcw_hz, phase_bits, lut_addr_bits, amp, cuts
    ):
        kw = dict(
            sample_rate_hz=64.512e6,
            frequency_hz=fcw_hz,
            phase_bits=phase_bits,
            lut_addr_bits=lut_addr_bits,
            amplitude_bits=amp,
            mode=NCOMode.LUT,
        )
        n = 257
        x = np.empty(n)  # only the length matters for splitting
        blocks = split_blocks(x, cuts)
        ref = NCO(**kw)
        cos_ref, sin_ref = ref.generate(n, engine="python")
        for engine in FAST_ENGINES:
            fast = NCO(**kw)
            cos_parts, sin_parts = [], []
            for b in blocks:
                c, s = fast.generate(len(b), engine=engine)
                cos_parts.append(c)
                sin_parts.append(s)
            assert np.array_equal(np.concatenate(cos_parts), cos_ref), engine
            assert np.array_equal(np.concatenate(sin_parts), sin_ref), engine
            assert fast._phase_acc == ref._phase_acc, engine

    def test_taylor_mode_never_dispatches(self):
        nco = NCO(1e6, 1e5, mode=NCOMode.TAYLOR)
        c1, s1 = nco.generate(64, engine="fused")
        ref = NCO(1e6, 1e5, mode=NCOMode.TAYLOR)
        c2, s2 = ref.generate(64, engine="python")
        assert np.array_equal(c1, c2) and np.array_equal(s1, s2)

    def test_degenerate_phase_bits_uses_oracle(self):
        # phase_bits < lut_addr_bits would make the shift negative; the
        # class must route such configs to the oracle path unconditionally.
        nco = NCO(1e6, 1e5, phase_bits=4, lut_addr_bits=6)
        ref = NCO(1e6, 1e5, phase_bits=4, lut_addr_bits=6)
        c1, s1 = nco.generate(32, engine="fused")
        c2, s2 = ref.generate(32, engine="python")
        assert np.array_equal(c1, c2) and np.array_equal(s1, s2)

    def test_negative_n_rejected(self):
        nco = NCO(1e6, 1e5)
        for engine in ("python",) + FAST_ENGINES:
            with pytest.raises(ConfigurationError):
                nco.generate(-1, engine=engine)


# ------------------------------------------------------------------- CIC
class TestCICKernels:
    @given(
        order=st.integers(min_value=1, max_value=6),
        decimation=st.integers(min_value=1, max_value=24),
        diff_delay=st.integers(min_value=1, max_value=3),
        input_width=st.integers(min_value=4, max_value=16),
        n=st.integers(min_value=0, max_value=400),
        cuts=st.lists(
            st.floats(min_value=0, max_value=1), min_size=0, max_size=4
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_block_split_bit_identity(
        self, order, decimation, diff_delay, input_width, n, cuts, seed
    ):
        kw = dict(
            order=order,
            decimation=decimation,
            diff_delay=diff_delay,
            input_width=input_width,
        )
        try:
            ref = FixedCICDecimator(**kw)
        except ConfigurationError:
            return  # internal width beyond the int64-safe range
        lo, hi = -(1 << (input_width - 1)), (1 << (input_width - 1)) - 1
        x = np.random.default_rng(seed).integers(lo, hi + 1, n)
        y_ref = ref.process(x, engine="python")
        for engine in FAST_ENGINES:
            fast = FixedCICDecimator(**kw)
            parts = [
                fast.process(b, engine=engine) for b in split_blocks(x, cuts)
            ]
            y = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            )
            assert np.array_equal(y, y_ref), engine
            assert np.array_equal(fast._int_state, ref._int_state), engine
            assert np.array_equal(fast._comb_state, ref._comb_state), engine
            assert fast._phase == ref._phase, engine

    def test_narrow_int32_path_covers_reference_cic2(self):
        # CIC2 of the reference chain runs the int32 work buffer.
        cic = FixedCICDecimator(2, 16, input_width=12)
        assert cic.internal_width <= 32

    def test_wide_int64_path_covers_reference_cic5(self):
        cic = FixedCICDecimator(5, 21, input_width=12)
        assert cic.internal_width > 32

    def test_out_of_range_input_rejected(self):
        cic = FixedCICDecimator(2, 16, input_width=12)
        for engine in ("python",) + FAST_ENGINES:
            with pytest.raises(ConfigurationError):
                cic.process(np.array([5000]), engine=engine)
            with pytest.raises(ConfigurationError):
                cic.process(np.array([0.5]), engine=engine)


# ------------------------------------------------------------------- FIR
class TestFIRKernels:
    @given(
        n_taps=st.integers(min_value=1, max_value=48),
        decimation=st.integers(min_value=1, max_value=12),
        data_width=st.integers(min_value=4, max_value=16),
        n=st.integers(min_value=0, max_value=400),
        cuts=st.lists(
            st.floats(min_value=0, max_value=1), min_size=0, max_size=4
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_block_split_bit_identity(
        self, n_taps, decimation, data_width, n, cuts, seed
    ):
        rng = np.random.default_rng(seed)
        lo, hi = -(1 << (data_width - 1)), (1 << (data_width - 1)) - 1
        taps = rng.integers(lo, hi + 1, n_taps)
        kw = dict(
            taps_raw=taps,
            decimation=decimation,
            data_width=data_width,
            coeff_width=data_width,
        )
        ref = FixedPolyphaseDecimator(**kw)
        x = rng.integers(lo, hi + 1, n)
        y_ref = ref.process(x, engine="python")
        for engine in FAST_ENGINES:
            fast = FixedPolyphaseDecimator(**kw)
            parts = [
                fast.process(b, engine=engine) for b in split_blocks(x, cuts)
            ]
            y = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            )
            assert np.array_equal(y, y_ref), engine
            assert np.array_equal(fast._hist, ref._hist), engine
            assert fast._offset == ref._offset, engine

    def test_out_of_range_input_rejected(self):
        fir = FixedPolyphaseDecimator(np.array([1, 2, 3]), 2)
        for engine in ("python",) + FAST_ENGINES:
            with pytest.raises(ConfigurationError):
                fir.process(np.array([1 << 14]), engine=engine)


# ------------------------------------------------------------------- DDC
class TestDDCKernels:
    @given(
        n=st.integers(min_value=0, max_value=2000),
        cuts=st.lists(
            st.floats(min_value=0, max_value=1), min_size=0, max_size=3
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_block_split_bit_identity(self, n, cuts, seed):
        x = np.random.default_rng(seed).integers(-2048, 2048, n)
        ref = FixedDDC()
        i_ref, q_ref = ref.process(x, engine="python")
        for engine in FAST_ENGINES:
            fast = FixedDDC()
            i_parts, q_parts = [], []
            for b in split_blocks(x, cuts):
                i_b, q_b = fast.process(b, engine=engine)
                i_parts.append(i_b)
                q_parts.append(q_b)
            assert np.array_equal(np.concatenate(i_parts), i_ref), engine
            assert np.array_equal(np.concatenate(q_parts), q_ref), engine
            # Full carried state of every stage must match the oracle's.
            assert fast.nco._phase_acc == ref.nco._phase_acc, engine
            for name in (
                "cic2_i", "cic2_q", "cic5_i", "cic5_q",
            ):
                sf, sr = getattr(fast, name), getattr(ref, name)
                assert np.array_equal(sf._int_state, sr._int_state), engine
                assert np.array_equal(sf._comb_state, sr._comb_state), engine
                assert sf._phase == sr._phase, engine
            for name in ("fir_i", "fir_q"):
                sf, sr = getattr(fast, name), getattr(ref, name)
                assert np.array_equal(sf._hist, sr._hist), engine
                assert sf._offset == sr._offset, engine

    def test_interop_with_oracle_stream(self, rng):
        # Alternating tiers mid-stream must be seamless: the kernels
        # read/write the same carried state as the oracle.
        a, b = FixedDDC(), FixedDDC()
        engines = ["python", "fused", "python", "fused"]
        blocks = [rng.integers(-2048, 2048, 700) for _ in engines]
        for blk, eng in zip(blocks, engines):
            ia, qa = a.process(blk, engine=eng)
            ib, qb = b.process(blk, engine="python")
            assert np.array_equal(ia, ib)
            assert np.array_equal(qa, qb)

    def test_out_of_range_input_rejected(self):
        ddc = FixedDDC()
        for engine in ("python",) + FAST_ENGINES:
            with pytest.raises(ConfigurationError):
                ddc.process(np.array([4096]), engine=engine)
            with pytest.raises(ConfigurationError):
                ddc.process(np.array([0.5]), engine=engine)


# ------------------------------------------------------------ sim_step loop
class _Counter(Component):
    def __init__(self, name, out, mod):
        super().__init__(name)
        self.out = out
        self.mod = mod
        self.v = 0

    def tick(self, cycle):
        self.v = (self.v + 1) % self.mod
        self.out.drive(self.v - self.mod // 2, self.name)

    def reset(self):
        self.v = 0


class _Sometimes(Component):
    """Drives only every ``k``-th cycle — exercises the hold path."""

    def __init__(self, name, out, k):
        super().__init__(name)
        self.out = out
        self.k = k

    def tick(self, cycle):
        if cycle % self.k == 0:
            self.out.drive(cycle % 2, self.name)


class _Bomb(Component):
    def __init__(self, name, at):
        super().__init__(name)
        self.at = at

    def tick(self, cycle):
        if cycle == self.at:
            raise RuntimeError("boom")


def _build_pair(activity=True, trace=False, idle=3):
    sims = []
    for _ in range(2):
        sim = Simulator(ClockDomain("clk", 1e6), activity=activity)
        for i in range(4):
            sim.add(_Counter(f"c{i}", sim.wire(f"w{i}", 8), 13 + i))
        sim.add(_Sometimes("s", sim.wire("sw", 1), 3))
        for i in range(idle):
            sim.wire(f"idle{i}", 16)
        if trace:
            sim.attach_trace(WaveTrace([sim.wires["w0"], sim.wires["sw"]]))
        sims.append(sim)
    sims[0].compile(engine="python")
    sims[1].compile(engine="fused")
    return sims


class TestSimStepKernel:
    @pytest.mark.parametrize("activity", [True, False])
    @pytest.mark.parametrize("trace", [True, False])
    def test_generated_loop_matches_tuple_plan(self, activity, trace):
        ref, fast = _build_pair(activity=activity, trace=trace)
        assert ref._plan is not None and ref._step_fn is None
        assert fast._step_fn is not None and fast._plan is None
        for cycles in (997, 0, 3, 1):
            ref.step(cycles)
            fast.step(cycles)
        assert ref.cycle == fast.cycle
        for name, wr in ref.wires.items():
            wf = fast.wires[name]
            assert wf.value == wr.value, name
            assert wf.commits == wr.commits, name
            assert wf.toggles == wr.toggles, name
        if trace:
            tr, tf = ref._traces[0], fast._traces[0]
            assert tr.cycles == tf.cycles
            for name in ("w0", "sw"):
                assert tr.values(name) == tf.values(name)

    def test_mid_cycle_exception_not_counted(self):
        for engine in ("python", "fused"):
            sim = Simulator(ClockDomain("clk", 1e6))
            w = sim.wire("w", 8)
            sim.add(_Counter("c", w, 5))
            sim.add(_Bomb("b", 7))
            sim.compile(engine=engine)
            with pytest.raises(RuntimeError):
                sim.step(20)
            assert sim.cycle == 7, engine
            assert w.commits == 7, engine

    def test_assembly_invalidates_generated_loop(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        w = sim.wire("w", 8)
        sim.add(_Counter("c", w, 5))
        sim.compile(engine="fused")
        assert sim.compiled
        w2 = sim.wire("w2", 4)
        assert not sim.compiled
        sim.step(10)  # recompiles automatically, includes the new wire
        assert sim.cycle == 10
        assert w.commits == 10 and w2.commits == 10

    def test_activity_toggle_invalidates(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        sim.add(_Counter("c", sim.wire("w", 8), 5))
        sim.compile(engine="fused")
        sim.activity = False
        assert not sim.compiled
        sim.step(5)
        assert sim.cycle == 5

    def test_auto_dispatch_uses_generated_loop(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        sim.add(_Counter("c", sim.wire("w", 8), 5))
        sim.step(5)  # lazy compile under the default (auto) selector
        assert sim._step_fn is not None

    def test_env_python_keeps_tuple_plan(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "python")
        sim = Simulator(ClockDomain("clk", 1e6))
        sim.add(_Counter("c", sim.wire("w", 8), 5))
        sim.step(5)
        assert sim._plan is not None and sim._step_fn is None

    def test_empty_design(self):
        sim = Simulator(ClockDomain("clk", 1e6))
        sim.compile(engine="fused")
        sim.step(10)
        assert sim.cycle == 10


# ---------------------------------------------------------------- jit tier
@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestJitTier:
    def test_jit_registered(self):
        for prim in ("nco", "cic", "fir", "fixed_ddc"):
            assert "jit" in dispatch.registered(prim)

    def test_auto_prefers_jit(self, monkeypatch):
        monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
        assert dispatch.resolve("cic") == "jit"

    def test_jit_ddc_matches_oracle(self, rng):
        x = rng.integers(-2048, 2048, 2688)
        a, b = FixedDDC(), FixedDDC()
        ia, qa = a.process(x, engine="jit")
        ib, qb = b.process(x, engine="python")
        assert np.array_equal(ia, ib) and np.array_equal(qa, qb)
