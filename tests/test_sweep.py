"""Tests for the repro.sweep subsystem: spec, engine, report, CLI.

The load-bearing property is *byte-identity*: the batched engine, the
scalar oracle engine, and every workers/backend combination must
serialise to exactly the same report.
"""

from __future__ import annotations

import json

import pytest

from repro.config import DDCConfig, REFERENCE_DDC
from repro.errors import ConfigurationError
from repro.sweep import (
    SweepPoint,
    SweepSpec,
    evaluate_point,
    run_sweep,
)
from repro.sweep.__main__ import main as sweep_main


SMALL = SweepSpec(duty_cycle_steps=11)
TWO_POINT = SweepSpec.from_axes(
    {"nco_frequency_hz": (5e6, 10e6)}, duty_cycle_steps=9
)


class TestSweepSpec:
    def test_default_is_single_reference_point(self):
        assert SMALL.n_points == 1
        points = SMALL.points()
        assert points == [SweepPoint(0)]
        assert SMALL.config_at(points[0]) is REFERENCE_DDC
        assert points[0].label() == "reference"

    def test_cartesian_product_order_is_deterministic(self):
        spec = SweepSpec.from_axes(
            {"fir_taps": (63, 125), "data_width": (12, 14, 16)}
        )
        assert spec.n_points == 6
        labels = [p.label() for p in spec.points()]
        # Last axis fastest (itertools.product order).
        assert labels[:3] == [
            "fir_taps=63,data_width=12",
            "fir_taps=63,data_width=14",
            "fir_taps=63,data_width=16",
        ]
        assert [p.index for p in spec.points()] == list(range(6))

    def test_config_at_applies_overrides(self):
        spec = SweepSpec.from_axes({"fir_taps": (63,)})
        cfg = spec.config_at(spec.points()[0])
        assert isinstance(cfg, DDCConfig) and cfg.fir_taps == 63
        # other fields untouched
        assert cfg.cic2_decimation == REFERENCE_DDC.cic2_decimation

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            SweepSpec.from_axes({"warp_factor": (9,)})

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SweepSpec(axes=(("fir_taps", (63,)), ("fir_taps", (125,))))

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            SweepSpec.from_axes({"fir_taps": ()})

    def test_bad_steps_and_standby_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(duty_cycle_steps=1)
        with pytest.raises(ConfigurationError):
            SweepSpec(standby_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SweepSpec(architectures=())

    def test_duty_cycles_match_scalar_grid(self):
        d = SweepSpec(duty_cycle_steps=5).duty_cycles()
        assert list(d) == [i / 4 for i in range(5)]


class TestEngine:
    def test_batch_equals_scalar_bit_for_bit(self):
        point = SMALL.points()[0]
        batch = evaluate_point(SMALL, point, engine="batch")
        scalar = evaluate_point(SMALL, point, engine="scalar")
        assert batch == scalar  # dataclass equality: every float bitwise

    def test_reference_grid_reproduces_section7(self):
        result = evaluate_point(SMALL, SMALL.points()[0])
        assert result.static_winner == "Customised Low Power DDC"
        # The duty-cycle map ends in the ASIC region (Section 7.1) and
        # starts with a reusable fabric (Section 7.2).
        assert result.winning_regions[-1][2] == "Customised Low Power DDC"
        first_winner = result.winning_regions[0][2]
        reusable = dict(zip(result.names, result.reusable))
        assert reusable[first_winner]

    def test_architecture_subset_preserves_model_order(self):
        spec = SweepSpec(
            duty_cycle_steps=5,
            architectures=("Montium TP", "Customised Low Power DDC"),
        )
        result = evaluate_point(spec, spec.points()[0])
        # model order, not the subset's order
        assert result.names == ("Customised Low Power DDC", "Montium TP")

    def test_unknown_architecture_rejected(self):
        spec = SweepSpec(duty_cycle_steps=5, architectures=("HAL 9000",))
        with pytest.raises(ConfigurationError, match="HAL 9000"):
            evaluate_point(spec, spec.points()[0])

    def test_subset_survives_points_where_a_member_cannot_map(self):
        """An architecture subset drops per-point, like unrestricted
        sweeps do — one unmappable point must not abort the sweep."""
        spec = SweepSpec.from_axes(
            {"cic5_decimation": (21, 42), "fir_decimation": (8, 4)},
            duty_cycle_steps=5,
            architectures=("Montium TP", "Customised Low Power DDC"),
        )
        results = run_sweep(spec).points
        assert results[0].names == (
            "Customised Low Power DDC", "Montium TP"
        )
        # Off-reference point: Montium cannot map; the ASIC carries on.
        assert results[3].names == ("Customised Low Power DDC",)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            evaluate_point(SMALL, SMALL.points()[0], engine="warp")
        with pytest.raises(ConfigurationError, match="engine"):
            run_sweep(SMALL, engine="warp")

    def test_unmappable_points_drop_architectures_not_the_sweep(self):
        # 2688 = 16*42*4: valid DDCConfig, but off the Montium's reference
        # schedule — the sweep must keep going without it.
        spec = SweepSpec.from_axes(
            {"cic5_decimation": (21, 42), "fir_decimation": (8, 4)},
            duty_cycle_steps=5,
        )
        results = run_sweep(spec).points
        ref = results[0]  # (21, 8): the reference plan
        off = results[3]  # (42, 4)
        assert "Montium TP" in ref.names
        assert "Montium TP" not in off.names
        assert off.names  # others still competed

    def test_crossovers_are_within_unit_interval(self):
        result = evaluate_point(SMALL, SMALL.points()[0])
        assert result.crossovers  # the Section 7 story has crossings
        for a, b, d in result.crossovers:
            assert 0.0 <= d <= 1.0
            assert a in result.names and b in result.names


class TestRunSweepParallel:
    def test_thread_and_process_backends_byte_identical(self):
        serial = run_sweep(TWO_POINT).to_json()
        threaded = run_sweep(TWO_POINT, workers=2).to_json()
        procs = run_sweep(
            TWO_POINT, workers=2, backend="process"
        ).to_json()
        assert serial == threaded == procs

    def test_points_come_back_in_point_order(self):
        report = run_sweep(TWO_POINT, workers=2)
        assert [p.index for p in report.points] == [0, 1]
        assert report.points[0].overrides == (("nco_frequency_hz", 5e6),)


class TestReport:
    def test_json_document_schema(self):
        doc = json.loads(run_sweep(SMALL).to_json())
        assert doc["schema"] == "repro-sweep/v1"
        assert doc["spec"]["n_points"] == 1
        assert len(doc["duty_cycles"]) == 11
        point = doc["points"][0]
        assert point["static_winner"] == "Customised Low Power DDC"
        assert len(point["powers_w"]) == 11
        assert len(point["powers_w"][0]) == len(point["names"])

    def test_csv_long_form_grid(self):
        report = run_sweep(SMALL)
        lines = report.to_csv().splitlines()
        n_archs = len(report.points[0].names)
        assert lines[0] == "point,label,duty_cycle,candidate,power_w,winner"
        assert len(lines) == 1 + 11 * n_archs
        first = lines[1].split(",")
        assert first[0] == "0" and first[2] == "0.0"

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="format"):
            run_sweep(SMALL).render("xml")

    def test_summary_names_regions(self):
        text = run_sweep(SMALL).summary()
        assert "reference" in text
        assert "Customised Low Power DDC" in text


class TestCLI:
    def test_default_emits_table7_grid_json(self, capsys):
        assert sweep_main(["--steps", "11"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-sweep/v1"
        assert [p["static_winner"] for p in doc["points"]] == [
            "Customised Low Power DDC"
        ]

    def test_writes_csv_file(self, tmp_path, capsys):
        out = tmp_path / "grid.csv"
        assert sweep_main(
            ["--steps", "5", "--format", "csv", "--output", str(out)]
        ) == 0
        assert out.read_text().startswith("point,label,duty_cycle")

    def test_verify_mode_passes(self, capsys):
        assert sweep_main(["--steps", "21", "--verify"]) == 0
        assert "verify OK" in capsys.readouterr().out

    def test_axis_and_architecture_flags(self, capsys):
        rc = sweep_main(
            [
                "--steps", "5",
                "--axis", "nco_frequency_hz=5e6,10e6",
                "--architectures",
                "Customised Low Power DDC,Altera Cyclone II",
                "--summary",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 configuration point(s)" in text

    def test_bad_axis_is_a_clean_error(self, capsys):
        assert sweep_main(["--axis", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_architecture_is_a_clean_error(self, capsys):
        assert sweep_main(
            ["--steps", "5", "--architectures", "HAL 9000"]
        ) == 2
        assert "HAL 9000" in capsys.readouterr().err