"""Unit tests of the benchmark harness (no heavy measurement)."""

from __future__ import annotations

import json

import pytest

from repro.bench.report import SCHEMA, check_regression, load_report, write_report
from repro.bench.runner import BenchResult, time_fn
from repro.errors import ConfigurationError


def _result(name: str, sps: float, baseline: float | None = None) -> BenchResult:
    return BenchResult(
        name=name,
        samples_per_sec=sps,
        seconds=1.0,
        repeats=1,
        n_samples=int(sps),
        baseline_samples_per_sec=baseline,
        baseline_seconds=1.0 if baseline else None,
    )


class TestTimeFn:
    def test_returns_positive_seconds(self):
        calls = []
        secs = time_fn(lambda: calls.append(1), repeats=3, warmup=2)
        assert secs > 0.0
        assert len(calls) == 5  # warmup + repeats


class TestReportRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "BENCH_dsp.json"
        results = {"rtl_ddc": _result("rtl_ddc", 5e6, baseline=7e4)}
        doc = write_report(path, results, quick=True)
        assert doc["schema"] == SCHEMA
        loaded = load_report(path)
        bench = loaded["benches"]["rtl_ddc"]
        assert bench["samples_per_sec"] == pytest.approx(5e6)
        assert bench["baseline_samples_per_sec"] == pytest.approx(7e4)
        assert bench["speedup"] == pytest.approx(5e6 / 7e4, rel=1e-3)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/v0"}))
        with pytest.raises(ConfigurationError):
            load_report(path)


class TestRegressionCheck:
    def _committed(self, sps: float) -> dict:
        return {
            "schema": SCHEMA,
            "benches": {"rtl_ddc": {"samples_per_sec": sps}},
        }

    def test_pass_when_fast_enough(self):
        results = {"rtl_ddc": _result("rtl_ddc", 8e6)}
        assert check_regression(
            results, self._committed(1e7), names=("rtl_ddc",)
        ) == []

    def test_default_guard_covers_every_fast_path(self):
        """CI guards the streaming kernel tier, the architecture fast
        paths, the batched sweep, the batched model layer, the adaptive
        explorer, the fault-tolerant sweep path, the non-default
        workload grids and the population Monte-Carlo engine."""
        from repro.bench.report import GUARDED_BENCHES

        assert GUARDED_BENCHES == (
            "nco", "cic", "fir", "fixed_ddc", "sim_step",
            "rtl_ddc", "gpp_ddc", "montium_ddc", "scenario_sweep",
            "evaluator_batch", "explore_frontier", "sweep_faulty",
            "drm_sweep", "ofdm_sweep", "montecarlo_population",
        )
        # every guarded bench must be present on both sides, or the
        # guard fails
        results = {n: _result(n, 1e6) for n in GUARDED_BENCHES}
        committed = {
            "schema": SCHEMA,
            "benches": {n: {"samples_per_sec": 1e6} for n in GUARDED_BENCHES},
        }
        assert check_regression(results, committed) == []
        del results["montium_ddc"]
        assert check_regression(results, committed) != []

    def test_fail_beyond_threshold(self):
        results = {"rtl_ddc": _result("rtl_ddc", 6e6)}
        failures = check_regression(
            results, self._committed(1e7), names=("rtl_ddc",),
            max_regression=0.30,
        )
        assert len(failures) == 1 and "rtl_ddc" in failures[0]

    def test_fail_when_bench_missing(self):
        assert check_regression({}, self._committed(1e7)) != []
        results = {"rtl_ddc": _result("rtl_ddc", 1e7)}
        assert check_regression(results, {"benches": {}}) != []

    def test_slow_machine_forgiven_when_speedup_holds(self):
        """Absolute regression + stable measured speedup = slower hardware."""
        committed = {
            "schema": SCHEMA,
            "benches": {"rtl_ddc": {"samples_per_sec": 1e7, "speedup": 90.0}},
        }
        # Half the absolute throughput, but the block-vs-cycle ratio held.
        results = {"rtl_ddc": _result("rtl_ddc", 5e6, baseline=5e6 / 88.0)}
        assert check_regression(results, committed, names=("rtl_ddc",)) == []
        # Ratio collapsed too: a genuine engine regression.
        results = {"rtl_ddc": _result("rtl_ddc", 5e6, baseline=5e6 / 40.0)}
        assert check_regression(results, committed, names=("rtl_ddc",)) != []

    def test_custom_threshold(self):
        results = {"rtl_ddc": _result("rtl_ddc", 9.6e6)}
        assert check_regression(
            results, self._committed(1e7), names=("rtl_ddc",),
            max_regression=0.05,
        ) == []
        assert check_regression(
            results, self._committed(1e7), names=("rtl_ddc",),
            max_regression=0.01,
        ) != []


class TestBenchResult:
    def test_speedup_none_without_baseline(self):
        assert _result("x", 1e6).speedup is None

    def test_json_omits_absent_baseline(self):
        j = _result("x", 1e6).to_json()
        assert "baseline_samples_per_sec" not in j and "speedup" not in j
