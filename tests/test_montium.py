"""Tests for the Montium TP model: ALU, tile, DDC mapping, Table 6, Fig. 9."""

from __future__ import annotations

import numpy as np
import pytest

from repro import REFERENCE_DDC, DDCConfig
from repro.archs.montium import (
    ALUOp,
    LocalMemory,
    MontiumModel,
    MontiumTile,
    RegisterFile,
    build_ddc_schedule,
    estimate_config_bytes,
    render_figure9,
    run_ddc_on_tile,
)
from repro.archs.montium.alu import Level1Fn, Level2Fn, MontiumALU, wrap16
from repro.archs.montium.schedule import analyze_schedule, measured_occupancy
from repro.dsp.signals import quantize_to_adc, tone
from repro.errors import ConfigurationError, SimulationError


class TestALU:
    def test_level1_add(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level1=(Level1Fn.ADD,))
        assert alu.execute(op, [3, 4]) == [7]

    def test_level1_wraps16(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level1=(Level1Fn.ADD,))
        assert alu.execute(op, [32767, 1]) == [-32768]

    def test_level1_custom_pairs(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level1=(Level1Fn.SUB,), level1_pairs=((2, 0),))
        assert alu.execute(op, [5, 0, 9]) == [4]

    def test_level2_mul_q15(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level2=Level2Fn.MUL)
        # 0.5 * 0.5 in Q15 = 0.25
        out = alu.execute(op, [1 << 14, 1 << 14])
        assert out == [1 << 13]
        assert alu.mul_count == 1

    def test_level2_mac(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level2=Level2Fn.MAC)
        out = alu.execute(op, [1 << 14, 1 << 14, 100])
        assert out == [(1 << 13) + 100]

    def test_level2_from_l1(self):
        alu = MontiumALU(0)
        op = ALUOp(
            "t", level1=(Level1Fn.ADD,), level2=Level2Fn.SUB,
            level2_from_l1=True,
        )
        # l1: a+b = 7; l2: 7 - b = 3
        assert alu.execute(op, [3, 4]) == [7, 3]

    def test_butterfly(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level2=Level2Fn.BUTTERFLY)
        assert alu.execute(op, [10, 3]) == [13, 7]

    def test_cic2_comb_compound(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level2=Level2Fn.CIC2_COMB, post_shift=0)
        # x=10, d0=3, d1=2 -> [10, 7, 5]
        assert alu.execute(op, [10, 3, 2]) == [10, 7, 5]

    def test_cic_int2_chains(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level2=Level2Fn.CIC_INT2)
        # x=5, s0=10, s1=100 -> s0'=15, s1'=115
        assert alu.execute(op, [5, 10, 100]) == [15, 115]

    def test_cic_int_32bit(self):
        alu = MontiumALU(0)
        op = ALUOp("t", level2=Level2Fn.CIC_INT1)
        big = 2_000_000_000
        out = alu.execute(op, [big, big])[0]
        assert out == wrap32_check(big + big)

    def test_invalid_index(self):
        with pytest.raises(ConfigurationError):
            MontiumALU(5)


def wrap32_check(v: int) -> int:
    v &= (1 << 32) - 1
    return v - (1 << 32) if v >= 1 << 31 else v


class TestMemories:
    def test_memory_roundtrip(self):
        m = LocalMemory("m", 16)
        m.write(123, 5)
        assert m.read(5) == 123

    def test_memory_wraps16(self):
        m = LocalMemory("m", 4)
        m.write(70000, 0)
        assert m.read(0) == wrap16(70000)

    def test_memory_agu(self):
        m = LocalMemory("m", 4)
        for v in range(4):
            m.write(v)
            m.step_agu()
        assert m.addr == 0  # wrapped
        assert [m.read(i) for i in range(4)] == [0, 1, 2, 3]

    def test_memory_bounds(self):
        m = LocalMemory("m", 4)
        with pytest.raises(ConfigurationError):
            m.read(4)
        with pytest.raises(ConfigurationError):
            m.load([1] * 5)

    def test_register_file(self):
        rf = RegisterFile("rf")
        rf.write(2, -7)
        assert rf.read(2) == -7
        with pytest.raises(ConfigurationError):
            rf.read(9)


class TestTile:
    def test_env_routing(self):
        from repro.archs.montium.program import TileProgram

        tile = MontiumTile()
        op = ALUOp("t", level1=(Level1Fn.ADD,),
                   sources=("env:a", "const:5"), dests=("env:b",))
        prog = TileProgram([{0: op}])
        tile.env["env:a"] = 10
        tile.step(prog)
        assert tile.env["env:b"] == 15

    def test_ext_in_out(self):
        from repro.archs.montium.program import TileProgram

        tile = MontiumTile()
        op = ALUOp("copy", level1=(Level1Fn.PASS_A,),
                   sources=("ext:in",), dests=("ext:out",))
        tile.load_inputs([7, 8, 9])
        tile.run(TileProgram([{0: op}]), 3)
        assert tile.outputs == [7, 8, 9]

    def test_input_underrun_raises(self):
        from repro.archs.montium.program import TileProgram

        tile = MontiumTile()
        op = ALUOp("c", level1=(Level1Fn.PASS_A,), sources=("ext:in",),
                   dests=("null",))
        tile.load_inputs([1])
        prog = TileProgram([{0: op}])
        tile.step(prog)
        with pytest.raises(SimulationError):
            tile.step(prog)

    def test_memory_agu_token(self):
        from repro.archs.montium.program import TileProgram

        tile = MontiumTile()
        tile.memories["mem0_1"].load([10, 20, 30])
        op = ALUOp("r", level1=(Level1Fn.PASS_A,),
                   sources=("mem:mem0_1:agu+",), dests=("ext:out",))
        tile.run(TileProgram([{0: op}]), 3)
        assert tile.outputs == [10, 20, 30]

    def test_bad_token(self):
        from repro.archs.montium.program import TileProgram

        tile = MontiumTile()
        op = ALUOp("b", level1=(Level1Fn.PASS_A,), sources=("bogus:x",),
                   dests=("null",))
        with pytest.raises(ConfigurationError):
            tile.step(TileProgram([{0: op}]))

    def test_utilisation(self):
        from repro.archs.montium.program import TileProgram

        tile = MontiumTile()
        op = ALUOp("t", level1=(Level1Fn.PASS_A,), sources=("const:0",),
                   dests=("null",))
        prog = TileProgram([{0: op}, {}])  # ALU0 busy every other cycle
        tile.run(prog, 10)
        util = tile.alu_utilisation()
        assert util[0] == pytest.approx(0.5)
        assert util[1] == 0.0


class TestDDCSchedule:
    @pytest.fixture(scope="class")
    def program(self):
        return build_ddc_schedule()

    def test_period_is_336(self, program):
        assert program.period == 336

    def test_table6_shape(self, program):
        rep = analyze_schedule(program)
        rows = {r[0]: (r[1], r[2]) for r in rep.table6_rows()}
        # paper Table 6: 3 ALUs 100 %, 2 ALUs 6.3 %, 25 %, 0.9 %, 0.5 %
        assert rows["NCO + CIC2 integrating"] == (3, pytest.approx(100.0))
        assert rows["CIC2 cascading"][0] == 2
        assert rows["CIC2 cascading"][1] == pytest.approx(6.25, abs=0.1)
        assert rows["CIC5 integrating"] == (2, pytest.approx(25.0))
        assert rows["CIC5 cascading"][1] == pytest.approx(0.9, abs=0.05)
        assert rows["FIR125"][1] <= 0.5  # paper: 0.5 %

    def test_no_alu_overcommit(self, program):
        for ops in program.cycles:
            assert len(ops) <= 5

    def test_three_alus_always_busy(self, program):
        for ops in program.cycles:
            assert {0, 1, 2} <= set(ops)

    def test_config_size_order(self, program):
        # paper: 1110 bytes; same order of magnitude expected
        size = estimate_config_bytes(program)
        assert 300 <= size <= 2200

    def test_nonreference_config_rejected(self):
        with pytest.raises(ConfigurationError):
            build_ddc_schedule(DDCConfig(cic2_decimation=8))

    def test_figure9_render(self, program):
        fig = render_figure9(program, 40)
        lines = fig.splitlines()
        assert len(lines) == 7  # header + 5 ALUs + legend
        # ALUs 1-3 fully busy with N
        for i in (1, 2, 3):
            assert set(lines[i].split()[-1]) == {"N"}
        # ALU4 row shows the 16-cycle comb repetition
        alu4 = lines[4].split()[-1]
        assert alu4[0] == "2" and alu4[16] == "2" and alu4[32] == "2"
        assert alu4[1:5] == "5555"
        assert alu4[5:8] == "ccc"
        assert alu4[8] == "F"
        assert alu4[9] == "."


class TestDDCFunctional:
    @pytest.fixture(scope="class")
    def result(self):
        fs = REFERENCE_DDC.input_rate_hz
        fc = round(10e6 / fs * 512) / 512 * fs  # LUT-exact carrier
        n = 2688 * 80
        x = quantize_to_adc(tone(n, fc + 1500.0, fs, 0.8), 12)
        return run_ddc_on_tile(x)

    def test_output_count(self, result):
        assert len(result.i) == 80
        assert len(result.q) == 80

    def test_tone_recovered(self, result):
        z = (result.i[16:] + 1j * result.q[16:]).astype(complex)
        z = z - z.mean()
        spec = np.abs(np.fft.fft(z * np.hanning(len(z))))
        freqs = np.fft.fftfreq(len(z), 1 / 24_000.0)
        peak = freqs[np.argmax(spec)]
        assert peak == pytest.approx(1500.0, abs=24_000.0 / len(z) * 1.5)

    def test_amplitude_sensible(self, result):
        z = np.abs(result.i[16:].astype(float) + 1j * result.q[16:])
        assert 2_000 < z.mean() < 32_768

    def test_measured_matches_static_occupancy(self, result):
        static = analyze_schedule(result.program)
        dynamic = measured_occupancy(result.tile)
        for row in static.rows:
            got = dynamic.by_label(row.label)
            assert got.n_alus == row.n_alus
            assert got.percent_of_time == pytest.approx(
                row.percent_of_time, abs=0.2
            )

    def test_rejects_float_input(self):
        with pytest.raises(ConfigurationError):
            run_ddc_on_tile(np.zeros(16))


class TestMontiumModel:
    def test_power_is_38_7_mw(self):
        report = MontiumModel().implement(REFERENCE_DDC)
        assert report.power_w * 1e3 == pytest.approx(38.7, abs=0.05)

    def test_area(self):
        report = MontiumModel().implement(REFERENCE_DDC)
        assert report.area_mm2 == pytest.approx(2.2)

    def test_supports_reference_only(self):
        model = MontiumModel()
        assert model.supports(REFERENCE_DDC)
        assert not model.supports(DDCConfig(cic2_decimation=8))


class TestVectorisedScheduleAnalysis:
    """analyze_schedule (numpy) == analyze_schedule_scalar (seed loop)."""

    def test_ddc_schedule_matches_oracle(self):
        from repro.archs.montium.schedule import analyze_schedule_scalar

        program = build_ddc_schedule()
        assert analyze_schedule(program) == analyze_schedule_scalar(program)

    def test_sparse_synthetic_schedule_matches_oracle(self):
        from repro.archs.montium.program import TileProgram
        from repro.archs.montium.schedule import analyze_schedule_scalar

        op_a = ALUOp(label="a")
        op_b = ALUOp(label="b")
        program = TileProgram(
            cycles=[
                {0: op_a, 3: op_b},
                {},
                {0: op_a, 1: op_a, 4: op_b},
                {2: op_b},
            ]
        )
        got = analyze_schedule(program)
        want = analyze_schedule_scalar(program)
        assert got == want
        assert got.by_label("a").n_alus == 2
        assert got.by_label("b").percent_of_time == 75.0

    def test_empty_program_raises(self):
        from repro.archs.montium.program import TileProgram
        from repro.archs.montium.schedule import analyze_schedule_scalar

        for fn in (analyze_schedule, analyze_schedule_scalar):
            with pytest.raises(ConfigurationError, match="empty"):
                fn(TileProgram(cycles=[]))
