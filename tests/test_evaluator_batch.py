"""The batched architecture-model layer: implement_batch == implement.

The load-bearing contract of the batched evaluator stack (mirroring the
fast-path/oracle convention of ``tests/test_fast_engine.py``):

- every model's ``implement_batch`` is **bit-identical** to the scalar
  ``implement`` loop — reports, feasibility, and the mapping errors of
  unmappable configurations alike (Hypothesis-pinned over random
  configuration batches);
- the analytic GPP profile behind ``ARM9Model.implement_batch`` carries
  the same statistics as actually executing the generated program;
- :class:`~repro.core.evaluator.ReportCache` serves repeated
  configurations without re-running models, caches mapping errors,
  invalidates explicitly, and stays picklable;
- :class:`~repro.core.evaluator.DDCEvaluator` is stateless — interleaved
  evaluations of different configurations on one instance answer each
  configuration correctly.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archs.base import BatchImplementationReport
from repro.archs.gpp.profiler import profile_ddc, profile_ddc_analytic
from repro.config import DDCConfig, GC4016_GSM_EXAMPLE, REFERENCE_DDC
from repro.core.evaluator import (
    DDCEvaluator,
    ReportCache,
    config_cache_key,
    default_models,
    shared_evaluator,
    shared_report_cache,
)
from repro.errors import ConfigurationError

#: A configuration no default model set restricted to the Montium can map.
OFF_REFERENCE = dataclasses.replace(
    REFERENCE_DDC, cic5_decimation=42, fir_decimation=4
)

#: Feasibility flips vs the reference: 200 MHz input exceeds both Cyclone
#: fmax figures, so the reconfigurable race goes to the Montium.
FAST_INPUT = dataclasses.replace(REFERENCE_DDC, input_rate_hz=200e6)


def configs_strategy():
    """Small random configuration batches spanning mappable, infeasible
    and unmappable points for every model."""
    config = st.builds(
        DDCConfig,
        input_rate_hz=st.sampled_from([8_064_000.0, 64_512_000.0, 2e8]),
        cic2_decimation=st.sampled_from([1, 2, 16]),
        cic5_decimation=st.sampled_from([4, 21]),
        fir_decimation=st.sampled_from([1, 2, 8]),
        fir_taps=st.sampled_from([1, 63, 125]),
        data_width=st.sampled_from([8, 12, 16]),
        cic2_order=st.sampled_from([0, 2]),
        cic5_order=st.sampled_from([2, 5]),
        nco_frequency_hz=st.sampled_from([0.0, 1e6]),
    )
    return st.lists(config, min_size=1, max_size=4)


def assert_batch_equals_scalar(model, configs) -> None:
    batch = model.implement_batch(configs)
    scalar = model.implement_batch_scalar(configs)
    assert isinstance(batch, BatchImplementationReport)
    assert len(batch) == len(scalar) == len(configs)
    for i in range(len(configs)):
        assert batch.reports[i] == scalar.reports[i], configs[i]
        b_err, s_err = batch.errors[i], scalar.errors[i]
        assert (b_err is None) == (s_err is None), configs[i]
        if b_err is not None:
            assert type(b_err) is type(s_err)
            assert str(b_err) == str(s_err)
        assert bool(batch.mappable[i]) == (s_err is None)
        if scalar.reports[i] is not None:
            assert batch.power_w[i] == scalar.reports[i].power_w
            assert batch.clock_hz[i] == scalar.reports[i].clock_hz
            assert bool(batch.feasible[i]) == scalar.reports[i].feasible


class TestImplementBatchEqualsScalar:
    """implement_batch is bit-identical to the scalar implement loop."""

    @pytest.mark.parametrize(
        "model", default_models(), ids=lambda m: m.name
    )
    def test_reference_and_edge_configs(self, model):
        assert_batch_equals_scalar(
            model,
            [REFERENCE_DDC, OFF_REFERENCE, FAST_INPUT, GC4016_GSM_EXAMPLE],
        )

    @pytest.mark.parametrize(
        "model", default_models(), ids=lambda m: m.name
    )
    @settings(max_examples=12, deadline=None)
    @given(configs=configs_strategy())
    def test_random_batches(self, model, configs):
        assert_batch_equals_scalar(model, configs)

    def test_report_at_raises_the_scalar_error(self):
        from repro.archs.montium.model import MontiumModel

        batch = MontiumModel().implement_batch([OFF_REFERENCE])
        with pytest.raises(ConfigurationError, match="16/21/8"):
            batch.report_at(0)

    def test_empty_batch(self):
        for model in default_models():
            batch = model.implement_batch([])
            assert len(batch) == 0


class TestAnalyticGPPProfile:
    """The closed-form profile carries executed-run statistics."""

    @pytest.mark.parametrize(
        "config",
        [
            REFERENCE_DDC,
            OFF_REFERENCE,
            dataclasses.replace(REFERENCE_DDC, fir_taps=63, data_width=10),
            dataclasses.replace(
                REFERENCE_DDC, cic2_decimation=2, cic5_decimation=4,
                fir_decimation=2, fir_taps=7,
            ),
        ],
        ids=["reference", "off-reference", "narrow", "tiny"],
    )
    def test_statistics_match_execution(self, config):
        analytic = profile_ddc_analytic(config)
        executed = profile_ddc(config, engine="auto")
        assert analytic is not None
        assert analytic.stats.instructions == executed.stats.instructions
        assert analytic.stats.cycles == executed.stats.cycles
        assert dict(analytic.stats.region_cycles) == dict(
            executed.stats.region_cycles
        )
        assert dict(analytic.stats.region_instructions) == dict(
            executed.stats.region_instructions
        )
        assert analytic.region_fractions == executed.region_fractions
        assert analytic.required_clock_hz == executed.required_clock_hz

    def test_non_reference_orders_decline(self):
        # codegen only emits the CIC2+CIC5 chain: the analytic path must
        # hand such configurations back to the scalar fallback.
        assert profile_ddc_analytic(GC4016_GSM_EXAMPLE) is None


class _CountingModel:
    """Wraps a model, counting implement_batch configurations served."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.served = 0

    def cache_key(self):
        return self.inner.cache_key()

    def implement(self, config):
        return self.inner.implement(config)

    def implement_batch(self, configs):
        self.served += len(configs)
        return self.inner.implement_batch(configs)


class TestReportCache:
    def _model(self):
        from repro.archs.asic.lowpower import LowPowerDDCModel

        return _CountingModel(LowPowerDDCModel())

    def test_hits_and_misses(self):
        cache = ReportCache()
        model = self._model()
        first = cache.implement(model, REFERENCE_DDC)
        again = cache.implement(model, REFERENCE_DDC)
        assert first == again
        assert model.served == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_content_hashing_ignores_object_identity(self):
        cache = ReportCache()
        model = self._model()
        cache.implement(model, DDCConfig())
        cache.implement(model, dataclasses.replace(DDCConfig()))
        assert model.served == 1
        assert config_cache_key(DDCConfig()) == config_cache_key(
            dataclasses.replace(DDCConfig())
        )

    def test_batch_serves_only_the_misses(self):
        cache = ReportCache()
        model = self._model()
        grid = [
            dataclasses.replace(REFERENCE_DDC, data_width=w)
            for w in (8, 10, 12)
        ]
        cache.implement(model, grid[1])
        batch = cache.implement_batch(model, grid)
        assert model.served == 3  # one scalar miss + two batch misses
        assert [r is not None for r in batch.reports] == [True] * 3
        assert batch.reports == model.inner.implement_batch(grid).reports

    def test_mapping_errors_are_cached(self):
        from repro.archs.montium.model import MontiumModel

        cache = ReportCache()
        model = _CountingModel(MontiumModel())
        for _ in range(2):
            with pytest.raises(ConfigurationError, match="16/21/8"):
                cache.implement(model, OFF_REFERENCE)
        assert model.served == 1

    def test_invalidate_one_model(self):
        cache = ReportCache()
        model = self._model()
        other = _CountingModel(self._model().inner)
        cache.implement(model, REFERENCE_DDC)
        cache.implement(other, OFF_REFERENCE)
        assert cache.invalidate(model) == 2  # both entries share the key
        assert len(cache) == 0
        cache.implement(model, REFERENCE_DDC)
        assert model.served == 2

    def test_clear_resets_counters(self):
        cache = ReportCache()
        cache.implement(self._model(), REFERENCE_DDC)
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)

    def test_cache_is_picklable(self):
        """The picklability contract: a populated cache round-trips, so
        process-pool workers can hold one."""
        cache = ReportCache()
        for model in default_models():
            cache.implement_batch(
                model, [REFERENCE_DDC, OFF_REFERENCE]
            )
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == len(cache)
        model = self._model()
        assert clone.implement(model, REFERENCE_DDC) == cache.implement(
            model, REFERENCE_DDC
        )

    def test_cached_batch_matches_uncached_when_all_unmappable(self):
        """The architecture label must not depend on cache state, even
        when no config in the batch is mappable."""
        from repro.archs.fpga.devices import CYCLONE_II_EP2C5
        from repro.archs.fpga.model import CycloneModel

        too_big = dataclasses.replace(REFERENCE_DDC, fir_taps=5000)
        model = CycloneModel(CYCLONE_II_EP2C5)
        uncached = model.implement_batch([too_big])
        cache = ReportCache()
        cold = cache.implement_batch(model, [too_big])
        warm = cache.implement_batch(model, [too_big])
        assert (
            cold.architecture
            == warm.architecture
            == uncached.architecture
            == "Altera Cyclone II"
        )

    def test_distinct_model_parameters_do_not_collide(self):
        from repro.archs.fpga.devices import (
            CYCLONE_I_EP1C3,
            CYCLONE_II_EP2C5,
        )
        from repro.archs.fpga.model import CycloneModel

        cache = ReportCache()
        one = cache.implement(
            CycloneModel(CYCLONE_I_EP1C3), REFERENCE_DDC
        )
        two = cache.implement(
            CycloneModel(CYCLONE_II_EP2C5), REFERENCE_DDC
        )
        assert one != two and len(cache) == 2


class TestStatelessEvaluator:
    def test_interleaved_evaluates_are_config_correct(self):
        """Regression: the seed evaluator kept ``_last_config`` state, so
        winners could follow the most recent call's configuration instead
        of the one whose reports were being judged."""
        ev = DDCEvaluator()
        first_a = ev.evaluate(REFERENCE_DDC)
        first_b = ev.evaluate(FAST_INPUT)
        again_a = ev.evaluate(REFERENCE_DDC)
        again_b = ev.evaluate(FAST_INPUT)
        fresh_a = DDCEvaluator().evaluate(REFERENCE_DDC)
        fresh_b = DDCEvaluator().evaluate(FAST_INPUT)
        # The two configurations disagree on the winner, so any leakage
        # of one call's configuration into the other is visible.
        assert fresh_a.reconfigurable_winner != fresh_b.reconfigurable_winner
        for result, fresh in (
            (first_a, fresh_a), (again_a, fresh_a),
            (first_b, fresh_b), (again_b, fresh_b),
        ):
            assert result.reconfigurable_winner == fresh.reconfigurable_winner
            assert result.static_winner == fresh.static_winner
            assert result.reports == fresh.reports

    def test_speedup_needed_is_config_correct(self):
        """Regression: the ARM9's last-profile memo must never answer
        for a different configuration than the one asked about."""
        from repro.archs.gpp.arm9 import ARM9Model

        slow = dataclasses.replace(
            REFERENCE_DDC, input_rate_hz=32_256_000.0
        )
        model = ARM9Model()
        model.implement(REFERENCE_DDC)  # warm the memo with another config
        assert model.speedup_needed(slow) == ARM9Model().speedup_needed(slow)
        assert model.speedup_needed(slow) < model.speedup_needed(
            REFERENCE_DDC
        )

    def test_winner_judges_the_reports_config(self):
        """_reconfigurable_winner takes the config as an argument: the
        answer for one configuration's reports cannot be perturbed by
        other evaluations on the same instance."""
        ev = DDCEvaluator()
        reports_a = [m.implement(REFERENCE_DDC) for m in ev.models]
        ev.evaluate(FAST_INPUT)  # unrelated work on the same instance
        assert (
            ev._reconfigurable_winner(reports_a, REFERENCE_DDC)
            == DDCEvaluator().evaluate(REFERENCE_DDC).reconfigurable_winner
        )

    def test_evaluate_batch_equals_scalar_evaluate(self):
        ev = DDCEvaluator()
        grid = [REFERENCE_DDC, FAST_INPUT]
        batched = ev.evaluate_batch(grid)
        for config, result in zip(grid, batched):
            scalar = ev.evaluate(config)
            assert result.reports == scalar.reports
            assert result.static_winner == scalar.static_winner
            assert (
                result.reconfigurable_winner == scalar.reconfigurable_winner
            )
            assert result.render() == scalar.render()

    def test_scenario_candidates_batch_equals_scalar(self):
        ev = DDCEvaluator()
        grid = [REFERENCE_DDC, OFF_REFERENCE, FAST_INPUT]
        batched = ev.scenario_candidates_batch(grid, strict=False)
        for config, candidates in zip(grid, batched):
            assert candidates == ev.scenario_candidates(
                config, strict=False
            )

    def test_strict_batch_raises_like_scalar(self):
        ev = DDCEvaluator()
        with pytest.raises(ConfigurationError, match="16/21/8"):
            ev.scenario_candidates_batch([REFERENCE_DDC, OFF_REFERENCE])

    def test_fully_unmappable_config_is_a_clear_error(self):
        """A grid point no model maps must raise a ConfigurationError
        naming the configuration, not hand ScenarioAnalysis an empty
        candidate list to choke on downstream."""
        from repro.archs.montium.model import MontiumModel

        ev = DDCEvaluator([MontiumModel()])
        with pytest.raises(
            ConfigurationError, match="cic5_decimation=42"
        ):
            ev.scenario_candidates(OFF_REFERENCE, strict=False)
        with pytest.raises(
            ConfigurationError, match="cic5_decimation=42"
        ):
            ev.scenario_candidates_batch([OFF_REFERENCE], strict=False)

    def test_all_infeasible_is_a_clear_error_too(self):
        from repro.archs.gpp.arm9 import ARM9Model

        # The ARM maps the reference but cannot sustain it: feasible=False
        # everywhere leaves no candidate, which must be said clearly.
        with pytest.raises(ConfigurationError, match="feasible"):
            DDCEvaluator([ARM9Model()]).scenario_candidates(REFERENCE_DDC)

    def test_shared_evaluator_is_cached_per_process(self):
        assert shared_evaluator() is shared_evaluator()
        assert shared_evaluator().cache is shared_report_cache()
        before = shared_report_cache().hits
        shared_evaluator().evaluate(REFERENCE_DDC)
        shared_evaluator().evaluate(REFERENCE_DDC)
        assert shared_report_cache().hits > before
