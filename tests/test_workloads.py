"""Workload-protocol conformance + registry behaviour.

The parametrized half of this file is the *conformance suite* the
``Workload`` protocol promises: every registered workload — in-tree or
third-party — must pass it unchanged.  It asserts protocol completeness
(axes, chain, formats, mappings all well-formed), the batch == scalar
bit-identity contract through ``run_sweep``/``run_explore``, and config
picklability through a ``repro.parallel`` process pool.

The rest covers the registry (env default, unknown names, duplicate
registration) and the ``engine=``/legacy ``mode=`` deprecation shims.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.config import StageConfig
from repro.core.evaluator import ReportCache, config_cache_key
from repro.errors import ConfigurationError
from repro.explore import ExploreSpec
from repro.explore.refine import run_explore
from repro.sweep import SweepSpec, run_sweep
from repro.workloads import (
    DEFAULT_WORKLOAD,
    ENV_VAR,
    Workload,
    WorkloadMapping,
    available,
    default_name,
    get,
    register,
)
from repro.workloads.base import Workload as BaseWorkload

WORKLOADS = available()


# --------------------------------------------------------------- conformance
@pytest.mark.parametrize("name", WORKLOADS)
class TestWorkloadConformance:
    """Every registered workload honours the full protocol."""

    def test_identity(self, name):
        wl = get(name)
        assert wl.name == name
        assert wl.title
        assert isinstance(wl, BaseWorkload)
        assert get(name) is wl  # registry caches instances

    def test_default_config(self, name):
        wl = get(name)
        cfg = wl.default_config
        assert isinstance(cfg, wl.config_cls)
        assert wl.check_config(cfg) is cfg

    def test_config_rejects_wrong_type(self, name):
        wl = get(name)
        with pytest.raises(ConfigurationError, match="expects a"):
            wl.check_config(object())

    def test_axes_are_config_fields(self, name):
        wl = get(name)
        axes = wl.config_axes()
        field_names = {
            f.name for f in dataclasses.fields(wl.config_cls)
        }
        assert set(axes) == field_names
        assert set(wl.continuous_axes()) <= set(axes)

    def test_default_explore_axis(self, name):
        wl = get(name)
        field, lo, hi = wl.default_explore_axis()
        assert field in wl.continuous_axes()
        assert lo < hi

    def test_scenario_axes_valid_and_feasible(self, name):
        wl = get(name)
        axes = wl.scenario_axes()
        assert axes
        wl.check_axes(tuple(axes.items()), kind="scenario")
        # Every scenario value bound alone to the default config must
        # leave >= 1 feasible architecture (the <name>_sweep bench grid).
        ev = wl.evaluator()
        for field, values in axes.items():
            for value in values:
                cfg = dataclasses.replace(
                    wl.default_config, **{field: value}
                )
                cands = ev.scenario_candidates(cfg, strict=False)
                assert cands, f"{name}: no candidate at {field}={value}"

    def test_chain_and_formats(self, name):
        wl = get(name)
        chain = wl.chain()
        assert chain and all(isinstance(s, StageConfig) for s in chain)
        formats = wl.fixed_formats()
        assert formats
        for label, fmt in formats.items():
            assert isinstance(label, str) and label
            assert fmt.width > 0

    def test_mappings(self, name):
        wl = get(name)
        mappings = wl.mappings()
        assert mappings
        runnable = 0
        for slug, mapping in mappings.items():
            assert isinstance(mapping, WorkloadMapping), slug
            assert mapping.architecture and mapping.description
            if mapping.run is not None:
                runnable += 1
        assert runnable >= 1  # >= 1 executable mapping per workload

    def test_models_fresh_and_evaluator_shared(self, name):
        wl = get(name)
        a, b = wl.models(), wl.models()
        assert len(a) == len(b) >= 1
        assert all(x is not y for x, y in zip(a, b))
        assert wl.shared_evaluator() is wl.shared_evaluator()
        assert wl.evaluator() is not wl.evaluator()

    def test_config_pickles_and_cache_keys(self, name):
        wl = get(name)
        cfg = wl.default_config
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone == cfg
        assert config_cache_key(clone) == config_cache_key(cfg)
        assert config_cache_key(cfg) == tuple(
            getattr(cfg, f.name)
            for f in dataclasses.fields(wl.config_cls)
        )

    def test_sweep_batch_scalar_identity(self, name):
        wl = get(name)
        spec = SweepSpec.from_axes(
            dict(wl.scenario_axes()), duty_cycle_steps=3, workload=name
        )
        batch = run_sweep(spec, engine="batch")
        scalar = run_sweep(spec, engine="scalar")
        assert batch.render("json") == scalar.render("json")
        assert batch.render("csv") == scalar.render("csv")

    def test_explore_adaptive_dense_identity(self, name):
        wl = get(name)
        spec = ExploreSpec(
            coarse_steps=3, target_steps=5, duty_cycle_steps=3,
            workload=name,
        )
        assert spec.axis == wl.default_explore_axis()
        adaptive = run_explore(
            spec, "adaptive", wl.evaluator(cache=ReportCache())
        )
        dense = run_explore(spec, "dense", wl.evaluator())
        assert adaptive.render("json") == dense.render("json")

    def test_sweep_process_pool_identity(self, name):
        spec = SweepSpec.from_axes(
            dict(get(name).scenario_axes()),
            duty_cycle_steps=2,
            workload=name,
        )
        serial = run_sweep(spec)
        pooled = run_sweep(spec, workers=2, backend="process")
        assert serial.render("json") == pooled.render("json")


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_available_lists_builtins(self):
        assert {"ddc", "drm", "ofdm"} <= set(available())

    def test_default_name_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_name() == DEFAULT_WORKLOAD
        monkeypatch.setenv(ENV_VAR, "ofdm")
        assert default_name() == "ofdm"
        assert get().name == "ofdm"
        monkeypatch.setenv(ENV_VAR, "")
        assert default_name() == DEFAULT_WORKLOAD

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            get("nonesuch")

    def test_register_duplicate_and_replace(self):
        class Dummy(Workload):
            name = "ddc"  # collides with the built-in

            def models(self):
                return []

            def default_explore_axis(self):
                return ("x", 0.0, 1.0)

            def scenario_axes(self):
                return {}

            def chain(self, config=None):
                return ()

            def fixed_formats(self, config=None):
                return {}

            def mappings(self):
                return {}

        with pytest.raises(ConfigurationError, match="already registered"):
            register(Dummy())

        class Anon(Dummy):
            name = "abstract"

        with pytest.raises(ConfigurationError, match="non-default name"):
            register(Anon())

    def test_spec_rejects_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            SweepSpec(workload="nonesuch")
        with pytest.raises(ConfigurationError, match="unknown workload"):
            ExploreSpec(workload="nonesuch")

    def test_spec_rejects_cross_workload_config(self):
        ddc_cfg = get("ddc").default_config
        with pytest.raises(ConfigurationError, match="expects a"):
            SweepSpec(base_config=ddc_cfg, workload="ofdm")

    def test_spec_axes_validated_per_workload(self):
        # fir_taps is a DDC field, not an OFDM one.
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            SweepSpec.from_axes({"fir_taps": (63,)}, workload="ofdm")
        SweepSpec.from_axes({"fft_size": (2048,)}, workload="ofdm")

    def test_ddc_shared_evaluator_is_process_singleton(self):
        from repro.core.evaluator import shared_evaluator

        assert get("ddc").shared_evaluator() is shared_evaluator()

    def test_cli_workload_flag(self, capsys):
        from repro.sweep.__main__ import main as sweep_main

        rc = sweep_main(
            ["--workload", "ofdm", "--steps", "2",
             "--axis", "fft_size=2048,4096", "--summary"]
        )
        assert rc == 0
        assert "OFDM" in capsys.readouterr().out

    def test_cli_explore_workload_flag(self, capsys):
        from repro.explore.__main__ import main as explore_main

        rc = explore_main(
            ["--workload", "drm", "--coarse", "2", "--target", "3",
             "--steps", "2", "--summary"]
        )
        assert rc == 0
        assert "DRM" in capsys.readouterr().out


# ------------------------------------------------------- deprecation shims
class TestEngineKwargShims:
    def test_tile_mode_warns_and_matches_engine(self):
        from repro.archs.montium.ddc_mapping import run_ddc_on_tile

        x = (np.arange(2688) % 211 - 105).astype(np.int64)
        with pytest.deprecated_call(match="mode= keyword is deprecated"):
            legacy = run_ddc_on_tile(x, mode="block")
        current = run_ddc_on_tile(x, engine="block")
        np.testing.assert_array_equal(legacy.i, current.i)
        np.testing.assert_array_equal(legacy.q, current.q)
        assert legacy.cycles == current.cycles

    def test_tile_conflicting_spellings_raise(self):
        from repro.archs.montium.ddc_mapping import run_ddc_on_tile

        x = np.zeros(16, dtype=np.int64)
        with pytest.deprecated_call():
            with pytest.raises(ConfigurationError, match="conflicting"):
                run_ddc_on_tile(x, mode="block", engine="step")

    def test_rtl_mode_warns_and_matches_engine(self):
        from repro.archs.fpga.rtl_ddc import RTLDDC

        x = (np.arange(2688) % 97 - 48).astype(np.int64)
        with pytest.deprecated_call(match="mode= keyword is deprecated"):
            legacy = RTLDDC().run(x, mode="block", activity=False)
        current = RTLDDC().run(x, engine="block", activity=False)
        np.testing.assert_array_equal(legacy.i, current.i)
        np.testing.assert_array_equal(legacy.q, current.q)

    def test_rtl_unknown_engine(self):
        from repro.archs.fpga.rtl_ddc import RTLDDC

        with pytest.raises(ConfigurationError, match="unknown RTL run"):
            RTLDDC().run(np.zeros(8, dtype=np.int64), engine="bogus")
