"""Tests for the FPGA resource estimator (Table 4) and power model (Table 5)."""

from __future__ import annotations

import pytest

from repro import REFERENCE_DDC, DDCConfig
from repro.archs.fpga import (
    CYCLONE_I_EP1C3,
    CYCLONE_II_EP2C5,
    CycloneModel,
    FPGAPowerModel,
    estimate_ddc_resources,
)
from repro.archs.fpga.resources import require_fit
from repro.errors import ConfigurationError, MappingError

PUBLISHED_TABLE4 = {
    "EP1C3T100C6": dict(le=1656, mem=6780, mult=0, pins=41),
    "EP2C5T144C6": dict(le=906, mem=7686, mult=8, pins=41),
}

PUBLISHED_TABLE5 = {0.05: 120.9, 0.10: 141.4, 0.50: 305.3, 0.875: 458.9}


class TestTable4:
    @pytest.mark.parametrize("device", [CYCLONE_I_EP1C3, CYCLONE_II_EP2C5])
    def test_le_within_10_percent(self, device):
        got = estimate_ddc_resources(device).logic_elements
        want = PUBLISHED_TABLE4[device.name]["le"]
        assert abs(got - want) / want < 0.10

    @pytest.mark.parametrize("device", [CYCLONE_I_EP1C3, CYCLONE_II_EP2C5])
    def test_memory_within_5_percent(self, device):
        got = estimate_ddc_resources(device).memory_bits
        want = PUBLISHED_TABLE4[device.name]["mem"]
        assert abs(got - want) / want < 0.05

    @pytest.mark.parametrize("device", [CYCLONE_I_EP1C3, CYCLONE_II_EP2C5])
    def test_multipliers_exact(self, device):
        got = estimate_ddc_resources(device).multipliers_9bit
        assert got == PUBLISHED_TABLE4[device.name]["mult"]

    @pytest.mark.parametrize("device", [CYCLONE_I_EP1C3, CYCLONE_II_EP2C5])
    def test_pins_exact(self, device):
        assert estimate_ddc_resources(device).pins == 41

    @pytest.mark.parametrize("device", [CYCLONE_I_EP1C3, CYCLONE_II_EP2C5])
    def test_design_fits_smallest_devices(self, device):
        usage = estimate_ddc_resources(device)
        assert usage.fits(device)
        require_fit(usage, device)  # must not raise

    def test_cyclone_ii_uses_fewer_les(self):
        """Embedded multipliers move logic out of the LE fabric."""
        le1 = estimate_ddc_resources(CYCLONE_I_EP1C3).logic_elements
        le2 = estimate_ddc_resources(CYCLONE_II_EP2C5).logic_elements
        assert le2 < le1 * 0.65

    def test_utilisation_fractions(self):
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
        util = usage.utilisation(CYCLONE_I_EP1C3)
        # Table 4: 56 % LEs, 12 % memory, 63 % pins on the Cyclone I.
        assert util["logic_elements"] == pytest.approx(0.56, abs=0.06)
        assert util["memory_bits"] == pytest.approx(0.12, abs=0.03)
        assert util["pins"] == pytest.approx(0.63, abs=0.05)

    def test_oversized_design_rejected(self):
        cfg = DDCConfig(fir_taps=1999, data_width=16)
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3, cfg)
        with pytest.raises(MappingError):
            require_fit(usage, CYCLONE_I_EP1C3)


class TestTable5:
    def test_cyclone_i_sweep_matches_published(self):
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
        model = FPGAPowerModel(CYCLONE_I_EP1C3)
        for toggle, breakdown in model.table5_sweep(usage):
            want = PUBLISHED_TABLE5[toggle]
            assert breakdown.total_mw == pytest.approx(want, rel=0.02)

    def test_cyclone_i_static_constant(self):
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
        model = FPGAPowerModel(CYCLONE_I_EP1C3)
        sweeps = model.table5_sweep(usage)
        for _, b in sweeps:
            assert b.static_w == pytest.approx(0.048)

    def test_cyclone_ii_published_point(self):
        usage = estimate_ddc_resources(CYCLONE_II_EP2C5)
        b = FPGAPowerModel(CYCLONE_II_EP2C5).estimate(usage)
        assert b.total_mw == pytest.approx(57.98, rel=0.02)
        assert b.static_w * 1e3 == pytest.approx(26.86, rel=1e-6)
        assert b.dynamic_w * 1e3 == pytest.approx(31.11, rel=0.03)

    def test_dynamic_linear_in_toggle(self):
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
        model = FPGAPowerModel(CYCLONE_I_EP1C3)
        b1 = model.estimate(usage, internal_toggle=0.2)
        b2 = model.estimate(usage, internal_toggle=0.4)
        b3 = model.estimate(usage, internal_toggle=0.6)
        step1 = b2.total_w - b1.total_w
        step2 = b3.total_w - b2.total_w
        assert step1 == pytest.approx(step2, rel=1e-9)

    def test_power_scales_with_frequency(self):
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
        model = FPGAPowerModel(CYCLONE_I_EP1C3)
        full = model.estimate(usage, frequency_hz=64.512e6)
        half = model.estimate(usage, frequency_hz=32.256e6)
        assert half.dynamic_w == pytest.approx(full.dynamic_w / 2, rel=1e-9)
        assert half.static_w == full.static_w

    def test_toggle_validation(self):
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
        model = FPGAPowerModel(CYCLONE_I_EP1C3)
        with pytest.raises(ConfigurationError):
            model.estimate(usage, internal_toggle=1.5)
        with pytest.raises(ConfigurationError):
            model.estimate(usage, frequency_hz=-1.0)

    def test_estimate_batch_bit_identical_to_scalar(self):
        """The numpy batch path reproduces each scalar estimate exactly."""
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
        model = FPGAPowerModel(CYCLONE_I_EP1C3)
        toggles = [0.0, 0.05, 0.10, 0.50, 0.875, 1.0]
        batch = model.estimate_batch(usage, toggles)
        for t, b in zip(toggles, batch):
            scalar = model.estimate(usage, internal_toggle=t)
            assert b == scalar  # dataclass equality: every field bitwise

    def test_estimate_batch_validation(self):
        usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
        model = FPGAPowerModel(CYCLONE_I_EP1C3)
        with pytest.raises(ConfigurationError):
            model.estimate_batch(usage, [])
        with pytest.raises(ConfigurationError):
            model.estimate_batch(usage, [0.1, 1.2])


class TestCycloneModel:
    def test_implement_reference(self):
        report = CycloneModel(CYCLONE_II_EP2C5).implement(REFERENCE_DDC)
        assert report.feasible
        assert report.power_w == pytest.approx(0.05798, rel=0.02)
        assert report.clock_hz == REFERENCE_DDC.input_rate_hz

    def test_cyclone_i_feasible_at_64mhz(self):
        """Section 5.2.1: Cyclone I fmax 66.08 MHz > 64.512 MHz."""
        report = CycloneModel(CYCLONE_I_EP1C3).implement(REFERENCE_DDC)
        assert report.feasible

    def test_supports_checks_timing(self):
        model = CycloneModel(CYCLONE_I_EP1C3)
        fast = DDCConfig(input_rate_hz=100e6)
        assert not model.supports(fast)

    def test_dynamic_power_component(self):
        model = CycloneModel(CYCLONE_II_EP2C5)
        dyn = model.dynamic_power_w(REFERENCE_DDC)
        assert dyn == pytest.approx(0.03111, rel=0.03)


class TestBatchedResourceEstimator:
    """estimate_ddc_resources_batch is bit-identical to the scalar
    estimator, degenerate word-length errors included."""

    @pytest.mark.parametrize("device", [CYCLONE_I_EP1C3, CYCLONE_II_EP2C5])
    def test_matches_scalar_over_a_grid(self, device):
        from repro.archs.fpga.resources import estimate_ddc_resources_batch

        configs = [
            DDCConfig(data_width=w, fir_taps=taps)
            for w in (8, 12, 16, 20)
            for taps in (1, 63, 125)
        ]
        usages, errors = estimate_ddc_resources_batch(device, configs)
        for config, usage, error in zip(configs, usages, errors):
            try:
                want = estimate_ddc_resources(device, config)
            except ConfigurationError as exc:
                assert usage is None
                assert type(error) is type(exc) and str(error) == str(exc)
            else:
                assert error is None and usage == want

    def test_empty_batch(self):
        from repro.archs.fpga.resources import estimate_ddc_resources_batch

        assert estimate_ddc_resources_batch(CYCLONE_I_EP1C3, []) == ([], [])

    def test_dynamic_power_batch_matches_scalar(self):
        model = CycloneModel(CYCLONE_II_EP2C5)
        configs = [DDCConfig(data_width=w) for w in (8, 12, 14)]
        batch = model.dynamic_power_batch(configs)
        assert batch == [model.dynamic_power_w(c) for c in configs]
