"""Tests for the NCO (Section 2.1) and the complex mixer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.metrics import sfdr_db
from repro.dsp.mixer import Mixer, mix_to_baseband
from repro.dsp.nco import NCO, NCOMode, nco_sfdr_estimate_db
from repro.errors import ConfigurationError

FS = 64_512_000.0


class TestNCOConstruction:
    def test_defaults(self):
        nco = NCO(FS, 1e6)
        assert nco.mode is NCOMode.LUT

    def test_rejects_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            NCO(FS, FS)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            NCO(-1.0, 100.0)

    def test_rejects_bad_phase_bits(self):
        with pytest.raises(ConfigurationError):
            NCO(FS, 1e6, phase_bits=2)

    def test_frequency_resolution(self):
        nco = NCO(FS, 1e6, phase_bits=32)
        assert nco.frequency_resolution_hz == pytest.approx(FS / 2**32)

    def test_actual_frequency_close_to_requested(self):
        nco = NCO(FS, 1e6)
        assert abs(nco.actual_frequency_hz - 1e6) <= nco.frequency_resolution_hz

    def test_negative_frequency(self):
        nco = NCO(FS, -1e6)
        assert nco.actual_frequency_hz == pytest.approx(-1e6, abs=1.0)


class TestNCOOutput:
    def test_amplitude_bounded(self):
        nco = NCO(FS, 5e6)
        cos_v, sin_v = nco.generate(4096)
        assert np.abs(cos_v).max() <= 1.0
        assert np.abs(sin_v).max() <= 1.0

    def test_quadrature_relationship(self):
        """cos^2 + sin^2 ~ 1 for a quarter-shifted same-table pair."""
        nco = NCO(FS, 3e6, lut_addr_bits=12)
        cos_v, sin_v = nco.generate(8192)
        mag = cos_v**2 + sin_v**2
        assert np.abs(mag - 1.0).max() < 0.01

    def test_frequency_accuracy_fft(self):
        n = 1 << 14
        f = FS / 64  # bin-exact
        nco = NCO(FS, f)
        cos_v, _ = nco.generate(n)
        spec = np.abs(np.fft.rfft(cos_v * np.hanning(n)))
        peak = np.argmax(spec)
        assert peak == pytest.approx(f / FS * n, abs=1)

    def test_phase_continuity_across_blocks(self):
        nco1 = NCO(FS, 7e6)
        whole_c, whole_s = nco1.generate(1000)
        nco2 = NCO(FS, 7e6)
        c1, s1 = nco2.generate(400)
        c2, s2 = nco2.generate(600)
        np.testing.assert_allclose(np.concatenate([c1, c2]), whole_c)
        np.testing.assert_allclose(np.concatenate([s1, s2]), whole_s)

    def test_reset(self):
        nco = NCO(FS, 7e6)
        a, _ = nco.generate(100)
        nco.reset()
        b, _ = nco.generate(100)
        np.testing.assert_allclose(a, b)

    def test_retune_takes_effect(self):
        nco = NCO(FS, 1e6)
        nco.retune(2e6)
        assert nco.actual_frequency_hz == pytest.approx(2e6, abs=1.0)

    def test_retune_rejects_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            NCO(FS, 1e6).retune(FS)

    def test_quarter_wave_table_matches_full(self):
        full = NCO(FS, 5e6, lut_addr_bits=10, quarter_wave=False)
        quarter = NCO(FS, 5e6, lut_addr_bits=10, quarter_wave=True)
        cf, sf = full.generate(2048)
        cq, sq = quarter.generate(2048)
        np.testing.assert_allclose(cq, cf, atol=1e-12)
        np.testing.assert_allclose(sq, sf, atol=1e-12)

    def test_taylor_mode_matches_ideal(self):
        nco = NCO(FS, 5e6, mode=NCOMode.TAYLOR, taylor_order=5)
        cos_v, sin_v = nco.generate(4096)
        phases = 2 * np.pi * np.arange(4096) * nco._fcw / 2**32
        np.testing.assert_allclose(sin_v, np.sin(phases), atol=1e-8)
        np.testing.assert_allclose(cos_v, np.cos(phases), atol=1e-8)

    def test_taylor_low_order_is_worse(self):
        hi = NCO(FS, 5e6, mode=NCOMode.TAYLOR, taylor_order=6)
        lo = NCO(FS, 5e6, mode=NCOMode.TAYLOR, taylor_order=1)
        ch, _ = hi.generate(4096)
        cl, _ = lo.generate(4096)
        phases = 2 * np.pi * np.arange(4096) * hi._fcw / 2**32
        err_hi = np.abs(ch - np.cos(phases)).max()
        err_lo = np.abs(cl - np.cos(phases)).max()
        assert err_lo > err_hi

    def test_sfdr_improves_with_lut_size(self):
        n = 1 << 14
        f = 1.234e6
        small = NCO(FS, f, lut_addr_bits=6)
        large = NCO(FS, f, lut_addr_bits=12)
        sf_small = sfdr_db(small.generate(n)[0])
        sf_large = sfdr_db(large.generate(n)[0])
        assert sf_large > sf_small + 20

    def test_sfdr_meets_rule_of_thumb(self):
        n = 1 << 15
        nco = NCO(FS, 1.234e6, lut_addr_bits=10)
        measured = sfdr_db(nco.generate(n)[0])
        # Phase-truncation bound ~ 6.02*10 = 60 dB; allow measurement slack.
        assert measured >= nco_sfdr_estimate_db(10) - 8

    def test_amplitude_quantisation(self):
        nco = NCO(FS, 1e6, amplitude_bits=12)
        cos_v, _ = nco.generate(1024)
        # Every sample is on the 2**-11 grid.
        np.testing.assert_allclose(
            cos_v, np.round(cos_v * 2**11) / 2**11, atol=1e-12
        )

    def test_generate_complex_convention(self):
        """generate_complex must be cos - j*sin (down-conversion)."""
        nco = NCO(FS, 5e6)
        z = nco.generate_complex(512)
        nco.reset()
        c, s = nco.generate(512)
        np.testing.assert_allclose(z, c - 1j * s)

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            NCO(FS, 1e6).generate(-1)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(-0.49, 0.49))
    def test_phase_accumulator_never_escapes(self, rel_freq):
        nco = NCO(FS, rel_freq * FS)
        words = nco.phases(257)
        assert (words >= 0).all() and (words < 2**32).all()


class TestMixer:
    def test_matches_ideal_mix(self):
        nco = NCO(FS, 5e6, lut_addr_bits=14)
        mixer = Mixer(nco)
        rng = np.random.default_rng(1)
        x = rng.normal(size=4096)
        got = mixer.process(x)
        want = mix_to_baseband(x, FS, nco.actual_frequency_hz)
        # LUT quantisation limits agreement; correlation must be ~1.
        err = np.abs(got - want).max()
        assert err < 2e-3

    def test_iq_split(self):
        nco = NCO(FS, 5e6)
        mixer = Mixer(nco)
        x = np.ones(128)
        i, q = mixer.process_iq(x)
        nco.reset()
        c, s = nco.generate(128)
        np.testing.assert_allclose(i, c)
        np.testing.assert_allclose(q, -s)

    def test_tone_lands_at_baseband(self):
        """Mixing a tone at the LO frequency produces (near-)DC."""
        f = FS / 32
        n = 1 << 12
        t = np.arange(n) / FS
        x = np.cos(2 * np.pi * f * t)
        y = mix_to_baseband(x, FS, f)
        # Mean of the complex baseband is 0.5 (the DC image), the 2f image
        # averages out.
        assert np.abs(y.mean() - 0.5) < 1e-3

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            Mixer(NCO(FS, 1e6)).process(np.zeros((2, 2)))
