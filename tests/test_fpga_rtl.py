"""Tests for the FPGA RTL components (Fig. 5) and full-DDC bit-exactness."""

from __future__ import annotations

import numpy as np
import pytest

from repro import REFERENCE_DDC, FixedDDC
from repro.archs.fpga import RTLDDC
from repro.archs.fpga.rtl_cic import RTLCIC
from repro.archs.fpga.rtl_fir import RTLPolyphaseFIR
from repro.archs.fpga.rtl_nco import build_sine_rom
from repro.dsp.cic import FixedCICDecimator
from repro.dsp.fir import FixedPolyphaseDecimator
from repro.dsp.firdesign import quantize_taps, reference_fir_taps
from repro.dsp.signals import quantize_to_adc, tone
from repro.errors import ConfigurationError
from repro.simkernel import ClockDomain, Component, Simulator, Wire


class _Feeder(Component):
    """Drives a data/valid pair from a list, one element per cycle."""

    def __init__(self, name, data: Wire, valid: Wire, samples, every: int = 1):
        super().__init__(name)
        self.add_output("d", data)
        self.add_output("v", valid)
        self.samples = list(samples)
        self.every = every
        self._i = 0
        self._phase = 0

    def tick(self, cycle):
        if self._i < len(self.samples) and self._phase == 0:
            self.write("d", int(self.samples[self._i]))
            self.write("v", 1)
            self._i += 1
        else:
            self.write("v", 0)
        self._phase = (self._phase + 1) % self.every


class _Collector(Component):
    """Collects data words gated by a valid line."""

    def __init__(self, name, data: Wire, valid: Wire):
        super().__init__(name)
        self.add_input("d", data)
        self.add_input("v", valid)
        self.values: list[int] = []

    def tick(self, cycle):
        if self.read("v"):
            self.values.append(self.read("d"))


class TestSineROM:
    def test_length(self):
        assert len(build_sine_rom(8, 12)) == 256

    def test_range(self):
        rom = build_sine_rom(10, 12)
        assert max(rom) <= 2047 and min(rom) >= -2048

    def test_quarter_symmetry(self):
        rom = build_sine_rom(10, 12)
        n = len(rom)
        for k in range(0, n // 4, 37):
            assert rom[k] == rom[n // 2 - 1 - k]
            assert rom[k] == -rom[n // 2 + k]


class TestRTLCICUnit:
    def _run(self, samples, order, decimation, width=12):
        sim = Simulator(ClockDomain("clk", 64.512e6))
        x = sim.wire("x", width)
        xv = sim.wire("xv", 1)
        y = sim.wire("y", width)
        yv = sim.wire("yv", 1)
        from repro.fixedpoint import cic_bit_growth

        g = width + cic_bit_growth(order, decimation)
        sim.add(_Feeder("src", x, xv, samples))
        sim.add(RTLCIC("cic", x, xv, y, yv, sim.wire("ip", g),
                       sim.wire("cp", g), order, decimation, width))
        col = sim.add(_Collector("col", y, yv))
        sim.step(len(samples) + 8)
        return np.array(col.values, dtype=np.int64)

    @pytest.mark.parametrize("order,decimation", [(2, 16), (5, 21), (1, 4)])
    def test_matches_fixed_cic(self, order, decimation, rng):
        n = decimation * 25
        x = rng.integers(-2048, 2048, size=n).astype(np.int64)
        got = self._run(x, order, decimation)
        want = FixedCICDecimator(order, decimation, input_width=12).process(x)
        np.testing.assert_array_equal(got, want[: len(got)])
        assert len(got) >= len(want) - 1

    def test_valid_gaps_ignored(self, rng):
        """Invalid cycles between samples must not disturb the filter."""
        sim = Simulator(ClockDomain("clk", 64.512e6))
        x = sim.wire("x", 12)
        xv = sim.wire("xv", 1)
        y = sim.wire("y", 12)
        yv = sim.wire("yv", 1)
        from repro.fixedpoint import cic_bit_growth

        g = 12 + cic_bit_growth(2, 4)
        data = rng.integers(-2048, 2048, size=40).astype(np.int64)
        sim.add(_Feeder("src", x, xv, data, every=3))  # 1 valid per 3 cycles
        sim.add(RTLCIC("cic", x, xv, y, yv, sim.wire("ip", g),
                       sim.wire("cp", g), 2, 4, 12))
        col = sim.add(_Collector("col", y, yv))
        sim.step(len(data) * 3 + 8)
        want = FixedCICDecimator(2, 4, input_width=12).process(data)
        np.testing.assert_array_equal(np.array(col.values), want[: len(col.values)])


class TestRTLFIRUnit:
    def test_matches_fixed_polyphase(self, rng):
        taps = reference_fir_taps(25, 192e3, 24e3, compensate_cic5=False)
        raw, fmt = quantize_taps(taps, 12)
        decim = 4
        n = decim * 30
        x = rng.integers(-2048, 2048, size=n).astype(np.int64)

        sim = Simulator(ClockDomain("clk", 64.512e6))
        xd = sim.wire("x", 12)
        xv = sim.wire("xv", 1)
        y = sim.wire("y", 12)
        yv = sim.wire("yv", 1)
        # inputs spaced >= taps+2 cycles apart so MAC never collides
        sim.add(_Feeder("src", xd, xv, x, every=30))
        fir = sim.add(
            RTLPolyphaseFIR("fir", xd, xv, y, yv, sim.wire("acc", 31),
                            sim.wire("addr", 8), raw, decim, 12,
                            output_shift=max(0, fmt.frac))
        )
        col = sim.add(_Collector("col", y, yv))
        sim.step(n * 30 + 60)

        want = FixedPolyphaseDecimator(
            raw, decim, output_shift=max(0, fmt.frac)
        ).process(x)
        np.testing.assert_array_equal(np.array(col.values), want)
        assert fir.cycles_per_output() == 26

    def test_mac_busy_collision_detected(self, rng):
        """Feeding faster than the MAC loop must raise, not corrupt."""
        from repro.errors import SimulationError

        raw = np.ones(50, dtype=np.int64)
        sim = Simulator(ClockDomain("clk", 64.512e6))
        xd = sim.wire("x", 12)
        xv = sim.wire("xv", 1)
        y = sim.wire("y", 12)
        yv = sim.wire("yv", 1)
        sim.add(_Feeder("src", xd, xv, [1] * 60, every=1))
        sim.add(RTLPolyphaseFIR("fir", xd, xv, y, yv, sim.wire("acc", 30),
                                sim.wire("addr", 8), raw, 1, 12))
        with pytest.raises(SimulationError):
            sim.step(60)


class TestRTLDDCBitTrue:
    """The FPGA top level must agree with FixedDDC word-for-word."""

    @pytest.fixture(scope="class")
    def run_pair(self):
        n = 2688 * 6
        cfg = REFERENCE_DDC
        xf = tone(n, cfg.nco_frequency_hz + 5_000.0, cfg.input_rate_hz, 0.8)
        x = quantize_to_adc(xf, 12)
        rtl = RTLDDC(cfg)
        rtl_out = rtl.run(x)
        fixed = FixedDDC(cfg)
        i_ref, q_ref = fixed.process(x)
        return rtl_out, i_ref, q_ref

    def test_i_rail_bit_exact(self, run_pair):
        rtl_out, i_ref, _ = run_pair
        n = min(len(rtl_out.i), len(i_ref))
        assert n >= 5
        np.testing.assert_array_equal(rtl_out.i[:n], i_ref[:n])

    def test_q_rail_bit_exact(self, run_pair):
        rtl_out, _, q_ref = run_pair
        n = min(len(rtl_out.q), len(q_ref))
        np.testing.assert_array_equal(rtl_out.q[:n], q_ref[:n])

    def test_output_count(self, run_pair):
        rtl_out, i_ref, _ = run_pair
        assert abs(len(rtl_out.i) - len(i_ref)) <= 1

    def test_activity_report_nonempty(self, run_pair):
        rtl_out, _, _ = run_pair
        assert 0.0 < rtl_out.activity.mean_toggle_rate < 1.0

    def test_adc_wire_near_half_toggle(self, run_pair):
        """Random-ish tone input toggles the input bus substantially.

        The paper assumes 50 % input toggling for random data; a full-scale
        tone gives a bit less.
        """
        rtl_out, _, _ = run_pair
        adc = rtl_out.activity.by_name("adc")
        assert 0.15 < adc.toggle_rate < 0.65

    def test_rejects_float_input(self):
        with pytest.raises(ConfigurationError):
            RTLDDC().run(np.zeros(16))

    def test_reset_reproduces(self):
        n = 2688 * 2
        x = quantize_to_adc(
            tone(n, 10e6, REFERENCE_DDC.input_rate_hz, 0.5), 12
        )
        rtl = RTLDDC()
        a = rtl.run(x)
        rtl.reset()
        b = rtl.run(x)
        np.testing.assert_array_equal(a.i, b.i)
        np.testing.assert_array_equal(a.q, b.q)
