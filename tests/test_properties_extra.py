"""Extra property-based tests on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.dsp.cic import CICDecimator, FixedCICDecimator
from repro.dsp.fir import PolyphaseDecimator
from repro.dsp.nco import NCO
from repro.dsp.response import cic_response
from repro.fixedpoint import (
    QFormat,
    from_fixed,
    quantize,
    requantize,
    saturate,
    to_fixed,
    wrap,
)

FS = 64_512_000.0


class TestFixedPointAlgebra:
    @given(
        st.integers(2, 30), st.integers(-4, 30),
        st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_saturate_idempotent(self, width, frac, values):
        fmt = QFormat(width, frac)
        once = saturate(np.array(values), fmt)
        twice = saturate(once, fmt)
        np.testing.assert_array_equal(once, twice)

    @given(
        st.integers(2, 30),
        st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_wrap_idempotent(self, width, values):
        fmt = QFormat(width, 0)
        once = wrap(np.array(values), fmt)
        twice = wrap(once, fmt)
        np.testing.assert_array_equal(once, twice)

    @given(
        st.integers(3, 24), st.integers(0, 20),
        st.lists(st.integers(-(2**30), 2**30), min_size=1, max_size=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantize_monotone(self, width, shift, values):
        """Truncation preserves order."""
        arr = np.sort(np.array(values))
        out = quantize(arr, shift)
        assert (np.diff(out) >= 0).all()

    @given(st.floats(-1.0, 1.0, allow_nan=False), st.integers(4, 24))
    @settings(max_examples=60, deadline=None)
    def test_more_bits_never_worse(self, v, width):
        """Quantisation error is non-increasing in word length."""
        narrow = QFormat(width, width - 1)
        wide = QFormat(width + 4, width + 3)
        err_n = abs(float(from_fixed(to_fixed(v, narrow), narrow)) - v)
        err_w = abs(float(from_fixed(to_fixed(v, wide), wide)) - v)
        assert err_w <= err_n + 1e-15

    @given(
        st.integers(-2048, 2047),
        st.integers(0, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_requantize_widen_is_lossless(self, raw, extra):
        src = QFormat(12, 11)
        dst = QFormat(12 + extra, 11 + extra)
        out = requantize(np.array([raw]), src, dst)
        back = requantize(out, dst, src)
        assert back[0] == raw


class TestCICProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        order=st.integers(1, 4),
        decimation=st.integers(1, 12),
        seed=st.integers(0, 2**16),
    )
    def test_time_invariance_by_R_shift(self, order, decimation, seed):
        """Shifting the input by R samples shifts the output by 1 sample."""
        rng = np.random.default_rng(seed)
        n = decimation * 20
        x = rng.normal(size=n)
        y1 = CICDecimator(order, decimation).process(x)
        shifted = np.concatenate([np.zeros(decimation), x])[:n]
        y2 = CICDecimator(order, decimation).process(shifted)
        np.testing.assert_allclose(y2[1:], y1[: len(y2) - 1],
                                   rtol=1e-9, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        order=st.integers(1, 3),
        decimation=st.integers(2, 10),
        scale=st.integers(1, 1000),
    )
    def test_fixed_cic_dc_gain_exact(self, order, decimation, scale):
        """Steady-state DC out = floor(in * gain / 2**shift)."""
        f = FixedCICDecimator(order, decimation, input_width=12)
        x = np.full(decimation * (decimation + order + 50), scale,
                    dtype=np.int64)
        y = f.process(x)
        want = (scale * f.gain_int()) >> f.truncation_shift \
            if hasattr(f, "gain_int") else \
            (scale * (decimation ** order)) >> f.truncation_shift
        assert y[-1] == want

    @settings(max_examples=20, deadline=None)
    @given(order=st.integers(1, 4), decimation=st.integers(2, 16))
    def test_response_null_at_fs_over_R(self, order, decimation):
        """The CIC's first null protects the band folding to DC."""
        h = cic_response(
            np.array([FS / decimation]), order, decimation, FS
        )
        assert abs(h[0]) < 1e-9

    @settings(max_examples=20, deadline=None)
    @given(decimation=st.integers(2, 16))
    def test_higher_order_attenuates_more(self, decimation):
        f = np.array([FS / decimation * 0.9])
        h2 = abs(cic_response(f, 2, decimation, FS)[0])
        h5 = abs(cic_response(f, 5, decimation, FS)[0])
        assert h5 < h2


class TestPolyphaseProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_taps=st.integers(1, 24),
        decimation=st.integers(1, 8),
        seed=st.integers(0, 2**16),
    )
    def test_linearity(self, n_taps, decimation, seed):
        rng = np.random.default_rng(seed)
        taps = rng.normal(size=n_taps)
        x1 = rng.normal(size=decimation * 12)
        x2 = rng.normal(size=decimation * 12)
        a, b = 1.7, -0.3
        y_sum = PolyphaseDecimator(taps, decimation).process(a * x1 + b * x2)
        y1 = PolyphaseDecimator(taps, decimation).process(x1)
        y2 = PolyphaseDecimator(taps, decimation).process(x2)
        np.testing.assert_allclose(y_sum, a * y1 + b * y2,
                                   rtol=1e-9, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        n_taps=st.integers(1, 24),
        decimation=st.integers(1, 8),
    )
    def test_impulse_recovers_taps(self, n_taps, decimation):
        """Impulse response sampled at the output rate = every D-th tap."""
        rng = np.random.default_rng(n_taps * 31 + decimation)
        taps = rng.normal(size=n_taps)
        p = PolyphaseDecimator(taps, decimation)
        impulse = np.zeros(n_taps * decimation + decimation)
        impulse[0] = 1.0
        y = p.process(impulse)
        want = taps[::decimation]
        np.testing.assert_allclose(y[: len(want)], want, atol=1e-12)


class TestNCOProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        k=st.integers(1, 200),
        phase_bits=st.integers(16, 32),
    )
    def test_fcw_exact_for_power_of_two_ratios(self, k, phase_bits):
        """Frequencies of the form k*fs/2**m are produced exactly."""
        fs = 1 << 22
        freq = k * fs / 2**10
        assume(freq < fs / 2)
        nco = NCO(float(fs), freq, phase_bits=phase_bits)
        assert nco.actual_frequency_hz == pytest.approx(freq, abs=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(n1=st.integers(0, 300), n2=st.integers(0, 300))
    def test_block_concatenation(self, n1, n2):
        nco_a = NCO(FS, 7.1e6)
        whole_c, whole_s = nco_a.generate(n1 + n2)
        nco_b = NCO(FS, 7.1e6)
        c1, s1 = nco_b.generate(n1)
        c2, s2 = nco_b.generate(n2)
        np.testing.assert_allclose(np.concatenate([c1, c2]), whole_c)
        np.testing.assert_allclose(np.concatenate([s1, s2]), whole_s)
