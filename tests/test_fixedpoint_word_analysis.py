"""Tests for FixedWord and the bit-growth analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, FixedPointError
from repro.fixedpoint import (
    FixedWord,
    Overflow,
    QFormat,
    cic_bit_growth,
    cic_gain,
    fir_accumulator_bits,
    growth_schedule,
)
from repro.fixedpoint.analysis import measured_peak_growth

Q12F = QFormat(12, 11)


class TestFixedWord:
    def test_from_real(self):
        w = FixedWord.from_real(0.5, Q12F)
        assert w.value == pytest.approx(0.5, abs=Q12F.scale)

    def test_zero(self):
        assert FixedWord.zero(Q12F).raw == 0

    def test_out_of_range_raw_rejected(self):
        with pytest.raises(FixedPointError):
            FixedWord(5000, Q12F)

    def test_add(self):
        a = FixedWord.from_real(0.25, Q12F)
        b = FixedWord.from_real(0.25, Q12F)
        assert (a + b).value == pytest.approx(0.5, abs=2 * Q12F.scale)

    def test_add_saturates(self):
        a = FixedWord.from_real(0.9, Q12F)
        out = a.add(a)
        assert out.raw == Q12F.max_raw

    def test_add_wraps(self):
        a = FixedWord.from_real(0.9, Q12F)
        out = a.add(a, overflow=Overflow.WRAP)
        assert out.raw < 0

    def test_sub(self):
        a = FixedWord.from_real(0.5, Q12F)
        b = FixedWord.from_real(0.25, Q12F)
        assert (a - b).value == pytest.approx(0.25, abs=2 * Q12F.scale)

    def test_mul_grows_format(self):
        a = FixedWord.from_real(0.5, Q12F)
        out = a * a
        assert out.fmt.width == 24
        assert out.value == pytest.approx(0.25, abs=2**-20)

    def test_mul_type_error(self):
        with pytest.raises(FixedPointError):
            FixedWord.zero(Q12F).mul(1.0)  # type: ignore[arg-type]

    def test_mismatched_frac_rejected(self):
        a = FixedWord.zero(QFormat(12, 11))
        b = FixedWord.zero(QFormat(12, 10))
        with pytest.raises(FixedPointError):
            a.add(b)

    def test_neg(self):
        a = FixedWord.from_real(0.5, Q12F)
        assert (-a).value == pytest.approx(-0.5, abs=Q12F.scale)

    def test_cast_narrows(self):
        a = FixedWord.from_real(0.5, QFormat(24, 22))
        out = a.cast(Q12F)
        assert out.fmt == Q12F
        assert out.value == pytest.approx(0.5, abs=Q12F.scale)

    def test_float_conversion(self):
        assert float(FixedWord.from_real(-0.25, Q12F)) == pytest.approx(
            -0.25, abs=Q12F.scale
        )

    @given(st.floats(-0.99, 0.99), st.floats(-0.99, 0.99))
    def test_mul_matches_real_product(self, x, y):
        a = FixedWord.from_real(x, Q12F)
        b = FixedWord.from_real(y, Q12F)
        assert (a * b).value == pytest.approx(x * y, abs=2e-3)


class TestBitGrowth:
    def test_cic_gain_reference_cic2(self):
        assert cic_gain(2, 16) == 256

    def test_cic_gain_reference_cic5(self):
        assert cic_gain(5, 21) == 21**5

    def test_cic2_growth_is_8_bits(self):
        assert cic_bit_growth(2, 16) == 8

    def test_cic5_growth_is_22_bits(self):
        # ceil(5 * log2(21)) = ceil(21.96) = 22
        assert cic_bit_growth(5, 21) == 22

    def test_diff_delay_increases_growth(self):
        assert cic_bit_growth(2, 16, diff_delay=2) == 10

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            cic_bit_growth(0, 16)

    def test_fir_accumulator_is_31_bits_for_paper_fir(self):
        # 12-bit data x 12-bit coeffs x 124 taps -> the paper's 31-bit bus.
        assert fir_accumulator_bits(12, 12, 124) == 31

    def test_fir_accumulator_single_tap(self):
        assert fir_accumulator_bits(12, 12, 1) == 24

    def test_growth_schedule_reference_chain(self):
        sched = growth_schedule(
            QFormat(12, 11),
            [("CIC2", 2, 16), ("CIC5", 5, 21)],
            fir_taps=124,
        )
        assert [s.name for s in sched] == ["CIC2", "CIC5", "FIR124"]
        assert sched[0].internal_width == 20
        assert sched[1].internal_width == 34
        assert sched[2].internal_width == 31

    def test_measured_growth_empty(self):
        assert measured_peak_growth(np.array([]), QFormat(12, 0)) == 0

    def test_measured_growth_detects_overflow_need(self):
        fmt = QFormat(12, 0)
        samples = np.array([8000])  # needs 14 bits incl. sign -> growth 2
        assert measured_peak_growth(samples, fmt) == 2

    @given(st.integers(1, 6), st.integers(2, 64))
    def test_growth_bounds_gain(self, order, decimation):
        """2**growth must be >= gain (growth is the ceil of log2(gain))."""
        growth = cic_bit_growth(order, decimation)
        assert 2**growth >= cic_gain(order, decimation)
        assert 2 ** (growth - 1) < cic_gain(order, decimation) or growth == 0
