"""Tests for stimuli generators, quality metrics and the streaming protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.chain import Chain
from repro.dsp.cic import CICDecimator
from repro.dsp.metrics import (
    enob,
    rms_error,
    sfdr_db,
    snr_db,
    tone_power_db,
)
from repro.dsp.signals import (
    chirp,
    complex_tone,
    drm_like_ofdm,
    gsm_like_burst,
    multi_tone,
    quantize_to_adc,
    tone,
    white_noise,
)
from repro.dsp.streaming import FnBlock, Tap, stream_in_blocks
from repro.errors import ConfigurationError

FS = 64_512_000.0


class TestSignals:
    def test_tone_amplitude(self):
        x = tone(1000, 1e6, FS, amplitude=0.5)
        assert np.abs(x).max() <= 0.5 + 1e-12

    def test_tone_frequency(self):
        n = 4096
        f = FS / 64
        x = tone(n, f, FS)
        spec = np.abs(np.fft.rfft(x))
        assert np.argmax(spec) == n // 64

    def test_complex_tone_unit_modulus(self):
        z = complex_tone(512, 1e6, FS)
        np.testing.assert_allclose(np.abs(z), 1.0)

    def test_multi_tone_superposition(self):
        x = multi_tone(256, [1e6, 2e6], FS, [0.5, 0.25])
        y = tone(256, 1e6, FS, 0.5) + tone(256, 2e6, FS, 0.25)
        np.testing.assert_allclose(x, y)

    def test_multi_tone_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            multi_tone(16, [1e6], FS, [0.5, 0.5])

    def test_chirp_sweeps(self):
        x = chirp(1 << 14, 1e6, 10e6, FS)
        # Energy at the end of the block sits at higher frequency than the
        # beginning: compare zero-crossing density.
        first = np.sum(np.abs(np.diff(np.sign(x[:2048]))) > 0)
        last = np.sum(np.abs(np.diff(np.sign(x[-2048:]))) > 0)
        assert last > first * 2

    def test_white_noise_rms(self):
        x = white_noise(100_000, rms=0.25, seed=1)
        assert np.std(x) == pytest.approx(0.25, rel=0.05)

    def test_white_noise_reproducible(self):
        np.testing.assert_allclose(white_noise(64, seed=3), white_noise(64, seed=3))

    def test_drm_is_real_and_in_band(self):
        x = drm_like_ofdm(1 << 14, FS, 10e6, seed=7)
        assert np.isrealobj(x)
        spec = np.abs(np.fft.rfft(x * np.hanning(len(x))))
        freqs = np.fft.rfftfreq(len(x), 1 / FS)
        peak = freqs[np.argmax(spec)]
        assert abs(peak - 10e6) < 20e3

    def test_drm_bandwidth(self):
        n = 1 << 15
        x = drm_like_ofdm(n, FS, 10e6, bandwidth_hz=10_000.0, seed=7)
        spec = np.abs(np.fft.rfft(x * np.hanning(n))) ** 2
        freqs = np.fft.rfftfreq(n, 1 / FS)
        in_band = spec[(freqs > 10e6 - 8e3) & (freqs < 10e6 + 8e3)].sum()
        out_band = spec[(freqs > 10e6 + 50e3) | (freqs < 10e6 - 50e3)].sum()
        assert in_band > 10 * out_band

    def test_drm_rms(self):
        x = drm_like_ofdm(1 << 13, FS, 10e6, rms=0.2, seed=1)
        assert np.sqrt(np.mean(x**2)) == pytest.approx(0.2, rel=1e-6)

    def test_gsm_constant_envelope_at_carrier(self):
        x = gsm_like_burst(1 << 13, FS, 10e6, seed=2)
        assert np.abs(x).max() <= 0.5 + 1e-9

    def test_gsm_energy_near_carrier(self):
        n = 1 << 15
        x = gsm_like_burst(n, FS, 10e6, seed=2)
        spec = np.abs(np.fft.rfft(x * np.hanning(n))) ** 2
        freqs = np.fft.rfftfreq(n, 1 / FS)
        near = spec[np.abs(freqs - 10e6) < 400e3].sum()
        assert near > 0.8 * spec.sum()

    def test_carrier_validation(self):
        with pytest.raises(ConfigurationError):
            drm_like_ofdm(128, FS, FS)
        with pytest.raises(ConfigurationError):
            gsm_like_burst(128, FS, -1.0)

    def test_quantize_to_adc_range(self):
        x = np.linspace(-2, 2, 100)
        raw = quantize_to_adc(x, 12)
        assert raw.max() == 2047 and raw.min() == -2048

    def test_quantize_to_adc_monotone(self):
        x = np.linspace(-0.9, 0.9, 100)
        raw = quantize_to_adc(x, 12)
        assert (np.diff(raw) >= 0).all()

    def test_quantize_bits_validation(self):
        with pytest.raises(ConfigurationError):
            quantize_to_adc(np.zeros(4), 1)


class TestMetrics:
    def test_snr_of_clean_tone_is_high(self):
        x = tone(1 << 13, FS / 64, FS)
        assert snr_db(x) > 100

    def test_snr_decreases_with_noise(self):
        x = tone(1 << 13, FS / 64, FS)
        noisy = x + white_noise(len(x), rms=0.01, seed=0)
        assert snr_db(noisy) < snr_db(x)
        assert 25 < snr_db(noisy) < 60

    def test_enob_of_quantised_tone(self):
        """An n-bit quantised full-scale tone shows ~n effective bits."""
        x = tone(1 << 14, FS * 0.1234, FS, amplitude=0.99)
        raw = quantize_to_adc(x, 10)
        measured = enob(raw.astype(float) / 512)
        assert 8.5 < measured < 11

    def test_sfdr_clean_tone(self):
        x = tone(1 << 13, FS / 64, FS)
        assert sfdr_db(x) > 100

    def test_sfdr_detects_spur(self):
        x = tone(1 << 13, FS / 64, FS) + tone(1 << 13, FS / 8, FS, 1e-3)
        assert 50 < sfdr_db(x) < 70

    def test_tone_power_relative(self):
        x = tone(1 << 12, FS / 64, FS)
        assert tone_power_db(x, rel=True) > -1.0

    def test_rms_error(self):
        a = np.ones(10)
        b = np.zeros(10)
        assert rms_error(a, b) == pytest.approx(1.0)

    def test_rms_error_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            rms_error(np.ones(3), np.ones(4))

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            snr_db(np.zeros(4))


class TestStreaming:
    def test_fnblock_wraps(self):
        double = FnBlock(lambda x: 2 * x, "double")
        np.testing.assert_allclose(double.process(np.ones(4)), 2 * np.ones(4))

    def test_fnblock_rejects_non_callable(self):
        with pytest.raises(ConfigurationError):
            FnBlock(42)  # type: ignore[arg-type]

    def test_tap_records(self):
        tap = Tap()
        tap.process(np.array([1.0, 2.0]))
        tap.process(np.array([3.0]))
        np.testing.assert_allclose(tap.data, [1, 2, 3])

    def test_tap_reset(self):
        tap = Tap()
        tap.process(np.ones(4))
        tap.reset()
        assert tap.data.size == 0

    def test_stream_in_blocks_empty(self):
        out = stream_in_blocks(FnBlock(lambda x: x), np.array([]), 4)
        assert out.size == 0

    def test_stream_in_blocks_bad_size(self):
        with pytest.raises(ConfigurationError):
            stream_in_blocks(FnBlock(lambda x: x), np.ones(4), 0)


class TestChain:
    def test_chain_composition(self, rng):
        x = rng.normal(size=16 * 21 * 4)
        chain = Chain([CICDecimator(2, 16), CICDecimator(5, 21)])
        direct = CICDecimator(5, 21).process(CICDecimator(2, 16).process(x))
        np.testing.assert_allclose(chain.process(x), direct)

    def test_chain_with_tap(self, rng):
        tap = Tap("after-cic2")
        chain = Chain([CICDecimator(2, 16), tap, CICDecimator(5, 21)])
        x = rng.normal(size=16 * 21 * 2)
        chain.process(x)
        assert len(tap.data) == len(x) // 16

    def test_chain_reset(self, rng):
        chain = Chain([CICDecimator(2, 16)])
        x = rng.normal(size=160)
        a = chain.process(x)
        chain.reset()
        b = chain.process(x)
        np.testing.assert_allclose(a, b)

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            Chain([])

    def test_non_block_rejected(self):
        with pytest.raises(ConfigurationError):
            Chain([42])  # type: ignore[list-item]

    def test_len_iter_getitem(self):
        blocks = [CICDecimator(1, 2), CICDecimator(1, 3)]
        chain = Chain(blocks)
        assert len(chain) == 2
        assert list(chain) == blocks
        assert chain[0] is blocks[0]
