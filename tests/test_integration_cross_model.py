"""Cross-model integration tests: the same stimulus through every model.

The strongest evidence the reproduction hangs together: one DRM-band tone
is pushed through the gold model, the bit-true model, the FPGA RTL, the
generated ARM code, the Montium schedule and the GC4016-style chain, and
all of them must tell the same story (same recovered frequency, sensible
relative fidelities, consistent cost accounting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DDC, FixedDDC, REFERENCE_DDC
from repro.dsp.metrics import rms_error
from repro.dsp.signals import quantize_to_adc, tone

FS = REFERENCE_DDC.input_rate_hz
OUT_RATE = 24_000.0


def _peak_hz(z: np.ndarray) -> float:
    z = np.asarray(z, dtype=complex)
    z = z - z.mean()
    spec = np.abs(np.fft.fft(z * np.hanning(len(z))))
    freqs = np.fft.fftfreq(len(z), 1 / OUT_RATE)
    return float(freqs[np.argmax(spec)])


class TestSameToneEverywhere:
    """A 1.5 kHz-offset tone must appear at +1.5 kHz in every model."""

    OFFSET = 1_500.0

    @pytest.fixture(scope="class")
    def stimulus(self):
        n = 2688 * 64
        fc = REFERENCE_DDC.nco_frequency_hz
        x = tone(n, fc + self.OFFSET, FS, amplitude=0.8)
        return quantize_to_adc(x, 12)

    def _assert_peak(self, z, n_fft):
        tol = OUT_RATE / n_fft * 1.6
        assert _peak_hz(z) == pytest.approx(self.OFFSET, abs=tol)

    def test_gold_model(self, stimulus):
        out = DDC().process(stimulus.astype(float) * 2.0**-11)
        self._assert_peak(out.baseband[8:], len(out.baseband) - 8)

    def test_fixed_model(self, stimulus):
        z = FixedDDC().process_to_float(stimulus)
        self._assert_peak(z[8:], len(z) - 8)

    def test_fpga_rtl(self, stimulus):
        from repro.archs.fpga import RTLDDC

        res = RTLDDC().run(stimulus[: 2688 * 12])
        z = (res.i[2:] + 1j * res.q[2:]) * 2.0**-11
        self._assert_peak(z, len(z))

    def test_montium_tile(self, stimulus):
        from repro.archs.montium import run_ddc_on_tile

        # Montium LUT quantises the carrier to fs/512 steps; retune the
        # stimulus to a LUT-exact carrier for the comparison.
        fc = round(10e6 / FS * 512) / 512 * FS
        n = 2688 * 64
        x = quantize_to_adc(tone(n, fc + self.OFFSET, FS, 0.8), 12)
        res = run_ddc_on_tile(x)
        z = res.i[16:].astype(float) + 1j * res.q[16:].astype(float)
        self._assert_peak(z, len(z))

    def test_arm_generated_code(self, stimulus):
        from repro.archs.gpp import profile_ddc

        n = 2688 * 140
        fc = REFERENCE_DDC.nco_frequency_hz
        x = quantize_to_adc(tone(n, fc + self.OFFSET, FS, 0.8), 12)
        prof = profile_ddc(n_samples=n, input_samples=x)
        # I rail only -> real spectrum has peaks at +-offset.
        i = prof.out_samples[-100:].astype(float)
        i = i - i.mean()
        spec = np.abs(np.fft.rfft(i * np.hanning(len(i))))
        freqs = np.fft.rfftfreq(len(i), 1 / OUT_RATE)
        assert freqs[np.argmax(spec)] == pytest.approx(
            self.OFFSET, abs=OUT_RATE / len(i) * 2
        )


class TestFidelityOrdering:
    """Gold >= fixed 12-bit in fidelity; both recover the payload."""

    def test_fixed_noise_floor_below_signal(self):
        n = 2688 * 48
        fc = REFERENCE_DDC.nco_frequency_hz
        x = quantize_to_adc(tone(n, fc + 3_000.0, FS, 0.8), 12)
        gold = DDC(lut_addr_bits=10).process(x.astype(float) * 2.0**-11)
        fixed = FixedDDC(lut_addr_bits=10).process_to_float(x)
        m = min(len(gold.baseband), len(fixed))
        err = rms_error(fixed[8:m], gold.baseband[8:m])
        sig = np.sqrt(np.mean(np.abs(gold.baseband[8:m]) ** 2))
        assert err < sig * 0.1  # > 20 dB agreement


class TestCostAccountingConsistency:
    """Power/cost numbers must be mutually consistent across models."""

    def test_energy_per_sample_ordering(self):
        """ASIC < Montium < FPGA < GPP in energy per output sample."""
        from repro.core import DDCEvaluator

        res = DDCEvaluator().evaluate(REFERENCE_DDC)
        e = {r.architecture: r.energy_per_output_sample_j for r in res.reports}
        assert (
            e["Customised Low Power DDC"]
            < e["Montium TP"]
            < e["Altera Cyclone I"]
            < e["ARM922T"]
        )

    def test_fpga_vs_asic_gap(self):
        """Section 7: 'an FPGA consumes more energy compared to the ASIC
        solutions' — by roughly 3-10x for the Cyclone I."""
        from repro.archs.asic import LowPowerDDCModel
        from repro.archs.fpga import CYCLONE_I_EP1C3
        from repro.archs.fpga.model import CycloneModel

        asic = LowPowerDDCModel().implement(REFERENCE_DDC)
        fpga = CycloneModel(CYCLONE_I_EP1C3).implement(REFERENCE_DDC)
        ratio = fpga.power_w / asic.power_w
        assert 3.0 < ratio < 10.0  # paper: 141.4 / 27 = 5.2

    def test_gc4016_vs_lowpower_factor(self):
        """Section 7.1: the GC4016 'consumes roughly four times more
        energy compared to the customised low power DDC'."""
        from repro.archs.asic import GC4016Model, LowPowerDDCModel

        gc = GC4016Model().implement(REFERENCE_DDC)
        lp = LowPowerDDCModel().implement(REFERENCE_DDC)
        assert gc.power_w / lp.power_w == pytest.approx(4.26, abs=0.5)

    def test_montium_close_to_asic(self):
        """Section 6.1: 'the architecture has an energy-efficiency close
        to an ASIC' — within ~5x of the low-power DDC, far below the GPP."""
        from repro.archs.asic import LowPowerDDCModel
        from repro.archs.gpp import ARM9Model
        from repro.archs.montium import MontiumModel

        asic = LowPowerDDCModel().implement(REFERENCE_DDC).power_w
        montium = MontiumModel().implement(REFERENCE_DDC).power_w
        arm = ARM9Model(n_samples=672).implement(REFERENCE_DDC).power_w
        assert montium / asic < 5.0
        assert arm / montium > 10.0


class TestChainQualityComparison:
    """Section 3.1.2's caveat: the GC4016 chain differs from the reference.

    Quantified: on the same input band, the reference chain's narrower
    output (24 kHz vs 271 kHz) rejects an adjacent 100 kHz-offset
    interferer that the GC4016-style chain passes.
    """

    def test_adjacent_channel_rejection(self):
        from repro.archs.asic.gc4016 import GC4016Channel

        fc = 10e6
        n_ref = 2688 * 48
        interferer = tone(n_ref, fc + 100e3, FS, 0.5)

        ref_out = DDC().process(interferer).baseband[8:]
        p_ref = np.mean(np.abs(ref_out) ** 2)

        ch = GC4016Channel(FS, fc, cic_decimation=84)  # ~2688 total
        gc_out = ch.process(interferer[: 84 * 4 * 200])[8:]
        p_gc = np.mean(np.abs(gc_out) ** 2)

        # The reference chain attenuates the 100 kHz offset far harder
        # (an order of magnitude or more).
        assert p_ref < p_gc / 10
