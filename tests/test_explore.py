"""The design-space exploration engine: Pareto, refinement, store.

The load-bearing contracts (mirroring the batch/oracle conventions of
``tests/test_evaluator_batch.py`` and ``tests/test_sweep.py``):

- the vectorised Pareto mask is **bit-identical** to the scalar
  double-loop oracle, and both satisfy the frontier axioms: members are
  mutually non-dominated and every dominated row has a dominating
  frontier witness (Hypothesis-pinned over random objective matrices);
- adaptive refinement delivers the same report, byte for byte, as the
  dense scalar-oracle grid on random small spaces over the rate axis;
- the on-disk :class:`~repro.explore.store.ReportStore` round-trips
  reports and cached mapping errors exactly, ignores records of models
  whose content digest no longer matches, and warm-starts a second run
  to >= 90 % report-cache hits with byte-identical frontiers (the PR's
  acceptance criterion).
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archs.asic.lowpower import LowPowerDDCModel
from repro.archs.montium.model import MontiumModel
from repro.config import REFERENCE_DDC
from repro.core.evaluator import (
    DDCEvaluator,
    ReportCache,
    config_cache_key,
    default_models,
)
from repro.errors import ConfigurationError
from repro.explore import (
    ExploreSpec,
    ReportStore,
    frontier_from_batches,
    frontier_scalar,
    model_digest,
    pareto_mask,
    pareto_mask_scalar,
    run_explore,
)
from repro.explore.__main__ import main as explore_main

#: A small space spanning both Cyclone f_max thresholds (candidate-set
#: flips at ~66.08 and ~80.87 MHz) — cheap enough for scalar oracles.
SMALL_SPACE = ExploreSpec(
    axis=("input_rate_hz", 48_384_000.0, 96_768_000.0),
    coarse_steps=3,
    target_steps=9,
    duty_cycle_steps=11,
)


# --------------------------------------------------------------- the engine
def finite_rows():
    value = st.one_of(
        st.floats(
            min_value=0.0, max_value=10.0, allow_nan=False, width=32
        ),
        st.sampled_from([0.0, 1.0, 2.0, math.inf]),
    )
    n = st.shared(st.integers(min_value=1, max_value=6), key="n")
    m = st.shared(st.integers(min_value=1, max_value=3), key="m")
    return n.flatmap(
        lambda rows: m.flatmap(
            lambda cols: st.lists(
                st.lists(value, min_size=cols, max_size=cols),
                min_size=rows, max_size=rows,
            )
        )
    )


class TestParetoEngine:
    @settings(max_examples=200, deadline=None)
    @given(rows=finite_rows(), data=st.data())
    def test_batch_equals_scalar_and_axioms(self, rows, data):
        eligible = data.draw(
            st.lists(
                st.booleans(), min_size=len(rows), max_size=len(rows)
            )
        )
        scalar = pareto_mask_scalar(rows, eligible)
        batch = pareto_mask(
            np.array(rows, dtype=float), np.array(eligible, dtype=bool)
        )
        assert scalar == list(batch)
        # Frontier axioms, on the scalar oracle:
        members = [j for j, keep in enumerate(scalar) if keep]
        for j in members:  # mutually non-dominated
            for i in members:
                if i == j:
                    continue
                all_le = all(
                    a <= b for a, b in zip(rows[i], rows[j])
                )
                any_lt = any(a < b for a, b in zip(rows[i], rows[j]))
                assert not (all_le and any_lt)
        for j, keep in enumerate(scalar):  # dominated -> member witness
            if keep or not eligible[j]:
                continue
            assert any(
                all(a <= b for a, b in zip(rows[i], rows[j]))
                and any(a < b for a, b in zip(rows[i], rows[j]))
                for i in members
            )

    def test_batched_leading_dimension(self):
        rows = np.array(
            [
                [[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]],
                [[1.0, 1.0], [1.0, 1.0], [0.5, 2.0]],
            ]
        )
        got = pareto_mask(rows)
        assert got.shape == (2, 3)
        for k in range(2):
            assert list(got[k]) == pareto_mask_scalar(rows[k].tolist())

    def test_duplicates_survive_together(self):
        assert pareto_mask_scalar([[1.0, 2.0], [1.0, 2.0]]) == [True, True]

    def test_ineligible_rows_neither_join_nor_dominate(self):
        rows = [[0.0, 0.0], [1.0, 1.0]]
        assert pareto_mask_scalar(rows, [False, True]) == [False, True]

    def test_frontier_from_batches_equals_scalar(self):
        models = default_models()
        configs = [
            dataclasses.replace(REFERENCE_DDC, input_rate_hz=r)
            for r in (32_256_000.0, 64_512_000.0, 90_000_000.0)
        ]
        batches = [m.implement_batch(configs) for m in models]
        objectives = ("power_w", "area_mm2", "clock_hz")
        masks = frontier_from_batches(batches, objectives)
        for i, config in enumerate(configs):
            reports = []
            for m in models:
                try:
                    reports.append(m.implement(config))
                except ConfigurationError:
                    reports.append(None)
            assert list(masks[i]) == frontier_scalar(reports, objectives)

    def test_unknown_objective_rejected(self):
        report = LowPowerDDCModel().implement(REFERENCE_DDC)
        with pytest.raises(ConfigurationError, match="objective"):
            frontier_scalar([report], ("bogus",))


class TestExploreSpec:
    def test_validates_axis_field(self):
        with pytest.raises(ConfigurationError, match="continuous axis"):
            ExploreSpec(axis=("data_width", 8.0, 16.0))

    def test_validates_axis_range(self):
        with pytest.raises(ConfigurationError, match="lo < hi"):
            ExploreSpec(axis=("input_rate_hz", 9e7, 9e7))

    def test_validates_bisection_geometry(self):
        with pytest.raises(ConfigurationError, match="2\\*\\*k"):
            ExploreSpec(coarse_steps=5, target_steps=13)  # stride 3

    def test_validates_objectives(self):
        with pytest.raises(ConfigurationError, match="objective"):
            ExploreSpec(objectives=("power_w", "bogus"))
        with pytest.raises(ConfigurationError, match="unique"):
            ExploreSpec(objectives=("power_w", "power_w"))

    def test_probe_indices_are_deterministic_and_disjoint(self):
        spec = dataclasses.replace(SMALL_SPACE, probe_points=3, seed=7)
        probes = spec.probe_indices()
        assert probes == spec.probe_indices()
        assert len(probes) == 3
        assert not set(probes) & set(spec.coarse_indices())
        other = dataclasses.replace(spec, seed=8).probe_indices()
        assert probes != other or len(set(range(9)) - {0, 4, 8}) <= 3

    def test_grid_geometry(self):
        assert SMALL_SPACE.coarse_indices() == [0, 4, 8]
        assert SMALL_SPACE.coarse_stride == 4
        assert SMALL_SPACE.n_cells == 9
        values = SMALL_SPACE.axis_values()
        assert values[0] == 48_384_000.0
        assert values[-1] == 96_768_000.0


class TestAdaptiveEqualsDense:
    def test_small_space_byte_identical(self):
        adaptive = run_explore(
            SMALL_SPACE, "adaptive", DDCEvaluator(cache=ReportCache())
        )
        dense = run_explore(SMALL_SPACE, "dense")
        assert adaptive.render("json") == dense.render("json")
        assert adaptive.render("csv") == dense.render("csv")
        assert adaptive.evaluations < dense.evaluations == 9

    def test_discrete_axes_and_architectures(self):
        spec = dataclasses.replace(
            SMALL_SPACE,
            discrete_axes=(("data_width", (10, 12)),),
            architectures=(
                "Montium TP", "Altera Cyclone II", "Altera Cyclone I",
            ),
            objectives=("power_w", "energy_per_output_sample_j"),
        )
        adaptive = run_explore(
            spec, "adaptive", DDCEvaluator(cache=ReportCache())
        )
        dense = run_explore(spec, "dense")
        assert adaptive.render("json") == dense.render("json")
        assert len(adaptive.points) == 2

    @settings(max_examples=8, deadline=None)
    @given(
        lo=st.sampled_from([24_192_000.0, 40_320_000.0, 56_448_000.0]),
        span=st.sampled_from([16_128_000.0, 48_384_000.0, 80_640_000.0]),
        shape=st.sampled_from([(3, 9), (5, 9), (3, 5)]),
        steps=st.sampled_from([5, 11]),
        objectives=st.sampled_from(
            [
                ("power_w",),
                ("power_w", "area_mm2"),
                ("energy_per_output_sample_j", "clock_hz"),
            ]
        ),
        probes=st.sampled_from([0, 2]),
    )
    def test_random_small_spaces(
        self, lo, span, shape, steps, objectives, probes
    ):
        coarse, target = shape
        spec = ExploreSpec(
            axis=("input_rate_hz", lo, lo + span),
            coarse_steps=coarse,
            target_steps=target,
            duty_cycle_steps=steps,
            objectives=objectives,
            probe_points=probes,
            seed=3,
        )
        adaptive = run_explore(
            spec, "adaptive", DDCEvaluator(cache=ReportCache())
        )
        dense = run_explore(spec, "dense")
        assert adaptive.render("json") == dense.render("json")

    def test_budget_stops_refinement_but_fills_every_cell(self):
        spec = dataclasses.replace(SMALL_SPACE, max_evaluations=4)
        report = run_explore(
            spec, "adaptive", DDCEvaluator(cache=ReportCache())
        )
        assert report.evaluations <= 4
        assert len(report.points[0].cells) == spec.target_steps
        assert [c.index for c in report.points[0].cells] == list(range(9))

    def test_snapshots_cover_the_coarse_grid(self):
        report = run_explore(
            SMALL_SPACE, "adaptive", DDCEvaluator(cache=ReportCache())
        )
        assert [s.index for s in report.points[0].snapshots] == [0, 4, 8]
        snap = report.points[0].snapshots[0]
        names = [a.name for a in snap.architectures]
        assert "Montium TP" in names and "Altera Cyclone II" in names

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            run_explore(SMALL_SPACE, "magic")


class TestReportStore:
    def _space(self):
        return SMALL_SPACE

    def test_round_trip_reports_and_errors(self, tmp_path):
        models = [LowPowerDDCModel(), MontiumModel()]
        off = dataclasses.replace(
            REFERENCE_DDC, cic5_decimation=42, fir_decimation=4
        )
        cache = ReportCache()
        for m in models:
            cache.implement_batch(m, [REFERENCE_DDC, off])
        store = ReportStore(tmp_path / "store.jsonl")
        assert store.save(cache) == 4

        clone = ReportCache()
        loaded = ReportStore(tmp_path / "store.jsonl").load(clone, models)
        assert loaded == 4
        for m in models:
            want = cache.implement_batch(m, [REFERENCE_DDC, off])
            got = clone.implement_batch(m, [REFERENCE_DDC, off])
            assert got.reports == want.reports
            assert got.architecture == want.architecture
            for g, w in zip(got.errors, want.errors):
                assert (g is None) == (w is None)
                if g is not None:
                    assert type(g) is type(w) and str(g) == str(w)
        # everything above served from the store, no model re-runs
        assert clone.misses == 0

    def test_invalidation_by_model_content_hash(self, tmp_path):
        cache = ReportCache()
        model = LowPowerDDCModel()
        cache.implement(model, REFERENCE_DDC)
        store = ReportStore(tmp_path / "store.jsonl")
        store.save(cache)
        # A model whose constants changed has a different cache_key()
        # (the cache-key contract), so its digest no longer matches.
        tweaked = LowPowerDDCModel(
            dataclasses.replace(
                model.spec, power_w_at_reference=0.030
            )
        )
        assert model_digest(tweaked.cache_key()) != model_digest(
            model.cache_key()
        )
        fresh = ReportCache()
        assert store.load(fresh, [tweaked]) == 0
        assert store.load(fresh, [model]) == 1

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(json.dumps({"schema": "other/v9"}) + "\n")
        with pytest.raises(ConfigurationError, match="schema"):
            ReportStore(path).load(ReportCache(), default_models())

    def test_corrupt_store_is_salvaged(self, tmp_path):
        """A torn/truncated tail no longer poisons the store: the valid
        prefix loads, the bad line is quarantined to the sidecar."""
        path = tmp_path / "store.jsonl"
        path.write_text(
            json.dumps({"schema": "repro-explore-store/v1"})
            + "\n{\"kind\": \"report\", \"model\""
        )
        store = ReportStore(path)
        assert store.load(ReportCache(), default_models()) == 0
        assert store.last_salvaged == 1
        assert store.quarantine_path.exists()
        assert store.quarantine_path.read_text().startswith(
            "{\"kind\": \"report\""
        )

    def test_garbled_header_is_quarantined(self, tmp_path):
        """A file whose header is not even JSON reads as empty; its
        whole contents are quarantined for inspection."""
        path = tmp_path / "store.jsonl"
        path.write_text("definitely not json\n{\"kind\": \"label\"}\n")
        store = ReportStore(path)
        assert store.load(ReportCache(), default_models()) == 0
        assert store.last_salvaged == 2

    def test_save_leaves_no_temp_droppings(self, tmp_path):
        cache = ReportCache()
        cache.implement(LowPowerDDCModel(), REFERENCE_DDC)
        store = ReportStore(tmp_path / "store.jsonl")
        store.save(cache)
        store.save(cache)
        assert [p.name for p in tmp_path.iterdir()] == ["store.jsonl"]

    def test_save_merges_with_existing_records(self, tmp_path):
        store = ReportStore(tmp_path / "store.jsonl")
        first = ReportCache()
        first.implement(LowPowerDDCModel(), REFERENCE_DDC)
        store.save(first)
        second = ReportCache()
        second.implement(MontiumModel(), REFERENCE_DDC)
        assert store.save(second) == 2  # union, not clobber

    def test_warm_start_hit_rate_and_identical_frontiers(self, tmp_path):
        """The acceptance criterion: a second run against a warm store
        reproduces the same frontiers with >= 90 % report-cache hits."""
        spec = self._space()
        store = ReportStore(tmp_path / "store.jsonl")

        cold_ev = DDCEvaluator(cache=ReportCache())
        cold = run_explore(spec, "adaptive", cold_ev)
        store.save(cold_ev.cache)
        store.save_frontier(spec, cold_ev.models, cold.to_json_doc())

        warm_cache = ReportCache()
        warm_ev = DDCEvaluator(cache=warm_cache)
        assert store.load(warm_cache, warm_ev.models) > 0
        warm = run_explore(spec, "adaptive", warm_ev)
        total = warm_cache.hits + warm_cache.misses
        assert total > 0
        assert warm_cache.hits / total >= 0.90
        assert warm.render("json") == cold.render("json")
        assert store.load_frontier(spec, warm_ev.models) == json.loads(
            json.dumps(cold.to_json_doc())
        )

    def test_frontier_snapshot_keyed_on_space(self, tmp_path):
        store = ReportStore(tmp_path / "store.jsonl")
        models = default_models()
        store.save_frontier(SMALL_SPACE, models, {"cells": 9})
        other = dataclasses.replace(SMALL_SPACE, target_steps=5)
        assert store.load_frontier(other, models) is None
        assert store.load_frontier(SMALL_SPACE, models) == {"cells": 9}


class TestReportCacheHook:
    def test_insert_and_entries_round_trip(self):
        cache = ReportCache()
        model = LowPowerDDCModel()
        report = model.implement(REFERENCE_DDC)
        cache.insert(
            model.cache_key(), config_cache_key(REFERENCE_DDC), report,
            None,
        )
        assert cache.implement(model, REFERENCE_DDC) == report
        assert cache.hits == 1 and cache.misses == 0
        entries = list(cache.entries())
        assert entries == [
            (
                model.cache_key(),
                config_cache_key(REFERENCE_DDC),
                report,
                None,
            )
        ]

    def test_insert_rejects_malformed_entries(self):
        cache = ReportCache()
        with pytest.raises(ConfigurationError, match="exactly one"):
            cache.insert(("m",), (1,), None, None)


class TestExploreCLI:
    def test_verify_small_space(self, capsys):
        assert (
            explore_main(
                ["--verify", "--coarse", "3", "--target", "9",
                 "--steps", "11"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "verify OK" in out

    def test_report_and_summary(self, tmp_path, capsys):
        out_path = tmp_path / "frontier.json"
        assert (
            explore_main(
                ["--coarse", "3", "--target", "9", "--steps", "11",
                 "--output", str(out_path)]
            )
            == 0
        )
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro-explore/v1"
        assert len(doc["points"][0]["cells"]) == 9
        assert (
            explore_main(
                ["--coarse", "3", "--target", "9", "--steps", "11",
                 "--summary"]
            )
            == 0
        )
        assert "frontier" in capsys.readouterr().out

    def test_bad_spec_is_a_clean_error(self, capsys):
        assert explore_main(["--target", "10"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_store_requires_the_adaptive_engine(self, tmp_path, capsys):
        """--store with the uncached modes is a loud error, not a
        silently skipped spill."""
        path = str(tmp_path / "s.jsonl")
        for extra in (["--engine", "dense"], ["--verify"]):
            assert explore_main(["--store", path, *extra]) == 2
            assert "adaptive engine" in capsys.readouterr().err


def test_figure_pareto_renders():
    from repro.paper import figure_pareto

    text = figure_pareto().render()
    assert "Pareto frontier" in text
    assert "Montium TP" in text
    assert "*" in text
