"""Tests for the generated DDC program, profiler and ARM9 model (Table 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import REFERENCE_DDC, DDCConfig
from repro.archs.gpp import ARM922T, ARM9Model, generate_ddc_program, profile_ddc
from repro.archs.gpp.codegen import generate_ddc_source
from repro.dsp.signals import quantize_to_adc, tone
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def reference_profile():
    """One steady-state profile shared by the checks below (2688 samples)."""
    return profile_ddc()


class TestCodegen:
    def test_assembles(self):
        program, layout = generate_ddc_program(n_samples=16)
        assert len(program) > 50
        assert layout.n_samples == 16

    def test_regions_present(self):
        src, _ = generate_ddc_source(n_samples=16)
        for region in ("nco", "cic2_int", "cic2_comb", "cic5_int",
                       "cic5_comb", "fir_poly", "fir_sum"):
            assert f".region {region}" in src

    def test_rejects_nonreference_orders(self):
        with pytest.raises(ConfigurationError):
            generate_ddc_source(DDCConfig(cic2_order=3), n_samples=16)

    def test_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            generate_ddc_source(n_samples=0)

    def test_spill_slots_add_cycles(self):
        with_spill = profile_ddc(n_samples=336, spill_slots=True)
        without = profile_ddc(n_samples=336, spill_slots=False)
        assert with_spill.stats.cycles > without.stats.cycles


class TestTable3Shape:
    """The profile must reproduce Table 3's qualitative structure."""

    def test_nco_dominates(self, reference_profile):
        f = reference_profile.region_fractions
        assert 0.40 <= f["nco"] <= 0.62          # paper: 50 %

    def test_cic2_int_second(self, reference_profile):
        f = reference_profile.region_fractions
        assert 0.28 <= f["cic2_int"] <= 0.50     # paper: 40 %

    def test_sample_rate_work_dominates(self, reference_profile):
        f = reference_profile.region_fractions
        assert f["nco"] + f["cic2_int"] > 0.80   # paper: 90 %

    def test_low_rate_regions_small(self, reference_profile):
        f = reference_profile.region_fractions
        assert f["cic2_comb"] < 0.06             # paper: 3.2 %
        assert f["cic5_int"] < 0.10              # paper: 4.4 %
        assert f["cic5_comb"] < 0.005            # paper: < 0.5 %
        assert f["fir_poly"] < 0.005             # paper: < 0.5 %
        assert f["fir_sum"] < 0.05               # paper: 1.6 %

    def test_ordering_matches_paper(self, reference_profile):
        f = reference_profile.region_fractions
        assert f["nco"] > f["cic2_int"] > f["cic5_int"] > f["cic5_comb"]
        assert f["cic2_int"] > f["cic2_comb"] > f["fir_poly"]

    def test_fractions_sum_to_one(self, reference_profile):
        total = sum(reference_profile.region_fractions.values())
        assert total == pytest.approx(1.0, abs=1e-9)


class TestSection42Numbers:
    def test_cpi_matches_arm9_ballpark(self, reference_profile):
        """Paper: 4870 Mcycles / 2865 Minstr = 1.70 CPI."""
        assert 1.2 <= reference_profile.stats.cpi <= 2.2

    def test_gigacycles_per_second_order(self, reference_profile):
        """Paper: 4.87e9 cycles/s for the I rail; same order expected."""
        assert 1.5e9 <= reference_profile.cycles_per_second <= 8e9

    def test_required_clock_infeasible(self, reference_profile):
        """Paper: 9740 MHz needed, so one ARM9 cannot do it."""
        assert reference_profile.required_clock_hz > 10 * ARM922T.max_clock_hz

    def test_mips_order(self, reference_profile):
        assert 800e6 <= reference_profile.instructions_per_second <= 6e9


class TestARM9Model:
    def test_implement_report(self):
        model = ARM9Model(n_samples=2688)
        report = model.implement(REFERENCE_DDC)
        assert not report.feasible
        assert report.power_w > 0.5          # paper: 2.435 W
        assert report.power_w < 5.0
        assert report.architecture == "ARM922T"

    def test_power_equals_clock_times_constant(self):
        model = ARM9Model(n_samples=2688)
        report = model.implement(REFERENCE_DDC)
        want = report.clock_hz / 1e6 * 0.25e-3
        assert report.power_w == pytest.approx(want)

    def test_speedup_needed(self):
        model = ARM9Model(n_samples=2688)
        model.implement(REFERENCE_DDC)
        assert model.speedup_needed() > 10    # paper: 9740/250 = 39x


class TestGeneratedCodeCorrectness:
    """The assembly must actually *compute the DDC*, not just burn cycles."""

    def test_dc_settles_positive(self):
        """DC input with a 0 Hz NCO must produce a positive settled output."""
        cfg = DDCConfig(nco_frequency_hz=0.0)
        n = 2688 * 130  # enough for the 125-deep FIR ring to fill
        x = np.full(n, 1024, dtype=np.int64)
        prof = profile_ddc(cfg, n_samples=n, input_samples=x)
        assert len(prof.out_samples) == 130
        settled = prof.out_samples[-4:]
        assert (settled > 400).all()
        # steady: all settled values identical (pure DC)
        assert len(set(settled.tolist())) == 1

    def test_tone_tracks_gold_model(self):
        """I-rail output correlates strongly with the gold model's I rail.

        The generated code's decimators are phase-offset from the gold
        model by up to one output sample (counter-expiry vs index-0 keep
        conventions), so a 500 Hz baseband tone and a small lag search are
        used: residual misalignment then costs only a few degrees.
        """
        from repro import DDC

        fc = REFERENCE_DDC.nco_frequency_hz
        fs = REFERENCE_DDC.input_rate_hz
        n = 2688 * 140
        xf = tone(n, fc + 500.0, fs, amplitude=0.8)
        x = quantize_to_adc(xf, 12)

        prof = profile_ddc(n_samples=n, input_samples=x)
        got = prof.out_samples.astype(float)

        gold = DDC(lut_addr_bits=10)
        want = gold.process(x.astype(float) * 2.0**-11).i

        # Compare settled tails (FIR ring warm-up differs) over lags.
        def norm(v):
            v = v - v.mean()
            return v / np.linalg.norm(v)

        best = max(
            float(np.dot(norm(got[-100 + lag : len(got) + lag - 3]),
                         norm(want[-100:-3])))
            for lag in range(-3, 3)
        )
        assert best > 0.97
