#!/usr/bin/env python
"""FPGA study: resources, the Table 5 power sweep, and *measured* toggling.

The paper estimates Cyclone power with assumed toggle rates ("Because no
real input data is available, bit toggling percentages ... are used").
This library has an executable RTL model, so we can do what the authors
could not: run the actual DDC on a real stimulus, measure the internal
toggle activity wire by wire, and compare the measured-power estimate with
the published assumed-10 % figure.

Run:  python examples/fpga_power_sweep.py
"""

from __future__ import annotations

from repro.archs.fpga import (
    CYCLONE_I_EP1C3,
    CYCLONE_II_EP2C5,
    FPGAPowerModel,
    RTLDDC,
    estimate_ddc_resources,
)
from repro.config import REFERENCE_DDC
from repro.dsp.signals import drm_like_ofdm, quantize_to_adc
from repro.paper import table4, table5
from repro.sweep import SweepSpec, run_sweep


def main() -> None:
    print(table4().render())
    print()
    print(table5().render())

    usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
    model = FPGAPowerModel(CYCLONE_I_EP1C3)

    print("\nRunning the bit-true RTL DDC on a DRM-like stimulus...")
    x = quantize_to_adc(
        drm_like_ofdm(2688 * 4, REFERENCE_DDC.input_rate_hz,
                      REFERENCE_DDC.nco_frequency_hz, seed=11),
        12,
    )
    rtl = RTLDDC()
    run = rtl.run(x)
    measured = run.activity.mean_toggle_rate
    print(f"  simulated {run.cycles} cycles, {len(run.i)} output samples")
    print(f"  measured design-average internal toggle rate: {measured:.1%}")
    print("  busiest wires:")
    for act in run.activity.busiest(5):
        print(f"    {act.name:16s} width {act.width:2d}  "
              f"toggle {act.toggle_rate:.1%}")

    p_assumed = model.estimate(usage, internal_toggle=0.10)
    p_measured = model.estimate(usage, internal_toggle=measured)
    print(f"\nCyclone I power at the paper's assumed 10 % toggle: "
          f"{p_assumed.total_mw:.1f} mW (published: 141.4 mW)")
    print(f"Cyclone I power at the *measured* {measured:.1%} toggle: "
          f"{p_measured.total_mw:.1f} mW")

    u2 = estimate_ddc_resources(CYCLONE_II_EP2C5)
    b2 = FPGAPowerModel(CYCLONE_II_EP2C5).estimate(u2)
    print(f"Cyclone II at 10 % toggle: {b2.total_mw:.2f} mW "
          "(published: 57.98 mW)")

    # Where does the FPGA actually win?  One batched pass of the scenario
    # sweep subsystem answers the Section 7 question for every duty cycle
    # at once (same grid as `python -m repro.sweep --summary`).
    print("\nDuty-cycle scenario sweep (repro.sweep, batched):")
    spec = SweepSpec(duty_cycle_steps=201)
    report = run_sweep(spec)
    for lo, hi, name in report.points[0].winning_regions:
        marker = "  <-- FPGA" if "Cyclone" in name else ""
        print(f"  {lo:6.1%} .. {hi:6.1%}  {name}{marker}")


if __name__ == "__main__":
    main()
