#!/usr/bin/env python
"""Montium study: the Fig. 9 schedule, Table 6 occupancy, and a live run.

Builds the paper's hand mapping of the DDC onto the five Montium ALUs,
renders the first 40 clock cycles (Fig. 9), prints the occupancy table
(Table 6), then *executes* the schedule functionally on a tone and checks
the recovered baseband frequency.

Run:  python examples/montium_schedule.py
"""

from __future__ import annotations

import numpy as np

from repro.archs.montium import (
    MontiumModel,
    build_ddc_schedule,
    estimate_config_bytes,
    render_figure9,
    run_ddc_on_tile,
)
from repro.archs.montium.schedule import analyze_schedule, measured_occupancy
from repro.config import REFERENCE_DDC
from repro.dsp.signals import quantize_to_adc, tone


def main() -> None:
    program = build_ddc_schedule()
    print(render_figure9(program, 40))
    print()

    report = analyze_schedule(program)
    print("Table 6 (static schedule analysis):")
    for name, n_alus, pct in report.table6_rows():
        print(f"  {name:26s} {n_alus} ALUs  {pct:6.2f}%")
    print(f"  configuration size estimate: ~{estimate_config_bytes(program)}"
          " bytes (paper: 1110 bytes)")

    power = MontiumModel().implement(REFERENCE_DDC)
    print(f"  power at 64.512 MHz, 0.6 mW/MHz: {power.power_mw:.1f} mW "
          "(paper: 38.7 mW)")

    # Functional run: tune to a LUT-exact carrier, offset a test tone 1 kHz.
    fs = REFERENCE_DDC.input_rate_hz
    carrier = round(10e6 / fs * 512) / 512 * fs
    n = 2688 * 64
    x = quantize_to_adc(tone(n, carrier + 1_000.0, fs, 0.8), 12)
    print(f"\nExecuting the schedule on {n} samples "
          f"(tone at carrier + 1 kHz)...")
    result = run_ddc_on_tile(x)
    z = (result.i[16:] + 1j * result.q[16:]).astype(complex)
    z -= z.mean()
    spec = np.abs(np.fft.fft(z * np.hanning(len(z))))
    freqs = np.fft.fftfreq(len(z), 1 / 24_000.0)
    print(f"  {len(result.i)} output samples; spectral peak at "
          f"{freqs[np.argmax(spec)]:+.0f} Hz (expected ~ +1000 Hz)")

    dyn = measured_occupancy(result.tile)
    print("  measured occupancy agrees with the static schedule:")
    for name, n_alus, pct in dyn.table6_rows():
        print(f"    {name:26s} {n_alus} ALUs  {pct:6.2f}%")


if __name__ == "__main__":
    main()
