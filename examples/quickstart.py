#!/usr/bin/env python
"""Quickstart: down-convert a DRM-like broadcast band with the reference DDC.

Runs the paper's reference chain (NCO + CIC2/16 + CIC5/21 + FIR125/8,
64.512 MHz -> 24 kHz) on a synthetic DRM-like OFDM signal, in both the
floating-point gold model and the bit-true 12-bit model, and reports the
recovered band power and fixed-vs-gold fidelity.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DDC, FixedDDC, REFERENCE_DDC
from repro.dsp.signals import drm_like_ofdm, quantize_to_adc


def main() -> None:
    cfg = REFERENCE_DDC
    print("Reference DDC configuration (paper Table 1):")
    for name, rate, decim in cfg.table1_rows():
        rate_s = f"{rate / 1e6:.3f} MHz" if rate >= 1e6 else f"{rate / 1e3:.0f} kHz"
        print(f"  {name:14s} {rate_s:>12s}   D={decim if decim else '-'}")

    # One second would be 64.5M samples; 64 output samples suffice here.
    n = cfg.total_decimation * 64
    x = drm_like_ofdm(n, cfg.input_rate_hz, carrier_hz=cfg.nco_frequency_hz,
                      seed=2026)
    print(f"\nInput: {n} samples of a DRM-like OFDM band at "
          f"{cfg.nco_frequency_hz / 1e6:.1f} MHz")

    # Gold model (float64).
    ddc = DDC()
    out = ddc.process(x, keep_intermediates=True)
    print(f"Gold model: {len(out.baseband)} complex samples at "
          f"{cfg.output_rate_hz / 1e3:.0f} kHz, "
          f"band power {np.mean(np.abs(out.baseband[8:])**2):.4f}")
    assert out.cic2_out is not None
    print(f"  intermediate rates: CIC2 out {len(out.cic2_out)} samples, "
          f"CIC5 out {len(out.cic5_out)} samples")

    # Bit-true model (the FPGA's 12-bit data path).
    fixed = FixedDDC()
    z = fixed.process_to_float(quantize_to_adc(x, cfg.data_width))
    m = min(len(z), len(out.baseband))
    err = z[8:m] - out.baseband[8:m]
    p_sig = np.mean(np.abs(out.baseband[8:m]) ** 2)
    p_err = np.mean(np.abs(err) ** 2)
    print(f"Bit-true 12-bit model: {10 * np.log10(p_sig / p_err):.1f} dB "
          "agreement with the gold model")

    # The DDC is one entry in the workload registry; the whole
    # comparative stack (sweeps, exploration, benches) is selected the
    # same way: python -m repro.sweep --workload <name>.
    from repro.workloads import available, default_name

    print(f"\nRegistered workloads: {', '.join(available())} "
          f"(default: {default_name()})")


if __name__ == "__main__":
    main()
