#!/usr/bin/env python
"""Population study: what battery life does a *population* of DRM users see?

The paper's scenario analysis answers for one operating point; real
products ship to populations.  This example declares three user
populations for the DRM receiver workload — casual listeners, commuters
and always-on monitors — as seeded duty-cycle distributions over the
same channel-count mixture, pushes each through the vectorised
Monte-Carlo engine (``repro.montecarlo``: 100k users deduplicated to a
handful of distinct configurations, one fused numpy pass), and prints
the p50/p95/p99 battery-life percentiles plus the winner-probability
table per population.  The takeaway mirrors the paper's conclusion at
population scale: which architecture wins depends on *who your users
are*, not just which workload you run.

Run:  python examples/population_study.py
"""

from __future__ import annotations

from repro.montecarlo import (
    Mixture,
    Normal,
    PopulationSpec,
    run_population,
)

N_SAMPLES = 100_000
BATTERY_WH = 3.7  # a small handheld cell

#: Three user populations as duty-cycle distributions.  All are bounded
#: within [0, 1] (clipped normals), as the engine requires.
POPULATIONS = {
    "casual listeners": Normal(mean=0.05, std=0.03, low=0.0, high=1.0),
    "commuters": Mixture(
        components=(
            (0.65, Normal(mean=0.08, std=0.04, low=0.0, high=1.0)),
            (0.35, Normal(mean=0.50, std=0.10, low=0.0, high=1.0)),
        )
    ),
    "always-on monitors": Normal(mean=0.85, std=0.08, low=0.0, high=1.0),
}


def study(name: str, duty, seed: int) -> None:
    spec = PopulationSpec(
        workload="drm",
        n_samples=N_SAMPLES,
        seed=seed,
        duty_cycle=duty,
        battery_wh=BATTERY_WH,
    )
    report = run_population(spec)
    print(f"\n=== {name} ({spec.n_samples} users, seed {seed}) ===")
    labels = list(report.architectures[0].battery_life_h)
    print(f"  {'architecture':<28} {'win%':>6} "
          + " ".join(f"{lbl + ' h':>9}" for lbl in labels))
    for arch in report.architectures:
        if arch.n_feasible == 0:
            continue
        life = " ".join(
            f"{arch.battery_life_h[lbl]:>9.1f}"
            if arch.battery_life_h[lbl] is not None else f"{'-':>9}"
            for lbl in labels
        )
        print(f"  {arch.name:<28} {100 * arch.win_probability:>5.1f}% {life}")
    winner = max(report.winners(), key=report.winners().get)
    print(f"  most often cheapest: {winner} "
          f"({100 * report.winners()[winner]:.1f}% of users)")


def main() -> None:
    print(f"DRM receiver population study: {N_SAMPLES} users per "
          f"population, {BATTERY_WH} Wh battery")
    print("(channel-count mixture: the drm workload's declared "
          "population axes)")
    for seed, (name, duty) in enumerate(POPULATIONS.items()):
        study(name, duty, seed)


if __name__ == "__main__":
    main()
