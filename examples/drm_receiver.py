#!/usr/bin/env python
"""DRM receiver front end: channel selection out of a crowded band.

The paper motivates the DDC with Digital Radio Mondiale reception on a
multimedia device.  This example synthesises a shortwave-like spectrum with
*three* DRM-like broadcasts plus an interfering carrier, tunes the DDC's
NCO to each station in turn (the retuning the Montium mapping keeps an ALU
free for), and verifies that the selected channel dominates the 24 kHz
output while its neighbours are rejected.

Run:  python examples/drm_receiver.py
"""

from __future__ import annotations

import numpy as np

from repro import DDC, REFERENCE_DDC, DDCConfig
from repro.dsp.signals import drm_like_ofdm, tone, white_noise

STATIONS_HZ = (6.10e6, 9.50e6, 15.20e6)   # shortwave-ish carriers
INTERFERER_HZ = 9.70e6                     # strong adjacent carrier


def build_band(n: int, fs: float, seed: int = 7) -> np.ndarray:
    """Three DRM-like stations + a CW interferer + noise floor."""
    rng = np.random.default_rng(seed)
    band = white_noise(n, rms=0.01, seed=rng)
    for i, carrier in enumerate(STATIONS_HZ):
        band = band + drm_like_ofdm(
            n, fs, carrier, rms=0.12 + 0.03 * i, seed=rng
        )
    band = band + tone(n, INTERFERER_HZ, fs, amplitude=0.3)
    return band


def main() -> None:
    fs = REFERENCE_DDC.input_rate_hz
    n = REFERENCE_DDC.total_decimation * 48
    x = build_band(n, fs)
    print(f"Band: {len(STATIONS_HZ)} DRM-like stations at "
          f"{[f'{f/1e6:.2f} MHz' for f in STATIONS_HZ]}, interferer at "
          f"{INTERFERER_HZ / 1e6:.2f} MHz")

    powers = {}
    for carrier in STATIONS_HZ:
        cfg = DDCConfig(nco_frequency_hz=carrier)
        ddc = DDC(cfg)
        out = ddc.process(x).baseband[8:]
        in_band = float(np.mean(np.abs(out) ** 2))
        powers[carrier] = in_band
        print(f"  tuned to {carrier / 1e6:5.2f} MHz: "
              f"output power {10 * np.log10(in_band):6.1f} dBFS")

    # Tune midway between stations: output should drop sharply.
    dead_carrier = 12.0e6
    ddc = DDC(DDCConfig(nco_frequency_hz=dead_carrier))
    dead = float(np.mean(np.abs(ddc.process(x).baseband[8:]) ** 2))
    print(f"  tuned to {dead_carrier / 1e6:5.2f} MHz (no station): "
          f"{10 * np.log10(dead):6.1f} dBFS")

    worst_station = min(powers.values())
    rejection_db = 10 * np.log10(worst_station / dead)
    print(f"\nChannel selectivity (weakest station vs empty channel): "
          f"{rejection_db:.1f} dB")
    assert rejection_db > 15, "DDC failed to select the DRM channels"
    print("OK: the DDC selects each DRM channel and rejects empty spectrum.")


if __name__ == "__main__":
    main()
