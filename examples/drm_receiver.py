#!/usr/bin/env python
"""DRM receiver front end: channel selection out of a crowded band.

The paper motivates the DDC with Digital Radio Mondiale reception on a
multimedia device.  This example synthesises a shortwave-like spectrum with
*three* DRM-like broadcasts plus an interfering carrier, tunes the DDC's
NCO to each station in turn (the retuning the Montium mapping keeps an ALU
free for), and verifies that the selected channel dominates the 24 kHz
output while its neighbours are rejected.

The tune-each-station-in-turn scenario is what the ``drm`` entry of the
workload registry (``repro.workloads``) generalises: a
``DRMReceiverConfig`` carries ``n_channels`` parallel DDC rails, its
architecture models price the whole receiver, and
``python -m repro.sweep --workload drm`` sweeps the channel count.  The
closing section below runs the registered workload's bit-true mapping
and asks its evaluator which architectures can carry the receiver.

Run:  python examples/drm_receiver.py
"""

from __future__ import annotations

import numpy as np

from repro import DDC, REFERENCE_DDC, DDCConfig
from repro.dsp.signals import drm_like_ofdm, tone, white_noise

STATIONS_HZ = (6.10e6, 9.50e6, 15.20e6)   # shortwave-ish carriers
INTERFERER_HZ = 9.70e6                     # strong adjacent carrier


def build_band(n: int, fs: float, seed: int = 7) -> np.ndarray:
    """Three DRM-like stations + a CW interferer + noise floor."""
    rng = np.random.default_rng(seed)
    band = white_noise(n, rms=0.01, seed=rng)
    for i, carrier in enumerate(STATIONS_HZ):
        band = band + drm_like_ofdm(
            n, fs, carrier, rms=0.12 + 0.03 * i, seed=rng
        )
    band = band + tone(n, INTERFERER_HZ, fs, amplitude=0.3)
    return band


def main() -> None:
    fs = REFERENCE_DDC.input_rate_hz
    n = REFERENCE_DDC.total_decimation * 48
    x = build_band(n, fs)
    print(f"Band: {len(STATIONS_HZ)} DRM-like stations at "
          f"{[f'{f/1e6:.2f} MHz' for f in STATIONS_HZ]}, interferer at "
          f"{INTERFERER_HZ / 1e6:.2f} MHz")

    powers = {}
    for carrier in STATIONS_HZ:
        cfg = DDCConfig(nco_frequency_hz=carrier)
        ddc = DDC(cfg)
        out = ddc.process(x).baseband[8:]
        in_band = float(np.mean(np.abs(out) ** 2))
        powers[carrier] = in_band
        print(f"  tuned to {carrier / 1e6:5.2f} MHz: "
              f"output power {10 * np.log10(in_band):6.1f} dBFS")

    # Tune midway between stations: output should drop sharply.
    dead_carrier = 12.0e6
    ddc = DDC(DDCConfig(nco_frequency_hz=dead_carrier))
    dead = float(np.mean(np.abs(ddc.process(x).baseband[8:]) ** 2))
    print(f"  tuned to {dead_carrier / 1e6:5.2f} MHz (no station): "
          f"{10 * np.log10(dead):6.1f} dBFS")

    worst_station = min(powers.values())
    rejection_db = 10 * np.log10(worst_station / dead)
    print(f"\nChannel selectivity (weakest station vs empty channel): "
          f"{rejection_db:.1f} dB")
    assert rejection_db > 15, "DDC failed to select the DRM channels"
    print("OK: the DDC selects each DRM channel and rejects empty spectrum.")

    workload_demo()


def workload_demo() -> None:
    """The same receiver through the registered ``drm`` workload."""
    from repro.workloads import get

    wl = get("drm")
    cfg = wl.default_config
    print(f"\nWorkload registry: {wl.title!r}")
    print(f"  {cfg.n_channels} parallel rails, stations at "
          f"{[f'{f / 1e6:.3f} MHz' for f in cfg.station_frequencies()]}")

    # Bit-true mapping: every rail down-converted in one call.
    run = wl.mappings()["gpp"].run
    assert run is not None
    x = build_band(cfg.total_decimation * 8, cfg.input_rate_hz)
    adc = np.clip(np.round(x * (2 ** (cfg.data_width - 1) - 1)),
                  -(2 ** (cfg.data_width - 1)),
                  2 ** (cfg.data_width - 1) - 1).astype(np.int64)
    channels = run(adc, cfg)
    print(f"  bit-true receive: {channels.shape[0]} channels x "
          f"{channels.shape[1]} samples at {cfg.output_rate_hz / 1e3:.0f} kHz")

    # Which architectures can carry the whole receiver?
    for cand in wl.evaluator().scenario_candidates(cfg, strict=False):
        print(f"  {cand.name:28s} {cand.active_power_w * 1e3:7.2f} mW active"
              f"{' (reusable when idle)' if cand.reusable else ''}")


if __name__ == "__main__":
    main()
