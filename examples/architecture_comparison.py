#!/usr/bin/env python
"""Reproduce the paper's headline result: Table 7 + the Section 7 scenarios.

Evaluates the reference DDC on all five architecture models, prints the
energy comparison with technology scaling to 0.13 um, and answers the
conclusion's two questions (static winner, reconfigurable winner) plus the
duty-cycle crossover map that generalises them.

Run:  python examples/architecture_comparison.py
"""

from __future__ import annotations

from repro import REFERENCE_DDC
from repro.core import DDCEvaluator
from repro.paper import section7_scenarios


def main() -> None:
    evaluator = DDCEvaluator()
    result = evaluator.evaluate(REFERENCE_DDC)
    print(result.render())
    print()
    print(section7_scenarios(REFERENCE_DDC, evaluator).render())
    print()
    ranking = result.comparison.ranking()
    print("Ranking at 0.13 um (lowest power first):")
    for i, row in enumerate(ranking, 1):
        rt = "" if row.feasible else "   [cannot sustain real time]"
        print(f"  {i}. {row.architecture:26s} {row.power_scaled_mw:8.1f} mW{rt}")


if __name__ == "__main__":
    main()
