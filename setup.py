"""Setup shim for environments whose pip lacks the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` which is
unavailable offline here; this shim lets ``pip install -e . --no-use-pep517``
(or ``python setup.py develop``) work with the metadata in pyproject.toml.
"""

from setuptools import setup

setup()
