"""JSON/CSV reports for scenario sweeps.

The JSON document (schema ``repro-sweep/v1``) is a pure function of the
spec and the grid values — it carries no engine, timing or host metadata —
so the batched and scalar engines, and the thread and process backends,
all serialise to *byte-identical* output.  ``python -m repro.sweep
--verify`` leans on exactly that property.
"""

from __future__ import annotations

import csv
import io
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigurationError
from .engine import PointFailure, PointResult
from .spec import SweepSpec

SCHEMA = "repro-sweep/v1"

#: Output formats accepted by :meth:`SweepReport.render` / the CLI.
FORMATS = ("json", "csv")


@dataclass(frozen=True)
class SweepReport:
    """All grid points of one sweep, in point order.

    ``failures`` is the error channel filled under
    ``on_error="skip"``/``"retry"`` — points whose evaluation failed,
    recorded instead of evaluated.  A report with failures is *partial*
    and says so explicitly in its JSON document and summary.
    """

    spec: SweepSpec
    duty_cycles: tuple[float, ...]
    points: list[PointResult]
    failures: tuple[PointFailure, ...] = ()

    @property
    def partial(self) -> bool:
        """True when at least one grid point failed and was recorded."""
        return bool(self.failures)

    def to_json_doc(self) -> dict:
        """The schema'd document (deterministic: no engine/host metadata)."""
        return {
            "schema": SCHEMA,
            "spec": self.spec.describe(),
            "duty_cycles": list(self.duty_cycles),
            "points": [p.to_json() for p in self.points],
            "failures": [f.to_json() for f in self.failures],
            "partial": self.partial,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_doc(), indent=2, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        """Long-form grid: one row per (point, duty cycle, candidate) cell."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(
            ("point", "label", "duty_cycle", "candidate", "power_w",
             "winner")
        )
        for p in self.points:
            for k, d in enumerate(self.duty_cycles):
                for j, name in enumerate(p.names):
                    writer.writerow(
                        (p.index, p.label, repr(d), name,
                         repr(p.powers_w[k][j]), p.winners[k])
                    )
        return buf.getvalue()

    def render(self, fmt: str = "json") -> str:
        if fmt not in FORMATS:
            raise ConfigurationError(
                f"unknown report format {fmt!r}; expected one of {FORMATS}"
            )
        return self.to_json() if fmt == "json" else self.to_csv()

    def write(self, path: str | Path | None, fmt: str = "json") -> str:
        """Write to ``path`` (``None`` or ``"-"`` = stdout); returns text."""
        text = self.render(fmt)
        if path is None or str(path) == "-":
            sys.stdout.write(text)
        else:
            Path(path).write_text(text)
        return text

    def summary(self) -> str:
        """Human-readable digest printed by the CLI."""
        lines = [
            f"{len(self.points)} configuration point(s) x "
            f"{len(self.duty_cycles)} duty cycles"
        ]
        if self.partial:
            lines[0] += f" (PARTIAL: {len(self.failures)} point(s) failed)"
        for p in self.points:
            lines.append(f"  [{p.index}] {p.label}")
            for lo, hi, name in p.winning_regions:
                lines.append(f"      {lo:7.2%} .. {hi:7.2%}  {name}")
        for f in self.failures:
            lines.append(
                f"  [{f.index}] {f.label}  FAILED "
                f"({f.error_type}: {f.message})"
            )
        return "\n".join(lines)
