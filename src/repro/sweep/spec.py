"""Declarative scenario-sweep grids.

A :class:`SweepSpec` names *what* to sweep — parameter axes over
:class:`~repro.config.DDCConfig` fields, a duty-cycle grid, an optional
architecture subset — without saying how to execute it.  The engine
(:mod:`repro.sweep.engine`) expands the spec into a deterministic list of
:class:`SweepPoint` task descriptors and evaluates them; because spec and
points are frozen dataclasses of primitives, they pickle cleanly and the
same sweep can fan out over threads or processes
(:func:`repro.parallel.parallel_map`) with byte-identical results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping, Sequence

import numpy as np

from ..config import DDCConfig
from ..energy.scenarios import duty_grid
from ..errors import ConfigurationError
from ..resilience import check_on_error

#: DDCConfig fields a sweep axis may range over (the default workload's
#: axes; other workloads validate against their own configuration via
#: :meth:`repro.workloads.base.Workload.check_axes`).
CONFIG_AXES: tuple[str, ...] = tuple(
    f.name for f in fields(DDCConfig)
)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a picklable task descriptor, not a live model.

    ``overrides`` is the tuple of ``(field, value)`` pairs this point
    applies on top of the spec's base configuration, in axis order.
    """

    index: int
    overrides: tuple[tuple[str, Any], ...] = ()

    def label(self) -> str:
        """Human-readable point name for reports."""
        if not self.overrides:
            return "reference"
        return ",".join(f"{k}={v}" for k, v in self.overrides)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid over configurations x duty cycles x architectures.

    Parameters
    ----------
    workload:
        Registry name of the workload being swept
        (:func:`repro.workloads.get`); the default ``"ddc"`` is the
        paper's kernel.  Stored as the *name*, not the instance, so
        specs stay picklable and process-pool workers resolve the
        workload (and its per-process shared evaluator) lazily.
    axes:
        Ordered ``(field, values)`` pairs; each field must be a field of
        the workload's configuration dataclass.  The grid is the
        cartesian product in axis order (first axis varies slowest).
        Empty = a single point, the base configuration.
    base_config:
        Configuration the axis overrides are applied to (``None`` =
        the workload's default configuration).
    duty_cycle_steps:
        Size of the regular duty-cycle grid 0..1 (>= 2).
    architectures:
        Restrict the scenario candidates to these names (None = all
        feasible architectures).
    standby_fraction:
        Idle power of fixed-function chips as a fraction of active power.
    on_error:
        Cell-failure policy (:data:`~repro.resilience.ON_ERROR_POLICIES`):
        ``"raise"`` aborts on the first failing point (strict default),
        ``"skip"`` records the failure on the report's error channel and
        continues, ``"retry"`` retries the point under
        :data:`~repro.resilience.DEFAULT_RETRY` first and records it
        only if every attempt fails.  Skipped/exhausted failures mark
        the report partial.
    """

    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    base_config: Any | None = None
    duty_cycle_steps: int = 101
    architectures: tuple[str, ...] | None = None
    standby_fraction: float = 0.05
    on_error: str = "raise"
    workload: str = "ddc"

    def __post_init__(self) -> None:
        from ..workloads import get as get_workload

        wl = get_workload(self.workload)
        if self.base_config is None:
            object.__setattr__(self, "base_config", wl.default_config)
        else:
            wl.check_config(self.base_config)
        check_on_error(self.on_error)
        seen: set[str] = set()
        for axis in self.axes:
            if len(axis) != 2:
                raise ConfigurationError(
                    f"axis must be a (field, values) pair, got {axis!r}"
                )
            name, values = axis
            if name in seen:
                raise ConfigurationError(f"duplicate sweep axis {name!r}")
            seen.add(name)
            if not isinstance(values, tuple) or not values:
                raise ConfigurationError(
                    f"axis {name!r} needs a non-empty tuple of values"
                )
        wl.check_axes(self.axes, kind="sweep")
        if self.duty_cycle_steps < 2:
            raise ConfigurationError("duty_cycle_steps must be >= 2")
        if not 0.0 <= self.standby_fraction <= 1.0:
            raise ConfigurationError("standby_fraction must be in [0, 1]")
        if self.architectures is not None and not self.architectures:
            raise ConfigurationError(
                "architectures must be None or a non-empty tuple"
            )

    @classmethod
    def from_axes(
        cls,
        axes: Mapping[str, Sequence[Any]] | None = None,
        **kwargs: Any,
    ) -> "SweepSpec":
        """Build a spec from a mapping of axis name to values.

        Axis order is the mapping's iteration order (insertion order for
        a dict), which fixes the grid enumeration order.
        """
        normalised = tuple(
            (name, tuple(values)) for name, values in (axes or {}).items()
        )
        return cls(axes=normalised, **kwargs)

    @property
    def n_points(self) -> int:
        """Number of configuration grid points."""
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    @property
    def n_grid_cells(self) -> int:
        """Total duty-cycle x config cells the sweep evaluates (per arch)."""
        return self.n_points * self.duty_cycle_steps

    def duty_cycles(self) -> np.ndarray:
        """The duty-cycle grid, identical to the scalar ``i/(steps-1)``."""
        return duty_grid(self.duty_cycle_steps)

    def points(self) -> list[SweepPoint]:
        """Expand the axes into grid points, deterministic order.

        The cartesian product iterates the *last* axis fastest
        (:func:`itertools.product` semantics), so point order — and hence
        report order — is a pure function of the spec.
        """
        if not self.axes:
            return [SweepPoint(0)]
        names = [name for name, _ in self.axes]
        out = []
        for index, combo in enumerate(
            itertools.product(*(values for _, values in self.axes))
        ):
            out.append(SweepPoint(index, tuple(zip(names, combo))))
        return out

    def config_at(self, point: SweepPoint) -> Any:
        """Bind one grid point to a concrete configuration."""
        if not point.overrides:
            return self.base_config
        return replace(self.base_config, **dict(point.overrides))

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary of the grid (for report headers)."""
        return {
            "workload": self.workload,
            "axes": {name: list(values) for name, values in self.axes},
            "n_points": self.n_points,
            "duty_cycle_steps": self.duty_cycle_steps,
            "architectures": (
                list(self.architectures) if self.architectures else None
            ),
            "standby_fraction": self.standby_fraction,
            "on_error": self.on_error,
        }
