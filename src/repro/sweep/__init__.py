"""Batched scenario sweeps over configuration grids (``repro.sweep``).

The paper's comparative layer — the Section 7 scenario analysis and the
Table 7 grid — asked one configuration at a time.  This subsystem serves
*many* scenarios in one call:

- :class:`~repro.sweep.spec.SweepSpec` — a declarative grid: parameter
  axes over :class:`~repro.config.DDCConfig` fields, a duty-cycle grid,
  an optional architecture subset;
- :mod:`~repro.sweep.engine` — batched execution: each point's whole
  duty-cycle x candidate grid is one numpy pass through the
  energy/scenario batch APIs, bit-identical to the scalar path, with
  ``backend="process"`` fan-out for grids that outgrow the GIL;
- :mod:`~repro.sweep.report` — deterministic JSON/CSV reports.

CLI::

    PYTHONPATH=src python -m repro.sweep                  # Table 7 grid
    PYTHONPATH=src python -m repro.sweep --verify         # batch == scalar
    PYTHONPATH=src python -m repro.sweep \\
        --axis fir_taps=63,125 --steps 201 --format csv --output grid.csv
"""

from .engine import (
    ENGINES,
    PointResult,
    duty_cycle_grid,
    evaluate_point,
    run_sweep,
)
from .report import FORMATS, SCHEMA, SweepReport
from .spec import CONFIG_AXES, SweepPoint, SweepSpec

__all__ = [
    "CONFIG_AXES",
    "ENGINES",
    "FORMATS",
    "SCHEMA",
    "PointResult",
    "SweepPoint",
    "SweepSpec",
    "SweepReport",
    "duty_cycle_grid",
    "evaluate_point",
    "run_sweep",
]
