"""CLI entry point: ``PYTHONPATH=src python -m repro.sweep``.

With no arguments it regenerates the Table 7 scenario grid — the paper's
feasible architectures against the 0..1 duty-cycle grid — through the
batched engine and prints the JSON report.  ``--axis`` adds configuration
axes, ``--backend process --workers N`` fans points out over a process
pool, and ``--verify`` proves the batched run byte-identical to the
scalar oracle while timing both.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..errors import ConfigurationError, ReproError
from ..telemetry import tracing
from ..telemetry.cli import (
    add_telemetry_args,
    cache_counts,
    cache_stats_line,
    print_metrics,
)
from .engine import run_sweep
from .report import FORMATS
from .spec import SweepSpec


def _parse_axis(text: str, flag: str = "--axis") -> tuple[str, tuple]:
    """``name=v1,v2,...`` with int-then-float value coercion.

    Shared with the explore CLI's ``--discrete-axis`` (``flag`` names
    the option in error messages).
    """
    name, sep, raw = text.partition("=")
    if not sep or not raw:
        raise ConfigurationError(
            f"{flag} expects name=v1,v2,... got {text!r}"
        )

    def coerce(token: str):
        try:
            return int(token)
        except ValueError:
            try:
                return float(token)
            except ValueError:
                raise ConfigurationError(
                    f"axis {name!r}: {token!r} is not a number"
                ) from None

    return name.strip(), tuple(coerce(t) for t in raw.split(",") if t)


def build_spec(args: argparse.Namespace) -> SweepSpec:
    """Translate parsed CLI arguments into a SweepSpec."""
    axes = dict(_parse_axis(a) for a in args.axis)
    architectures = None
    if args.architectures:
        architectures = tuple(
            a.strip() for a in args.architectures.split(",") if a.strip()
        )
    return SweepSpec.from_axes(
        axes,
        duty_cycle_steps=args.steps,
        architectures=architectures,
        standby_fraction=args.standby_fraction,
        on_error=args.on_error,
        workload=args.workload,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Batched scenario sweeps over configuration grids.",
    )
    from ..workloads import available, default_name

    parser.add_argument(
        "--workload", default=default_name(), metavar="NAME",
        help="workload to sweep, one of: "
        f"{', '.join(available())} (default: %(default)s, i.e. "
        "$REPRO_WORKLOAD or ddc)",
    )
    parser.add_argument(
        "--axis", action="append", default=[], metavar="FIELD=V1,V2,...",
        help="add a configuration sweep axis over the workload's fields "
        "(repeatable); no axes = the workload's reference configuration "
        "(for ddc, the Table 7 scenario grid)",
    )
    parser.add_argument(
        "--steps", type=int, default=101,
        help="duty-cycle grid size over [0, 1] (default: %(default)s)",
    )
    parser.add_argument(
        "--architectures", default=None, metavar="NAME,NAME,...",
        help="restrict candidates to these architecture names",
    )
    parser.add_argument(
        "--standby-fraction", type=float, default=0.05,
        help="fixed-function idle power as a fraction of active power "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="fan configuration points out over a pool (default: serial)",
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="pool type for --workers (default: %(default)s)",
    )
    parser.add_argument(
        "--engine", choices=("batch", "scalar"), default="batch",
        help="grid evaluation path (scalar = the seed oracle loop; "
        "default: %(default)s)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="json",
        help="report format (default: %(default)s)",
    )
    parser.add_argument(
        "--output", default="-", metavar="PATH",
        help="report path, '-' = stdout (default: stdout)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="raise",
        help="point-failure policy: raise = abort on the first failure, "
        "skip = record it and continue, retry = retry the point first "
        "and record only if every attempt fails; a report with recorded "
        "failures is marked partial and exits with status 3 "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="print the human-readable winner map instead of the report",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run BOTH engines, require byte-identical reports, report "
        "the measured speedup; exits 1 on any divergence",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)

    try:
        with tracing(args.trace):
            return _run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    """The CLI body, inside the (possibly no-op) tracing context."""
    spec = build_spec(args)
    cache_before = cache_counts(spec.workload)
    try:
        if args.verify:
            # Warm the model/numpy import paths so the timed runs compare
            # grid evaluation, not first-call import costs.
            from dataclasses import replace

            run_sweep(replace(spec, duty_cycle_steps=2), engine="batch")
            run_sweep(replace(spec, duty_cycle_steps=2), engine="scalar")
            t0 = time.perf_counter()
            batch = run_sweep(
                spec, workers=args.workers, backend=args.backend,
                engine="batch",
            )
            t_batch = time.perf_counter() - t0
            t0 = time.perf_counter()
            scalar = run_sweep(spec, engine="scalar")
            t_scalar = time.perf_counter() - t0
            batch_bytes = batch.render(args.format).encode()
            scalar_bytes = scalar.render(args.format).encode()
            if batch_bytes != scalar_bytes:
                print(
                    "VERIFY FAILED: batched and scalar reports differ",
                    file=sys.stderr,
                )
                return 1
            cells = spec.n_grid_cells
            print(
                f"verify OK: {len(batch_bytes)} bytes identical across "
                f"engines ({cells} grid cells)"
            )
            print(
                f"  batch {t_batch * 1e3:.2f} ms, scalar "
                f"{t_scalar * 1e3:.2f} ms, speedup "
                f"{t_scalar / t_batch:.1f}x"
            )
            if args.metrics:
                print_metrics(cache_before, spec.workload)
            return 0

        report = run_sweep(
            spec, workers=args.workers, backend=args.backend,
            engine=args.engine,
        )
        if args.summary:
            print(report.summary())
            print(cache_stats_line(cache_before, spec.workload))
        else:
            report.write(args.output, args.format)
            if args.output != "-":
                print(f"wrote {args.output}")
        if args.metrics:
            print_metrics(cache_before, spec.workload)
        if report.partial:
            print(
                f"warning: partial report — {len(report.failures)} "
                f"point(s) failed under --on-error {spec.on_error}",
                file=sys.stderr,
            )
            return 3
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
