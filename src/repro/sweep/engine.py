"""Batched execution engine for scenario sweeps.

:func:`evaluate_point` turns one :class:`~repro.sweep.spec.SweepPoint`
into a :class:`PointResult`: it binds the point to a configuration, runs
the architecture models through the **batched model layer**
(:meth:`~repro.core.evaluator.DDCEvaluator.scenario_candidates_batch`,
i.e. each model's ``implement_batch`` — no scalar ``implement`` call sits
on the grid hot path), and evaluates the whole duty-cycle x candidate
grid through the batched scenario APIs
(:meth:`~repro.energy.scenarios.ScenarioAnalysis.evaluate_batch`,
:func:`~repro.energy.scenarios.duty_cycle_crossover_batch`).
:func:`run_sweep` goes one level further: the *entire configuration axis*
is served by one ``scenario_candidates_batch`` call before any grid math
runs, and the per-process :func:`~repro.core.evaluator.shared_evaluator`
report cache amortises repeated configurations across sweeps.

``engine="scalar"`` evaluates the same grid through the seed scalar path
(per-point scalar ``implement`` model runs, one
:meth:`~repro.energy.scenarios.ScenarioAnalysis.evaluate` call per duty
cycle, one pairwise crossover at a time).  Both engines emit bit-identical
:class:`PointResult` s — the scalar engine is the oracle the
``python -m repro.sweep --verify`` mode and the ``scenario_sweep`` /
``evaluator_batch`` bench baselines run against.

Everything here is a module-level callable over picklable descriptors
(:class:`~repro.energy.scenarios.ScenarioCandidate` lists are frozen
dataclasses of primitives), so :func:`run_sweep` can fan points out over
``backend="process"`` pools (see :mod:`repro.parallel`) with
deterministic, serial-identical output.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..energy.scenarios import (
    ScenarioAnalysis,
    ScenarioCandidate,
    ScenarioGrid,
    duty_cycle_crossover,
    duty_cycle_crossover_batch,
    duty_grid,
)
from .. import telemetry
from ..errors import ConfigurationError, PartialResultError
from ..faults import fault_point
from ..parallel import parallel_map
from ..resilience import (
    DEFAULT_RETRY,
    call_with_retry,
    failure_attempts,
    failure_cause,
)
from .spec import SweepPoint, SweepSpec

#: Engines accepted by :func:`evaluate_point` / :func:`run_sweep`.
ENGINES = ("batch", "scalar")


@dataclass(frozen=True)
class PointResult:
    """The scenario grid of one configuration point (picklable, JSON-ready).

    ``powers_w[k][j]`` is candidate ``names[j]`` at the ``k``-th duty
    cycle of the spec's grid; ``crossovers`` lists the in-[0,1] duty-cycle
    crossings of every ``i < j`` candidate pair.
    """

    index: int
    label: str
    overrides: tuple[tuple[str, Any], ...]
    names: tuple[str, ...]
    reusable: tuple[bool, ...]
    active_powers_w: tuple[float, ...]
    powers_w: tuple[tuple[float, ...], ...]
    winners: tuple[str, ...]
    winning_regions: tuple[tuple[float, float, str], ...]
    crossovers: tuple[tuple[str, str, float], ...]

    @property
    def static_winner(self) -> str:
        """Winner at duty cycle 1.0 (Section 7.1, the grid's last step)."""
        return self.winners[-1]

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "overrides": {k: v for k, v in self.overrides},
            "names": list(self.names),
            "reusable": list(self.reusable),
            "active_powers_w": list(self.active_powers_w),
            "powers_w": [list(row) for row in self.powers_w],
            "winners": list(self.winners),
            "winning_regions": [list(r) for r in self.winning_regions],
            "crossovers": [list(c) for c in self.crossovers],
            "static_winner": self.static_winner,
        }


@dataclass(frozen=True)
class PointFailure:
    """One grid point's recorded failure (picklable, JSON-ready).

    Produced under ``on_error="skip"``/``"retry"`` instead of aborting
    the sweep: the *underlying* error (never the retry wrapper) is
    recorded by type name and message.  ``attempts`` counts how often
    the point ran; it is deliberately excluded from comparison and from
    the JSON document — reports must stay a pure function of the spec
    and the outcomes, identical across engines and backends.
    """

    index: int
    label: str
    overrides: tuple[tuple[str, Any], ...]
    error_type: str
    message: str
    attempts: int = field(default=1, compare=False)

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "overrides": {k: v for k, v in self.overrides},
            "error": {"type": self.error_type, "message": self.message},
        }


def _point_failure(point: SweepPoint, exc: Exception) -> PointFailure:
    cause = failure_cause(exc)
    return PointFailure(
        index=point.index,
        label=point.label(),
        overrides=point.overrides,
        error_type=type(cause).__name__,
        message=str(cause),
        attempts=failure_attempts(exc),
    )


def duty_cycle_grid(analysis: ScenarioAnalysis, steps: int) -> ScenarioGrid:
    """One batched pass over the regular 0..1 duty grid — the sweep
    subsystem's core primitive, shared by Section 7, the figures and the
    ``scenario_sweep`` bench."""
    return analysis.evaluate_batch(duty_grid(steps))


def select_candidates(
    candidates: list[ScenarioCandidate],
    architectures: tuple[str, ...] | None,
) -> list[ScenarioCandidate]:
    """Apply an architecture subset, preserving model order.

    A requested architecture that is missing from *this point's*
    candidates is simply dropped for the point — it may be infeasible or
    unmappable there (the same drop-out the strict=False candidate build
    gives unrestricted sweeps).  Only an empty intersection is an error,
    which is also how typos surface: no point ever matches the name.
    Shared by the sweep engine and the :mod:`repro.explore` cells.
    """
    if architectures is None:
        return candidates
    wanted = set(architectures)
    selected = [c for c in candidates if c.name in wanted]
    if not selected:
        raise ConfigurationError(
            f"none of the requested architecture(s) "
            f"{', '.join(architectures)} are feasible here; this "
            f"point's candidates are {', '.join(c.name for c in candidates)}"
        )
    return selected


def scalar_winner_regions(
    winners: "list[str]", duty_cycles: "list[float]"
) -> list[tuple[float, float, str]]:
    """(start, end, winner) intervals from a scalar winner sequence.

    The seed Section 7 loop's region reconstruction, factored out so the
    scalar sweep oracle and the dense explore oracle share it; it is the
    scalar twin of :meth:`~repro.energy.scenarios.ScenarioGrid.winning_regions`
    (bit-identical boundaries — both read the same duty grid values).
    """
    regions: list[tuple[float, float, str]] = []
    start = duty_cycles[0]
    current = winners[0]
    for winner, duty in zip(winners[1:], duty_cycles[1:]):
        if winner != current:
            regions.append((start, duty, current))
            start = duty
            current = winner
    regions.append((start, duty_cycles[-1], current))
    return regions


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown sweep engine {engine!r}; expected one of {ENGINES}"
        )


def _spec_workload(spec: SweepSpec):
    """Resolve the spec's workload through the per-process registry.

    Specs carry the workload *name* (picklable); each worker process
    resolves it here, so the batch engine's shared evaluator — and its
    report cache — is per process, exactly as before the workload layer.
    """
    from ..workloads import get

    return get(getattr(spec, "workload", "ddc"))


def point_candidates(
    spec: SweepSpec, point: SweepPoint, engine: str = "batch"
) -> list[ScenarioCandidate]:
    """The point's scenario candidates through the selected model path.

    ``engine="batch"`` rides the shared evaluator's
    ``scenario_candidates_batch`` (each model's ``implement_batch``, with
    the per-process report cache); ``engine="scalar"`` runs the seed
    scalar path on a fresh, uncached evaluator.  Both are bit-identical.
    strict=False either way: architectures whose model cannot map this
    point (e.g. the Montium off its reference schedule) drop out of the
    candidate set instead of aborting the whole sweep.
    """
    _check_engine(engine)
    config = spec.config_at(point)
    workload = _spec_workload(spec)
    if engine == "batch":
        candidates = workload.shared_evaluator().scenario_candidates_batch(
            [config], spec.standby_fraction, strict=False
        )[0]
    else:
        candidates = workload.evaluator().scenario_candidates(
            config, spec.standby_fraction, strict=False
        )
    return select_candidates(candidates, spec.architectures)


def evaluate_point(
    spec: SweepSpec, point: SweepPoint, engine: str = "batch"
) -> PointResult:
    """Evaluate one grid point (module-level: safe for process pools)."""
    _check_engine(engine)
    return _point_result(
        spec, point, point_candidates(spec, point, engine), engine
    )


def _evaluate_prepared_point(
    spec: SweepSpec, engine: str, item: tuple[SweepPoint, list]
) -> PointResult:
    """Grid math over pre-batched candidates (picklable pool task)."""
    point, candidates = item
    return _point_result(spec, point, candidates, engine)


def _point_result(
    spec: SweepSpec,
    point: SweepPoint,
    candidates: list[ScenarioCandidate],
    engine: str,
) -> PointResult:
    """The duty-cycle x candidate grid of one point, either engine.

    Span and fault site share the ``sweep.point`` name so a trace and
    the chaos suite describe the same place.
    """
    with telemetry.span("sweep.point", index=point.index, engine=engine):
        return _point_grid(spec, point, candidates, engine)


def _point_grid(
    spec: SweepSpec,
    point: SweepPoint,
    candidates: list[ScenarioCandidate],
    engine: str,
) -> PointResult:
    fault_point("sweep.point", key=point.index)
    analysis = ScenarioAnalysis(candidates)
    steps = spec.duty_cycle_steps
    names = analysis.names

    if engine == "batch":
        grid = duty_cycle_grid(analysis, steps)
        # tolist() converts the whole grid to python floats at C speed —
        # bit-identical to element-wise float() but without the loop.
        powers = tuple(map(tuple, grid.powers_w.tolist()))
        winners = tuple(grid.winners())
        regions = tuple(grid.winning_regions())
        matrix = duty_cycle_crossover_batch(candidates)
        crossovers = tuple(
            (names[i], names[j], float(matrix[i, j]))
            for i in range(len(names))
            for j in range(i + 1, len(names))
            if not math.isnan(matrix[i, j])
        )
    else:
        results = [
            analysis.evaluate(i / (steps - 1)) for i in range(steps)
        ]
        powers = tuple(
            tuple(r.powers_w[name] for name in names) for r in results
        )
        winners = tuple(r.winner for r in results)
        regions = tuple(
            scalar_winner_regions(
                [r.winner for r in results], [r.duty_cycle for r in results]
            )
        )
        scalar_pairs = []
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                d = duty_cycle_crossover(candidates[i], candidates[j])
                if d is not None:
                    scalar_pairs.append((names[i], names[j], d))
        crossovers = tuple(scalar_pairs)

    return PointResult(
        index=point.index,
        label=point.label(),
        overrides=point.overrides,
        names=names,
        reusable=tuple(c.reusable for c in candidates),
        active_powers_w=tuple(c.active_power_w for c in candidates),
        powers_w=powers,
        winners=winners,
        winning_regions=regions,
        crossovers=crossovers,
    )


def _evaluate_prepared_tolerant(
    spec: SweepSpec,
    engine: str,
    item: "tuple[SweepPoint, list | None, Exception | None]",
) -> "PointResult | PointFailure":
    """Fault-tolerant grid math (pool task for ``on_error != "raise"``).

    ``item`` carries either the point's pre-batched candidates or the
    candidate-phase error that already doomed it.  Candidate-phase errors
    are deterministic model verdicts — retrying cannot change them — so
    they are recorded directly; grid-math failures are retried under
    :data:`~repro.resilience.DEFAULT_RETRY` when the policy says so.
    """
    point, candidates, error = item
    if error is not None:
        return _point_failure(point, error)
    try:
        if spec.on_error == "retry":
            return call_with_retry(
                lambda: _point_result(spec, point, candidates, engine),
                DEFAULT_RETRY,
                label=f"sweep point {point.index}",
            )
        return _point_result(spec, point, candidates, engine)
    except Exception as exc:  # noqa: BLE001 — the error channel records it
        return _point_failure(point, exc)


def _evaluate_point_tolerant(
    spec: SweepSpec, engine: str, point: SweepPoint
) -> "PointResult | PointFailure":
    """Fault-tolerant whole-point evaluation (scalar-engine pool task)."""
    try:
        if spec.on_error == "retry":
            return call_with_retry(
                lambda: evaluate_point(spec, point, engine),
                DEFAULT_RETRY,
                label=f"sweep point {point.index}",
            )
        return evaluate_point(spec, point, engine)
    except Exception as exc:  # noqa: BLE001 — the error channel records it
        return _point_failure(point, exc)


def run_sweep(
    spec: SweepSpec,
    workers: int | None = None,
    backend: str = "thread",
    engine: str = "batch",
):
    """Execute the whole grid; returns a :class:`~repro.sweep.report.SweepReport`.

    With ``engine="batch"`` the whole configuration axis goes through
    **one** ``scenario_candidates_batch`` pass (each architecture model's
    ``implement_batch`` runs once over every point) before any grid math;
    ``workers``/``backend`` then fan the per-point duty-cycle grids out
    via :func:`repro.parallel.parallel_map` over picklable
    (point, candidates) descriptors, so ``backend="process"`` ships no
    model work to the children at all.  The scalar oracle engine keeps
    the seed shape — a fresh evaluator running scalar ``implement`` per
    point.  Every combination of knobs returns byte-identical reports in
    point order.

    ``spec.on_error`` selects the failure policy: ``"raise"`` keeps the
    strict first-failure-aborts contract; ``"skip"``/``"retry"`` record
    failing points on the report's error channel instead (see
    :class:`PointFailure`) and mark the report partial.  Under
    ``"retry"`` the pooled map additionally arms
    :func:`~repro.parallel.parallel_map`'s ``BrokenExecutor`` recovery,
    so a killed process-pool worker costs re-submission, not the sweep.
    If *every* point fails, :class:`~repro.errors.PartialResultError` is
    raised — an all-failure "report" helps nobody.
    """
    from .report import SweepReport

    _check_engine(engine)
    points = spec.points()
    tolerant = spec.on_error != "raise"
    pool_retry = DEFAULT_RETRY if spec.on_error == "retry" else None
    if engine == "batch":
        configs = [spec.config_at(p) for p in points]
        per_point = _candidate_outcomes(spec, configs, tolerant)
        if tolerant:
            items = []
            for point, (candidates, error) in zip(points, per_point):
                if error is None:
                    try:
                        items.append((
                            point,
                            select_candidates(candidates, spec.architectures),
                            None,
                        ))
                    except ConfigurationError as exc:
                        items.append((point, None, exc))
                else:
                    items.append((point, None, error))
            task = functools.partial(
                _evaluate_prepared_tolerant, spec, engine
            )
            raw = parallel_map(
                task, items, workers=workers, backend=backend,
                retry=pool_retry,
            )
        else:
            items = [
                (point, select_candidates(candidates, spec.architectures))
                for point, (candidates, _) in zip(points, per_point)
            ]
            task = functools.partial(_evaluate_prepared_point, spec, engine)
            raw = parallel_map(
                task, items, workers=workers, backend=backend
            )
    else:
        if tolerant:
            task = functools.partial(_evaluate_point_tolerant, spec, engine)
        else:
            task = functools.partial(evaluate_point, spec, engine=engine)
        raw = parallel_map(
            task, points, workers=workers, backend=backend,
            retry=pool_retry,
        )
    results = [r for r in raw if isinstance(r, PointResult)]
    failures = tuple(r for r in raw if isinstance(r, PointFailure))
    if failures and not results:
        raise PartialResultError(
            f"all {len(failures)} sweep point(s) failed under "
            f"on_error={spec.on_error!r}; first error: "
            f"{failures[0].error_type}: {failures[0].message}"
        )
    duty = tuple(float(d) for d in np.asarray(spec.duty_cycles()))
    return SweepReport(
        spec=spec, duty_cycles=duty, points=results, failures=failures
    )


def _candidate_outcomes(
    spec: SweepSpec, configs: list, tolerant: bool
) -> "list[tuple[list | None, Exception | None]]":
    """Per-config ``(candidates, error)`` outcomes for the batch engine.

    The strict path keeps the original single-shot
    ``scenario_candidates_batch`` call (any model error aborts, as
    before); the tolerant path captures per-config errors instead of
    raising so one broken configuration cannot take the axis down.
    """
    ev = _spec_workload(spec).shared_evaluator()
    if not tolerant:
        return [
            (candidates, None)
            for candidates in ev.scenario_candidates_batch(
                configs, spec.standby_fraction, strict=False
            )
        ]
    batches = ev.report_batches(configs)
    return ev.scenario_candidate_outcomes_from_batches(
        batches, configs, spec.standby_fraction
    )
