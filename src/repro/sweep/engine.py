"""Batched execution engine for scenario sweeps.

:func:`evaluate_point` turns one :class:`~repro.sweep.spec.SweepPoint`
into a :class:`PointResult`: it binds the point to a configuration, runs
the architecture models through the **batched model layer**
(:meth:`~repro.core.evaluator.DDCEvaluator.scenario_candidates_batch`,
i.e. each model's ``implement_batch`` — no scalar ``implement`` call sits
on the grid hot path), and evaluates the whole duty-cycle x candidate
grid through the batched scenario APIs
(:meth:`~repro.energy.scenarios.ScenarioAnalysis.evaluate_batch`,
:func:`~repro.energy.scenarios.duty_cycle_crossover_batch`).
:func:`run_sweep` goes one level further: the *entire configuration axis*
is served by one ``scenario_candidates_batch`` call before any grid math
runs, and the per-process :func:`~repro.core.evaluator.shared_evaluator`
report cache amortises repeated configurations across sweeps.

``engine="scalar"`` evaluates the same grid through the seed scalar path
(per-point scalar ``implement`` model runs, one
:meth:`~repro.energy.scenarios.ScenarioAnalysis.evaluate` call per duty
cycle, one pairwise crossover at a time).  Both engines emit bit-identical
:class:`PointResult` s — the scalar engine is the oracle the
``python -m repro.sweep --verify`` mode and the ``scenario_sweep`` /
``evaluator_batch`` bench baselines run against.

Everything here is a module-level callable over picklable descriptors
(:class:`~repro.energy.scenarios.ScenarioCandidate` lists are frozen
dataclasses of primitives), so :func:`run_sweep` can fan points out over
``backend="process"`` pools (see :mod:`repro.parallel`) with
deterministic, serial-identical output.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.evaluator import DDCEvaluator, shared_evaluator
from ..energy.scenarios import (
    ScenarioAnalysis,
    ScenarioCandidate,
    ScenarioGrid,
    duty_cycle_crossover,
    duty_cycle_crossover_batch,
    duty_grid,
)
from ..errors import ConfigurationError
from ..parallel import parallel_map
from .spec import SweepPoint, SweepSpec

#: Engines accepted by :func:`evaluate_point` / :func:`run_sweep`.
ENGINES = ("batch", "scalar")


@dataclass(frozen=True)
class PointResult:
    """The scenario grid of one configuration point (picklable, JSON-ready).

    ``powers_w[k][j]`` is candidate ``names[j]`` at the ``k``-th duty
    cycle of the spec's grid; ``crossovers`` lists the in-[0,1] duty-cycle
    crossings of every ``i < j`` candidate pair.
    """

    index: int
    label: str
    overrides: tuple[tuple[str, Any], ...]
    names: tuple[str, ...]
    reusable: tuple[bool, ...]
    active_powers_w: tuple[float, ...]
    powers_w: tuple[tuple[float, ...], ...]
    winners: tuple[str, ...]
    winning_regions: tuple[tuple[float, float, str], ...]
    crossovers: tuple[tuple[str, str, float], ...]

    @property
    def static_winner(self) -> str:
        """Winner at duty cycle 1.0 (Section 7.1, the grid's last step)."""
        return self.winners[-1]

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "overrides": {k: v for k, v in self.overrides},
            "names": list(self.names),
            "reusable": list(self.reusable),
            "active_powers_w": list(self.active_powers_w),
            "powers_w": [list(row) for row in self.powers_w],
            "winners": list(self.winners),
            "winning_regions": [list(r) for r in self.winning_regions],
            "crossovers": [list(c) for c in self.crossovers],
            "static_winner": self.static_winner,
        }


def duty_cycle_grid(analysis: ScenarioAnalysis, steps: int) -> ScenarioGrid:
    """One batched pass over the regular 0..1 duty grid — the sweep
    subsystem's core primitive, shared by Section 7, the figures and the
    ``scenario_sweep`` bench."""
    return analysis.evaluate_batch(duty_grid(steps))


def select_candidates(
    candidates: list[ScenarioCandidate],
    architectures: tuple[str, ...] | None,
) -> list[ScenarioCandidate]:
    """Apply an architecture subset, preserving model order.

    A requested architecture that is missing from *this point's*
    candidates is simply dropped for the point — it may be infeasible or
    unmappable there (the same drop-out the strict=False candidate build
    gives unrestricted sweeps).  Only an empty intersection is an error,
    which is also how typos surface: no point ever matches the name.
    Shared by the sweep engine and the :mod:`repro.explore` cells.
    """
    if architectures is None:
        return candidates
    wanted = set(architectures)
    selected = [c for c in candidates if c.name in wanted]
    if not selected:
        raise ConfigurationError(
            f"none of the requested architecture(s) "
            f"{', '.join(architectures)} are feasible here; this "
            f"point's candidates are {', '.join(c.name for c in candidates)}"
        )
    return selected


def scalar_winner_regions(
    winners: "list[str]", duty_cycles: "list[float]"
) -> list[tuple[float, float, str]]:
    """(start, end, winner) intervals from a scalar winner sequence.

    The seed Section 7 loop's region reconstruction, factored out so the
    scalar sweep oracle and the dense explore oracle share it; it is the
    scalar twin of :meth:`~repro.energy.scenarios.ScenarioGrid.winning_regions`
    (bit-identical boundaries — both read the same duty grid values).
    """
    regions: list[tuple[float, float, str]] = []
    start = duty_cycles[0]
    current = winners[0]
    for winner, duty in zip(winners[1:], duty_cycles[1:]):
        if winner != current:
            regions.append((start, duty, current))
            start = duty
            current = winner
    regions.append((start, duty_cycles[-1], current))
    return regions


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown sweep engine {engine!r}; expected one of {ENGINES}"
        )


def point_candidates(
    spec: SweepSpec, point: SweepPoint, engine: str = "batch"
) -> list[ScenarioCandidate]:
    """The point's scenario candidates through the selected model path.

    ``engine="batch"`` rides the shared evaluator's
    ``scenario_candidates_batch`` (each model's ``implement_batch``, with
    the per-process report cache); ``engine="scalar"`` runs the seed
    scalar path on a fresh, uncached evaluator.  Both are bit-identical.
    strict=False either way: architectures whose model cannot map this
    point (e.g. the Montium off its reference schedule) drop out of the
    candidate set instead of aborting the whole sweep.
    """
    _check_engine(engine)
    config = spec.config_at(point)
    if engine == "batch":
        candidates = shared_evaluator().scenario_candidates_batch(
            [config], spec.standby_fraction, strict=False
        )[0]
    else:
        candidates = DDCEvaluator().scenario_candidates(
            config, spec.standby_fraction, strict=False
        )
    return select_candidates(candidates, spec.architectures)


def evaluate_point(
    spec: SweepSpec, point: SweepPoint, engine: str = "batch"
) -> PointResult:
    """Evaluate one grid point (module-level: safe for process pools)."""
    _check_engine(engine)
    return _point_result(
        spec, point, point_candidates(spec, point, engine), engine
    )


def _evaluate_prepared_point(
    spec: SweepSpec, engine: str, item: tuple[SweepPoint, list]
) -> PointResult:
    """Grid math over pre-batched candidates (picklable pool task)."""
    point, candidates = item
    return _point_result(spec, point, candidates, engine)


def _point_result(
    spec: SweepSpec,
    point: SweepPoint,
    candidates: list[ScenarioCandidate],
    engine: str,
) -> PointResult:
    """The duty-cycle x candidate grid of one point, either engine."""
    analysis = ScenarioAnalysis(candidates)
    steps = spec.duty_cycle_steps
    names = analysis.names

    if engine == "batch":
        grid = duty_cycle_grid(analysis, steps)
        # tolist() converts the whole grid to python floats at C speed —
        # bit-identical to element-wise float() but without the loop.
        powers = tuple(map(tuple, grid.powers_w.tolist()))
        winners = tuple(grid.winners())
        regions = tuple(grid.winning_regions())
        matrix = duty_cycle_crossover_batch(candidates)
        crossovers = tuple(
            (names[i], names[j], float(matrix[i, j]))
            for i in range(len(names))
            for j in range(i + 1, len(names))
            if not math.isnan(matrix[i, j])
        )
    else:
        results = [
            analysis.evaluate(i / (steps - 1)) for i in range(steps)
        ]
        powers = tuple(
            tuple(r.powers_w[name] for name in names) for r in results
        )
        winners = tuple(r.winner for r in results)
        regions = tuple(
            scalar_winner_regions(
                [r.winner for r in results], [r.duty_cycle for r in results]
            )
        )
        scalar_pairs = []
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                d = duty_cycle_crossover(candidates[i], candidates[j])
                if d is not None:
                    scalar_pairs.append((names[i], names[j], d))
        crossovers = tuple(scalar_pairs)

    return PointResult(
        index=point.index,
        label=point.label(),
        overrides=point.overrides,
        names=names,
        reusable=tuple(c.reusable for c in candidates),
        active_powers_w=tuple(c.active_power_w for c in candidates),
        powers_w=powers,
        winners=winners,
        winning_regions=regions,
        crossovers=crossovers,
    )


def run_sweep(
    spec: SweepSpec,
    workers: int | None = None,
    backend: str = "thread",
    engine: str = "batch",
):
    """Execute the whole grid; returns a :class:`~repro.sweep.report.SweepReport`.

    With ``engine="batch"`` the whole configuration axis goes through
    **one** ``scenario_candidates_batch`` pass (each architecture model's
    ``implement_batch`` runs once over every point) before any grid math;
    ``workers``/``backend`` then fan the per-point duty-cycle grids out
    via :func:`repro.parallel.parallel_map` over picklable
    (point, candidates) descriptors, so ``backend="process"`` ships no
    model work to the children at all.  The scalar oracle engine keeps
    the seed shape — a fresh evaluator running scalar ``implement`` per
    point.  Every combination of knobs returns byte-identical reports in
    point order.
    """
    from .report import SweepReport

    _check_engine(engine)
    points = spec.points()
    if engine == "batch":
        configs = [spec.config_at(p) for p in points]
        per_point = shared_evaluator().scenario_candidates_batch(
            configs, spec.standby_fraction, strict=False
        )
        items = [
            (point, select_candidates(candidates, spec.architectures))
            for point, candidates in zip(points, per_point)
        ]
        task = functools.partial(_evaluate_prepared_point, spec, engine)
        results = parallel_map(
            task, items, workers=workers, backend=backend
        )
    else:
        task = functools.partial(evaluate_point, spec, engine=engine)
        results = parallel_map(
            task, points, workers=workers, backend=backend
        )
    duty = tuple(float(d) for d in np.asarray(spec.duty_cycles()))
    return SweepReport(spec=spec, duty_cycles=duty, points=results)
