"""Fused single-pass numpy kernels for the streaming DSP front end.

Each kernel here is a restructured implementation of one ``python``
oracle (``NCO.generate``, ``FixedCICDecimator.process``,
``FixedPolyphaseDecimator.process``, ``FixedDDC.process``) with the
per-call staging stripped out:

- **no staging copies** — work happens in one buffer (`np.cumsum(y,
  out=y)`, in-place adds/shifts/clips), windows are strided views
  instead of fancy-indexed gathers;
- **no dtype churn** — the ``FixedDDC`` mixer runs on the NCO's integer
  LUT directly instead of round-tripping quantised floats back to raw
  integers;
- **narrow arithmetic where it is exact** — full-rate passes run in
  ``int32`` whenever every intermediate provably fits, halving memory
  traffic (integer overflow wraps mod ``2**32``, which is congruent to
  any wrap width ``W <= 32`` because ``2**W`` divides ``2**32``);
- **wrapping hoisted out of the integrator loop** — a chain of wrapped
  additions equals the unwrapped chain mod ``2**W`` (wrapping only
  discards multiples of ``2**W``), so the CIC integrators cumsum in
  machine arithmetic and wrap once at the decimated rate.  This is the
  same congruence argument :mod:`repro.fastpath` documents for the
  block engines.

Every kernel is bit-identical to its oracle — outputs, carried state
(integrator registers, comb delays, FIR history, NCO phase) and raised
errors alike — pinned by the Hypothesis suites in
``tests/test_kernels.py`` including arbitrary block splits.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..fixedpoint import QFormat, quantize, saturate, wrap
from ..fixedpoint.ops import Rounding
from .dispatch import register


def _check_int_input(x: np.ndarray, what: str) -> np.ndarray:
    if not np.issubdtype(np.asarray(x).dtype, np.integer):
        raise ConfigurationError(f"{what} input must be integer raw values")
    return np.asarray(x)


def _check_range(x: np.ndarray, fmt: QFormat) -> None:
    if x.size and (int(x.max()) > fmt.max_raw or int(x.min()) < fmt.min_raw):
        raise ConfigurationError(f"input sample out of {fmt} range")


# ------------------------------------------------------------------- NCO
def nco_generate(nco, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Fused LUT-mode ``NCO.generate``: shift/mask indexing, no modulo.

    The oracle reduces the phase accumulator mod ``2**phase_bits`` and
    then truncates to the table address; because the accumulator is
    non-negative and both moduli are powers of two this equals one right
    shift and one mask — two cheap in-place passes instead of two
    integer-modulo passes plus an ``astype`` copy.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    lut = nco._lut
    assert lut is not None
    shift = nco.phase_bits - nco.lut_addr_bits
    n_lut = 1 << nco.lut_addr_bits
    mask = n_lut - 1
    idx = np.arange(n, dtype=np.int64)
    idx *= nco._fcw
    idx += nco._phase_acc
    idx >>= shift
    idx &= mask
    sin_v = lut[idx]
    # Reuse the index buffer for the cosine address (gather already copied).
    idx += n_lut // 4
    idx &= mask
    cos_v = lut[idx]
    nco._phase_acc = int(
        (nco._phase_acc + nco._fcw * n) % (1 << nco.phase_bits)
    )
    return cos_v, sin_v


# ------------------------------------------------------------------- CIC
def _wrap_scalar(v: int, width: int) -> int:
    half = 1 << (width - 1)
    return ((v + half) & ((1 << width) - 1)) - half


def _cic_core(cic, y: np.ndarray) -> np.ndarray:
    """Integrate/decimate/comb a prepared work buffer ``y`` (mutated).

    ``y`` must be a private buffer of the caller holding the raw input
    samples in either ``int32`` (valid iff ``internal_width <= 32``) or
    ``int64``.  Returns the quantised output in int64, updating all
    carried state exactly as the oracle does.
    """
    internal = cic.internal_format
    width = cic.internal_width
    n = len(y)
    with np.errstate(over="ignore"):
        # Integrators: machine arithmetic wraps mod 2**{32,64}; both are
        # congruent to wrapping mod 2**width, so only the carried state
        # scalar and the decimated samples need canonicalising.
        for s in range(cic.order):
            np.cumsum(y, out=y)
            y += y.dtype.type(cic._int_state[s])
            cic._int_state[s] = _wrap_scalar(int(y[-1]), width)

        first = (-cic._phase) % cic.decimation
        kept = y[first :: cic.decimation]
        cic._phase = (cic._phase + n) % cic.decimation

        z = wrap(kept.astype(np.int64), internal)
        for s in range(cic.order):
            with_hist = np.concatenate([cic._comb_state[s], z])
            out = with_hist[cic.diff_delay :] - with_hist[: -cic.diff_delay]
            out = wrap(out, internal)
            if len(with_hist) >= cic.diff_delay:
                cic._comb_state[s] = with_hist[
                    len(with_hist) - cic.diff_delay :
                ]
            z = out
    return quantize(z, cic.truncation_shift, Rounding.TRUNCATE)


def cic_process(cic, x: np.ndarray) -> np.ndarray:
    """Fused ``FixedCICDecimator.process``: in-place cumsums, one wrap."""
    x = _check_int_input(x, "fixed CIC")
    if x.size == 0:
        return np.empty(0, dtype=np.int64)
    _check_range(x, QFormat(cic.input_width, 0))
    work = np.int32 if cic.internal_width <= 32 else np.int64
    return _cic_core(cic, x.astype(work))


# ------------------------------------------------------------------- FIR
def _fir_windows(buf: np.ndarray, first_out: int, n_out: int, n_taps: int,
                 decimation: int) -> np.ndarray:
    """Strided (n_out, n_taps) window view over ``buf`` — no gather copy.

    Window ``k`` is ``buf[first_out + k*D : first_out + k*D + n_taps]``
    ascending; dotted against *reversed* taps this equals the oracle's
    descending fancy-indexed window dotted against the taps in order.
    """
    item = buf.itemsize
    return np.lib.stride_tricks.as_strided(
        buf[first_out:],
        shape=(n_out, n_taps),
        strides=(decimation * item, item),
        writeable=False,
    )


def _fir_finish(fir, acc: np.ndarray) -> np.ndarray:
    acc = saturate(acc, fir.accumulator_format)
    y = quantize(acc, fir.output_shift, Rounding.TRUNCATE)
    return saturate(y, fir.output_format)


def _fir_update_state(fir, buf: np.ndarray, n: int) -> None:
    n_taps = len(fir.taps_raw)
    fir._offset = (fir._offset + n) % fir.decimation
    if n_taps > 1:
        tail = buf[len(buf) - (n_taps - 1) :]
        fir._hist = tail if len(buf) <= 4 * (n_taps - 1) else tail.copy()
    else:
        fir._hist = np.empty(0, dtype=np.int64)


def fir_process(fir, x: np.ndarray) -> np.ndarray:
    """Fused ``FixedPolyphaseDecimator.process``: strided MAC windows.

    The oracle materialises an ``(n_out, n_taps)`` int64 index matrix
    and gathers a same-shape window copy before the MAC; the window
    starts are uniformly ``decimation`` apart, so a strided view feeds
    the matmul directly with no index matrix and no gather.
    """
    x = _check_int_input(x, "fixed FIR")
    x = x.astype(np.int64, copy=False)
    if x.size == 0:
        return np.empty(0, dtype=np.int64)
    _check_range(x, QFormat(fir.data_width, 0))

    buf = np.concatenate([fir._hist, x])
    first_out = (-fir._offset) % fir.decimation
    n_taps = len(fir.taps_raw)
    n_out = max(0, -(-(len(x) - first_out) // fir.decimation))
    if n_out:
        windows = _fir_windows(buf, first_out, n_out, n_taps, fir.decimation)
        y = _fir_finish(fir, windows @ fir._taps_rev)
    else:
        y = np.empty(0, dtype=np.int64)
    _fir_update_state(fir, buf, len(x))
    return y


# ------------------------------------------------------------------- DDC
def _ddc_lut_raw(ddc, dtype) -> np.ndarray:
    """The NCO sine table as raw integers, cached per work dtype."""
    cache = getattr(ddc, "_fused_lut_cache", None)
    if cache is None or cache.dtype != dtype:
        cache = ddc.lut_raw().astype(dtype)
        ddc._fused_lut_cache = cache
    return cache


def ddc_process(ddc, x_raw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fused end-to-end ``FixedDDC.process``.

    One pass over the block: integer-LUT mixer (no float round trip),
    in-place shift/clip quantisation, fused CIC rails fed directly from
    the mixer buffers, fused FIR at the output rate.  Full-rate work
    runs in ``int32`` when the mixer product provably fits (data widths
    up to 16 bits — every paper configuration).
    """
    x_raw = _check_int_input(x_raw, "FixedDDC")
    in_fmt = QFormat(ddc.data_width, 0)
    _check_range(x_raw, in_fmt)

    n = len(x_raw)
    nco = ddc.nco
    w = ddc.data_width
    narrow = 2 * w - 1 <= 31  # mixer product fits int32
    work = np.int32 if narrow else np.int64

    # NCO addresses, as in nco_generate but kept as raw indices.
    shift = nco.phase_bits - nco.lut_addr_bits
    n_lut = 1 << nco.lut_addr_bits
    mask = n_lut - 1
    idx = np.arange(n, dtype=np.int64)
    idx *= nco._fcw
    idx += nco._phase_acc
    idx >>= shift
    idx &= mask
    nco._phase_acc = int(
        (nco._phase_acc + nco._fcw * n) % (1 << nco.phase_bits)
    )

    lut = _ddc_lut_raw(ddc, work)
    sin_raw = lut[idx]
    idx += n_lut // 4
    idx &= mask
    cos_raw = lut[idx]

    # Mixer: w x w -> (2w-1)-bit product, truncate to the w-bit bus.
    x_work = x_raw.astype(work)
    i_s = cos_raw
    i_s *= x_work
    q_s = sin_raw
    q_s *= x_work
    np.negative(q_s, out=q_s)
    mshift = w - 1
    i_s >>= mshift
    q_s >>= mshift
    np.clip(i_s, in_fmt.min_raw, in_fmt.max_raw, out=i_s)
    np.clip(q_s, in_fmt.min_raw, in_fmt.max_raw, out=q_s)

    def cic_stage(cic, y: np.ndarray) -> np.ndarray:
        if y.size == 0:
            return np.empty(0, dtype=np.int64)
        need = np.int32 if cic.internal_width <= 32 else np.int64
        if y.dtype != need:
            y = y.astype(need)
        return _cic_core(cic, y)

    if ddc.cic2_i is not None and ddc.cic2_q is not None:
        i_s = cic_stage(ddc.cic2_i, i_s)
        q_s = cic_stage(ddc.cic2_q, q_s)
    else:
        i_s = i_s.astype(np.int64, copy=False)
        q_s = q_s.astype(np.int64, copy=False)
    i_s = cic_stage(ddc.cic5_i, i_s)
    q_s = cic_stage(ddc.cic5_q, q_s)
    return fir_process(ddc.fir_i, i_s), fir_process(ddc.fir_q, q_s)


register("nco", "fused", nco_generate)
register("cic", "fused", cic_process)
register("fir", "fused", fir_process)
register("fixed_ddc", "fused", ddc_process)
