"""Kernel registry and engine dispatch for the hot DSP primitives.

The streaming front end (NCO, CIC, FIR, the fused ``FixedDDC`` chain and
the ``Simulator`` latch loop) ships up to three implementations per
primitive:

``python``
    The original, line-for-line oracle — the bit-true reference every
    other tier is pinned against.
``fused``
    A restructured single-pass numpy kernel: no per-call staging copies,
    no dtype churn, wrapping hoisted out of the per-stage loop.  Always
    available.
``jit``
    Optional :mod:`numba` ``@njit`` kernels.  Numba is *never* a hard
    dependency: when it is not importable the ``jit`` tier silently
    degrades to ``fused`` (see :func:`resolve`).

Selection:

- explicitly, via the ``engine=`` keyword every hot ``process``/
  ``generate``/``compile`` method grew (``None`` means "use the
  environment default");
- globally, via the ``REPRO_KERNELS`` environment variable.  The value
  is either one engine name (``REPRO_KERNELS=python``) or a
  comma-separated list of ``primitive=engine`` overrides with an
  optional bare default, e.g. ``REPRO_KERNELS=fused,cic=jit``;
- by default (``auto``): the fastest registered tier — ``jit`` when
  numba is importable and a jit kernel is registered, else ``fused``,
  else ``python``.

Every tier of one primitive is bit-identical by contract (pinned by the
Hypothesis suites in ``tests/test_kernels.py``), so dispatch is a pure
performance decision.
"""

from __future__ import annotations

import os
from typing import Callable

from .. import telemetry
from ..errors import ConfigurationError

#: Environment variable consulted when no explicit ``engine=`` is given.
ENV_VAR = "REPRO_KERNELS"

#: Engine tiers, slowest to fastest.
ENGINES = ("python", "fused", "jit")

#: Recognised selector values (``auto`` resolves to the fastest tier).
SELECTORS = ENGINES + ("auto",)

# primitive -> engine -> callable.  ``python`` entries are optional: the
# oracle usually lives on the class itself and dispatch only returns the
# tier *name* for it.
_REGISTRY: dict[str, dict[str, Callable]] = {}


def register(primitive: str, engine: str, fn: Callable) -> Callable:
    """Register ``fn`` as the ``engine`` tier of ``primitive``.

    Returns ``fn`` so it can be used as a decorator.  Re-registering
    replaces the previous entry (used by the numba-absent fallback test).
    """
    if engine not in ENGINES:
        raise ConfigurationError(f"unknown kernel engine {engine!r}")
    _REGISTRY.setdefault(primitive, {})[engine] = fn
    return fn


def registered(primitive: str) -> tuple[str, ...]:
    """Engine tiers registered for ``primitive`` (always incl. python)."""
    tiers = {"python", *_REGISTRY.get(primitive, ())}
    return tuple(e for e in ENGINES if e in tiers)


def _jit_available(primitive: str) -> bool:
    from . import jit

    return jit.HAVE_NUMBA and "jit" in _REGISTRY.get(primitive, {})


def _env_selector(primitive: str) -> str:
    """Parse ``REPRO_KERNELS`` for this primitive (default ``auto``)."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return "auto"
    selected = "auto"
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" in item:
            key, _, value = item.partition("=")
            if key.strip() == primitive:
                selected = value.strip()
        else:
            selected = item
    if selected not in SELECTORS:
        raise ConfigurationError(
            f"{ENV_VAR}: unknown engine {selected!r} "
            f"(expected one of {', '.join(SELECTORS)})"
        )
    return selected


def resolve(primitive: str, engine: str | None = None) -> str:
    """Resolve the engine tier to run ``primitive`` on.

    ``engine=None`` consults :data:`ENV_VAR`; ``auto`` picks the fastest
    registered tier; ``jit`` degrades gracefully to ``fused`` (and
    ``fused`` to ``python``) when the faster tier is unavailable, so a
    numba-free install accepts every selector.
    """
    if engine is None:
        engine = _env_selector(primitive)
    if engine not in SELECTORS:
        raise ConfigurationError(
            f"unknown kernel engine {engine!r} for {primitive!r} "
            f"(expected one of {', '.join(SELECTORS)})"
        )
    tiers = _REGISTRY.get(primitive, {})
    if engine == "auto":
        engine = (
            "jit"
            if _jit_available(primitive)
            else "fused"
            if "fused" in tiers
            else "python"
        )
    elif engine == "jit" and not _jit_available(primitive):
        engine = "fused"
    if engine == "fused" and "fused" not in tiers:
        engine = "python"
    telemetry.counter("kernel.dispatch", primitive=primitive, engine=engine)
    return engine


def active_engines(engine: str | None = None) -> dict[str, str]:
    """The resolved tier per registered primitive, after degradation.

    The introspection face of :func:`resolve`: the silent
    ``jit`` → ``fused`` → ``python`` fallback is otherwise invisible, so
    numba-absent CI legs (and ``--metrics`` CLI users) could not assert
    which tier actually served a run.  ``engine`` follows the same
    selector semantics as :func:`resolve` (``None`` = environment).
    """
    return {
        primitive: resolve(primitive, engine)
        for primitive in sorted(_REGISTRY)
    }


def kernel(primitive: str, engine: str) -> Callable:
    """Return the registered callable for an exact ``(primitive, engine)``."""
    try:
        return _REGISTRY[primitive][engine]
    except KeyError:
        raise ConfigurationError(
            f"no {engine!r} kernel registered for {primitive!r}"
        ) from None
