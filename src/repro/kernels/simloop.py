"""Code-generated ``Simulator.step`` loop: the sim_step fused tier.

The tuple-plan loop the simulator compiles itself into (PR 1) still pays
one Python *call* per wire per cycle just to discover that most wires
were not driven.  This module generates a specialised step function for
one exact design instead: component ``tick`` bound methods and every
wire's latch body are flattened into a single Python function body
(wires unpacked into locals once per call, latch logic inlined with the
wire's width mask as a literal), then compiled with :func:`exec`.  The
per-cycle cost of an idle wire drops from a bound-method call to two
bytecode-level attribute loads and an ``is None`` test.

Semantics are identical to the tuple-plan loop by construction:

- two-phase evaluate/commit per cycle, ticks in registration order,
  latches in wire-registration order, traces sampled after commit;
- toggle accounting matches ``Wire._latch`` exactly (or is skipped for
  ``activity=False`` designs, matching ``Wire._latch_no_activity``);
- on a mid-cycle exception the partial cycle is not counted;
- ``commits`` counters are bulk-added for completed cycles only.

``tests/test_kernels.py`` pins the generated loop against the tuple
plan on randomised designs, including exception and trace paths.
"""

from __future__ import annotations

from typing import Callable

from ..simkernel.wire import _popcount
from .dispatch import register

_ACTIVITY_LATCH = """\
            _n = {w}._next
            if _n is not None:
                _o = {w}.value
                if _n != _o:
                    {w}.toggles += _pc((_o ^ _n) & {mask})
                    {w}.value = _n
                {w}._next = None
                {w}._driver = None
"""

_PLAIN_LATCH = """\
            _n = {w}._next
            if _n is not None:
                {w}.value = _n
                {w}._next = None
                {w}._driver = None
"""


def build_step_fn(sim) -> Callable:
    """Compile a specialised ``step(sim, cycles)`` for ``sim``'s design.

    Snapshots the current components, wires, traces and activity mode —
    the caller (``Simulator.compile``) is responsible for invalidating
    the result when the design changes, exactly as for the tuple plan.
    """
    wires = tuple(sim._wires.values())
    ticks = tuple(c.tick for c in sim._components.values())
    traces = tuple(sim._traces)
    latch_tmpl = _ACTIVITY_LATCH if sim._activity else _PLAIN_LATCH

    lines = ["def _step(sim, cycles):"]
    if ticks:
        names = ", ".join(f"_t{i}" for i in range(len(ticks)))
        lines.append(f"    {names}{',' if len(ticks) == 1 else ''} = _ticks")
    if wires:
        names = ", ".join(f"_w{i}" for i in range(len(wires)))
        lines.append(f"    {names}{',' if len(wires) == 1 else ''} = _wires")
    if traces:
        names = ", ".join(f"_tr{i}" for i in range(len(traces)))
        lines.append(
            f"    {names}{',' if len(traces) == 1 else ''} = _traces"
        )
    lines.append("    cycle = sim.cycle")
    lines.append("    try:")
    lines.append("        for _ in range(cycles):")
    for i in range(len(ticks)):
        lines.append(f"            _t{i}(cycle)")
    for i, w in enumerate(wires):
        lines.append(
            latch_tmpl.format(w=f"_w{i}", mask=(1 << w.width) - 1).rstrip()
        )
    for i in range(len(traces)):
        lines.append(f"            _tr{i}.sample(cycle)")
    lines.append("            cycle += 1")
    lines.append("    finally:")
    lines.append("        done = cycle - sim.cycle")
    lines.append("        if done:")
    lines.append("            for _w in _wires:")
    lines.append("                _w.commits += done")
    lines.append("        sim.cycle = cycle")

    namespace = {
        "_ticks": ticks,
        "_wires": wires,
        "_traces": traces,
        "_pc": _popcount,
    }
    exec(compile("\n".join(lines), "<repro.kernels.simloop>", "exec"), namespace)
    return namespace["_step"]


register("sim_step", "fused", build_step_fn)
