"""The compiled hot-kernel tier for the streaming DSP front end.

Public surface:

- :func:`resolve` / :func:`kernel` / :func:`register` — the dispatch
  layer (see :mod:`repro.kernels.dispatch` for the selection rules and
  the ``REPRO_KERNELS`` environment variable);
- :mod:`repro.kernels.fused` — restructured single-pass numpy kernels,
  always available;
- :mod:`repro.kernels.jit` — optional numba kernels behind a guarded
  import (``jit.HAVE_NUMBA``), degrading gracefully to ``fused``;
- :mod:`repro.kernels.simloop` — the code-generated ``Simulator.step``
  latch loop.

Importing this package registers every tier; the hot classes
(``NCO``, ``FixedCICDecimator``, ``FixedPolyphaseDecimator``,
``FixedDDC``, ``Simulator``) dispatch through it via their ``engine=``
keywords, defaulting to the fastest registered tier.
"""

from __future__ import annotations

from . import fused, jit, simloop  # noqa: F401  (registration side effects)
from .dispatch import ENGINES, ENV_VAR, kernel, register, registered, resolve

__all__ = [
    "ENGINES",
    "ENV_VAR",
    "kernel",
    "register",
    "registered",
    "resolve",
    "fused",
    "jit",
    "simloop",
]
