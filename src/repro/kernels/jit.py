"""Optional numba ``@njit`` kernels for the hottest per-sample loops.

Numba is **never** a hard dependency.  The import is guarded: when it is
absent, :data:`HAVE_NUMBA` is ``False``, nothing is registered, and
:func:`repro.kernels.dispatch.resolve` silently degrades every ``jit``
request to the ``fused`` tier — the numba-absent fallback is pinned by
``tests/test_kernels.py``.

When numba *is* importable the kernels here replace the per-stage numpy
passes with single-pass compiled loops (``cache=True`` so compilation is
paid once per machine).  Staging — validation, state sync, the cheap
decimated-rate tails — stays in numpy, shared with the fused tier, so
the jit tier is bit-identical to ``fused`` (and therefore to the
``python`` oracle) by construction: the same Hypothesis suites pin all
tiers against each other whenever numba is installed.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..fixedpoint import QFormat, quantize, wrap
from ..fixedpoint.ops import Rounding
from . import fused
from .dispatch import register

try:  # pragma: no cover - exercised by the numba CI leg
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    njit = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised by the numba CI leg

    @njit(cache=True)
    def _nco_index_loop(n, acc, fcw, phase_mask, shift, addr_mask):
        out = np.empty(n, np.int64)
        p = acc
        for i in range(n):
            out[i] = (p >> shift) & addr_mask
            p = (p + fcw) & phase_mask
        return out

    @njit(cache=True)
    def _cic_integrate_loop(x, state, mask, half):
        # One pass over the block carrying every integrator register;
        # wrapping per sample keeps each register canonical, which is
        # congruent (mod 2**width) to the oracle's per-stage wrap.
        n = x.shape[0]
        order = state.shape[0]
        out = np.empty(n, np.int64)
        for i in range(n):
            v = x[i]
            for s in range(order):
                v = ((state[s] + v + half) & mask) - half
                state[s] = v
            out[i] = v
        return out

    @njit(cache=True)
    def _fir_mac_loop(buf, taps_rev, first_out, decimation, n_out):
        n_taps = taps_rev.shape[0]
        out = np.empty(n_out, np.int64)
        for k in range(n_out):
            base = first_out + k * decimation
            acc = np.int64(0)
            for j in range(n_taps):
                acc += buf[base + j] * taps_rev[j]
            out[k] = acc
        return out


def nco_generate(nco, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Jit LUT-mode ``NCO.generate``: compiled phase-accumulator loop."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    lut = nco._lut
    assert lut is not None
    shift = nco.phase_bits - nco.lut_addr_bits
    n_lut = 1 << nco.lut_addr_bits
    idx = _nco_index_loop(
        n,
        nco._phase_acc,
        nco._fcw,
        (1 << nco.phase_bits) - 1,
        shift,
        n_lut - 1,
    )
    sin_v = lut[idx]
    idx += n_lut // 4
    idx &= n_lut - 1
    cos_v = lut[idx]
    nco._phase_acc = int(
        (nco._phase_acc + nco._fcw * n) % (1 << nco.phase_bits)
    )
    return cos_v, sin_v


def cic_process(cic, x: np.ndarray) -> np.ndarray:
    """Jit ``FixedCICDecimator.process``: single-pass integrator loop."""
    x = fused._check_int_input(x, "fixed CIC")
    if x.size == 0:
        return np.empty(0, dtype=np.int64)
    fused._check_range(x, QFormat(cic.input_width, 0))
    width = cic.internal_width
    y = _cic_integrate_loop(
        np.ascontiguousarray(x, dtype=np.int64),
        cic._int_state,
        np.int64((1 << width) - 1),
        np.int64(1 << (width - 1)),
    )
    internal = cic.internal_format
    with np.errstate(over="ignore"):
        first = (-cic._phase) % cic.decimation
        kept = y[first :: cic.decimation]
        cic._phase = (cic._phase + len(x)) % cic.decimation
        z = kept
        for s in range(cic.order):
            with_hist = np.concatenate([cic._comb_state[s], z])
            out = with_hist[cic.diff_delay :] - with_hist[: -cic.diff_delay]
            out = wrap(out, internal)
            if len(with_hist) >= cic.diff_delay:
                cic._comb_state[s] = with_hist[
                    len(with_hist) - cic.diff_delay :
                ]
            z = out
    return quantize(z, cic.truncation_shift, Rounding.TRUNCATE)


def fir_process(fir, x: np.ndarray) -> np.ndarray:
    """Jit ``FixedPolyphaseDecimator.process``: compiled MAC loop."""
    x = fused._check_int_input(x, "fixed FIR")
    x = x.astype(np.int64, copy=False)
    if x.size == 0:
        return np.empty(0, dtype=np.int64)
    fused._check_range(x, QFormat(fir.data_width, 0))

    buf = np.concatenate([fir._hist, x])
    first_out = (-fir._offset) % fir.decimation
    n_out = max(0, -(-(len(x) - first_out) // fir.decimation))
    if n_out:
        acc = _fir_mac_loop(
            buf, fir._taps_rev, first_out, fir.decimation, n_out
        )
        y = fused._fir_finish(fir, acc)
    else:
        y = np.empty(0, dtype=np.int64)
    fused._fir_update_state(fir, buf, len(x))
    return y


def ddc_process(ddc, x_raw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Jit ``FixedDDC.process``: fused staging over the jit CIC/FIR loops."""
    x_raw = fused._check_int_input(x_raw, "FixedDDC")
    in_fmt = QFormat(ddc.data_width, 0)
    fused._check_range(x_raw, in_fmt)

    n = len(x_raw)
    nco = ddc.nco
    w = ddc.data_width
    shift = nco.phase_bits - nco.lut_addr_bits
    n_lut = 1 << nco.lut_addr_bits
    idx = _nco_index_loop(
        n,
        nco._phase_acc,
        nco._fcw,
        (1 << nco.phase_bits) - 1,
        shift,
        n_lut - 1,
    )
    nco._phase_acc = int(
        (nco._phase_acc + nco._fcw * n) % (1 << nco.phase_bits)
    )
    lut = fused._ddc_lut_raw(ddc, np.int64)
    sin_raw = lut[idx]
    idx += n_lut // 4
    idx &= n_lut - 1
    cos_raw = lut[idx]

    x64 = x_raw.astype(np.int64)
    i_s = cos_raw
    i_s *= x64
    q_s = sin_raw
    q_s *= x64
    np.negative(q_s, out=q_s)
    mshift = w - 1
    i_s >>= mshift
    q_s >>= mshift
    np.clip(i_s, in_fmt.min_raw, in_fmt.max_raw, out=i_s)
    np.clip(q_s, in_fmt.min_raw, in_fmt.max_raw, out=q_s)

    def cic_stage(cic, y: np.ndarray) -> np.ndarray:
        if y.size == 0:
            return np.empty(0, dtype=np.int64)
        return cic_process(cic, y)

    if ddc.cic2_i is not None and ddc.cic2_q is not None:
        i_s = cic_stage(ddc.cic2_i, i_s)
        q_s = cic_stage(ddc.cic2_q, q_s)
    i_s = cic_stage(ddc.cic5_i, i_s)
    q_s = cic_stage(ddc.cic5_q, q_s)
    return fir_process(ddc.fir_i, i_s), fir_process(ddc.fir_q, q_s)


if HAVE_NUMBA:  # pragma: no cover - exercised by the numba CI leg
    register("nco", "jit", nco_generate)
    register("cic", "jit", cic_process)
    register("fir", "jit", fir_process)
    register("fixed_ddc", "jit", ddc_process)
