"""Deterministic fault injection for the execution layer.

The chaos suite (``pytest -m faults``) has to prove that the recovery
paths of :mod:`repro.parallel`, :mod:`repro.sweep` and
:mod:`repro.explore` reproduce fault-free output *byte for byte*.  That
needs faults which strike at declared places, a declared number of
times, regardless of scheduling — not random monkey-patching.

A :class:`FaultPlan` is a frozen set of :class:`FaultSpec` s.  Library
code marks its **fault sites** by calling :func:`fault_point` with a
site name and a content key (a cell index, a store file name, ...)::

    fault_point("sweep.point", key=point.index)

With no plan active the call is a few dict lookups — the sites stay in
production code.  An active plan fires every spec whose ``site`` (and
``keys``, if given) match, up to ``times`` firings per ``(spec, key)``:

- ``kind="error"`` — raise :class:`InjectedFault` (a transient task
  failure; retries see the next invocation succeed);
- ``kind="kill"``  — ``os._exit(kill_code)``: a dead worker process,
  i.e. ``BrokenExecutor`` for a process pool, a dirty shutdown for a
  CLI run;
- ``kind="sleep"`` — block ``delay_s`` seconds (drives per-task
  timeouts);
- ``kind="torn"``  — truncate the file at the site's ``path`` by
  ``tear_bytes`` bytes and then raise :class:`InjectedFault`: a torn
  store write, the crash-after-partial-flush case.

**Determinism.**  Firing counts, not invocation counts, are tracked: a
spec with ``times=1`` injects exactly one fault no matter how often the
site is re-visited by retries or engine rounds.  In one process the
counters are an in-memory table.  Across processes (pool workers, CLI
children) two mechanisms compose:

- the plan travels in the :data:`ENV_VAR` environment variable
  (:func:`activate` sets it, workers parse it lazily), and
- when ``scratch`` names a directory, firings are claimed through
  atomically created marker files there, so "exactly one worker kill"
  holds even though the killed worker takes its memory with it.

Keys make injection scheduling-independent: a spec keyed on cell index
3 fires wherever cell 3 runs, in whichever worker, in whichever order.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from .errors import ConfigurationError, ReproError

#: Environment variable carrying the active plan to child processes.
ENV_VAR = "REPRO_FAULTS"

#: Fault kinds a spec may inject.
KINDS = ("error", "kill", "sleep", "torn")


class InjectedFault(ReproError):
    """The failure raised by ``kind="error"`` / ``kind="torn"`` faults."""


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault: where it strikes, what it does, how often.

    ``keys`` restricts the spec to matching site keys (empty = any key);
    ``times`` bounds firings per distinct key.  Keys are compared by
    ``repr`` so tuples and ints survive the JSON round-trip to worker
    processes unchanged.
    """

    site: str
    kind: str = "error"
    keys: tuple[Any, ...] = ()
    times: int = 1
    delay_s: float = 0.0
    tear_bytes: int = 64
    kill_code: int = 23

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigurationError("a fault spec needs a site name")
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.times < 1:
            raise ConfigurationError(
                f"times must be >= 1, got {self.times}"
            )
        if self.delay_s < 0.0:
            raise ConfigurationError(
                f"delay_s must be >= 0, got {self.delay_s}"
            )
        if self.tear_bytes < 1:
            raise ConfigurationError(
                f"tear_bytes must be >= 1, got {self.tear_bytes}"
            )

    def matches(self, site: str, key: Any) -> bool:
        if site != self.site:
            return False
        if not self.keys:
            return True
        key_repr = repr(key)
        return any(repr(k) == key_repr for k in self.keys)

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "keys": list(self.keys),
            "times": self.times,
            "delay_s": self.delay_s,
            "tear_bytes": self.tear_bytes,
            "kill_code": self.kill_code,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FaultSpec":
        return cls(
            site=doc["site"],
            kind=doc["kind"],
            keys=tuple(
                tuple(k) if isinstance(k, list) else k for k in doc["keys"]
            ),
            times=doc["times"],
            delay_s=doc["delay_s"],
            tear_bytes=doc["tear_bytes"],
            kill_code=doc["kill_code"],
        )


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault specs plus the cross-process bookkeeping knobs.

    ``scratch`` (optional) is a directory for firing-claim marker files
    — required whenever a ``kill`` fault must fire a bounded number of
    times across pool workers (the killed worker cannot remember having
    fired).  In-memory counters serve the single-process case.
    """

    specs: tuple[FaultSpec, ...]
    scratch: str | None = None

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigurationError("a fault plan needs at least one spec")

    def to_json(self) -> str:
        return json.dumps(
            {
                "specs": [s.to_json() for s in self.specs],
                "scratch": self.scratch,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        return cls(
            specs=tuple(FaultSpec.from_json(s) for s in doc["specs"]),
            scratch=doc["scratch"],
        )


# ------------------------------------------------------------- active plan
#: The in-process plan (set by :func:`activate`) and its firing counters.
_ACTIVE: FaultPlan | None = None
_FIRED: dict[tuple[int, str], int] = {}
_LOCK = threading.Lock()

#: Parse cache for env-delivered plans, keyed on the raw env value so a
#: changed plan is re-parsed but the hot path stays one dict lookup.
_PARSED: dict[str, FaultPlan] = {}


def active_plan() -> FaultPlan | None:
    """The plan in force here: the in-process one, else the env one."""
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    plan = _PARSED.get(raw)
    if plan is None:
        plan = FaultPlan.from_json(raw)
        _PARSED[raw] = plan
    return plan


def activate(plan: FaultPlan) -> None:
    """Arm ``plan`` here and (via the environment) in child processes.

    Firing counters start fresh.  Process-pool workers inherit the
    environment at spawn time — arm the plan *before* the pool exists
    (``repro.parallel.shutdown()`` forces fresh pools).
    """
    global _ACTIVE
    with _LOCK:
        _ACTIVE = plan
        _FIRED.clear()
    os.environ[ENV_VAR] = plan.to_json()


def deactivate() -> None:
    """Disarm fault injection here and for future child processes."""
    global _ACTIVE
    with _LOCK:
        _ACTIVE = None
        _FIRED.clear()
    os.environ.pop(ENV_VAR, None)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with inject(plan): ...`` — arm, run, always disarm."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()


# ----------------------------------------------------------------- firing
def _claim(plan: FaultPlan, spec_index: int, spec: FaultSpec, key: Any) -> bool:
    """True exactly ``spec.times`` times per (spec, key), plan-wide.

    With a scratch directory the claim is an ``O_CREAT|O_EXCL`` marker
    file — atomic across processes, immune to claimant death.  Without
    one it is the in-process counter table.
    """
    if plan.scratch:
        digest = f"{spec_index}-{abs(hash((spec.site, repr(key)))):x}"
        for n in range(spec.times):
            marker = os.path.join(plan.scratch, f"fault-{digest}-{n}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False
    counter_key = (spec_index, repr(key))
    with _LOCK:
        fired = _FIRED.get(counter_key, 0)
        if fired >= spec.times:
            return False
        _FIRED[counter_key] = fired + 1
        return True


def fault_point(site: str, key: Any = None, path: str | None = None) -> None:
    """A declared fault site; a no-op unless an armed spec matches.

    ``key`` is the content identity of this visit (cell index, file
    name); ``path`` is the file a ``torn`` spec may truncate.  Sites sit
    at cell/point/write granularity — never inside per-sample loops.
    """
    plan = active_plan()
    if plan is None:
        return
    for spec_index, spec in enumerate(plan.specs):
        if not spec.matches(site, key):
            continue
        if not _claim(plan, spec_index, spec, key):
            continue
        if spec.kind == "sleep":
            time.sleep(spec.delay_s)
            continue
        if spec.kind == "kill":
            os._exit(spec.kill_code)
        if spec.kind == "torn":
            if path is not None:
                _tear(path, spec.tear_bytes)
            raise InjectedFault(
                f"injected torn write at {site}[{key!r}]"
            )
        raise InjectedFault(f"injected fault at {site}[{key!r}]")


def _tear(path: str, tear_bytes: int) -> None:
    """Truncate ``path`` by ``tear_bytes`` (to >= 0), tearing its tail."""
    size = os.path.getsize(path)
    with open(path, "rb+") as fh:
        fh.truncate(max(0, size - tear_bytes))


# ------------------------------------------------------------ test helpers
@dataclass
class RecordingSleep:
    """An injectable ``sleep`` that records instead of waiting.

    The chaos suite hands this to retry paths to assert the
    deterministic backoff schedule without spending wall-clock time.
    """

    calls: list[float] = field(default_factory=list)

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)
