"""ASIC models (paper Section 3).

Two fixed-function chips:

- :mod:`~repro.archs.asic.gc4016` — the Texas Instruments GC4016 multi-
  standard quad DDC: a functional model of one channel (CIC5 + CFIR21 +
  PFIR63), the datasheet configuration constraints of Table 2, and the
  published GSM-example power point (115 mW at 80 MHz, 0.25 µm);
- :mod:`~repro.archs.asic.lowpower` — the customised low-power DDC of
  Section 3.2: a gate-count x activity power estimator over the reference
  chain (27 mW at 64.512 MHz, 0.18 µm), the estimation method the paper
  itself attributes to that design.
"""

from .gc4016 import GC4016Channel, GC4016Model, GC4016_SPEC
from .lowpower import LowPowerDDCModel, LOWPOWER_SPEC, gate_count_estimate

__all__ = [
    "GC4016Channel",
    "GC4016Model",
    "GC4016_SPEC",
    "LowPowerDDCModel",
    "LOWPOWER_SPEC",
    "gate_count_estimate",
]
