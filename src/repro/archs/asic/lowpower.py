"""Customised low-power DDC ASIC (paper Section 3.2).

The second ASIC "can be configured to the chosen filter layout from
section 2 ... realized in 0.18 µm technology with a Vdd of 1.8 V.  The
size of the core is 1.7 mm2.  When performing the digital down conversion
at 64.512 MHz ... it consumes 27 mW.  The power consumption is based on
gate count and activity rate estimation."

That estimation method is implemented here: each chain stage gets a gate
count from its word widths (derived with the same bit-growth analysis the
rest of the library uses) and an activity = the rate it is clocked at
relative to the input rate; power = sum(gates * activity) * energy/gate/Hz.
The energy constant is calibrated so the reference configuration lands on
the published 27 mW — the *relative* cost of configurations (the planner's
signal) is what the model structure provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...config import DDCConfig, REFERENCE_DDC
from ...energy.technology import TECH_180NM, TechnologyNode
from ...errors import ConfigurationError
from ...fixedpoint import cic_bit_growth, fir_accumulator_bits
from ..base import (
    ArchitectureModel,
    BatchImplementationReport,
    Flexibility,
    ImplementationReport,
)

#: Gates per full-adder bit (adder + register) in a compiled datapath.
_GATES_PER_ADD_BIT = 12
#: Gates per multiplier product bit.
_GATES_PER_MULT_BIT = 9
#: Control/clock-tree overhead fraction.
_CTRL_OVERHEAD = 0.18


@dataclass(frozen=True)
class StageGates:
    """Gate count and activity of one chain stage."""

    name: str
    gates: int
    #: stage clock rate relative to the chain input rate (0..1]
    relative_rate: float

    @property
    def weighted_gates(self) -> float:
        """Gates x activity — proportional to the stage's dynamic power."""
        return self.gates * self.relative_rate


def gate_count_estimate(config: DDCConfig = REFERENCE_DDC) -> list[StageGates]:
    """Per-stage gate counts and activities of the configured chain."""
    w = config.data_width
    stages: list[StageGates] = []
    rate = 1.0

    # NCO + mixer: phase accumulator (32b) + 2 multipliers, full rate.
    nco_gates = 32 * _GATES_PER_ADD_BIT + 2 * (w * w) * _GATES_PER_MULT_BIT
    stages.append(StageGates("NCO+mixer", nco_gates, rate))

    for label, order, decim in (
        ("CIC2", config.cic2_order, config.cic2_decimation),
        ("CIC5", config.cic5_order, config.cic5_decimation),
    ):
        if order == 0 or decim == 1:
            continue
        internal = w + cic_bit_growth(order, decim)
        # integrators run at the stage input rate, combs at the output rate
        int_gates = 2 * order * internal * _GATES_PER_ADD_BIT
        comb_gates = 2 * order * internal * _GATES_PER_ADD_BIT
        stages.append(StageGates(f"{label}-integrators", int_gates, rate))
        stages.append(StageGates(f"{label}-combs", comb_gates, rate / decim))
        rate /= decim

    # Polyphase FIR: sequential MAC (multiplier + accumulator) per rail,
    # clocked taps times per output sample.
    acc_w = fir_accumulator_bits(w, w, config.fir_taps)
    fir_gates = 2 * ((w * w) * _GATES_PER_MULT_BIT + acc_w * _GATES_PER_ADD_BIT)
    fir_activity = rate * config.fir_taps / config.fir_decimation
    stages.append(StageGates("FIR", fir_gates, min(1.0, fir_activity)))
    return stages


@dataclass(frozen=True)
class LowPowerSpec:
    """Published constants of the customised low-power DDC."""

    name: str = "Customised Low Power DDC"
    technology: TechnologyNode = TECH_180NM
    power_w_at_reference: float = 0.027
    clock_hz: float = 64_512_000.0
    area_mm2: float = 1.7
    min_decimation: int = 2
    max_decimation: int = 65536


#: The device the paper quotes (from personal communication).
LOWPOWER_SPEC = LowPowerSpec()


class LowPowerDDCModel(ArchitectureModel):
    """Gate-count x activity power estimation, calibrated at 27 mW."""

    name = "Customised Low Power DDC"

    def __init__(self, spec: LowPowerSpec = LOWPOWER_SPEC) -> None:
        self.spec = spec
        # Calibrate the per-gate energy so the reference chain at the
        # reference clock dissipates exactly the published 27 mW.
        ref = sum(s.weighted_gates for s in gate_count_estimate(REFERENCE_DDC))
        self._energy_per_gate_hz = self.spec.power_w_at_reference / (
            ref * (1 + _CTRL_OVERHEAD) * self.spec.clock_hz
        )

    def supports(self, config: DDCConfig) -> bool:
        return (
            self.spec.min_decimation
            <= config.total_decimation
            <= self.spec.max_decimation
        )

    def estimate_power_w(self, config: DDCConfig) -> float:
        """Gate-count x activity estimate for an arbitrary configuration."""
        if not self.supports(config):
            raise ConfigurationError(
                f"decimation {config.total_decimation} outside "
                f"{self.spec.min_decimation}..{self.spec.max_decimation}"
            )
        weighted = sum(s.weighted_gates for s in gate_count_estimate(config))
        return (
            weighted
            * (1 + _CTRL_OVERHEAD)
            * config.input_rate_hz
            * self._energy_per_gate_hz
        )

    def estimate_power_batch(self, configs: Sequence[DDCConfig]):
        """Vectorised :meth:`estimate_power_w` over a configuration axis.

        One numpy pass over the gate-count x activity arithmetic: the
        per-stage weighted gates accumulate elementwise in the same stage
        order as the scalar sum (absent stages contribute exactly 0.0),
        so every power is bit-identical to the scalar estimate.  Integer
        word-length bookkeeping (bit growth, accumulator widths) uses the
        same :func:`~repro.fixedpoint.cic_bit_growth` /
        :func:`~repro.fixedpoint.fir_accumulator_bits` helpers as the
        scalar path.

        Returns ``(powers, errors)``: a float64 array (``nan`` where the
        configuration is out of the supported decimation range) and the
        matching per-config :class:`~repro.errors.ConfigurationError`
        list.
        """
        import numpy as np

        n = len(configs)
        errors: list[Exception | None] = [None] * n
        for i, config in enumerate(configs):
            if not self.supports(config):
                errors[i] = ConfigurationError(
                    f"decimation {config.total_decimation} outside "
                    f"{self.spec.min_decimation}..{self.spec.max_decimation}"
                )
        w = np.array([c.data_width for c in configs], dtype=np.int64)
        rates_hz = np.array([c.input_rate_hz for c in configs])

        weighted = np.zeros(n)
        rate = np.ones(n)
        # NCO + mixer, full rate.
        nco_gates = 32 * _GATES_PER_ADD_BIT + 2 * (w * w) * _GATES_PER_MULT_BIT
        weighted = weighted + nco_gates * rate
        for orders, decims in (
            (
                np.array([c.cic2_order for c in configs], dtype=np.int64),
                np.array([c.cic2_decimation for c in configs], dtype=np.int64),
            ),
            (
                np.array([c.cic5_order for c in configs], dtype=np.int64),
                np.array([c.cic5_decimation for c in configs], dtype=np.int64),
            ),
        ):
            present = (orders != 0) & (decims != 1)
            growth = np.array(
                [
                    cic_bit_growth(int(o), int(d)) if p else 0
                    for o, d, p in zip(orders, decims, present)
                ],
                dtype=np.int64,
            )
            internal = w + growth
            gates = 2 * orders * internal * _GATES_PER_ADD_BIT
            weighted = weighted + np.where(present, gates * rate, 0.0)
            weighted = weighted + np.where(
                present, gates * (rate / decims), 0.0
            )
            rate = np.where(present, rate / decims, rate)
        taps = np.array([c.fir_taps for c in configs], dtype=np.int64)
        fir_dec = np.array(
            [c.fir_decimation for c in configs], dtype=np.int64
        )
        acc_w = np.array(
            [
                fir_accumulator_bits(int(wi), int(wi), int(t))
                for wi, t in zip(w, taps)
            ],
            dtype=np.int64,
        )
        fir_gates = 2 * (
            (w * w) * _GATES_PER_MULT_BIT + acc_w * _GATES_PER_ADD_BIT
        )
        fir_activity = rate * taps / fir_dec
        weighted = weighted + fir_gates * np.minimum(1.0, fir_activity)

        powers = (
            weighted
            * (1 + _CTRL_OVERHEAD)
            * rates_hz
            * self._energy_per_gate_hz
        )
        powers[[e is not None for e in errors]] = np.nan
        return powers, errors

    def _report(
        self, config: DDCConfig, power: float
    ) -> ImplementationReport:
        """Assemble the Table 7 row (shared by scalar and batched paths)."""
        return ImplementationReport(
            architecture=self.spec.name,
            technology=self.spec.technology,
            clock_hz=config.input_rate_hz,
            power_w=power,
            area_mm2=self.spec.area_mm2,
            flexibility=Flexibility.FIXED_FUNCTION,
            feasible=True,
            notes="gate count x activity estimation (Section 3.2 method)",
        )

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        return self._report(config, self.estimate_power_w(config))

    def implement_batch(
        self, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """Batched :meth:`implement` riding :meth:`estimate_power_batch`."""
        powers, errors = self.estimate_power_batch(configs)
        reports = [
            None if err is not None else self._report(config, float(power))
            for config, power, err in zip(configs, powers, errors)
        ]
        return BatchImplementationReport.from_reports(
            self.spec.name, reports, errors
        )

    def cache_key(self) -> tuple:
        return (type(self).__qualname__, self.spec)
