"""Customised low-power DDC ASIC (paper Section 3.2).

The second ASIC "can be configured to the chosen filter layout from
section 2 ... realized in 0.18 µm technology with a Vdd of 1.8 V.  The
size of the core is 1.7 mm2.  When performing the digital down conversion
at 64.512 MHz ... it consumes 27 mW.  The power consumption is based on
gate count and activity rate estimation."

That estimation method is implemented here: each chain stage gets a gate
count from its word widths (derived with the same bit-growth analysis the
rest of the library uses) and an activity = the rate it is clocked at
relative to the input rate; power = sum(gates * activity) * energy/gate/Hz.
The energy constant is calibrated so the reference configuration lands on
the published 27 mW — the *relative* cost of configurations (the planner's
signal) is what the model structure provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config import DDCConfig, REFERENCE_DDC
from ...energy.technology import TECH_180NM, TechnologyNode
from ...errors import ConfigurationError
from ...fixedpoint import cic_bit_growth, fir_accumulator_bits
from ..base import ArchitectureModel, Flexibility, ImplementationReport

#: Gates per full-adder bit (adder + register) in a compiled datapath.
_GATES_PER_ADD_BIT = 12
#: Gates per multiplier product bit.
_GATES_PER_MULT_BIT = 9
#: Control/clock-tree overhead fraction.
_CTRL_OVERHEAD = 0.18


@dataclass(frozen=True)
class StageGates:
    """Gate count and activity of one chain stage."""

    name: str
    gates: int
    #: stage clock rate relative to the chain input rate (0..1]
    relative_rate: float

    @property
    def weighted_gates(self) -> float:
        """Gates x activity — proportional to the stage's dynamic power."""
        return self.gates * self.relative_rate


def gate_count_estimate(config: DDCConfig = REFERENCE_DDC) -> list[StageGates]:
    """Per-stage gate counts and activities of the configured chain."""
    w = config.data_width
    stages: list[StageGates] = []
    rate = 1.0

    # NCO + mixer: phase accumulator (32b) + 2 multipliers, full rate.
    nco_gates = 32 * _GATES_PER_ADD_BIT + 2 * (w * w) * _GATES_PER_MULT_BIT
    stages.append(StageGates("NCO+mixer", nco_gates, rate))

    for label, order, decim in (
        ("CIC2", config.cic2_order, config.cic2_decimation),
        ("CIC5", config.cic5_order, config.cic5_decimation),
    ):
        if order == 0 or decim == 1:
            continue
        internal = w + cic_bit_growth(order, decim)
        # integrators run at the stage input rate, combs at the output rate
        int_gates = 2 * order * internal * _GATES_PER_ADD_BIT
        comb_gates = 2 * order * internal * _GATES_PER_ADD_BIT
        stages.append(StageGates(f"{label}-integrators", int_gates, rate))
        stages.append(StageGates(f"{label}-combs", comb_gates, rate / decim))
        rate /= decim

    # Polyphase FIR: sequential MAC (multiplier + accumulator) per rail,
    # clocked taps times per output sample.
    acc_w = fir_accumulator_bits(w, w, config.fir_taps)
    fir_gates = 2 * ((w * w) * _GATES_PER_MULT_BIT + acc_w * _GATES_PER_ADD_BIT)
    fir_activity = rate * config.fir_taps / config.fir_decimation
    stages.append(StageGates("FIR", fir_gates, min(1.0, fir_activity)))
    return stages


@dataclass(frozen=True)
class LowPowerSpec:
    """Published constants of the customised low-power DDC."""

    name: str = "Customised Low Power DDC"
    technology: TechnologyNode = TECH_180NM
    power_w_at_reference: float = 0.027
    clock_hz: float = 64_512_000.0
    area_mm2: float = 1.7
    min_decimation: int = 2
    max_decimation: int = 65536


#: The device the paper quotes (from personal communication).
LOWPOWER_SPEC = LowPowerSpec()


class LowPowerDDCModel(ArchitectureModel):
    """Gate-count x activity power estimation, calibrated at 27 mW."""

    name = "Customised Low Power DDC"

    def __init__(self, spec: LowPowerSpec = LOWPOWER_SPEC) -> None:
        self.spec = spec
        # Calibrate the per-gate energy so the reference chain at the
        # reference clock dissipates exactly the published 27 mW.
        ref = sum(s.weighted_gates for s in gate_count_estimate(REFERENCE_DDC))
        self._energy_per_gate_hz = self.spec.power_w_at_reference / (
            ref * (1 + _CTRL_OVERHEAD) * self.spec.clock_hz
        )

    def supports(self, config: DDCConfig) -> bool:
        return (
            self.spec.min_decimation
            <= config.total_decimation
            <= self.spec.max_decimation
        )

    def estimate_power_w(self, config: DDCConfig) -> float:
        """Gate-count x activity estimate for an arbitrary configuration."""
        if not self.supports(config):
            raise ConfigurationError(
                f"decimation {config.total_decimation} outside "
                f"{self.spec.min_decimation}..{self.spec.max_decimation}"
            )
        weighted = sum(s.weighted_gates for s in gate_count_estimate(config))
        return (
            weighted
            * (1 + _CTRL_OVERHEAD)
            * config.input_rate_hz
            * self._energy_per_gate_hz
        )

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        power = self.estimate_power_w(config)
        return ImplementationReport(
            architecture=self.spec.name,
            technology=self.spec.technology,
            clock_hz=config.input_rate_hz,
            power_w=power,
            area_mm2=self.spec.area_mm2,
            flexibility=Flexibility.FIXED_FUNCTION,
            feasible=True,
            notes="gate count x activity estimation (Section 3.2 method)",
        )
