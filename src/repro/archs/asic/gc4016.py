"""Texas Instruments GC4016 quad DDC model (paper Section 3.1).

The GC4016 is the commercial single-chip comparator.  The paper uses three
things from its datasheet: the channel structure (Fig. 4: 5-stage CIC
followed by a 21-tap CFIR and a 63-tap PFIR, each FIR decimating by 2),
the configuration limits (Table 2), and the GSM example's power figure
(115 mW per channel at 80 MHz, 2.5 V, 0.25 µm).

:class:`GC4016Channel` is an *executable* channel: NCO/mixer + CIC5 +
CFIR + PFIR with the datasheet decimation rules enforced, so the
reproduction can compare the GC4016-style chain against the reference
chain on real signals (the Section 3.1.2 caveats: decimation 256 vs 2688,
up to 84 taps vs 125).  :class:`GC4016Model` provides the Table 7 row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...config import DDCConfig, REFERENCE_DDC
from ...dsp.cic import CICDecimator
from ...dsp.fir import PolyphaseDecimator
from ...dsp.firdesign import design_kaiser_lowpass
from ...dsp.mixer import Mixer
from ...dsp.nco import NCO
from ...energy.technology import TECH_250NM, TechnologyNode
from ...errors import ConfigurationError
from ..base import (
    ArchitectureModel,
    BatchImplementationReport,
    Flexibility,
    ImplementationReport,
)


@dataclass(frozen=True)
class GC4016Spec:
    """Datasheet constants (Table 2 + Section 3.1)."""

    name: str = "TI GC4016"
    technology: TechnologyNode = TECH_250NM
    max_input_msps: float = 100.0
    input_bits_4ch: int = 14
    input_bits_3ch: int = 16
    min_decimation: int = 32
    max_decimation: int = 16384
    cic_order: int = 5
    cic_min_decimation: int = 8
    cic_max_decimation: int = 4096
    cfir_taps: int = 21
    pfir_taps: int = 63
    fir_decimation_each: int = 2
    output_bits: tuple[int, ...] = (12, 16, 20, 24)
    channels: int = 4
    #: GSM example: 115 mW for a channel at 80 MHz and 2.5 V.
    example_power_w: float = 0.115
    example_clock_hz: float = 80e6


#: The device the paper quotes.
GC4016_SPEC = GC4016Spec()


class GC4016Channel:
    """Functional model of one GC4016 channel (Fig. 4).

    Chain: NCO/mixer -> CIC5 (decimation 8..4096) -> CFIR (21 taps,
    decimate 2) -> PFIR (63 taps, decimate 2).
    """

    def __init__(
        self,
        input_rate_hz: float,
        nco_frequency_hz: float,
        cic_decimation: int,
        spec: GC4016Spec = GC4016_SPEC,
    ) -> None:
        if input_rate_hz > spec.max_input_msps * 1e6:
            raise ConfigurationError(
                f"input rate {input_rate_hz / 1e6:.1f} MSPS exceeds the "
                f"datasheet {spec.max_input_msps} MSPS"
            )
        if not spec.cic_min_decimation <= cic_decimation <= spec.cic_max_decimation:
            raise ConfigurationError(
                f"CIC decimation {cic_decimation} outside the datasheet "
                f"range {spec.cic_min_decimation}..{spec.cic_max_decimation}"
            )
        self.spec = spec
        self.input_rate_hz = input_rate_hz
        self.cic_decimation = cic_decimation
        self.nco = NCO(input_rate_hz, nco_frequency_hz, lut_addr_bits=12)
        self.mixer = Mixer(self.nco)
        self.cic_i = CICDecimator(spec.cic_order, cic_decimation)
        self.cic_q = CICDecimator(spec.cic_order, cic_decimation)
        rate = input_rate_hz / cic_decimation
        cfir = design_kaiser_lowpass(spec.cfir_taps, rate / 5, rate, 50.0)
        self.cfir = PolyphaseDecimator(cfir, spec.fir_decimation_each)
        rate /= spec.fir_decimation_each
        pfir = design_kaiser_lowpass(spec.pfir_taps, rate / 4.4, rate, 70.0)
        self.pfir = PolyphaseDecimator(pfir, spec.fir_decimation_each)

    @property
    def total_decimation(self) -> int:
        """CIC x CFIR x PFIR decimation (Table 2: 32..16384)."""
        return self.cic_decimation * self.spec.fir_decimation_each**2

    @property
    def output_rate_hz(self) -> float:
        """Channel output rate."""
        return self.input_rate_hz / self.total_decimation

    def process(self, x: np.ndarray) -> np.ndarray:
        """Down-convert one block of real samples to complex baseband."""
        mixed = self.mixer.process(np.asarray(x, dtype=np.float64))
        c = self.cic_i.process(mixed.real) + 1j * self.cic_q.process(mixed.imag)
        return self.pfir.process(self.cfir.process(c))

    def reset(self) -> None:
        """Reset all stage state."""
        self.nco.reset()
        for s in (self.cic_i, self.cic_q, self.cfir, self.pfir):
            s.reset()


class GC4016Model(ArchitectureModel):
    """Table 7 row: datasheet power scaled to the DDC's clock.

    The paper takes the GSM example's 115 mW at 80 MHz as the operating
    point; power scales linearly with the clock (CMOS dynamic power), so a
    64.512 MHz reference-style deployment draws 115 * 64.512/80 mW.  The
    paper's Table 7 keeps the 80 MHz point; both are exposed.
    """

    name = "TI GC4016"

    def __init__(self, spec: GC4016Spec = GC4016_SPEC,
                 at_paper_operating_point: bool = True) -> None:
        self.spec = spec
        self.at_paper_operating_point = at_paper_operating_point

    def supports(self, config: DDCConfig) -> bool:
        """Datasheet constraints of Table 2."""
        if config.input_rate_hz > self.spec.max_input_msps * 1e6:
            return False
        return (
            self.spec.min_decimation
            <= config.total_decimation
            <= self.spec.max_decimation
        )

    def _report(
        self, clock: float, power: float, supported: bool
    ) -> ImplementationReport:
        """Assemble the Table 7 row (shared by scalar and batched paths)."""
        return ImplementationReport(
            architecture=self.spec.name,
            technology=self.spec.technology,
            clock_hz=clock,
            power_w=power,
            area_mm2=None,
            flexibility=Flexibility.FIXED_FUNCTION,
            feasible=True,
            notes=(
                "datasheet GSM example (per channel); chain differs from the"
                " reference DDC: no CIC2, total decimation 32..16384, up to"
                " 84 FIR taps"
                + ("" if supported else "; reference decimation 2688 is in"
                   " range but the exact 16*21*8 split is not expressible")
            ),
        )

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        if self.at_paper_operating_point:
            clock = self.spec.example_clock_hz
            power = self.spec.example_power_w
        else:
            clock = config.input_rate_hz
            power = self.spec.example_power_w * clock / self.spec.example_clock_hz
        return self._report(clock, power, self.supports(config))

    def implement_batch(
        self, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """Batched :meth:`implement`: one numpy pass over the datasheet
        arithmetic (clock-linear power scaling and the Table 2 support
        window), bit-identical to the scalar loop at every point."""
        spec = self.spec
        rates = np.array([c.input_rate_hz for c in configs])
        if self.at_paper_operating_point:
            clocks = np.full(len(rates), spec.example_clock_hz)
            powers = np.full(len(rates), spec.example_power_w)
        else:
            clocks = rates
            powers = spec.example_power_w * clocks / spec.example_clock_hz
        totals = np.array([c.total_decimation for c in configs])
        supported = (
            (rates <= spec.max_input_msps * 1e6)
            & (totals >= spec.min_decimation)
            & (totals <= spec.max_decimation)
        )
        reports = [
            self._report(float(clock), float(power), bool(ok))
            for clock, power, ok in zip(clocks, powers, supported)
        ]
        return BatchImplementationReport.from_reports(spec.name, reports)

    def cache_key(self) -> tuple:
        return (
            type(self).__qualname__, self.spec, self.at_paper_operating_point,
        )
