"""Vectorised execution of the codegen-emitted DDC program.

The generated DDC (see :mod:`~repro.archs.gpp.codegen`) is a fixed loop
nest whose control flow depends only on counters, never on sample values.
That makes it the ideal target for the second half of the fast engine:
instead of interpreting ~25 instructions per input sample, this kernel

- counts every basic-block execution and taken branch *in closed form*
  (floor divisions over the decimation counters), and prices them with the
  same per-block static cost tables the block engine uses — so the
  resulting :class:`~repro.archs.gpp.cpu.ExecutionStats` is bit-identical
  to the interpreter's, per region;
- replays the data path with numpy over the whole sample block: the
  NCO/mixer and both CIC integrator cascades become ``cumsum`` chains
  (32-bit wrapping commutes with prefix sums modulo 2**32), the combs
  become decimated differences, and the 125-tap FIR summation a handful of
  dot products;
- writes the final architectural state — registers, flags, memory words
  (filter state, FIR ring, outputs, the spill slot) — exactly as the
  interpreter would have left it.

Safety: the kernel only runs when the program carries
:class:`~repro.archs.gpp.codegen.DDCKernelMeta` *and* its control-flow
skeleton matches the shape codegen emits (verified against the discovered
basic blocks).  Anything unexpected — a foreign program, a preloaded
out-of-range FIR index, an instruction budget the program would exceed —
returns ``False`` and the caller falls back to the block engine, which
handles the general case with identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...fastpath import delay_chain as _delay_chain, wrap32 as _wrap32
from .assembler import Program
from .cpu import CPU, _to_signed
from .engine import BasicBlock, accumulate_block_stats, discover_blocks
from .isa import Mnemonic

_MASK = np.int64(0xFFFFFFFF)


@dataclass(frozen=True)
class _Skeleton:
    """The 13 basic blocks of a generated DDC program, by role."""

    init: BasicBlock
    loop_head: BasicBlock      # cmp/beq at sample_loop
    sample_body: BasicBlock    # nco + cic2 integrators, bne back
    cic2_comb: BasicBlock      # comb + cic5 integrators, bne back
    cic5_comb: BasicBlock      # comb + fir store, blt widx_ok
    widx_wrap: BasicBlock      # mov r3, #0
    widx_ok: BasicBlock        # store widx, bne back
    fir_head: BasicBlock       # accumulator setup
    mac_head: BasicBlock       # ring walk decrement, bge ridx_ok
    ridx_wrap: BasicBlock      # add r3, #taps
    mac_body: BasicBlock       # load/mla, bne mac loop
    fir_tail: BasicBlock       # output store, b back
    done: BasicBlock           # halt


def _match_skeleton(program: Program) -> _Skeleton | None:
    """Verify the program's control flow is the codegen shape."""
    labels = program.labels
    need = ("sample_loop", "fir_widx_ok", "fir_mac_loop", "fir_ridx_ok",
            "done")
    if any(k not in labels for k in need):
        return None
    blocks = discover_blocks(program)
    by_leader = {b.start: b for b in blocks}
    try:
        init = by_leader[0]
        head = by_leader[labels["sample_loop"]]
        body = by_leader[head.end]
        comb2 = by_leader[body.end]
        comb5 = by_leader[comb2.end]
        wrap = by_leader[comb5.end]
        widx_ok = by_leader[labels["fir_widx_ok"]]
        fir_head = by_leader[widx_ok.end]
        mac_head = by_leader[labels["fir_mac_loop"]]
        ridx_wrap = by_leader[mac_head.end]
        mac_body = by_leader[labels["fir_ridx_ok"]]
        fir_tail = by_leader[mac_body.end]
        done = by_leader[labels["done"]]
    except KeyError:
        return None
    shape = (
        (init, None, head.start),
        (head, Mnemonic.BEQ, labels["done"]),
        (body, Mnemonic.BNE, labels["sample_loop"]),
        (comb2, Mnemonic.BNE, labels["sample_loop"]),
        (comb5, Mnemonic.BLT, labels["fir_widx_ok"]),
        (wrap, None, labels["fir_widx_ok"]),
        (widx_ok, Mnemonic.BNE, labels["sample_loop"]),
        (fir_head, None, labels["fir_mac_loop"]),
        (mac_head, Mnemonic.BGE, labels["fir_ridx_ok"]),
        (ridx_wrap, None, labels["fir_ridx_ok"]),
        (mac_body, Mnemonic.BNE, labels["fir_mac_loop"]),
        (fir_tail, Mnemonic.B, labels["sample_loop"]),
        (done, Mnemonic.HALT, None),
    )
    for blk, term, succ in shape:
        if blk.terminator is not term:
            return None
        if term in (None,) and blk.fallthrough != succ:
            return None
        if term is not None and term is not Mnemonic.HALT \
                and blk.target != succ:
            return None
    return _Skeleton(init, head, body, comb2, comb5, wrap, widx_ok,
                     fir_head, mac_head, ridx_wrap, mac_body, fir_tail,
                     done)


def ddc_block_plan(
    sk: _Skeleton, n: int, d2: int, d5: int, d8: int, taps: int, w0: int
) -> list[tuple[BasicBlock, int, int]]:
    """Closed-form (block, executions, taken-branches) plan of one run.

    Pure counter algebra over the decimation structure — no execution —
    shared by :func:`run_ddc_kernel` and the analytic profile behind
    ``ARM9Model.implement_batch``.  Feeding the plan to
    :func:`~repro.archs.gpp.engine.accumulate_block_stats` produces an
    :class:`~repro.archs.gpp.cpu.ExecutionStats` bit-identical to
    actually executing the program.
    """
    c2 = n // d2               # CIC2 comb executions
    c5 = c2 // d5              # CIC5 comb + FIR store executions
    f = c5 // d8               # FIR summation executions
    wraps = (w0 + c5) // taps  # ring write-index wrap-arounds
    return [
        (sk.init, 1, 0),
        (sk.loop_head, n + 1, 1),
        (sk.sample_body, n, n - c2),
        (sk.cic2_comb, c2, c2 - c5),
        (sk.cic5_comb, c5, c5 - wraps),
        (sk.widx_wrap, wraps, 0),
        (sk.widx_ok, c5, c5 - f),
        (sk.fir_head, f, 0),
        (sk.mac_head, taps * f, (taps - 1) * f),
        (sk.ridx_wrap, f, 0),
        (sk.mac_body, taps * f, (taps - 1) * f),
        (sk.fir_tail, f, f),
        (sk.done, 1, 0),
    ]


def plan_instructions(plan: list[tuple[BasicBlock, int, int]]) -> int:
    """Total instructions a plan retires (the budget-check quantity)."""
    return sum(blk.n_instr * count for blk, count, _ in plan)


def run_ddc_kernel(cpu: CPU, max_instructions: int) -> bool:
    """Execute ``cpu``'s program vectorised; True when it applied.

    Requires a fresh entry (``pc == 0``, not halted) into a program with
    ``ddc_meta`` whose skeleton matches; otherwise returns False without
    touching any state.
    """
    meta = getattr(cpu.program, "ddc_meta", None)
    if meta is None or cpu.pc != 0 or cpu.halted:
        return False
    sk = _match_skeleton(cpu.program)
    if sk is None:
        return False
    mem = cpu.memory
    n, d2, d5, d8, taps = meta.n_samples, meta.d2, meta.d5, meta.d8, meta.taps
    w0 = mem.read(meta.state_base + meta.st_fir_widx)
    if not 0 <= w0 < taps or n < 1:
        return False

    # ------------------------------------------------ block/branch counts
    c2 = n // d2               # CIC2 comb executions
    c5 = c2 // d5              # CIC5 comb + FIR store executions
    f = c5 // d8               # FIR summation executions
    plan = ddc_block_plan(sk, n, d2, d5, d8, taps, w0)
    if plan_instructions(plan) > max_instructions:
        return False  # the block engine truncates identically

    # ------------------------------------------------------- NCO + mixer
    lut_words = 1 << meta.lut_bits
    lut = np.array(mem.region(meta.lut_base, lut_words), dtype=np.int64)
    x = np.array(mem.region(meta.in_base, n), dtype=np.int64)
    k = np.arange(1, n + 1, dtype=np.int64)
    phase = (meta.phase_bias + k * meta.fcw) & _MASK
    idx = ((phase >> (32 - meta.lut_bits)) + lut_words // 4) \
        & np.int64(lut_words - 1)
    cosv = lut[idx]
    mixed = _wrap32(x * cosv) >> meta.mix_shift

    # --------------------------------------------------- CIC2 integrators
    st = meta.state_base
    i1 = _wrap32(mem.read(st + meta.st_cic2_int) + np.cumsum(mixed))
    i2 = _wrap32(mem.read(st + meta.st_cic2_int + 1) + np.cumsum(i1))

    # --------------------------------------------------------- CIC2 comb
    v = i2[d2 - 1::d2][:c2]
    comb1 = _wrap32(v - _delay_chain(v, mem.read(st + meta.st_cic2_comb)))
    out2 = _wrap32(
        comb1 - _delay_chain(comb1, mem.read(st + meta.st_cic2_comb + 1))
    )
    c2out = (out2 >> meta.cic2_shift) >> meta.cic5_pre_shift

    # --------------------------------------------------- CIC5 integrators
    s_final: list[np.ndarray] = []
    acc = c2out
    for i in range(5):
        acc = _wrap32(mem.read(st + meta.st_cic5_int + i) + np.cumsum(acc))
        s_final.append(acc)

    # --------------------------------------------------------- CIC5 comb
    u = s_final[4][d5 - 1::d5][:c5]
    d_last: list[int] = []
    cur = u
    for i in range(5):
        init = mem.read(st + meta.st_cic5_comb + i)
        d_last.append(int(cur[-1]) if len(cur) else init)
        cur = _wrap32(cur - _delay_chain(cur, init))
    c5out = cur >> meta.cic5_shift

    # ------------------------------------------------- FIR ring + output
    coef = np.array(mem.region(meta.coef_base, taps), dtype=np.int64)
    ring = np.array(mem.region(meta.fir_ram, taps), dtype=np.int64)
    outs: list[int] = []
    r13_last = 0
    for m in range(1, c5 + 1):
        ring[(w0 + m - 1) % taps] = c5out[m - 1]
        if m % d8 == 0:
            start = (w0 + m) % taps
            order = (start - 1 - np.arange(taps)) % taps
            acc32 = _wrap32(np.dot(ring[order], coef))
            outs.append(int(acc32) >> meta.fir_out_shift)
            r13_last = int(ring[start])

    # -------------------------------------------------- memory write-back
    if c2:
        mem.write(st + meta.st_cic2_comb, int(v[-1]))
        mem.write(st + meta.st_cic2_comb + 1, int(comb1[-1]))
        for i in range(5):
            mem.write(st + meta.st_cic5_int + i, int(s_final[i][-1]))
    if c5:
        for i in range(5):
            mem.write(st + meta.st_cic5_comb + i, d_last[i])
        mem.write(st + meta.st_fir_widx, (w0 + c5) % taps)
        for i in range(taps):
            mem.write(meta.fir_ram + i, int(ring[i]))
    mem.write(st + meta.st_cic2_int, int(i1[-1]))
    mem.write(st + meta.st_cic2_int + 1, int(i2[-1]))
    mem.write(st + meta.st_out_ptr, meta.out_base + f)
    for i, val in enumerate(outs):
        mem.write(meta.out_base + i, val)

    def r5_state(done_samples: int) -> int:
        """r5 after ``done_samples`` completed sample iterations."""
        if done_samples == 0:
            return cpu.regs[5]
        j = done_samples // d2
        if done_samples % d2 != 0:
            return int(mixed[done_samples - 1])
        m = j // d5
        if j % d5 == 0 and m >= 1 and m % d8 == 0:
            return outs[m // d8 - 1]
        return int(c2out[j - 1])

    if meta.spill_slots:
        mem.write(meta.stack_base, r5_state(n - 1))

    # ------------------------------------------------ final register file
    c_end = n % d2 == 0                   # comb chain ran at the last sample
    d_end = c_end and c2 % d5 == 0
    f_end = d_end and c5 % d8 == 0
    widx_final = (w0 + c5) % taps
    r = cpu.regs
    if f_end:
        r[0] = 0
        r[3] = meta.out_base + f
        r[4] = meta.coef_base + taps
        r[5] = outs[-1]
        r[13] = r13_last
        r[15] = d8
    else:
        if d_end:
            r[0] = int(c5out[-1])
            r[3] = widx_final
            r[4] = meta.fir_ram + (w0 + c5 - 1) % taps
        elif c_end:
            r[0] = int(s_final[4][-1])
            r[3] = int(s_final[4][-1])
            r[4] = int(comb1[-1])
        else:
            r[0] = int(x[n - 1])
            r[3] = int(i1[n - 1])
            r[4] = int(i2[n - 1])
        r[5] = int(c2out[c2 - 1]) if c_end else int(mixed[n - 1])
        if meta.spill_slots:
            r[13] = meta.stack_base
        elif f:
            r[13] = r13_last
        r[15] = d8 if c5 % d8 == 0 else d8 - (c5 % d8)
    r[1] = _to_signed(int(phase[n - 1]))
    r[2] = _to_signed(meta.fcw)
    if c2:
        r[7] = int(v[-1])
    r[8] = meta.in_base + n
    r[9] = meta.in_base + n
    r[10] = meta.lut_base
    r[11] = d2 if n % d2 == 0 else d2 - (n % d2)
    r[12] = meta.state_base
    r[14] = d5 if c2 % d5 == 0 else d5 - (c2 % d5)
    cpu.flag_z = True     # the exit compare saw r8 == r9
    cpu.flag_n = False
    cpu.pc = sk.done.end
    cpu.halted = True

    # --------------------------------------------------------- statistics
    blocks = [blk for blk, _, _ in plan]
    counts = [count for _, count, _ in plan]
    takens = [taken for _, _, taken in plan]
    accumulate_block_stats(cpu.stats, blocks, counts, takens)
    return True
