"""ARM-like RISC instruction set with ARM9-style cycle costs.

The set covers what a C compiler emits for the DDC inner loops: data
processing, multiply / multiply-accumulate, loads/stores with immediate or
register offset and optional post-increment, compares and conditional
branches.

Cycle costs follow the ARM9TDMI integer pipeline to first order:

====================  ======
class                 cycles
====================  ======
data processing       1
MUL                   3
MLA                   4
LDR                   2   (1 issue + 1 load-use slot, the common case in
                           tight DSP loops where the value is used next)
STR                   2
branch taken          3   (pipeline refill)
branch not taken      1
====================  ======

These constants give a CPI of ~1.7 on the generated DDC code, matching the
ratio implied by the paper's measurements (4870 Mcycles/s over 2865 MIPS
= 1.70 cycles per instruction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ...errors import AssemblyError

#: Number of general-purpose registers (r0..r15; r15 is the PC by
#: convention but this ISA keeps the PC separate and treats r15 as GP).
NUM_REGISTERS = 16


class Register(enum.IntEnum):
    """Register names r0..r15."""

    R0 = 0; R1 = 1; R2 = 2; R3 = 3; R4 = 4; R5 = 5; R6 = 6; R7 = 7
    R8 = 8; R9 = 9; R10 = 10; R11 = 11; R12 = 12; R13 = 13; R14 = 14
    R15 = 15


class Mnemonic(enum.Enum):
    """Supported instruction mnemonics."""

    # data processing: rd <- op(rn, operand2)
    MOV = "mov"; MVN = "mvn"
    ADD = "add"; ADDS = "adds"; SUB = "sub"; SUBS = "subs"; RSB = "rsb"
    AND = "and"; ORR = "orr"; EOR = "eor"
    LSL = "lsl"; LSR = "lsr"; ASR = "asr"
    # multiply
    MUL = "mul"; MLA = "mla"
    # memory (word addressed)
    LDR = "ldr"; STR = "str"
    # compare / branch
    CMP = "cmp"
    B = "b"; BEQ = "beq"; BNE = "bne"
    BGT = "bgt"; BLT = "blt"; BGE = "bge"; BLE = "ble"
    # misc
    NOP = "nop"; HALT = "halt"


#: Mnemonics that write flags.
FLAG_SETTERS = {Mnemonic.CMP, Mnemonic.ADDS, Mnemonic.SUBS}

#: Conditional branches and their predicate over (N, Z) flags.
BRANCHES = {
    Mnemonic.B: lambda n, z: True,
    Mnemonic.BEQ: lambda n, z: z,
    Mnemonic.BNE: lambda n, z: not z,
    Mnemonic.BGT: lambda n, z: (not z) and (not n),
    Mnemonic.BLT: lambda n, z: n,
    Mnemonic.BGE: lambda n, z: not n,
    Mnemonic.BLE: lambda n, z: z or n,
}

#: Per-class base cycle costs (see module docstring).
CYCLES = {
    "data": 1,
    "mul": 3,
    "mla": 4,
    "ldr": 2,
    "str": 2,
    "branch_taken": 3,
    "branch_not_taken": 1,
    "nop": 1,
    "halt": 1,
}


@dataclass(frozen=True)
class Operand:
    """Either a register or an immediate.

    ``Operand.reg(n)`` / ``Operand.imm(v)`` are the constructors the
    assembler and codegen use.
    """

    is_reg: bool
    value: int

    @classmethod
    def reg(cls, n: int | Register) -> "Operand":
        n = int(n)
        if not 0 <= n < NUM_REGISTERS:
            raise AssemblyError(f"register r{n} out of range")
        return cls(True, n)

    @classmethod
    def imm(cls, v: int) -> "Operand":
        return cls(False, int(v))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"r{self.value}" if self.is_reg else f"#{self.value}"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields are interpreted per-mnemonic:

    - data processing: ``rd``, ``rn`` (first source; for MOV/MVN unused),
      ``op2`` (second source);
    - MUL: ``rd = rn * op2``; MLA: ``rd = rn * op2 + ra``;
    - LDR/STR: ``rd`` is data, ``rn`` base register, ``op2`` offset
      (register or immediate), ``post_inc`` adds the offset to the base
      *after* the access (C pointer walk ``*p++``);
    - branches: ``target`` is an absolute instruction index (filled in by
      the assembler from a label);
    - CMP: ``rn`` vs ``op2``.
    """

    mnemonic: Mnemonic
    rd: int = 0
    rn: int = 0
    op2: Operand = field(default_factory=lambda: Operand.imm(0))
    ra: int = 0
    target: int = 0
    post_inc: bool = False
    label: str | None = None  # source label, for diagnostics

    def cost_class(self, taken: bool = False) -> str:
        """Cycle-cost class of this instruction."""
        m = self.mnemonic
        if m in BRANCHES:
            return "branch_taken" if taken else "branch_not_taken"
        if m is Mnemonic.MUL:
            return "mul"
        if m is Mnemonic.MLA:
            return "mla"
        if m is Mnemonic.LDR:
            return "ldr"
        if m is Mnemonic.STR:
            return "str"
        if m is Mnemonic.NOP:
            return "nop"
        if m is Mnemonic.HALT:
            return "halt"
        return "data"
