"""Two-pass assembler for the ARM-like ISA.

Syntax (one instruction per line, ``;`` or ``@`` comments)::

    .region nco            ; start a named profiling region
    loop:                  ; label
        ldr   r1, [r9, r2] ; load, register offset
        ldr   r0, [r8], #1 ; load, post-increment base by 1 word
        mul   r3, r0, r1
        asr   r3, r3, #11
        add   r4, r4, r3
        subs  r6, r6, #1
        bne   loop
        halt

Memory is *word addressed* (one 64-bit slot per address) — byte lanes add
nothing to the cycle/energy analysis the model exists for.

``.region NAME`` directives attribute all following instructions (until the
next ``.region``) to a profiling region; the profiler uses this to build
the paper's Table 3.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import AssemblyError
from .isa import BRANCHES, Instruction, Mnemonic, Operand

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_REG_RE = re.compile(r"^[rR](\d{1,2})$")


@dataclass
class Program:
    """An assembled program: instructions + symbols + region map."""

    instructions: list[Instruction]
    labels: dict[str, int]
    #: region name per instruction index
    regions: list[str]

    def __len__(self) -> int:
        return len(self.instructions)

    def region_of(self, pc: int) -> str:
        """Profiling region owning instruction ``pc``."""
        if not 0 <= pc < len(self.regions):
            raise AssemblyError(f"pc {pc} outside program")
        return self.regions[pc]


def _parse_reg(tok: str) -> int:
    m = _REG_RE.match(tok)
    if not m:
        raise AssemblyError(f"expected register, got {tok!r}")
    n = int(m.group(1))
    if n > 15:
        raise AssemblyError(f"register r{n} out of range")
    return n


def _parse_operand(tok: str) -> Operand:
    tok = tok.strip()
    if tok.startswith("#"):
        try:
            return Operand.imm(int(tok[1:], 0))
        except ValueError:
            raise AssemblyError(f"bad immediate {tok!r}") from None
    return Operand.reg(_parse_reg(tok))


def _split_operands(rest: str) -> list[str]:
    """Split an operand field on commas not inside brackets."""
    parts: list[str] = []
    depth = 0
    cur = ""
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(cur.strip())
            cur = ""
        else:
            cur += ch
    if cur.strip():
        parts.append(cur.strip())
    return parts


def _parse_mem(ops: list[str]) -> tuple[int, Operand, bool]:
    """Parse the address part of LDR/STR: returns (base, offset, post_inc).

    Accepted forms: ``[rn]``, ``[rn, #imm]``, ``[rn, rm]``, ``[rn], #imm``
    (post-increment).
    """
    joined = ", ".join(ops)
    m = re.match(r"^\[([^\]]+)\]\s*(?:,\s*(.+))?$", joined)
    if not m:
        raise AssemblyError(f"bad memory operand {joined!r}")
    inside = [t.strip() for t in m.group(1).split(",")]
    post = m.group(2)
    base = _parse_reg(inside[0])
    if post is not None:
        if len(inside) != 1:
            raise AssemblyError(f"bad post-increment form {joined!r}")
        return base, _parse_operand(post.strip()), True
    if len(inside) == 1:
        return base, Operand.imm(0), False
    if len(inside) == 2:
        return base, _parse_operand(inside[1]), False
    raise AssemblyError(f"bad memory operand {joined!r}")


def assemble(source: str) -> Program:
    """Assemble source text into a :class:`Program`."""
    lines = source.splitlines()
    # pass 1: collect labels and raw statements
    statements: list[tuple[str, str, str]] = []  # (mnemonic, rest, region)
    labels: dict[str, int] = {}
    region = "default"
    for lineno, raw in enumerate(lines, 1):
        line = raw.split(";")[0].split("@")[0].strip()
        if not line:
            continue
        if line.startswith(".region"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblyError(f"line {lineno}: bad .region directive")
            region = parts[1]
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(statements)
            line = line.strip()
        if not line:
            continue
        mnemonic, _, rest = line.partition(" ")
        statements.append((mnemonic.strip().lower(), rest.strip(), region))

    # pass 2: encode
    instructions: list[Instruction] = []
    regions: list[str] = []
    for idx, (mn_txt, rest, reg_name) in enumerate(statements):
        try:
            mn = Mnemonic(mn_txt)
        except ValueError:
            raise AssemblyError(f"unknown mnemonic {mn_txt!r}") from None
        ops = _split_operands(rest) if rest else []
        instr = _encode(mn, ops, labels, idx)
        instructions.append(instr)
        regions.append(reg_name)
    return Program(instructions, labels, regions)


def _encode(
    mn: Mnemonic, ops: list[str], labels: dict[str, int], idx: int
) -> Instruction:
    if mn in (Mnemonic.NOP, Mnemonic.HALT):
        if ops:
            raise AssemblyError(f"{mn.value} takes no operands")
        return Instruction(mn)
    if mn in BRANCHES:
        if len(ops) != 1:
            raise AssemblyError(f"{mn.value} takes one label")
        label = ops[0]
        if label not in labels:
            raise AssemblyError(f"undefined label {label!r}")
        return Instruction(mn, target=labels[label], label=label)
    if mn is Mnemonic.CMP:
        if len(ops) != 2:
            raise AssemblyError("cmp takes rn, op2")
        return Instruction(mn, rn=_parse_reg(ops[0]), op2=_parse_operand(ops[1]))
    if mn in (Mnemonic.MOV, Mnemonic.MVN):
        if len(ops) != 2:
            raise AssemblyError(f"{mn.value} takes rd, op2")
        return Instruction(mn, rd=_parse_reg(ops[0]), op2=_parse_operand(ops[1]))
    if mn in (Mnemonic.LDR, Mnemonic.STR):
        if len(ops) < 2:
            raise AssemblyError(f"{mn.value} takes rd, [address]")
        rd = _parse_reg(ops[0])
        base, offset, post = _parse_mem(ops[1:])
        return Instruction(mn, rd=rd, rn=base, op2=offset, post_inc=post)
    if mn is Mnemonic.MLA:
        if len(ops) != 4:
            raise AssemblyError("mla takes rd, rn, rm, ra")
        return Instruction(
            mn, rd=_parse_reg(ops[0]), rn=_parse_reg(ops[1]),
            op2=Operand.reg(_parse_reg(ops[2])), ra=_parse_reg(ops[3]),
        )
    # three-operand data processing and MUL
    if len(ops) != 3:
        raise AssemblyError(f"{mn.value} takes rd, rn, op2")
    return Instruction(
        mn, rd=_parse_reg(ops[0]), rn=_parse_reg(ops[1]),
        op2=_parse_operand(ops[2]),
    )
