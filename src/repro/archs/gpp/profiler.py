"""Region profiling of the generated DDC program (paper Table 3).

:func:`profile_ddc` assembles the generated DDC, runs it on the CPU
simulator over a block of input samples, and attributes cycles to the
paper's seven regions.  The result carries everything Section 4.2 derives:

- the per-region cycle shares (Table 3's right column);
- instructions and cycles per second at the 64.512 MHz input rate;
- the clock an ARM would need for the I-rail and for the full I+Q DDC;
- whether a single ARM9 can sustain it (it cannot).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ...config import DDCConfig, REFERENCE_DDC
from ...errors import ConfigurationError
from .codegen import (
    DDC_REGIONS,
    build_memory_image,
    generate_ddc_program,
)
from .cpu import CPU, ExecutionStats


@dataclass(frozen=True)
class RegionProfile:
    """Profiling result over one simulated input block."""

    n_samples: int
    input_rate_hz: float
    stats: ExecutionStats
    region_fractions: dict[str, float]
    out_samples: np.ndarray

    @property
    def cycles_per_input_sample(self) -> float:
        """Average cycles the CPU spends per input sample (one rail)."""
        return self.stats.cycles / self.n_samples

    @property
    def instructions_per_second(self) -> float:
        """MIPS * 1e6 needed to keep up with the input rate (one rail).

        The paper's figure: 2865 Mega instructions per second.
        """
        return self.stats.instructions / self.n_samples * self.input_rate_hz

    @property
    def cycles_per_second(self) -> float:
        """Clock rate needed for the in-phase rail (paper: 4.870e9)."""
        return self.cycles_per_input_sample * self.input_rate_hz

    @property
    def required_clock_hz(self) -> float:
        """Clock for the full DDC: the Q rail doubles the work
        (paper: 4870 MHz * 2 = 9740 MHz)."""
        return 2.0 * self.cycles_per_second

    def table3_rows(self) -> list[tuple[str, float]]:
        """(region, percent-of-cycles) rows in Table 3 order."""
        return [(r, 100.0 * self.region_fractions.get(r, 0.0))
                for r in DDC_REGIONS]


#: Instruction budget :func:`profile_ddc` grants a run of ``n`` samples.
def _instruction_budget(n_samples: int) -> int:
    return 400 * n_samples + 10_000


@functools.lru_cache(maxsize=None)
def _ddc_skeleton(spill_slots: bool, lut_bits: int):
    """The generated program's basic-block skeleton and cost tables.

    The codegen emits the *same instruction sequence shape* for every
    configuration — decimations, taps, widths and frequencies only change
    immediates, never instruction counts or cost classes — so one
    reference build provides the static per-block cost tables for the
    whole configuration space (pinned against real execution by
    ``tests/test_evaluator_batch.py``).
    """
    from .ddc_kernel import _match_skeleton

    program, _ = generate_ddc_program(REFERENCE_DDC, 1, lut_bits, spill_slots)
    sk = _match_skeleton(program)
    if sk is None:  # pragma: no cover - codegen and kernel move together
        raise ConfigurationError(
            "generated DDC no longer matches the kernel skeleton"
        )
    return sk


def profile_ddc_analytic(
    config: DDCConfig = REFERENCE_DDC,
    n_samples: int | None = None,
    spill_slots: bool = True,
    lut_bits: int = 10,
) -> RegionProfile | None:
    """Closed-form :func:`profile_ddc` twin: statistics without execution.

    The generated DDC's control flow depends only on counters, so its
    per-region instruction/cycle statistics — everything
    :class:`~repro.archs.gpp.arm9.ARM9Model` needs — follow in closed
    form from the decimation structure and the static block cost tables
    (:func:`~repro.archs.gpp.ddc_kernel.ddc_block_plan`).  The resulting
    :class:`RegionProfile` carries statistics bit-identical to running
    the program; ``out_samples`` is empty (nothing was executed).

    Returns ``None`` when the analytic path does not apply — non-reference
    CIC orders (codegen rejects them) or a run that would exceed
    :func:`profile_ddc`'s instruction budget (the engine truncates there)
    — and the caller must fall back to :func:`profile_ddc`, which
    reproduces the scalar behaviour exactly, errors included.
    """
    from .ddc_kernel import ddc_block_plan, plan_instructions
    from .engine import accumulate_block_stats

    if config.cic2_order != 2 or config.cic5_order != 5:
        return None
    if n_samples is None:
        n_samples = config.total_decimation
    if n_samples < 1:
        return None
    sk = _ddc_skeleton(spill_slots, lut_bits)
    plan = ddc_block_plan(
        sk,
        n_samples,
        config.cic2_decimation,
        config.cic5_decimation,
        config.fir_decimation,
        config.fir_taps,
        0,  # a fresh run starts with FIR write index 0
    )
    if plan_instructions(plan) > _instruction_budget(n_samples):
        return None
    stats = ExecutionStats()
    accumulate_block_stats(
        stats,
        [blk for blk, _, _ in plan],
        [count for _, count, _ in plan],
        [taken for _, _, taken in plan],
    )
    steady = {r: stats.region_cycles.get(r, 0) for r in DDC_REGIONS}
    total = sum(steady.values())
    fractions = {r: (c / total if total else 0.0) for r, c in steady.items()}
    return RegionProfile(
        n_samples=n_samples,
        input_rate_hz=config.input_rate_hz,
        stats=stats,
        region_fractions=fractions,
        out_samples=np.empty(0, dtype=np.int64),
    )


def profile_ddc(
    config: DDCConfig = REFERENCE_DDC,
    n_samples: int | None = None,
    input_samples: np.ndarray | None = None,
    spill_slots: bool = True,
    lut_bits: int = 10,
    engine: str = "auto",
) -> RegionProfile:
    """Generate, assemble and execute the DDC; return the region profile.

    ``n_samples`` defaults to one full output period (2688 inputs) so every
    region, including the FIR summation, executes at its steady-state rate.

    ``engine`` selects the execution strategy (see
    :meth:`~repro.archs.gpp.cpu.CPU.run`); the default ``"auto"`` runs the
    vectorised DDC kernel, which is >100x faster than the seed interpreter
    (``engine="interp"``) with bit-identical statistics and outputs.
    """
    if n_samples is None:
        n_samples = (
            config.total_decimation if input_samples is None
            else len(input_samples)
        )
    if input_samples is None:
        rng = np.random.default_rng(0xA2)
        input_samples = rng.integers(
            -(2 ** (config.data_width - 1)),
            2 ** (config.data_width - 1),
            size=n_samples,
        ).astype(np.int64)
    input_samples = np.asarray(input_samples)
    if len(input_samples) != n_samples:
        raise ConfigurationError("input_samples length must equal n_samples")

    program, layout = generate_ddc_program(
        config, n_samples, lut_bits, spill_slots
    )
    cpu = CPU(program)
    for base, words in build_memory_image(layout, input_samples).items():
        cpu.load_memory(base, words)
    stats = cpu.run(
        max_instructions=_instruction_budget(n_samples), engine=engine
    )

    steady = {r: stats.region_cycles.get(r, 0) for r in DDC_REGIONS}
    total = sum(steady.values())
    fractions = {r: (c / total if total else 0.0) for r, c in steady.items()}

    n_out = n_samples // config.total_decimation
    out = np.array(
        [cpu.read_memory(layout.out_base + i) for i in range(n_out)],
        dtype=np.int64,
    )
    return RegionProfile(
        n_samples=n_samples,
        input_rate_hz=config.input_rate_hz,
        stats=stats,
        region_fractions=fractions,
        out_samples=out,
    )


def ddc_workload_mapping():
    """The DDC workload's GPP mapping descriptor (see
    :mod:`repro.workloads`): the codegen-emitted ARM-like program run on
    the instruction-level simulator with region accounting."""
    from ...workloads.base import WorkloadMapping

    return WorkloadMapping(
        architecture="ARM922T",
        description=(
            "compiler-style codegen of the DDC inner loops executed on "
            "the ARM-like ISS (profile_ddc); engine='auto' picks the "
            "vectorised kernel, engine='interp' the per-instruction "
            "oracle"
        ),
        run=profile_ddc,
    )
