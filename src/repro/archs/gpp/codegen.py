"""DDC code generator: the "C compiled for ARM" of Section 4.2.1.

The paper wrote the DDC in C ("for simplicity reasons, the code only
performs the in-phase transformation"), compiled it unoptimised, and
profiled the result.  This module emits the equivalent straight-line
assembly for our ARM-like ISA:

- one *sample loop* running at the 64.512 MHz input rate containing the
  NCO/mixer work and the CIC2 integrators;
- nested decimation epilogues for the CIC2 comb (every 16 samples), CIC5
  integrators (every 16), CIC5 comb + polyphase FIR store (every 336) and
  the 125-tap FIR summation (every 2688);
- filter state held in memory with load/op/store sequences and explicit
  stack-slot spills around the per-sample work, the code shape an
  unoptimised compiler produces (the paper stresses "the code was not
  optimized").

Regions are annotated with ``.region`` so the profiler can regenerate the
cycle-share breakdown of Table 3.

Memory map (word addressed)::

    LUT_BASE    0x1000   sine/cosine look-up table (2**lut_bits words)
    IN_BASE     0x10000  input samples
    STATE_BASE  0x8000   filter state (combs, CIC5 integrators, indices)
    FIR_RAM     0x9000   polyphase FIR sample ring
    COEF_BASE   0xA000   FIR coefficients
    OUT_BASE    0xB000   output samples
    STACK_BASE  0xF000   stack slots for the spill traffic
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...config import DDCConfig, REFERENCE_DDC
from ...errors import ConfigurationError
from ...fixedpoint import QFormat, to_fixed
from ..gpp.assembler import Program, assemble
from ...dsp.firdesign import quantize_taps, reference_fir_taps

#: Profiling regions in Table 3 order.
DDC_REGIONS = (
    "nco",
    "cic2_int",
    "cic2_comb",
    "cic5_int",
    "cic5_comb",
    "fir_poly",
    "fir_sum",
)

LUT_BASE = 0x1000
IN_BASE = 0x10000
STATE_BASE = 0x8000
FIR_RAM = 0x9000
COEF_BASE = 0xA000
OUT_BASE = 0xB000
STACK_BASE = 0xF000

# STATE_BASE layout (word offsets)
_ST_CIC2_COMB = 0      # 2 words: comb delays of CIC2
_ST_CIC5_INT = 2       # 5 words: CIC5 integrator registers
_ST_CIC5_COMB = 7      # 5 words: CIC5 comb delays
_ST_FIR_WIDX = 12      # 1 word: FIR ring write index
_ST_OUT_PTR = 13       # 1 word: output write pointer
_ST_CIC2_INT = 14      # 2 words: CIC2 integrator registers (struct state)


@dataclass(frozen=True)
class DDCProgramLayout:
    """Addresses and sizes the harness needs to run a generated program."""

    lut_bits: int
    n_samples: int
    fir_taps: int
    in_base: int = IN_BASE
    out_base: int = OUT_BASE
    lut_base: int = LUT_BASE
    coef_base: int = COEF_BASE


@dataclass(frozen=True)
class DDCKernelMeta:
    """Everything the vectorised fast engine needs to replay a generated
    program without interpreting it.

    Attached to the :class:`~repro.archs.gpp.assembler.Program` by
    :func:`generate_ddc_program` as ``program.ddc_meta``.  The contract:
    the metadata describes *exactly* the assembly this module emitted, and
    :mod:`~repro.archs.gpp.ddc_kernel` verifies the control-flow skeleton
    before trusting it; the Hypothesis suite in
    ``tests/test_fast_engine.py`` pins the data path bit-for-bit against
    the interpreter.  If you change the emitted code shape, update the
    kernel (or drop the metadata and fall back to the block engine).
    """

    n_samples: int
    d2: int
    d5: int
    d8: int
    taps: int
    lut_bits: int
    fcw: int
    phase_bias: int
    mix_shift: int
    cic2_shift: int
    cic5_pre_shift: int
    cic5_shift: int
    fir_out_shift: int
    spill_slots: bool
    lut_base: int = LUT_BASE
    in_base: int = IN_BASE
    state_base: int = STATE_BASE
    fir_ram: int = FIR_RAM
    coef_base: int = COEF_BASE
    out_base: int = OUT_BASE
    stack_base: int = STACK_BASE
    st_cic2_comb: int = _ST_CIC2_COMB
    st_cic5_int: int = _ST_CIC5_INT
    st_cic5_comb: int = _ST_CIC5_COMB
    st_fir_widx: int = _ST_FIR_WIDX
    st_out_ptr: int = _ST_OUT_PTR
    st_cic2_int: int = _ST_CIC2_INT


def generate_ddc_source(
    config: DDCConfig = REFERENCE_DDC,
    n_samples: int = 2688,
    lut_bits: int = 10,
    spill_slots: bool = True,
) -> tuple[str, DDCProgramLayout]:
    """Emit assembly source for the in-phase DDC over ``n_samples`` inputs.

    ``spill_slots`` adds the stack load/store traffic of unoptimised
    compiler output around the per-sample regions; disabling it models a
    hand-optimised register-resident loop (used by the optimisation
    ablation bench).
    """
    if n_samples < 1:
        raise ConfigurationError("n_samples must be >= 1")
    if config.cic2_order != 2 or config.cic5_order != 5:
        raise ConfigurationError(
            "the GPP code generator implements the reference CIC2+CIC5 chain"
        )
    d2, d5, d8 = (
        config.cic2_decimation,
        config.cic5_decimation,
        config.fir_decimation,
    )
    taps = config.fir_taps
    lut_mask = (1 << lut_bits) - 1
    idx_shift = 32 - lut_bits
    # Fixed-point shifts along the chain (see module docstring of dsp.ddc):
    mix_shift = config.data_width - 1            # 12x12 -> keep top 12
    cic2_shift = 8                               # gain 256
    # CIC5 runs in 32-bit registers; pre-drop 2 bits so 10 + 22 = 32 fits.
    cic5_pre_shift = 2
    cic5_shift = 20                              # 22-bit gain minus pre-shift

    L: list[str] = []
    a = L.append
    a("; generated DDC (in-phase rail), unoptimised-compiler shape")
    a(".region init")
    # FCW for the configured NCO frequency at 32-bit phase.
    fcw = round(config.nco_frequency_hz / config.input_rate_hz * 2**32) % 2**32
    # Pre-bias the accumulator so the first sample is mixed with phase 0,
    # matching the gold-model NCO (phase *before* the step).
    a(f"  mov r1, #{(-fcw) % 2**32} ; phase accumulator (biased -fcw)")
    # Immediates are arbitrary-size ints in this ISA.
    a(f"  mov r2, #{fcw}        ; frequency control word")
    a(f"  mov r8, #{IN_BASE}    ; input pointer")
    a(f"  mov r9, #{IN_BASE + n_samples} ; input end")
    a(f"  mov r10, #{LUT_BASE}  ; LUT base")
    a(f"  mov r11, #{d2}        ; CIC2 decimation counter")
    a(f"  mov r12, #{STATE_BASE}; state base")
    a(f"  mov r14, #{d5}        ; CIC5 decimation counter")
    a(f"  mov r15, #{d8}        ; FIR decimation counter")
    a(f"  mov r3, #{OUT_BASE}")
    a(f"  str r3, [r12, #{_ST_OUT_PTR}]")
    a("sample_loop:")

    # ------------------------------------------------------------- NCO/mixer
    a(".region nco")
    a("  cmp r8, r9")
    a("  beq done")
    if spill_slots:
        a(f"  str r5, [r12, #{_ST_OUT_PTR}]  ; (spill slot reuse: compiler")
        # Use a dedicated stack slot instead of clobbering state:
        L.pop()
        a(f"  mov r13, #{STACK_BASE}")
        a("  str r5, [r13, #0]     ; spill of previous mixed value")
    a("  add r1, r1, r2        ; phase += fcw")
    a(f"  lsr r3, r1, #{idx_shift}")
    a(f"  add r3, r3, #{(1 << lut_bits) // 4} ; quarter shift: cos from sine LUT")
    a(f"  and r3, r3, #{lut_mask}")
    a("  add r3, r3, r10")
    a("  ldr r4, [r3]          ; cos sample from LUT")
    a("  ldr r0, [r8]          ; input sample")
    a("  add r8, r8, #1        ; (unoptimised: separate pointer bump)")
    a("  mul r5, r0, r4        ; mix")
    a(f"  asr r5, r5, #{mix_shift}")

    # -------------------------------------------------------- CIC2 integrate
    # Integrator state lives in the filter struct in memory — the access
    # pattern an unoptimised compiler produces for `s->int1 += x`.
    a(".region cic2_int")
    a(f"  ldr r3, [r12, #{_ST_CIC2_INT}]")
    a("  add r3, r3, r5        ; integrator 1")
    a(f"  str r3, [r12, #{_ST_CIC2_INT}]")
    a(f"  ldr r4, [r12, #{_ST_CIC2_INT + 1}]")
    a("  add r4, r4, r3        ; integrator 2")
    a(f"  str r4, [r12, #{_ST_CIC2_INT + 1}]")
    a("  subs r11, r11, #1")
    a("  bne sample_loop")

    # ------------------------------------------------------------ CIC2 comb
    a(".region cic2_comb")
    a(f"  mov r11, #{d2}")
    a(f"  ldr r7, [r12, #{_ST_CIC2_INT + 1}] ; integrator 2 value")
    a(f"  ldr r3, [r12, #{_ST_CIC2_COMB}]")
    a(f"  str r7, [r12, #{_ST_CIC2_COMB}]")
    a("  sub r4, r7, r3        ; comb 1")
    a(f"  ldr r3, [r12, #{_ST_CIC2_COMB + 1}]")
    a(f"  str r4, [r12, #{_ST_CIC2_COMB + 1}]")
    a("  sub r5, r4, r3        ; comb 2 -> CIC2 output")
    a(f"  asr r5, r5, #{cic2_shift}")
    a(f"  asr r5, r5, #{cic5_pre_shift} ; pruning before CIC5")

    # --------------------------------------------------------- CIC5 integrate
    a(".region cic5_int")
    a("  mov r0, r5")
    for s in range(5):
        a(f"  ldr r3, [r12, #{_ST_CIC5_INT + s}]")
        a("  add r3, r3, r0")
        a(f"  str r3, [r12, #{_ST_CIC5_INT + s}]")
        a("  mov r0, r3")
    a("  subs r14, r14, #1")
    a("  bne sample_loop")

    # ------------------------------------------------------------ CIC5 comb
    a(".region cic5_comb")
    a(f"  mov r14, #{d5}")
    for s in range(5):
        a(f"  ldr r3, [r12, #{_ST_CIC5_COMB + s}]")
        a(f"  str r0, [r12, #{_ST_CIC5_COMB + s}]")
        a("  sub r0, r0, r3")
    a(f"  asr r0, r0, #{cic5_shift}")

    # --------------------------------------------------- FIR polyphase store
    a(".region fir_poly")
    a(f"  ldr r3, [r12, #{_ST_FIR_WIDX}]")
    a(f"  mov r4, #{FIR_RAM}")
    a("  add r4, r4, r3")
    a("  str r0, [r4]          ; sample into FIR ring")
    a("  add r3, r3, #1")
    a(f"  cmp r3, #{taps}")
    a("  blt fir_widx_ok")
    a("  mov r3, #0")
    a("fir_widx_ok:")
    a(f"  str r3, [r12, #{_ST_FIR_WIDX}]")
    a("  subs r15, r15, #1")
    a("  bne sample_loop")

    # ------------------------------------------------------- FIR summation
    a(".region fir_sum")
    a("  mov r5, #0            ; accumulator")
    a(f"  mov r4, #{COEF_BASE}  ; coefficient pointer")
    a(f"  ldr r3, [r12, #{_ST_FIR_WIDX}] ; one past the newest sample")
    a(f"  mov r0, #{taps}       ; tap counter")
    a("fir_mac_loop:")
    a("  sub r3, r3, #1        ; walk backwards through the ring")
    a("  cmp r3, #0")
    a("  bge fir_ridx_ok")
    a(f"  add r3, r3, #{taps}")
    a("fir_ridx_ok:")
    a(f"  mov r13, #{FIR_RAM}")
    a("  add r13, r13, r3")
    a("  ldr r13, [r13]        ; sample")
    a("  ldr r15, [r4]         ; coefficient (r15 is free inside the sum)")
    a("  mla r5, r13, r15, r5")
    a("  add r4, r4, #1")
    a("  subs r0, r0, #1")
    a("  bne fir_mac_loop")
    a(f"  mov r15, #{d8}        ; reload FIR decimation counter")
    a(f"  asr r5, r5, #{11}     ; coefficient Q11 scaling")
    a(f"  ldr r3, [r12, #{_ST_OUT_PTR}]")
    a("  str r5, [r3]")
    a("  add r3, r3, #1")
    a(f"  str r3, [r12, #{_ST_OUT_PTR}]")
    a("  b sample_loop")

    a(".region done")
    a("done:")
    a("  halt")
    layout = DDCProgramLayout(lut_bits, n_samples, taps)
    return "\n".join(L), layout


def generate_ddc_program(
    config: DDCConfig = REFERENCE_DDC,
    n_samples: int = 2688,
    lut_bits: int = 10,
    spill_slots: bool = True,
) -> tuple[Program, DDCProgramLayout]:
    """Assemble the generated DDC source.

    The returned program carries a :class:`DDCKernelMeta` as
    ``program.ddc_meta`` so ``CPU.run(engine="auto")`` can execute it with
    the vectorised kernel instead of interpreting every instruction.
    """
    src, layout = generate_ddc_source(config, n_samples, lut_bits, spill_slots)
    program = assemble(src)
    fcw = round(
        config.nco_frequency_hz / config.input_rate_hz * 2**32
    ) % 2**32
    program.ddc_meta = DDCKernelMeta(
        n_samples=n_samples,
        d2=config.cic2_decimation,
        d5=config.cic5_decimation,
        d8=config.fir_decimation,
        taps=config.fir_taps,
        lut_bits=lut_bits,
        fcw=fcw,
        phase_bias=(-fcw) % 2**32,
        mix_shift=config.data_width - 1,
        cic2_shift=8,
        cic5_pre_shift=2,
        cic5_shift=20,
        fir_out_shift=11,
        spill_slots=spill_slots,
    )
    return program, layout


def build_memory_image(
    layout: DDCProgramLayout,
    input_samples: np.ndarray,
    fir_taps: np.ndarray | None = None,
    data_width: int = 12,
) -> dict[int, list[int]]:
    """Memory initialisation blocks for a generated program.

    Returns ``{base_address: [words...]}`` with the sine LUT, quantised FIR
    coefficients and the input samples.
    """
    x = np.asarray(input_samples)
    if not np.issubdtype(x.dtype, np.integer):
        raise ConfigurationError("input samples must be raw integers")
    if len(x) != layout.n_samples:
        raise ConfigurationError(
            f"expected {layout.n_samples} samples, got {len(x)}"
        )
    n_lut = 1 << layout.lut_bits
    fmt = QFormat(data_width, data_width - 1)
    lut = to_fixed(
        np.sin(2 * np.pi * (np.arange(n_lut) + 0.5) / n_lut), fmt
    )
    if fir_taps is None:
        fir_taps = reference_fir_taps(layout.fir_taps)
    raw_taps, _ = quantize_taps(np.asarray(fir_taps), data_width,
                                frac_bits=11)
    return {
        layout.lut_base: [int(v) for v in lut],
        layout.coef_base: [int(v) for v in raw_taps],
        layout.in_base: [int(v) for v in x],
    }
