"""General Purpose Processor model (paper Section 4).

The paper writes the DDC in C, compiles it for an ARM 9, and profiles the
assembler with the ARM source-level debugger.  This package plays the same
role entirely in Python:

- :mod:`~repro.archs.gpp.isa` — an ARM-like RISC instruction set with
  per-class cycle costs modelled on the ARM9 pipeline;
- :mod:`~repro.archs.gpp.assembler` — a two-pass textual assembler;
- :mod:`~repro.archs.gpp.cpu` — the instruction-level simulator with cycle
  accounting (the per-instruction oracle) and the array-backed
  :class:`WordMemory`;
- :mod:`~repro.archs.gpp.engine` — the basic-block compiling fast engine
  with per-block cycle/region accounting (``CPU.run(engine="blocks")``);
- :mod:`~repro.archs.gpp.ddc_kernel` — the numpy-vectorised executor for
  the codegen-emitted DDC program (``engine="auto"``), bit-identical
  statistics at >100x interpreter speed;
- :mod:`~repro.archs.gpp.codegen` — emits the DDC inner loops the way a C
  compiler would (the paper's note "the code was not optimized" applies to
  this straightforward translation as well);
- :mod:`~repro.archs.gpp.profiler` — attributes executed cycles to DDC
  regions, regenerating Table 3;
- :mod:`~repro.archs.gpp.arm9` — the ARM922T device model: 0.25 mW/MHz
  core+cache power, 250 MHz achievable clock, and the required-clock /
  energy arithmetic of Section 4.2.
"""

from .isa import Instruction, Mnemonic, Operand, Register
from .assembler import assemble, Program
from .cpu import CPU, ExecutionStats, WordMemory
from .codegen import generate_ddc_program, DDC_REGIONS, DDCKernelMeta
from .engine import CompiledProgram, discover_blocks
from .profiler import RegionProfile, profile_ddc
from .arm9 import ARM9Model, ARM922T

__all__ = [
    "Instruction",
    "Mnemonic",
    "Operand",
    "Register",
    "assemble",
    "Program",
    "CPU",
    "ExecutionStats",
    "WordMemory",
    "CompiledProgram",
    "discover_blocks",
    "generate_ddc_program",
    "DDC_REGIONS",
    "DDCKernelMeta",
    "RegionProfile",
    "profile_ddc",
    "ARM9Model",
    "ARM922T",
]
