"""Instruction-level CPU simulator with cycle accounting.

Plays the role of the paper's "ARM source-level debugger" run: executes an
assembled :class:`~repro.archs.gpp.assembler.Program` and counts, per
profiling region, how many instructions and cycles were spent — the raw
material of Table 3 and the 2865 MIPS / 4.87 Gcycles/s numbers of
Section 4.2.1.

The machine is a flat register file (r0..r15), N/Z flags, and a
word-addressed memory (Python dict, zero-default).  Arithmetic is 32-bit
two's-complement like the ARM.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ...errors import ExecutionError
from .assembler import Program
from .isa import BRANCHES, CYCLES, FLAG_SETTERS, Instruction, Mnemonic

_WORD_MASK = (1 << 32) - 1
_SIGN_BIT = 1 << 31


def _to_signed(v: int) -> int:
    v &= _WORD_MASK
    return v - (1 << 32) if v & _SIGN_BIT else v


@dataclass
class ExecutionStats:
    """Counters accumulated by a run."""

    instructions: int = 0
    cycles: int = 0
    region_instructions: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    region_cycles: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def cycles_fraction(self, region: str) -> float:
        """Fraction of all cycles spent in ``region``."""
        if self.cycles == 0:
            return 0.0
        return self.region_cycles.get(region, 0) / self.cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the run."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions


class CPU:
    """Executes programs; memory is word-addressed and sparse."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.regs = [0] * 16
        self.flag_n = False
        self.flag_z = False
        self.memory: dict[int, int] = {}
        self.pc = 0
        self.halted = False
        self.stats = ExecutionStats()

    # ------------------------------------------------------------- memory
    def load_memory(self, base: int, values: list[int]) -> None:
        """Bulk-initialise memory at ``base``."""
        for i, v in enumerate(values):
            self.memory[base + i] = _to_signed(int(v))

    def read_memory(self, addr: int) -> int:
        """Read one word (0 if never written)."""
        return self.memory.get(int(addr), 0)

    # ------------------------------------------------------------ operands
    def _op2(self, instr: Instruction) -> int:
        return self.regs[instr.op2.value] if instr.op2.is_reg else instr.op2.value

    def _set_flags(self, result: int) -> None:
        self.flag_z = result == 0
        self.flag_n = result < 0

    # ------------------------------------------------------------- running
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            raise ExecutionError("CPU is halted")
        if not 0 <= self.pc < len(self.program):
            raise ExecutionError(f"pc {self.pc} outside program")
        instr = self.program.instructions[self.pc]
        region = self.program.region_of(self.pc)
        taken = False
        next_pc = self.pc + 1
        m = instr.mnemonic

        if m in BRANCHES:
            taken = BRANCHES[m](self.flag_n, self.flag_z)
            if taken:
                next_pc = instr.target
        elif m is Mnemonic.HALT:
            self.halted = True
        elif m is Mnemonic.NOP:
            pass
        elif m is Mnemonic.CMP:
            self._set_flags(_to_signed(self.regs[instr.rn] - self._op2(instr)))
        elif m in (Mnemonic.MOV, Mnemonic.MVN):
            v = self._op2(instr)
            self.regs[instr.rd] = _to_signed(~v if m is Mnemonic.MVN else v)
        elif m is Mnemonic.MUL:
            self.regs[instr.rd] = _to_signed(self.regs[instr.rn] * self._op2(instr))
        elif m is Mnemonic.MLA:
            self.regs[instr.rd] = _to_signed(
                self.regs[instr.rn] * self._op2(instr) + self.regs[instr.ra]
            )
        elif m is Mnemonic.LDR:
            addr = self.regs[instr.rn] + (0 if instr.post_inc else self._op2(instr))
            self.regs[instr.rd] = self.read_memory(addr)
            if instr.post_inc:
                self.regs[instr.rn] = _to_signed(
                    self.regs[instr.rn] + self._op2(instr)
                )
        elif m is Mnemonic.STR:
            addr = self.regs[instr.rn] + (0 if instr.post_inc else self._op2(instr))
            self.memory[int(addr)] = self.regs[instr.rd]
            if instr.post_inc:
                self.regs[instr.rn] = _to_signed(
                    self.regs[instr.rn] + self._op2(instr)
                )
        else:
            a = self.regs[instr.rn]
            b = self._op2(instr)
            if m in (Mnemonic.ADD, Mnemonic.ADDS):
                r = a + b
            elif m in (Mnemonic.SUB, Mnemonic.SUBS):
                r = a - b
            elif m is Mnemonic.RSB:
                r = b - a
            elif m is Mnemonic.AND:
                r = (a & _WORD_MASK) & (b & _WORD_MASK)
            elif m is Mnemonic.ORR:
                r = (a & _WORD_MASK) | (b & _WORD_MASK)
            elif m is Mnemonic.EOR:
                r = (a & _WORD_MASK) ^ (b & _WORD_MASK)
            elif m is Mnemonic.LSL:
                r = (a & _WORD_MASK) << (b & 31)
            elif m is Mnemonic.LSR:
                r = (a & _WORD_MASK) >> (b & 31)
            elif m is Mnemonic.ASR:
                r = a >> (b & 31)
            else:  # pragma: no cover - exhaustive over Mnemonic
                raise ExecutionError(f"unhandled mnemonic {m}")
            r = _to_signed(r)
            self.regs[instr.rd] = r
            if m in FLAG_SETTERS:
                self._set_flags(r)

        cost = CYCLES[instr.cost_class(taken)]
        self.stats.instructions += 1
        self.stats.cycles += cost
        self.stats.region_instructions[region] += 1
        self.stats.region_cycles[region] += cost
        self.pc = next_pc

    def run(self, max_instructions: int = 50_000_000) -> ExecutionStats:
        """Run until HALT; returns the statistics."""
        executed = 0
        while not self.halted:
            if executed >= max_instructions:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions without HALT"
                )
            self.step()
            executed += 1
        return self.stats
