"""Instruction-level CPU simulator with cycle accounting.

Plays the role of the paper's "ARM source-level debugger" run: executes an
assembled :class:`~repro.archs.gpp.assembler.Program` and counts, per
profiling region, how many instructions and cycles were spent — the raw
material of Table 3 and the 2865 MIPS / 4.87 Gcycles/s numbers of
Section 4.2.1.

The machine is a flat register file (r0..r15), N/Z flags, and a
word-addressed memory (array-backed, zero-default — see
:class:`WordMemory`).  Arithmetic is 32-bit two's-complement like the ARM.

:meth:`CPU.step` is the per-instruction *oracle*; :meth:`CPU.run` can also
dispatch to the fast engines (``engine="blocks"`` for the generic
basic-block compiler, ``engine="auto"`` to additionally use the vectorised
DDC kernel when the program carries codegen metadata) — both produce
bit-identical registers, memory and :class:`ExecutionStats`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ...errors import ExecutionError
from .assembler import Program
from .isa import BRANCHES, CYCLES, FLAG_SETTERS, Instruction, Mnemonic

_WORD_MASK = (1 << 32) - 1
_SIGN_BIT = 1 << 31


def _to_signed(v: int) -> int:
    v &= _WORD_MASK
    return v - (1 << 32) if v & _SIGN_BIT else v


class WordMemory:
    """Array-backed word memory with a sparse spill for stray addresses.

    The seed kept memory in a ``dict[int, int]`` — every load/store paid a
    hash lookup.  This class keeps the dense address range
    ``[0, capacity)`` in a flat list (zero-default, like the dict) and
    spills anything else — negative addresses included — to a dict, so *no
    address aliases another*: address ``-1`` is a distinct word, never the
    last array slot.

    All coercion happens once, at this boundary: addresses are normalised
    with ``int()`` and stored values are wrapped to signed 32-bit, so
    ``LDR``/``STR``/:meth:`load` agree on what a word is no matter which
    path wrote it (the seed re-signed values in ``load_memory`` but stored
    ``STR`` operands raw).
    """

    __slots__ = ("_words", "_spill", "capacity")

    #: Largest dense backing array a bulk load may grow to (words).  A
    #: load at a base beyond this spills sparsely instead — the seed dict
    #: stored one entry for ``load_memory(2**30, [1])`` and so do we,
    #: rather than allocating gigabytes of zeros.
    MAX_DENSE_WORDS = 1 << 22

    def __init__(self, capacity: int = 1 << 16) -> None:
        self.capacity = int(capacity)
        self._words = [0] * self.capacity
        self._spill: dict[int, int] = {}

    def read(self, addr: int) -> int:
        """Read one word (0 if never written)."""
        addr = int(addr)
        if 0 <= addr < self.capacity:
            return self._words[addr]
        return self._spill.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        """Write one word; the value is wrapped to signed 32-bit here."""
        addr = int(addr)
        value = _to_signed(int(value))
        if 0 <= addr < self.capacity:
            self._words[addr] = value
        else:
            self._spill[addr] = value

    def load(self, base: int, values) -> None:
        """Bulk-initialise ``values`` at ``base``, growing the dense array
        so bulk-loaded regions (the input sample block) never spill.
        Loads beyond :attr:`MAX_DENSE_WORDS` stay sparse."""
        base = int(base)
        end = base + len(values)
        if base >= 0 and self.capacity < end <= self.MAX_DENSE_WORDS:
            self._grow(end)
        for i, v in enumerate(values):
            self.write(base + i, v)

    def _grow(self, minimum: int) -> None:
        cap = self.capacity
        while cap < minimum:
            cap *= 2
        self._words.extend([0] * (cap - self.capacity))
        self.capacity = cap
        # re-home spill entries the grown array now covers
        for addr in [a for a in self._spill if 0 <= a < cap]:
            self._words[addr] = self._spill.pop(addr)

    def region(self, base: int, count: int) -> list[int]:
        """A dense slice ``[base, base + count)`` as a list of words."""
        base = int(base)
        if base >= 0 and base + count <= self.capacity:
            return self._words[base : base + count]
        return [self.read(base + i) for i in range(count)]

    def nonzero_items(self) -> dict[int, int]:
        """``{addr: word}`` for every non-zero word (test equivalence)."""
        out = {a: v for a, v in enumerate(self._words) if v}
        out.update({a: v for a, v in self._spill.items() if v})
        return out

    # mapping-flavoured conveniences for callers that treated the seed
    # memory as a dict
    def get(self, addr: int, default: int = 0) -> int:
        addr = int(addr)
        if 0 <= addr < self.capacity:
            return self._words[addr]
        return self._spill.get(addr, default)

    def __getitem__(self, addr: int) -> int:
        return self.read(addr)

    def __setitem__(self, addr: int, value: int) -> None:
        self.write(addr, value)


@dataclass
class ExecutionStats:
    """Counters accumulated by a run."""

    instructions: int = 0
    cycles: int = 0
    region_instructions: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    region_cycles: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def cycles_fraction(self, region: str) -> float:
        """Fraction of all cycles spent in ``region``."""
        if self.cycles == 0:
            return 0.0
        return self.region_cycles.get(region, 0) / self.cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the run."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions


class CPU:
    """Executes programs; memory is word-addressed and zero-default."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.regs = [0] * 16
        self.flag_n = False
        self.flag_z = False
        self.memory = WordMemory()
        self.pc = 0
        self.halted = False
        self.stats = ExecutionStats()

    # ------------------------------------------------------------- memory
    def load_memory(self, base: int, values: list[int]) -> None:
        """Bulk-initialise memory at ``base``."""
        self.memory.load(base, values)

    def read_memory(self, addr: int) -> int:
        """Read one word (0 if never written)."""
        return self.memory.read(addr)

    # ------------------------------------------------------------ operands
    def _op2(self, instr: Instruction) -> int:
        return self.regs[instr.op2.value] if instr.op2.is_reg else instr.op2.value

    def _set_flags(self, result: int) -> None:
        self.flag_z = result == 0
        self.flag_n = result < 0

    # ------------------------------------------------------------- running
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            raise ExecutionError("CPU is halted")
        if not 0 <= self.pc < len(self.program):
            raise ExecutionError(f"pc {self.pc} outside program")
        instr = self.program.instructions[self.pc]
        region = self.program.region_of(self.pc)
        taken = False
        next_pc = self.pc + 1
        m = instr.mnemonic

        if m in BRANCHES:
            taken = BRANCHES[m](self.flag_n, self.flag_z)
            if taken:
                next_pc = instr.target
        elif m is Mnemonic.HALT:
            self.halted = True
        elif m is Mnemonic.NOP:
            pass
        elif m is Mnemonic.CMP:
            self._set_flags(_to_signed(self.regs[instr.rn] - self._op2(instr)))
        elif m in (Mnemonic.MOV, Mnemonic.MVN):
            v = self._op2(instr)
            self.regs[instr.rd] = _to_signed(~v if m is Mnemonic.MVN else v)
        elif m is Mnemonic.MUL:
            self.regs[instr.rd] = _to_signed(self.regs[instr.rn] * self._op2(instr))
        elif m is Mnemonic.MLA:
            self.regs[instr.rd] = _to_signed(
                self.regs[instr.rn] * self._op2(instr) + self.regs[instr.ra]
            )
        elif m is Mnemonic.LDR:
            addr = self.regs[instr.rn] + (0 if instr.post_inc else self._op2(instr))
            self.regs[instr.rd] = self.read_memory(addr)
            if instr.post_inc:
                self.regs[instr.rn] = _to_signed(
                    self.regs[instr.rn] + self._op2(instr)
                )
        elif m is Mnemonic.STR:
            addr = self.regs[instr.rn] + (0 if instr.post_inc else self._op2(instr))
            self.memory.write(addr, self.regs[instr.rd])
            if instr.post_inc:
                self.regs[instr.rn] = _to_signed(
                    self.regs[instr.rn] + self._op2(instr)
                )
        else:
            a = self.regs[instr.rn]
            b = self._op2(instr)
            if m in (Mnemonic.ADD, Mnemonic.ADDS):
                r = a + b
            elif m in (Mnemonic.SUB, Mnemonic.SUBS):
                r = a - b
            elif m is Mnemonic.RSB:
                r = b - a
            elif m is Mnemonic.AND:
                r = (a & _WORD_MASK) & (b & _WORD_MASK)
            elif m is Mnemonic.ORR:
                r = (a & _WORD_MASK) | (b & _WORD_MASK)
            elif m is Mnemonic.EOR:
                r = (a & _WORD_MASK) ^ (b & _WORD_MASK)
            elif m is Mnemonic.LSL:
                r = (a & _WORD_MASK) << (b & 31)
            elif m is Mnemonic.LSR:
                r = (a & _WORD_MASK) >> (b & 31)
            elif m is Mnemonic.ASR:
                r = a >> (b & 31)
            else:  # pragma: no cover - exhaustive over Mnemonic
                raise ExecutionError(f"unhandled mnemonic {m}")
            r = _to_signed(r)
            self.regs[instr.rd] = r
            if m in FLAG_SETTERS:
                self._set_flags(r)

        cost = CYCLES[instr.cost_class(taken)]
        self.stats.instructions += 1
        self.stats.cycles += cost
        self.stats.region_instructions[region] += 1
        self.stats.region_cycles[region] += cost
        self.pc = next_pc

    def run(
        self,
        max_instructions: int = 50_000_000,
        engine: str = "interp",
    ) -> ExecutionStats:
        """Run until HALT; returns the statistics.

        ``engine`` selects the execution strategy — all three produce
        bit-identical registers, memory and statistics:

        - ``"interp"`` — the per-instruction oracle loop (seed behaviour);
        - ``"blocks"`` — the basic-block compiler of
          :mod:`~repro.archs.gpp.engine`;
        - ``"auto"`` — the vectorised DDC kernel when the program carries
          :mod:`~repro.archs.gpp.codegen` metadata, else ``"blocks"``.
        """
        if engine == "auto":
            from .ddc_kernel import run_ddc_kernel

            if run_ddc_kernel(self, max_instructions):
                return self.stats
            engine = "blocks"
        if engine == "blocks":
            from .engine import CompiledProgram

            compiled = getattr(self.program, "_compiled", None)
            if compiled is None or compiled.program is not self.program:
                compiled = CompiledProgram(self.program)
                self.program._compiled = compiled
            return compiled.run(self, max_instructions)
        if engine != "interp":
            raise ExecutionError(f"unknown engine {engine!r}")
        executed = 0
        while not self.halted:
            if executed >= max_instructions:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions without HALT"
                )
            self.step()
            executed += 1
        return self.stats
