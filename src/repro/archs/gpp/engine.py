"""Block-compiling execution engine for the GPP instruction-set simulator.

The seed interpreter (:meth:`~repro.archs.gpp.cpu.CPU.step`) dispatches one
Python call per instruction — fine as an oracle, far too slow as a model.
This module is the generic half of the fast path:

- :func:`discover_blocks` finds the basic blocks of an assembled
  :class:`~repro.archs.gpp.assembler.Program` (leaders = entry, branch
  targets, fall-throughs of branches);
- :class:`CompiledProgram` specialises every block *once* into straight-line
  Python source (registers become locals, immediates become pre-wrapped
  constants, memory accesses become list indexing) and ``exec``-compiles the
  whole program into a single threaded-dispatch function;
- per-instruction cycle/region accounting is hoisted into **per-block
  counters**: the compiled code only counts block executions and taken
  branches, and :func:`accumulate_block_stats` reconstructs an
  :class:`~repro.archs.gpp.cpu.ExecutionStats` that is bit-identical to the
  interpreter's.

Semantics are the interpreter's, exactly: 32-bit two's-complement wrapping,
the same flag behaviour, the same ``ExecutionError`` conditions.  When the
instruction budget would be exceeded mid-block, or the program counter
leaves the compiled region, execution falls back to single-stepping the
interpreter so truncation errors surface at exactly the same instruction
with exactly the same partial statistics.

The DDC-shaped programs emitted by :mod:`~repro.archs.gpp.codegen` have an
additional, much faster numpy path: see :mod:`~repro.archs.gpp.ddc_kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import ExecutionError
from .assembler import Program
from .cpu import CPU, ExecutionStats, _to_signed
from .isa import BRANCHES, CYCLES, Instruction, Mnemonic

_MASK = 0xFFFFFFFF
_BIAS = 0x80000000


# ------------------------------------------------------------ basic blocks
@dataclass
class BasicBlock:
    """One straight-line run of instructions.

    ``start``/``end`` delimit ``program.instructions[start:end]``; the last
    instruction may be a branch or HALT (the terminator).  Static per-block
    cost tables let the runtime count block executions instead of
    instructions.
    """

    index: int
    start: int
    end: int  # exclusive
    #: successor pc when the terminator is not taken / absent
    fallthrough: int
    #: branch target pc (branches only)
    target: int | None = None
    terminator: Mnemonic | None = None
    n_instr: int = 0
    base_cycles: int = 0  # with branches priced as not-taken
    taken_extra: int = 0
    branch_region: str | None = None
    #: region -> (instructions, not-taken cycles)
    region_costs: dict[str, tuple[int, int]] = field(default_factory=dict)


def discover_blocks(program: Program) -> list[BasicBlock]:
    """Partition ``program`` into basic blocks (in program order)."""
    n = len(program)
    leaders = {0}
    for pc, instr in enumerate(program.instructions):
        if instr.mnemonic in BRANCHES:
            leaders.add(instr.target)
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif instr.mnemonic is Mnemonic.HALT and pc + 1 < n:
            leaders.add(pc + 1)
    ordered = sorted(leaders)
    blocks: list[BasicBlock] = []
    for bi, start in enumerate(ordered):
        limit = ordered[bi + 1] if bi + 1 < len(ordered) else n
        end = start
        terminator = None
        target = None
        while end < limit:
            instr = program.instructions[end]
            end += 1
            if instr.mnemonic in BRANCHES or instr.mnemonic is Mnemonic.HALT:
                terminator = instr.mnemonic
                target = instr.target if instr.mnemonic in BRANCHES else None
                break
        blk = BasicBlock(bi, start, end, fallthrough=end,
                         terminator=terminator, target=target)
        _price_block(program, blk)
        blocks.append(blk)
    return blocks


def _price_block(program: Program, blk: BasicBlock) -> None:
    """Fill the static instruction/cycle/region tables of ``blk``."""
    costs: dict[str, list[int]] = {}
    for pc in range(blk.start, blk.end):
        instr = program.instructions[pc]
        region = program.region_of(pc)
        cyc = CYCLES[instr.cost_class(False)]
        entry = costs.setdefault(region, [0, 0])
        entry[0] += 1
        entry[1] += cyc
        blk.n_instr += 1
        blk.base_cycles += cyc
        if instr.mnemonic in BRANCHES:
            blk.taken_extra = (
                CYCLES["branch_taken"] - CYCLES["branch_not_taken"]
            )
            blk.branch_region = region
    blk.region_costs = {r: (i, c) for r, (i, c) in costs.items()}


def accumulate_block_stats(
    stats: ExecutionStats,
    blocks: list[BasicBlock],
    counts: list[int],
    takens: list[int],
) -> None:
    """Fold per-block execution counters into ``stats``.

    Bit-identical to per-instruction accounting because every instruction's
    cost class and region are static; only branch-taken cycles vary, and
    those are counted separately per block.
    """
    for blk, count, taken in zip(blocks, counts, takens):
        if not count:
            continue
        stats.instructions += count * blk.n_instr
        stats.cycles += count * blk.base_cycles + taken * blk.taken_extra
        for region, (ri, rc) in blk.region_costs.items():
            stats.region_instructions[region] += count * ri
            stats.region_cycles[region] += count * rc
        if taken and blk.branch_region is not None:
            stats.region_cycles[blk.branch_region] += taken * blk.taken_extra


# ------------------------------------------------------------- compilation
def _wrap(expr: str) -> str:
    """Source for signed 32-bit wrapping of ``expr``."""
    return f"(((%s) + {_BIAS} & {_MASK}) - {_BIAS})" % expr


_COND = {
    Mnemonic.B: None,
    Mnemonic.BEQ: "fz",
    Mnemonic.BNE: "not fz",
    Mnemonic.BGT: "not fz and not fn",
    Mnemonic.BLT: "fn",
    Mnemonic.BGE: "not fn",
    Mnemonic.BLE: "fz or fn",
}


def _op2_expr(instr: Instruction) -> str:
    if instr.op2.is_reg:
        return f"r{instr.op2.value}"
    return str(_to_signed(instr.op2.value))


def _emit(instr: Instruction) -> list[str]:
    """Python statements for one non-terminator instruction.

    Register locals always hold *wrapped signed* values, so wrapping is
    emitted only where a result can leave the 32-bit signed range — the
    same places the interpreter calls ``_to_signed``.
    """
    m = instr.mnemonic
    d, n = f"r{instr.rd}", f"r{instr.rn}"
    b = _op2_expr(instr)
    if m is Mnemonic.NOP:
        return []
    if m is Mnemonic.MOV:
        return [f"{d} = {b}"]
    if m is Mnemonic.MVN:
        if instr.op2.is_reg:
            return [f"{d} = ~{b}"]  # ~x of a wrapped value stays in range
        return [f"{d} = {_to_signed(~_to_signed(instr.op2.value))}"]
    if m is Mnemonic.CMP:
        return [f"_t = {_wrap(f'{n} - ({b})')}",
                "fz = _t == 0", "fn = _t < 0"]
    if m in (Mnemonic.ADD, Mnemonic.ADDS):
        out = [f"{d} = {_wrap(f'{n} + ({b})')}"]
    elif m in (Mnemonic.SUB, Mnemonic.SUBS):
        out = [f"{d} = {_wrap(f'{n} - ({b})')}"]
    elif m is Mnemonic.RSB:
        out = [f"{d} = {_wrap(f'({b}) - {n}')}"]
    elif m in (Mnemonic.AND, Mnemonic.ORR, Mnemonic.EOR):
        py = {Mnemonic.AND: "&", Mnemonic.ORR: "|", Mnemonic.EOR: "^"}[m]
        bu = (f"({b} & {_MASK})" if instr.op2.is_reg
              else str(_to_signed(instr.op2.value) & _MASK))
        out = [f"{d} = {_wrap(f'({n} & {_MASK}) {py} {bu}')}"]
    elif m is Mnemonic.LSL:
        sh = f"({b} & 31)" if instr.op2.is_reg else str(
            _to_signed(instr.op2.value) & 31)
        out = [f"{d} = {_wrap(f'({n} & {_MASK}) << {sh}')}"]
    elif m is Mnemonic.LSR:
        sh = f"({b} & 31)" if instr.op2.is_reg else str(
            _to_signed(instr.op2.value) & 31)
        out = [f"{d} = {_wrap(f'({n} & {_MASK}) >> {sh}')}"]
    elif m is Mnemonic.ASR:
        sh = f"({b} & 31)" if instr.op2.is_reg else str(
            _to_signed(instr.op2.value) & 31)
        out = [f"{d} = {n} >> {sh}"]  # arithmetic shift keeps the range
    elif m is Mnemonic.MUL:
        out = [f"{d} = {_wrap(f'{n} * ({b})')}"]
    elif m is Mnemonic.MLA:
        out = [f"{d} = {_wrap(f'{n} * ({b}) + r{instr.ra}')}"]
    elif m in (Mnemonic.LDR, Mnemonic.STR):
        # Address arithmetic uses the *raw* immediate, like the
        # interpreter's `regs[rn] + op2.value` (no wrapping — a >= 2**31
        # offset addresses a different word than its wrapped twin).  The
        # post-increment base update does wrap, where raw and wrapped
        # immediates are congruent.
        raw = b if instr.op2.is_reg else str(instr.op2.value)
        addr = n if instr.post_inc else f"{n} + ({raw})"
        if m is Mnemonic.LDR:
            out = [f"_a = {addr}",
                   f"{d} = _mw[_a] if 0 <= _a < _mc else _mrd(_a)"]
        else:
            out = [f"_a = {addr}",
                   "if 0 <= _a < _mc:",
                   f"    _mw[_a] = {d}",
                   "else:",
                   f"    _mwr(_a, {d})"]
        if instr.post_inc:
            out.append(f"{n} = {_wrap(f'{n} + ({b})')}")
    else:  # pragma: no cover - exhaustive over Mnemonic
        raise ExecutionError(f"cannot compile mnemonic {m}")
    if m in (Mnemonic.ADDS, Mnemonic.SUBS):
        out += [f"fz = {d} == 0", f"fn = {d} < 0"]
    return out


class CompiledProgram:
    """A program compiled to one threaded-dispatch Python function."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.blocks = discover_blocks(program)
        self._leader_to_block = {b.start: b.index for b in self.blocks}
        self._fn = self._build()

    # ------------------------------------------------------------- codegen
    def _build(self):
        pc_to_block = self._leader_to_block
        n = len(self.program)
        lines = [
            "def _run(cpu, entry, budget, executed, counts, takens):",
            "    mem = cpu.memory",
            "    _mw = mem._words; _mc = mem.capacity",
            "    _mrd = mem.read; _mwr = mem.write",
            "    (r0, r1, r2, r3, r4, r5, r6, r7,"
            " r8, r9, r10, r11, r12, r13, r14, r15) = cpu.regs",
            "    fn = cpu.flag_n; fz = cpu.flag_z",
            "    b = entry",
            "    pc = 0",
            "    halted = False",
            "    while True:",
        ]
        ind8 = " " * 8
        ind12 = " " * 12
        for blk in self.blocks:
            kw = "if" if blk.index == 0 else "elif"
            lines.append(f"{ind8}{kw} b == {blk.index}:")
            lines.append(
                f"{ind12}if executed + {blk.n_instr} > budget:"
            )
            lines.append(f"{ind12}    pc = {blk.start}; break")
            lines.append(f"{ind12}executed += {blk.n_instr}")
            lines.append(f"{ind12}counts[{blk.index}] += 1")
            body = range(
                blk.start,
                blk.end - (1 if blk.terminator is not None else 0),
            )
            for pc in body:
                for stmt in _emit(self.program.instructions[pc]):
                    lines.append(ind12 + stmt)
            lines.extend(self._emit_terminator(blk, pc_to_block, n, ind12))
        lines += [
            "        else:",
            "            raise RuntimeError('bad block id')",  # unreachable
            "    cpu.regs[:] = (r0, r1, r2, r3, r4, r5, r6, r7,"
            " r8, r9, r10, r11, r12, r13, r14, r15)",
            "    cpu.flag_n = fn; cpu.flag_z = fz",
            "    cpu.pc = pc",
            "    cpu.halted = halted",
            "    return executed",
        ]
        src = "\n".join(lines)
        ns: dict = {}
        exec(compile(src, f"<gpp-compiled:{id(self)}>", "exec"), ns)
        self.source = src
        return ns["_run"]

    def _emit_terminator(self, blk, pc_to_block, n, ind) -> list[str]:
        def goto(pc: int) -> str:
            if pc >= n:
                # falls off the program end: sync and let the interpreter
                # raise its "pc outside program" at the same point
                return f"pc = {pc}; break"
            bid = pc_to_block.get(pc)
            if bid is None:  # pragma: no cover - leaders cover all entries
                return f"pc = {pc}; break"
            return f"b = {bid}"

        out: list[str] = []
        if blk.terminator is None:
            out.append(ind + goto(blk.fallthrough))
            return out
        if blk.terminator is Mnemonic.HALT:
            out.append(f"{ind}halted = True; pc = {blk.end}; break")
            return out
        cond = _COND[blk.terminator]
        if cond is None:  # unconditional B
            out.append(f"{ind}takens[{blk.index}] += 1")
            out.append(ind + goto(blk.target))
            return out
        out.append(f"{ind}if {cond}:")
        out.append(f"{ind}    takens[{blk.index}] += 1")
        out.append(f"{ind}    " + goto(blk.target))
        out.append(f"{ind}else:")
        out.append(f"{ind}    " + goto(blk.fallthrough))
        return out

    # -------------------------------------------------------------- running
    def run(self, cpu: CPU, max_instructions: int) -> ExecutionStats:
        """Run ``cpu`` to HALT; interpreter-identical semantics."""
        counts = [0] * len(self.blocks)
        takens = [0] * len(self.blocks)
        executed = 0
        try:
            while not cpu.halted:
                if executed >= max_instructions:
                    raise ExecutionError(
                        f"exceeded {max_instructions} instructions "
                        "without HALT"
                    )
                entry = self._leader_to_block.get(cpu.pc)
                if entry is not None:
                    done = self._fn(
                        cpu, entry, max_instructions, executed,
                        counts, takens,
                    )
                    if done > executed:
                        executed = done
                        continue
                # mid-block pc or a block too big for the remaining budget:
                # single-step the oracle so errors and truncation are
                # bit-identical (step() maintains stats itself, and block
                # counters never cover interpreted instructions)
                cpu.step()
                executed += 1
        finally:
            accumulate_block_stats(cpu.stats, self.blocks, counts, takens)
        return cpu.stats
