"""ARM922T device model and the GPP energy arithmetic of Section 4.2.2.

The paper's chain of reasoning:

1. profile the in-phase DDC -> 4.870e9 cycles/s at the 64.512 MHz input;
2. double for the quadrature rail -> a 9740 MHz clock requirement;
3. the ARM922T core + caches draw 0.25 mW/MHz, so the (hypothetical)
   real-time DDC costs 9740 * 0.25 = 2435 mW;
4. note that one ARM9 (<= 250 MHz) cannot actually sustain the task.

:class:`ARM9Model` reproduces those steps on top of our own profiler run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config import DDCConfig, REFERENCE_DDC
from ..base import ArchitectureModel, Flexibility, ImplementationReport
from ...energy.technology import TECH_130NM, TechnologyNode
from .profiler import RegionProfile, profile_ddc


@dataclass(frozen=True)
class ARM9Spec:
    """Datasheet constants of the ARM922T as quoted in Section 4.1/4.2.2."""

    name: str = "ARM922T"
    technology: TechnologyNode = TECH_130NM
    max_clock_hz: float = 250e6          # "can perform up to 250 MIPS"
    power_mw_per_mhz: float = 0.25       # core + caches, memory excluded
    cache_kb: int = 8                    # two small caches of 8 KB
    area_mm2: float = 3.2                # Table 7


#: The device the paper uses.
ARM922T = ARM9Spec()


class ARM9Model(ArchitectureModel):
    """GPP architecture model: profile-driven clock and power estimation."""

    name = "ARM922T"

    def __init__(
        self,
        spec: ARM9Spec = ARM922T,
        spill_slots: bool = True,
        n_samples: int | None = None,
    ) -> None:
        self.spec = spec
        self.spill_slots = spill_slots
        self.n_samples = n_samples
        self._last_profile: RegionProfile | None = None

    def profile(self, config: DDCConfig = REFERENCE_DDC) -> RegionProfile:
        """Run (and cache) the instruction-level profile for ``config``."""
        prof = profile_ddc(
            config, n_samples=self.n_samples, spill_slots=self.spill_slots
        )
        self._last_profile = prof
        return prof

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        """Section 4.2's arithmetic on our own profiled cycle counts."""
        prof = self.profile(config)
        required_hz = prof.required_clock_hz
        power_w = required_hz / 1e6 * self.spec.power_mw_per_mhz * 1e-3
        feasible = required_hz <= self.spec.max_clock_hz
        return ImplementationReport(
            architecture=self.spec.name,
            technology=self.spec.technology,
            clock_hz=required_hz,
            power_w=power_w,
            area_mm2=self.spec.area_mm2,
            flexibility=Flexibility.PROGRAMMABLE,
            feasible=feasible,
            notes=(
                f"{prof.instructions_per_second / 1e6:.0f} MIPS, "
                f"{prof.cycles_per_second / 1e9:.3f} Gcycles/s for the I rail; "
                "x2 for I+Q; 0.25 mW/MHz core+caches, memory access excluded"
            ),
        )

    def speedup_needed(self, config: DDCConfig = REFERENCE_DDC) -> float:
        """How many ARM9s-worth of clock the task needs (paper: ~39x)."""
        prof = self._last_profile or self.profile(config)
        return prof.required_clock_hz / self.spec.max_clock_hz
