"""ARM922T device model and the GPP energy arithmetic of Section 4.2.2.

The paper's chain of reasoning:

1. profile the in-phase DDC -> 4.870e9 cycles/s at the 64.512 MHz input;
2. double for the quadrature rail -> a 9740 MHz clock requirement;
3. the ARM922T core + caches draw 0.25 mW/MHz, so the (hypothetical)
   real-time DDC costs 9740 * 0.25 = 2435 mW;
4. note that one ARM9 (<= 250 MHz) cannot actually sustain the task.

:class:`ARM9Model` reproduces those steps on top of our own profiler run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...config import DDCConfig, REFERENCE_DDC
from ..base import (
    ArchitectureModel,
    BatchImplementationReport,
    Flexibility,
    ImplementationReport,
)
from ...energy.technology import TECH_130NM, TechnologyNode
from ...errors import ConfigurationError, MappingError
from .profiler import RegionProfile, profile_ddc, profile_ddc_analytic


@dataclass(frozen=True)
class ARM9Spec:
    """Datasheet constants of the ARM922T as quoted in Section 4.1/4.2.2."""

    name: str = "ARM922T"
    technology: TechnologyNode = TECH_130NM
    max_clock_hz: float = 250e6          # "can perform up to 250 MIPS"
    power_mw_per_mhz: float = 0.25       # core + caches, memory excluded
    cache_kb: int = 8                    # two small caches of 8 KB
    area_mm2: float = 3.2                # Table 7


#: The device the paper uses.
ARM922T = ARM9Spec()


class ARM9Model(ArchitectureModel):
    """GPP architecture model: profile-driven clock and power estimation."""

    name = "ARM922T"

    def __init__(
        self,
        spec: ARM9Spec = ARM922T,
        spill_slots: bool = True,
        n_samples: int | None = None,
    ) -> None:
        self.spec = spec
        self.spill_slots = spill_slots
        self.n_samples = n_samples
        self._profiled: tuple[DDCConfig, RegionProfile] | None = None

    def profile(self, config: DDCConfig = REFERENCE_DDC) -> RegionProfile:
        """Run (and memoise) the instruction-level profile for ``config``.

        The memo is config-keyed: asking for a different configuration
        always re-profiles (a bare last-run cache would hand back another
        configuration's answer).
        """
        if self._profiled is not None and self._profiled[0] == config:
            return self._profiled[1]
        prof = profile_ddc(
            config, n_samples=self.n_samples, spill_slots=self.spill_slots
        )
        self._profiled = (config, prof)
        return prof

    def _report(self, prof: RegionProfile) -> ImplementationReport:
        """Section 4.2's arithmetic on a profile's cycle counts.

        Shared by the scalar and batched paths so their reports agree bit
        for bit by construction.
        """
        required_hz = prof.required_clock_hz
        power_w = required_hz / 1e6 * self.spec.power_mw_per_mhz * 1e-3
        feasible = required_hz <= self.spec.max_clock_hz
        return ImplementationReport(
            architecture=self.spec.name,
            technology=self.spec.technology,
            clock_hz=required_hz,
            power_w=power_w,
            area_mm2=self.spec.area_mm2,
            flexibility=Flexibility.PROGRAMMABLE,
            feasible=feasible,
            notes=(
                f"{prof.instructions_per_second / 1e6:.0f} MIPS, "
                f"{prof.cycles_per_second / 1e9:.3f} Gcycles/s for the I rail; "
                "x2 for I+Q; 0.25 mW/MHz core+caches, memory access excluded"
            ),
        )

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        """Section 4.2's arithmetic on our own profiled cycle counts."""
        return self._report(self.profile(config))

    def implement_batch(
        self, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """Batched :meth:`implement` over a configuration axis.

        Rides the closed-form analytic profile
        (:func:`~repro.archs.gpp.profiler.profile_ddc_analytic`): the
        generated program's statistics follow from counter algebra, so no
        per-configuration instruction-set simulation runs on the batch
        path.  Configurations the analytic profile cannot serve
        (non-reference CIC orders, budget-exceeding runs) fall back to
        the scalar :meth:`implement`, so every report — and every mapping
        error — is bit-identical to the scalar loop.
        """
        reports: list[ImplementationReport | None] = []
        errors: list[Exception | None] = []
        for config in configs:
            prof = profile_ddc_analytic(
                config, n_samples=self.n_samples,
                spill_slots=self.spill_slots,
            )
            try:
                report = (
                    self._report(prof) if prof is not None
                    else self.implement(config)
                )
                reports.append(report)
                errors.append(None)
            except (ConfigurationError, MappingError) as exc:
                reports.append(None)
                errors.append(exc)
        return BatchImplementationReport.from_reports(
            self.spec.name, reports, errors
        )

    def cache_key(self) -> tuple:
        return (
            type(self).__qualname__, self.spec, self.spill_slots,
            self.n_samples,
        )

    def speedup_needed(self, config: DDCConfig = REFERENCE_DDC) -> float:
        """How many ARM9s-worth of clock the task needs (paper: ~39x).

        Config-correct by construction: rides the analytic profile (same
        clock requirement as an executed run) and only falls back to a
        full profile of *this* configuration when the analytic path does
        not apply.
        """
        prof = profile_ddc_analytic(
            config, n_samples=self.n_samples, spill_slots=self.spill_slots
        )
        if prof is None:
            prof = self.profile(config)
        return prof.required_clock_hz / self.spec.max_clock_hz
