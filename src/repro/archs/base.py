"""Common interface of the five architecture models.

The paper compares architectures on *energy consumption, flexibility and
performance* for one fixed task.  :class:`ArchitectureModel` captures the
quantities every model must produce for the Table 7 comparison; the
:class:`ImplementationReport` is the row each model contributes.

Two evaluation paths exist per model and are **bit-identical**:

- the scalar path (:meth:`ArchitectureModel.implement`) — one
  configuration at a time, the seed behaviour and the oracle;
- the batched path (:meth:`ArchitectureModel.implement_batch`) — a whole
  sequence of configurations in one call, returning a struct-of-arrays
  :class:`BatchImplementationReport`.  The base-class implementation is
  a scalar loop (:meth:`ArchitectureModel.implement_batch_scalar`);
  every concrete model overrides it with a vectorised version whose
  reports — including error behaviour on unmappable configurations —
  match the scalar path bit for bit (pinned by the Hypothesis suite in
  ``tests/test_evaluator_batch.py``).
"""

from __future__ import annotations

import enum
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..config import DDCConfig
from ..energy.technology import TechnologyNode
from ..errors import ConfigurationError, MappingError


class Flexibility(enum.IntEnum):
    """Coarse flexibility ranking used in the scenario analysis (Section 7).

    Higher = more able to be re-purposed when the DDC is idle.
    """

    FIXED_FUNCTION = 0       # ASIC: parameters only
    RECONFIGURABLE = 1       # FPGA / coarse-grained reconfigurable
    PROGRAMMABLE = 2         # GPP: arbitrary software


@dataclass(frozen=True)
class ImplementationReport:
    """One architecture's realisation of a DDC configuration.

    Attributes
    ----------
    architecture:
        Display name as used in the paper's Table 7.
    technology:
        Native technology node of the published figure.
    clock_hz:
        Clock frequency required to sustain the DDC in real time.
    power_w:
        Power drawn at that clock in the native technology.
    area_mm2:
        Core area where the paper reports one (else ``None``).
    flexibility:
        Coarse reconfigurability class.
    feasible:
        Whether a single device can actually sustain real time (False for
        the ARM, which would need a 9.74 GHz clock).
    notes:
        Free-form provenance notes (datasheet, estimation method...).
    """

    architecture: str
    technology: TechnologyNode
    clock_hz: float
    power_w: float
    area_mm2: float | None = None
    flexibility: Flexibility = Flexibility.FIXED_FUNCTION
    feasible: bool = True
    notes: str = ""

    @property
    def power_mw(self) -> float:
        """Power in milliwatts (the unit of Table 7)."""
        return self.power_w * 1e3

    @property
    def energy_per_output_sample_j(self) -> float:
        """Energy to produce one 24 kHz output sample (paper's implicit
        figure of merit: power at fixed throughput)."""
        return self.power_w / 24_000.0


@dataclass(frozen=True)
class BatchImplementationReport:
    """One architecture's realisation of a whole configuration batch.

    Struct-of-arrays twin of :class:`ImplementationReport`: ``power_w``,
    ``clock_hz``, ``area_mm2`` and ``feasible`` are numpy arrays with one
    entry per input configuration.  Configurations the model cannot map
    at all (the scalar path raises :class:`~repro.errors.ConfigurationError`
    or :class:`~repro.errors.MappingError`) are marked unmappable: their
    array entries are ``nan``/``False``, the scalar-identical exception is
    stored in ``errors``, and :meth:`report_at` re-raises it.

    ``reports`` keeps the materialised scalar-identical
    :class:`ImplementationReport` per mappable configuration (``None``
    where unmappable) — the batch contract is that ``reports[i]`` equals
    what ``model.implement(configs[i])`` returns, bit for bit.
    """

    architecture: str
    power_w: "np.ndarray"
    clock_hz: "np.ndarray"
    area_mm2: "np.ndarray"
    feasible: "np.ndarray"
    mappable: "np.ndarray"
    reports: tuple[ImplementationReport | None, ...]
    errors: tuple[Exception | None, ...]

    def __len__(self) -> int:
        return len(self.reports)

    def report_at(self, index: int) -> ImplementationReport:
        """The scalar-identical report for one configuration.

        Raises the stored mapping error where the scalar
        ``implement(configs[index])`` would have raised.
        """
        err = self.errors[index]
        if err is not None:
            raise err
        report = self.reports[index]
        assert report is not None
        return report

    @classmethod
    def from_reports(
        cls,
        architecture: str,
        reports: Sequence[ImplementationReport | None],
        errors: Sequence[Exception | None] | None = None,
    ) -> "BatchImplementationReport":
        """Assemble the struct-of-arrays view from materialised reports."""
        import numpy as np

        if errors is None:
            errors = [None] * len(reports)
        if len(errors) != len(reports):
            raise ConfigurationError("reports and errors must align")
        nan = math.nan
        return cls(
            architecture=architecture,
            power_w=np.array(
                [nan if r is None else r.power_w for r in reports]
            ),
            clock_hz=np.array(
                [nan if r is None else r.clock_hz for r in reports]
            ),
            area_mm2=np.array(
                [
                    nan if r is None or r.area_mm2 is None else r.area_mm2
                    for r in reports
                ]
            ),
            feasible=np.array(
                [False if r is None else r.feasible for r in reports],
                dtype=bool,
            ),
            mappable=np.array([r is not None for r in reports], dtype=bool),
            reports=tuple(reports),
            errors=tuple(errors),
        )


class ArchitectureModel(ABC):
    """An executable architecture that can realise a DDC configuration."""

    #: Display name used in tables.
    name: str = "abstract"

    @abstractmethod
    def implement(self, config: DDCConfig) -> ImplementationReport:
        """Realise ``config`` and report clock/power/area/feasibility."""

    def implement_batch(
        self, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """Realise a whole batch of configurations in one call.

        The default is the scalar loop
        (:meth:`implement_batch_scalar`); concrete models override it
        with a vectorised path that is bit-identical, including the
        mapping errors recorded for unmappable configurations.
        """
        return self.implement_batch_scalar(configs)

    def implement_batch_scalar(
        self, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """The scalar-loop oracle for :meth:`implement_batch`.

        One :meth:`implement` call per configuration;
        :class:`~repro.errors.ConfigurationError` /
        :class:`~repro.errors.MappingError` mark the configuration
        unmappable instead of aborting the batch.  Kept as a separate
        method so benches and equivalence tests can always reach the
        scalar loop even on models that override :meth:`implement_batch`.
        """
        reports: list[ImplementationReport | None] = []
        errors: list[Exception | None] = []
        for config in configs:
            try:
                reports.append(self.implement(config))
                errors.append(None)
            except (ConfigurationError, MappingError) as exc:
                reports.append(None)
                errors.append(exc)
        return BatchImplementationReport.from_reports(
            self.name, reports, errors
        )

    def supports(self, config: DDCConfig) -> bool:
        """Whether the architecture can realise ``config`` at all.

        Default: everything is supported; ASIC models override this with
        their datasheet constraints.
        """
        return True

    def cache_key(self) -> tuple:
        """Hashable identity for report caching.

        Must distinguish model instances whose reports could differ —
        models with constructor knobs (device, toggle rates, operating
        point...) extend the tuple with them.
        """
        return (type(self).__qualname__, self.name)
