"""Common interface of the five architecture models.

The paper compares architectures on *energy consumption, flexibility and
performance* for one fixed task.  :class:`ArchitectureModel` captures the
quantities every model must produce for the Table 7 comparison; the
:class:`ImplementationReport` is the row each model contributes.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..config import DDCConfig
from ..energy.technology import TechnologyNode


class Flexibility(enum.IntEnum):
    """Coarse flexibility ranking used in the scenario analysis (Section 7).

    Higher = more able to be re-purposed when the DDC is idle.
    """

    FIXED_FUNCTION = 0       # ASIC: parameters only
    RECONFIGURABLE = 1       # FPGA / coarse-grained reconfigurable
    PROGRAMMABLE = 2         # GPP: arbitrary software


@dataclass(frozen=True)
class ImplementationReport:
    """One architecture's realisation of a DDC configuration.

    Attributes
    ----------
    architecture:
        Display name as used in the paper's Table 7.
    technology:
        Native technology node of the published figure.
    clock_hz:
        Clock frequency required to sustain the DDC in real time.
    power_w:
        Power drawn at that clock in the native technology.
    area_mm2:
        Core area where the paper reports one (else ``None``).
    flexibility:
        Coarse reconfigurability class.
    feasible:
        Whether a single device can actually sustain real time (False for
        the ARM, which would need a 9.74 GHz clock).
    notes:
        Free-form provenance notes (datasheet, estimation method...).
    """

    architecture: str
    technology: TechnologyNode
    clock_hz: float
    power_w: float
    area_mm2: float | None = None
    flexibility: Flexibility = Flexibility.FIXED_FUNCTION
    feasible: bool = True
    notes: str = ""

    @property
    def power_mw(self) -> float:
        """Power in milliwatts (the unit of Table 7)."""
        return self.power_w * 1e3

    @property
    def energy_per_output_sample_j(self) -> float:
        """Energy to produce one 24 kHz output sample (paper's implicit
        figure of merit: power at fixed throughput)."""
        return self.power_w / 24_000.0


class ArchitectureModel(ABC):
    """An executable architecture that can realise a DDC configuration."""

    #: Display name used in tables.
    name: str = "abstract"

    @abstractmethod
    def implement(self, config: DDCConfig) -> ImplementationReport:
        """Realise ``config`` and report clock/power/area/feasibility."""

    def supports(self, config: DDCConfig) -> bool:
        """Whether the architecture can realise ``config`` at all.

        Default: everything is supported; ASIC models override this with
        their datasheet constraints.
        """
        return True
