"""Vectorised block execution of the Montium DDC schedule.

The stepped :meth:`~repro.archs.montium.tile.MontiumTile.step` resolves
every routing token and executes every ALU bundle one clock at a time —
the oracle.  :func:`process_ddc_block` replays an arbitrary window of the
DDC schedule with numpy instead, state-synced to the tile exactly:

- the three every-cycle ALUs (mixer MACs + CIC2 integrators + address
  generation) become ``cumsum`` chains over the whole window, using the
  same 16-bit wrapping arithmetic (prefix sums commute with wrapping
  modulo 2**16);
- the decimated events (CIC2 comb, CIC5 integrator/comb stages, FIR
  bookkeeping) are located by residue arithmetic on the *absolute* cycle
  number, so a window may start and stop anywhere in the 336-cycle macro
  period — block and stepped execution interleave freely on one tile;
- every piece of tile state the stepped path touches is synced: ``env``
  scalars (including defaultdict key insertion on read), local-memory
  contents/AGU addresses/read/write counters, ALU ``ops_executed`` and
  ``mul_count``, ``busy_cycles`` (so Table 6 occupancy and
  ``alu_utilisation()`` match exactly), outputs and the cycle counter.

The FIR bookkeeping cycles are executed through the tile's own
``_fir_step`` against the real local memories, so that path is shared
with the oracle by construction.

The ordering subtlety the vectorisation must honour: within a cycle the
tile executes ALUs in index order, so ALU0/1 read ``env:x``/``env:x_neg``
written by ALU2 on the *previous* cycle, while ALU3/4 read the CIC2
integrator values ALU0/1 wrote on the *same* cycle.
"""

from __future__ import annotations

import numpy as np

from ...fastpath import (
    delay_chain as _delay,
    wrap16 as _wrap16,
    wrap32 as _wrap32,
)
from .alu import Level2Fn
from .program import TileProgram
from .tile import MontiumTile


def _event_ts(c0: int, n: int, mod: int, residue: int) -> np.ndarray:
    """Local offsets t in [0, n) where (c0 + t) % mod == residue."""
    first = (residue - c0) % mod
    return np.arange(first, n, mod, dtype=np.int64)


def _paired(src_ts: np.ndarray, src_vals: np.ndarray, init: int,
            dst_ts: np.ndarray) -> np.ndarray:
    """Value of a produced stream as read at each consumer cycle.

    Every producer in the DDC schedule runs on an earlier cycle than its
    consumer, so the value read at ``t`` is the one from the latest
    ``src_ts < t`` (``init`` before the first in-window producer).
    """
    idx = np.searchsorted(src_ts, dst_ts, side="left")
    out = np.empty(len(dst_ts), dtype=np.int64)
    out[idx == 0] = init
    nz = idx > 0
    out[nz] = src_vals[idx[nz] - 1]
    return out


def process_ddc_block(tile: MontiumTile, program: TileProgram,
                      cycles: int) -> None:
    """Execute ``cycles`` cycles of the DDC schedule, vectorised.

    Requires ``program.ddc_meta`` (attached by ``build_ddc_schedule``)
    and enough input samples; the caller
    (:meth:`MontiumTile.process_block`) falls back to stepping otherwise.
    """
    meta = program.ddc_meta
    n = int(cycles)
    if n == 0:
        return
    c0 = tile.cycle
    d2, macro = meta.d2, meta.macro
    env = tile.env

    x_in = np.array(
        tile.inputs[tile._in_pos : tile._in_pos + n], dtype=np.int64
    )

    # ------------------------------------------- every-cycle ALUs (0/1/2)
    # ALU0/1 read env:x / env:x_neg one cycle stale (ALU2 runs after them).
    xe = np.empty(n, dtype=np.int64)
    xn = np.empty(n, dtype=np.int64)
    xe[0] = env["env:x"]
    xn[0] = env["env:x_neg"]
    xe[1:] = x_in[:-1]
    xn[1:] = _wrap16(-x_in[:-1])

    luts = {}
    for mem_name, arr in (("mem0_1", "cos"), ("mem1_1", "sin")):
        mem = tile.memories[mem_name]
        addr = (mem.addr + np.arange(n, dtype=np.int64)) % mem.size
        luts[arr] = np.array(mem._data, dtype=np.int64)[addr]
        mem.addr = (mem.addr + n) % mem.size
        mem.reads += n

    # The env-key discipline below mirrors the stepped path exactly: the
    # tile's env is a defaultdict, so *reading* an initial value inserts
    # its key — therefore initial values are only read when the window
    # actually contains an event that would have read them.
    rails = {}
    for rail, x_vec, lut in (("I", xe, luts["cos"]), ("Q", xn, luts["sin"])):
        prod = (x_vec * lut) >> meta.mix_shift
        i1_init = env[f"env:i1_{rail}"]
        i1 = _wrap16(i1_init + np.cumsum(prod))
        # i2[t] accumulates i1 as of the previous cycle
        i1_prev = np.concatenate(([0], np.cumsum(i1[:-1])))
        i2 = _wrap16(env[f"env:i2_{rail}"] + i1_init + i1_prev)
        rails[rail] = {"i1": i1, "i2": i2}

    # --------------------------------------------------- decimated events
    ts_comb = _event_ts(c0, n, d2, 0)
    ts_stage = [_event_ts(c0, n, d2, r) for r in (1, 2, 3, 4)]
    ts_p0 = _event_ts(c0, n, macro, 5)
    ts_p1 = _event_ts(c0, n, macro, 6)
    ts_p2 = _event_ts(c0, n, macro, 7)
    ts_fir = _event_ts(c0, n, macro, 8)
    empty = np.empty(0, dtype=np.int64)

    fir_ops = {
        alu: op for alu, op in program.ops_at(8).items()
        if op.level2 is Level2Fn.FIR_STEP
    }

    for rail in ("I", "Q"):
        st = rails[rail]
        # CIC2 comb: reads i2 updated the same cycle.
        if len(ts_comb):
            a = st["i2"][ts_comb]
            r1 = _wrap16(a - _delay(a, env[f"env:c2d0_{rail}"]))
            c2out = _wrap16(r1 - _delay(r1, env[f"env:c2d1_{rail}"])) \
                >> meta.cic2_out_shift
        else:
            a = r1 = c2out = empty
        st["c2d0"], st["c2d1"], st["c2out"] = a, r1, c2out

        # CIC5 integrators: stage r consumes the previous stage's stream.
        if len(ts_stage[0]):
            x0 = _paired(ts_comb, c2out, env[f"env:c2out_{rail}"],
                         ts_stage[0])
            s0 = _wrap32(env[f"env32:s0_{rail}"] + np.cumsum(x0))
            s1 = _wrap32(env[f"env32:s1_{rail}"] + np.cumsum(s0))
        else:
            s0 = s1 = empty
        st["s0"], st["s1"] = s0, s1
        prev_ts, prev_vals = ts_stage[0], s1
        for r, key in ((1, "s2"), (2, "s3"), (3, "s4")):
            if len(ts_stage[r]):
                vals = _paired(prev_ts, prev_vals,
                               env[f"env32:s{r}_{rail}"], ts_stage[r])
                acc = _wrap32(env[f"env32:{key}_{rail}"] + np.cumsum(vals))
            else:
                acc = empty
            st[key] = acc
            prev_ts, prev_vals = ts_stage[r], acc

        # CIC5 comb: three chained double-stage cycles.
        if len(ts_p0):
            a0 = _paired(ts_stage[3], st["s4"], env[f"env32:s4_{rail}"],
                         ts_p0)
            q1 = _wrap32(a0 - _delay(a0, env[f"env32:d0_{rail}"]))
            t0 = _wrap32(q1 - _delay(q1, env[f"env32:d1_{rail}"]))
        else:
            a0 = q1 = t0 = empty
        if len(ts_p1):
            a1 = _paired(ts_p0, t0, env[f"env32:t0_{rail}"], ts_p1)
            q2 = _wrap32(a1 - _delay(a1, env[f"env32:d2_{rail}"]))
            t1 = _wrap32(q2 - _delay(q2, env[f"env32:d3_{rail}"]))
        else:
            a1 = q2 = t1 = empty
        if len(ts_p2):
            a2 = _paired(ts_p1, t1, env[f"env32:t1_{rail}"], ts_p2)
            c5out = _wrap32(a2 - _delay(a2, env[f"env32:d4_{rail}"])) \
                >> meta.cic5_out_shift
        else:
            a2 = c5out = empty
        st.update(d0=a0, d1=q1, t0=t0, d2_=a1, d3=q2, t1=t1, d4=a2,
                  c5out=c5out)

    # FIR bookkeeping: run the tile's own _fir_step per event so the
    # partial-sum memories, outputs, mul counts and read/write counters
    # follow the oracle path exactly (I then Q, in cycle order).
    if len(ts_fir):
        for rail in ("I", "Q"):
            rails[rail]["fir_in"] = _paired(
                ts_p2, rails[rail]["c5out"], env[f"env:c5out_{rail}"],
                ts_fir,
            )
        for e in range(len(ts_fir)):
            for rail, alu in (("I", 3), ("Q", 4)):
                env[f"env:c5out_{rail}"] = int(rails[rail]["fir_in"][e])
                tile._fir_step(alu, fir_ops[alu])

    # ------------------------------------------------------- state sync
    def final(rail: str, key: str, ts: np.ndarray, env_key: str) -> None:
        if len(ts):
            env[env_key] = int(rails[rail][key][-1])

    env["env:x"] = int(x_in[-1])
    env["env:x_neg"] = int(_wrap16(np.int64(-x_in[-1])))
    for rail in ("I", "Q"):
        env[f"env:i1_{rail}"] = int(rails[rail]["i1"][-1])
        env[f"env:i2_{rail}"] = int(rails[rail]["i2"][-1])
        final(rail, "c2d0", ts_comb, f"env:c2d0_{rail}")
        final(rail, "c2d1", ts_comb, f"env:c2d1_{rail}")
        final(rail, "c2out", ts_comb, f"env:c2out_{rail}")
        for r, key in ((0, "s0"), (0, "s1"), (1, "s2"), (2, "s3"),
                       (3, "s4")):
            final(rail, key, ts_stage[r], f"env32:{key}_{rail}")
        final(rail, "d0", ts_p0, f"env32:d0_{rail}")
        final(rail, "d1", ts_p0, f"env32:d1_{rail}")
        final(rail, "t0", ts_p0, f"env32:t0_{rail}")
        final(rail, "d2_", ts_p1, f"env32:d2_{rail}")
        final(rail, "d3", ts_p1, f"env32:d3_{rail}")
        final(rail, "t1", ts_p1, f"env32:t1_{rail}")
        final(rail, "d4", ts_p2, f"env32:d4_{rail}")
        if len(ts_p2):
            env[f"env:c5out_{rail}"] = int(rails[rail]["c5out"][-1])

    # ------------------------------------- counters, occupancy, bookkeeping
    n_stage = sum(len(ts) for ts in ts_stage)
    n_p = len(ts_p0) + len(ts_p1) + len(ts_p2)
    busy = tile.busy_cycles
    for alu in (0, 1, 2):
        busy["nco_cic2_int"][alu] += n
        tile.alus[alu].ops_executed += n
    tile.alus[0].mul_count += n
    tile.alus[1].mul_count += n
    for alu in (3, 4):
        if len(ts_comb):
            busy["cic2_comb"][alu] += len(ts_comb)
        if n_stage:
            busy["cic5_int"][alu] += n_stage
        if n_p:
            busy["cic5_comb"][alu] += n_p
        if len(ts_fir):
            busy["fir125"][alu] += len(ts_fir)
        tile.alus[alu].ops_executed += len(ts_comb) + n_stage + n_p

    tile._in_pos += n
    tile.cycle += n


def can_process_block(tile: MontiumTile, program: TileProgram,
                      cycles: int) -> bool:
    """True when the vectorised path applies to this window."""
    if getattr(program, "ddc_meta", None) is None:
        return False
    # the stepped path must raise input underrun at the exact cycle
    return tile._in_pos + cycles <= len(tile.inputs)
