"""Montium local memories and register files.

Each ALU owns two small local memories ("The memories can be loaded with
external data") used for look-up tables, delay lines and intermediate
results, plus register files feeding its inputs (Fig. 8 maps the CIC2
integrator registers onto them).
"""

from __future__ import annotations

from ...errors import ConfigurationError
from .alu import wrap16


class LocalMemory:
    """One 16-bit-wide local memory with a simple auto-increment AGU."""

    def __init__(self, name: str, size: int = 512) -> None:
        if size < 1:
            raise ConfigurationError("memory size must be >= 1")
        self.name = name
        self.size = size
        self._data = [0] * size
        self.addr = 0
        self.reads = 0
        self.writes = 0

    def load(self, values: list[int], base: int = 0) -> None:
        """Bulk-load external data (configuration time)."""
        if base < 0 or base + len(values) > self.size:
            raise ConfigurationError(
                f"{self.name}: load of {len(values)} words at {base} "
                f"exceeds size {self.size}"
            )
        for i, v in enumerate(values):
            self._data[base + i] = wrap16(int(v))

    def read(self, addr: int | None = None) -> int:
        """Read a word (at the AGU address when ``addr`` is None)."""
        a = self.addr if addr is None else addr
        if not 0 <= a < self.size:
            raise ConfigurationError(f"{self.name}: read address {a} invalid")
        self.reads += 1
        return self._data[a]

    def write(self, value: int, addr: int | None = None) -> None:
        """Write a word (at the AGU address when ``addr`` is None)."""
        a = self.addr if addr is None else addr
        if not 0 <= a < self.size:
            raise ConfigurationError(f"{self.name}: write address {a} invalid")
        self.writes += 1
        self._data[a] = wrap16(int(value))

    def step_agu(self, stride: int = 1, modulo: int | None = None) -> None:
        """Advance the address generator (wrapping at ``modulo``)."""
        m = self.size if modulo is None else modulo
        if m < 1:
            raise ConfigurationError("modulo must be >= 1")
        self.addr = (self.addr + stride) % m

    def reset(self) -> None:
        """Clear contents, address and counters."""
        self._data = [0] * self.size
        self.addr = 0
        self.reads = 0
        self.writes = 0


class RegisterFile:
    """A small named register file (the Ra..Rd files of each ALU input)."""

    def __init__(self, name: str, size: int = 4) -> None:
        if size < 1:
            raise ConfigurationError("register file size must be >= 1")
        self.name = name
        self.size = size
        self._regs = [0] * size

    def read(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise ConfigurationError(f"{self.name}: register {index} invalid")
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self.size:
            raise ConfigurationError(f"{self.name}: register {index} invalid")
        self._regs[index] = wrap16(int(value))

    def reset(self) -> None:
        self._regs = [0] * self.size
