"""Montium Tile Processor model (paper Section 6).

The Montium TP is a coarse-grained reconfigurable tile: a sequencer drives
five two-level ALUs, each with two local memories and input register files,
over a configurable interconnect (Fig. 6/7).  The paper hand-maps the DDC
onto it: three ALUs run the NCO + CIC2 integrators at the full 64.512 MHz
sample rate, while the remaining two are time-multiplexed over the CIC2
comb, the CIC5 and the polyphase FIR (Table 6, Fig. 9).

Modules:

- :mod:`~repro.archs.montium.alu` — the two-level ALU (Fig. 7), executed
  functionally with 16/17-bit fixed-point semantics;
- :mod:`~repro.archs.montium.memory` — local memories and register files;
- :mod:`~repro.archs.montium.program` — per-cycle operation schedule
  representation + configuration-size estimate (the paper's 1110 bytes);
- :mod:`~repro.archs.montium.tile` — the 5-ALU tile executing a program;
- :mod:`~repro.archs.montium.ddc_mapping` — the paper's DDC schedule
  generator (Fig. 8's ALU configuration, Table 6's occupancy);
- :mod:`~repro.archs.montium.schedule` — occupancy analysis (Table 6) and
  the Fig. 9 Gantt rendering;
- :mod:`~repro.archs.montium.model` — 0.6 mW/MHz power model and the
  :class:`ArchitectureModel` facade.
"""

from .alu import ALUOp, MontiumALU
from .memory import LocalMemory, RegisterFile
from .program import CycleOps, TileProgram, estimate_config_bytes
from .tile import MontiumTile
from .ddc_mapping import (
    DDCMappingResult,
    DDCScheduleMeta,
    build_ddc_schedule,
    run_ddc_on_tile,
)
from .schedule import OccupancyReport, render_figure9
from .model import MontiumModel, MONTIUM_SPEC

__all__ = [
    "ALUOp",
    "MontiumALU",
    "LocalMemory",
    "RegisterFile",
    "CycleOps",
    "TileProgram",
    "estimate_config_bytes",
    "MontiumTile",
    "build_ddc_schedule",
    "DDCMappingResult",
    "DDCScheduleMeta",
    "run_ddc_on_tile",
    "OccupancyReport",
    "render_figure9",
    "MontiumModel",
    "MONTIUM_SPEC",
]
