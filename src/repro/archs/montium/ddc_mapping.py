"""The paper's DDC mapping on the Montium (Section 6.2, Fig. 8/9, Table 6).

Schedule structure (steady state, one 336-cycle macro period = one CIC5
output; 21 sub-periods of 16 cycles = one CIC2 output each):

- **every cycle**: ALU0 and ALU1 run the Fig. 8 configuration — the mixer
  multiply plus both CIC2 integrations for the I and Q rails — and ALU2
  performs the LUT address generation / input fetch ("three ALUs ... at
  64.512 MSPS", Table 6 row 1: 3 ALUs, 100 %);
- **cycle 0 of each sub-period**: ALU3/ALU4 execute the CIC2 comb for the
  I/Q rails (1 cycle per complex sample every 16 -> 6.3 %);
- **cycles 1-4 of each sub-period**: ALU3/ALU4 run the five CIC5
  integrations as double-word adds (4 cycles per 16 -> 25 %);
- **cycles 5-7 of sub-period 0**: ALU3/ALU4 run the five CIC5 comb stages
  (3 cycles per 336 -> 0.9 %);
- **cycles 8 of sub-period 0**: ALU3/ALU4 run the polyphase FIR
  bookkeeping (the 16 multiplications ride on idle multiplier slots of
  the cycles above; the residual charge is ~0.5 %).

Fixed-point plan (the tile is a 16-bit machine):

- mixer product is scaled so the CIC2 internal word (growth 8 bits) fits
  16 bits;
- the CIC2 comb output is scaled to 10 bits so the CIC5's 22-bit growth
  fits the 32-bit double-word arithmetic;
- the CIC5 comb output is scaled back to a 16-bit word for the FIR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...config import DDCConfig, REFERENCE_DDC
from ...dsp.firdesign import quantize_taps, reference_fir_taps
from ...errors import ConfigurationError
from ...fixedpoint import QFormat, to_fixed
from .alu import ALUOp, Level1Fn, Level2Fn
from .program import TileProgram
from .tile import MontiumTile

#: Schedule labels in Table 6 order.
TABLE6_LABELS = (
    "nco_cic2_int",
    "cic2_comb",
    "cic5_int",
    "cic5_comb",
    "fir125",
)

#: LUT length: one macro period's worth of distinct phases fits a 512-word
#: local memory ("the values for the sine and cosine are stored in the
#: local memories").
LUT_WORDS = 512

#: Scaling shifts of the fixed-point plan.
MIX_SHIFT = 19        # Q15 product >> 19: 12-bit sample -> 8-bit mixed
CIC2_OUT_SHIFT = 6    # 16-bit comb word -> 10-bit CIC5 input
CIC5_OUT_SHIFT = 16   # 32-bit comb word -> 16-bit FIR input


@dataclass(frozen=True)
class DDCScheduleMeta:
    """Shape of the DDC schedule, for the block engine.

    Attached to the :class:`~repro.archs.montium.program.TileProgram` by
    :func:`build_ddc_schedule`; :func:`~repro.archs.montium.block.
    process_ddc_block` uses it to vectorise execution.  The contract is
    pinned bit-for-bit by the stepped-vs-block Hypothesis suite in
    ``tests/test_fast_engine.py``.
    """

    d2: int                 # sub-period (CIC2 comb every d2 cycles)
    macro: int              # macro period (CIC5 comb + FIR every macro)
    mix_shift: int
    cic2_out_shift: int
    cic5_out_shift: int


def build_ddc_schedule(config: DDCConfig = REFERENCE_DDC) -> TileProgram:
    """Construct the 336-cycle steady-state schedule."""
    if config.cic2_decimation != 16 or config.cic5_decimation != 21:
        raise ConfigurationError(
            "the Montium mapping implements the paper's 16/21/8 reference"
        )
    d2 = config.cic2_decimation
    macro = d2 * config.cic5_decimation  # 336

    nco_i = ALUOp(
        label="nco_cic2_int",
        level1=(Level1Fn.ADD,),
        level1_pairs=((2, 3),),                  # i1 + i2 (old values)
        level2=Level2Fn.MAC,                     # x*cos + i1
        mul_shift=MIX_SHIFT,
        sources=("env:x", "mem:mem0_1:agu+", "env:i1_I", "env:i2_I"),
        dests=("env:i2_I", "env:i1_I"),
    )
    nco_q = ALUOp(
        label="nco_cic2_int",
        level1=(Level1Fn.ADD,),
        level1_pairs=((2, 3),),
        level2=Level2Fn.MAC,
        mul_shift=MIX_SHIFT,
        sources=("env:x_neg", "mem:mem1_1:agu+", "env:i1_Q", "env:i2_Q"),
        dests=("env:i2_Q", "env:i1_Q"),
    )
    # ALU2: input fetch + address generation.  x_neg = 0 - x feeds the Q
    # rail's -sin convention.
    agu = ALUOp(
        label="nco_cic2_int",
        level1=(Level1Fn.PASS_A, Level1Fn.SUB),
        level1_pairs=((0, 1), (1, 0)),           # x, 0 - x
        level2=Level2Fn.NONE,
        sources=("ext:in", "const:0"),
        dests=("env:x", "env:x_neg"),
    )

    def comb2(rail: str) -> ALUOp:
        # CIC2 comb: both stages plus both delay updates in one cycle,
        # all at the 16-bit integrator modulus (CIC2_COMB compound).
        return ALUOp(
            label="cic2_comb",
            level2=Level2Fn.CIC2_COMB,
            post_shift=CIC2_OUT_SHIFT,
            sources=(f"env:i2_{rail}", f"env:c2d0_{rail}", f"env:c2d1_{rail}"),
            dests=(f"env:c2d0_{rail}", f"env:c2d1_{rail}",
                   f"env:c2out_{rail}"),
        )

    def cic5_int_op(rail: str, stage: int) -> ALUOp:
        # stage 0: s0 += x (input from the CIC2 comb); stages 1..3 chain.
        if stage == 0:
            return ALUOp(
                label="cic5_int",
                level2=Level2Fn.CIC_INT2,        # s0 += x; s1 += s0
                sources=(f"env:c2out_{rail}", f"env32:s0_{rail}",
                         f"env32:s1_{rail}"),
                dests=(f"env32:s0_{rail}", f"env32:s1_{rail}"),
            )
        if stage == 1:
            return ALUOp(
                label="cic5_int",
                level2=Level2Fn.CIC_INT1,        # s2 += s1
                sources=(f"env32:s1_{rail}", f"env32:s2_{rail}"),
                dests=(f"env32:s2_{rail}",),
            )
        if stage == 2:
            return ALUOp(
                label="cic5_int",
                level2=Level2Fn.CIC_INT1,        # s3 += s2
                sources=(f"env32:s2_{rail}", f"env32:s3_{rail}"),
                dests=(f"env32:s3_{rail}",),
            )
        return ALUOp(
            label="cic5_int",
            level2=Level2Fn.CIC_INT1,            # s4 += s3
            sources=(f"env32:s3_{rail}", f"env32:s4_{rail}"),
            dests=(f"env32:s4_{rail}",),
        )

    def cic5_comb_op(rail: str, part: int) -> ALUOp:
        if part == 0:
            return ALUOp(
                label="cic5_comb",
                level2=Level2Fn.CIC_COMB2,       # stages 0 and 1
                sources=(f"env32:s4_{rail}", f"env32:d0_{rail}",
                         f"env32:d1_{rail}"),
                dests=(f"env32:d0_{rail}", f"env32:d1_{rail}",
                       f"env32:t0_{rail}"),
            )
        if part == 1:
            return ALUOp(
                label="cic5_comb",
                level2=Level2Fn.CIC_COMB2,       # stages 2 and 3
                sources=(f"env32:t0_{rail}", f"env32:d2_{rail}",
                         f"env32:d3_{rail}"),
                dests=(f"env32:d2_{rail}", f"env32:d3_{rail}",
                       f"env32:t1_{rail}"),
            )
        return ALUOp(
            label="cic5_comb",
            level2=Level2Fn.CIC_COMB1,           # stage 4 + output scaling
            post_shift=CIC5_OUT_SHIFT,
            sources=(f"env32:t1_{rail}", f"env32:d4_{rail}"),
            dests=(f"env32:d4_{rail}", f"env:c5out_{rail}"),
        )

    def fir_op(rail: str, alu: int) -> ALUOp:
        return ALUOp(
            label="fir125",
            level2=Level2Fn.FIR_STEP,
            sources=(f"env:c5out_{rail}",),
            dests=(f"ext:out",),
            meta=(f"mem{alu}_1", f"mem{alu}_2", f"fir_{rail}"),
        )

    cycles: list[dict[int, ALUOp]] = []
    for c in range(macro):
        ops: dict[int, ALUOp] = {2: agu, 0: nco_i, 1: nco_q}
        sub = c % d2
        if sub == 0:
            ops[3] = comb2("I")
            ops[4] = comb2("Q")
        elif 1 <= sub <= 4:
            ops[3] = cic5_int_op("I", sub - 1)
            ops[4] = cic5_int_op("Q", sub - 1)
        if c in (5, 6, 7):  # sub-period 0 only (c < 16 here)
            ops[3] = cic5_comb_op("I", c - 5)
            ops[4] = cic5_comb_op("Q", c - 5)
        if c == 8:
            ops[3] = fir_op("I", 3)
            ops[4] = fir_op("Q", 4)
        cycles.append(ops)
    program = TileProgram(cycles, name="ddc")
    # Metadata for the vectorised block engine (see montium.block): the
    # schedule positions of every event class, so process_block() can
    # replay an arbitrary cycle window without stepping.
    program.ddc_meta = DDCScheduleMeta(
        d2=d2,
        macro=macro,
        mix_shift=MIX_SHIFT,
        cic2_out_shift=CIC2_OUT_SHIFT,
        cic5_out_shift=CIC5_OUT_SHIFT,
    )
    return program


@dataclass
class DDCMappingResult:
    """Outputs of a functional DDC run on the tile."""

    i: np.ndarray
    q: np.ndarray
    cycles: int
    tile: MontiumTile
    program: TileProgram


def _load_tile(tile: MontiumTile, config: DDCConfig, taps: np.ndarray) -> None:
    """Configuration-time loading of LUTs, coefficients and FIR state."""
    q15 = QFormat(16, 15)
    n = LUT_WORDS
    grid = (np.arange(n) + 0.5) / n
    # ALU0's memory holds cos, ALU1's holds sin; the AGU strides through
    # them at the FCW rate (frequencies are quantised to fs/LUT_WORDS).
    tile.memories["mem0_1"].load([int(v) for v in to_fixed(np.cos(2 * np.pi * grid), q15)])
    tile.memories["mem1_1"].load([int(v) for v in to_fixed(np.sin(2 * np.pi * grid), q15)])
    raw_taps, _ = quantize_taps(taps, 16, frac_bits=15)
    for alu, rail in ((3, "I"), (4, "Q")):
        tile.memories[f"mem{alu}_1"].load([int(v) for v in raw_taps])
        tile.env[f"fir_{rail}.taps"] = len(raw_taps)
        tile.env[f"fir_{rail}.decim"] = config.fir_decimation
        tile.env[f"fir_{rail}.n"] = 0


def run_ddc_on_tile(
    samples: np.ndarray,
    config: DDCConfig = REFERENCE_DDC,
    fir_taps: np.ndarray | None = None,
    mode: str | None = None,
    *,
    engine: str | None = None,
) -> DDCMappingResult:
    """Execute the DDC mapping functionally over raw 12-bit input samples.

    The NCO frequency is quantised to a multiple of fs / LUT_WORDS (the
    AGU steps an integer stride per cycle); outputs interleave I and Q in
    ``tile.outputs`` and are returned separated.

    ``engine="block"`` (default) runs the vectorised block engine —
    bit-identical to ``engine="step"`` (the per-cycle oracle, the seed
    path), including cycle counts, ALU utilisation and all tile state.
    ``mode=`` is the deprecated spelling of the same knob and keeps
    working behind a ``DeprecationWarning``.
    """
    from ...compat import resolve_engine_kwarg

    mode = resolve_engine_kwarg("run_ddc_on_tile", engine, mode, "block")
    samples = np.asarray(samples)
    if not np.issubdtype(samples.dtype, np.integer):
        raise ConfigurationError("tile input must be raw integers")
    if fir_taps is None:
        fir_rate = config.input_rate_hz / (16 * 21)
        fir_taps = reference_fir_taps(
            config.fir_taps, fir_rate, config.output_rate_hz
        )
    program = build_ddc_schedule(config)
    tile = MontiumTile()
    _load_tile(tile, config, np.asarray(fir_taps))
    # AGU stride = quantised FCW.
    stride = round(config.nco_frequency_hz / config.input_rate_hz * LUT_WORDS)
    for m in ("mem0_1", "mem1_1"):
        tile.memories[m].addr = 0
    # re-wire the stride by monkey-free means: token "agu+" steps by 1, so
    # replicate the table at stride resolution instead.
    if stride != 1:
        q15 = QFormat(16, 15)
        n = LUT_WORDS
        grid = ((np.arange(n) * stride) % n + 0.5) / n
        tile.memories["mem0_1"].load(
            [int(v) for v in to_fixed(np.cos(2 * np.pi * grid), q15)]
        )
        tile.memories["mem1_1"].load(
            [int(v) for v in to_fixed(np.sin(2 * np.pi * grid), q15)]
        )
    tile.load_inputs([int(v) for v in samples])
    if mode == "block":
        tile.process_block(program, len(samples))
    elif mode == "step":
        tile.run(program, len(samples))
    else:
        raise ConfigurationError(f"unknown tile engine {mode!r}")
    out = np.array(tile.outputs, dtype=np.int64)
    return DDCMappingResult(
        i=out[0::2].copy() if out.size else out,
        q=out[1::2].copy() if out.size else out,
        cycles=tile.cycle,
        program=program,
        tile=tile,
    )


def ddc_workload_mapping():
    """The DDC workload's Montium mapping descriptor (see
    :mod:`repro.workloads`): the paper's hand schedule executed on the
    5-ALU tile, block engine bit-identical to the stepped oracle."""
    from ...workloads.base import WorkloadMapping

    return WorkloadMapping(
        architecture="Montium TP",
        description=(
            "hand-mapped 5-ALU tile schedule (Fig. 8 / Table 6): NCO + "
            "CIC2 integrators at the sample rate, comb/CIC5/FIR "
            "time-multiplexed; engine='block' vectorised, engine='step' "
            "the per-cycle oracle"
        ),
        run=run_ddc_on_tile,
    )
