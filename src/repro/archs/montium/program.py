"""Tile program representation and configuration-size estimation.

A :class:`TileProgram` is an explicit cycle-by-cycle schedule: for every
clock cycle, which ALUs execute which :class:`~repro.archs.montium.alu.
ALUOp`.  The sequencer of a real Montium walks a compact state machine
instead of an unrolled schedule; :func:`estimate_config_bytes` estimates
the size of that compact configuration (the paper: "the implementation
compiles to a configuration file of 1110 bytes") from the number of
*distinct* ALU configurations, memory AGU patterns and sequencer states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import ConfigurationError
from .alu import ALUOp

#: Cycle schedule entry: ALU index -> operation.
CycleOps = dict[int, ALUOp]


@dataclass
class TileProgram:
    """A fully unrolled periodic schedule for the five ALUs.

    ``cycles[i]`` gives the ops issued in cycle ``i``; the schedule repeats
    with period ``len(cycles)`` (the steady state of the DDC is one 336-
    cycle macro period).
    """

    cycles: list[CycleOps] = field(default_factory=list)
    name: str = "program"

    def __post_init__(self) -> None:
        for i, ops in enumerate(self.cycles):
            for alu in ops:
                if not 0 <= alu < 5:
                    raise ConfigurationError(
                        f"cycle {i}: ALU index {alu} out of range"
                    )

    @property
    def period(self) -> int:
        """Schedule period in cycles."""
        return len(self.cycles)

    def ops_at(self, cycle: int) -> CycleOps:
        """Ops for an absolute cycle number (periodic)."""
        if self.period == 0:
            return {}
        return self.cycles[cycle % self.period]

    def distinct_alu_configs(self) -> set[tuple[int, str]]:
        """(alu, op-label) pairs — proxy for decoder configuration entries."""
        out: set[tuple[int, str]] = set()
        for ops in self.cycles:
            for alu, op in ops.items():
                out.add((alu, op.label))
        return out

    def labels(self) -> set[str]:
        """All op labels used (the DDC algorithm parts)."""
        return {op.label for ops in self.cycles for op in ops.values()}


def estimate_config_bytes(
    program: TileProgram,
    lut_words: int = 0,
    coefficient_words: int = 0,
) -> int:
    """Estimate the Montium configuration-file size in bytes.

    Decomposition modelled on the Montium decoder architecture:

    - each distinct (ALU, operation) pair needs an ALU-decoder entry
      (~10 bytes: function selects for both levels + routing);
    - each distinct label needs interconnect + register decoder entries
      (~24 bytes);
    - the sequencer needs a state entry per schedule phase change
      (~8 bytes);
    - memory contents (sine LUT, FIR coefficients) are loaded separately
      at 2 bytes/word **but are not part of the configuration file** (the
      paper's 1110 bytes excludes them; pass them here only if you want
      the total load size).
    """
    alu_entries = len(program.distinct_alu_configs())
    label_entries = len(program.labels())
    # phase changes: count cycle positions where the op set differs from
    # the previous cycle (sequencer state transitions).
    transitions = 0
    prev: set[tuple[int, str]] | None = None
    for ops in program.cycles:
        sig = {(alu, op.label) for alu, op in ops.items()}
        if sig != prev:
            transitions += 1
        prev = sig
    size = alu_entries * 10 + label_entries * 24 + transitions * 8
    size += 2 * (lut_words + coefficient_words)
    return size
