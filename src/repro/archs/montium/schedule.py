"""Schedule analysis: Table 6 occupancy and the Fig. 9 Gantt rendering.

Table 6 reports, per DDC part, how many ALUs participate and what
percentage of the tile's cycles they spend on it; Fig. 9 shows the first
40 clock cycles of the running DDC.  Both are derived here directly from
the :class:`~repro.archs.montium.program.TileProgram` schedule (statically)
or from a tile's measured ``busy_cycles`` (dynamically) — the two must
agree, which the tests assert.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from .program import TileProgram
from .tile import MontiumTile

#: Display names used by the paper's Table 6.
PAPER_LABELS = {
    "nco_cic2_int": "NCO + CIC2 integrating",
    "cic2_comb": "CIC2 cascading",
    "cic5_int": "CIC5 integrating",
    "cic5_comb": "CIC5 cascading",
    "fir125": "FIR125",
}


@dataclass(frozen=True)
class OccupancyRow:
    """One Table 6 row."""

    label: str
    n_alus: int
    percent_of_time: float


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy of all DDC parts plus overall utilisation."""

    rows: tuple[OccupancyRow, ...]
    period: int

    def by_label(self, label: str) -> OccupancyRow:
        for r in self.rows:
            if r.label == label:
                return r
        raise ConfigurationError(f"no occupancy row for {label!r}")

    def table6_rows(self) -> list[tuple[str, int, float]]:
        """(paper row name, #ALUs, percent) in Table 6 order."""
        order = ["nco_cic2_int", "cic2_comb", "cic5_int", "cic5_comb",
                 "fir125"]
        out = []
        for label in order:
            r = self.by_label(label)
            out.append((PAPER_LABELS[label], r.n_alus, r.percent_of_time))
        return out


def analyze_schedule(program: TileProgram) -> OccupancyReport:
    """Static occupancy over one schedule period (vectorised fast path).

    One flattening pass extracts ``(cycle, alu, label)`` triples; the
    distinct-cycle and distinct-ALU counts per label are then numpy
    ``unique``/``bincount`` passes instead of per-op dict/set updates.
    Bit-identical to :func:`analyze_schedule_scalar` (same sorted label
    order, same ``100.0 * cycles / period`` float arithmetic) — the
    remaining per-schedule python in the Montium's ``implement_batch``,
    which the design-space explorer hits once per distinct input rate.
    """
    if program.period == 0:
        raise ConfigurationError("empty program")
    labels: list[str] = []
    cycles: list[int] = []
    alus: list[int] = []
    for i, ops in enumerate(program.cycles):
        for alu, op in ops.items():
            cycles.append(i)
            alus.append(alu)
            labels.append(op.label)
    uniq = sorted(set(labels))
    if not uniq:
        return OccupancyReport((), program.period)
    code = {label: k for k, label in enumerate(uniq)}
    lab = np.array([code[label] for label in labels], dtype=np.int64)
    cyc = np.array(cycles, dtype=np.int64)
    alu_arr = np.array(alus, dtype=np.int64)
    n_labels = len(uniq)
    # Distinct (label, cycle) pairs per label = cycles the label is active.
    cycle_keys = np.unique(lab * program.period + cyc)
    cycles_per_label = np.bincount(
        cycle_keys // program.period, minlength=n_labels
    )
    # Distinct (label, alu) pairs per label = ALUs that ever run it.
    alu_keys = np.unique(lab * MontiumTile.N_ALUS + alu_arr)
    alus_per_label = np.bincount(
        alu_keys // MontiumTile.N_ALUS, minlength=n_labels
    )
    rows = tuple(
        OccupancyRow(
            label,
            int(alus_per_label[k]),
            100.0 * int(cycles_per_label[k]) / program.period,
        )
        for k, label in enumerate(uniq)
    )
    return OccupancyReport(rows, program.period)


def analyze_schedule_scalar(program: TileProgram) -> OccupancyReport:
    """The seed per-op dict/set loop — the oracle :func:`analyze_schedule`
    is pinned against (``tests/test_montium.py``)."""
    if program.period == 0:
        raise ConfigurationError("empty program")
    cycles_per_label: dict[str, int] = defaultdict(int)
    alus_per_label: dict[str, set[int]] = defaultdict(set)
    for ops in program.cycles:
        seen: set[str] = set()
        for alu, op in ops.items():
            alus_per_label[op.label].add(alu)
            seen.add(op.label)
        for label in seen:
            cycles_per_label[label] += 1
    rows = tuple(
        OccupancyRow(
            label,
            len(alus_per_label[label]),
            100.0 * cycles_per_label[label] / program.period,
        )
        for label in sorted(cycles_per_label)
    )
    return OccupancyReport(rows, program.period)


def measured_occupancy(tile: MontiumTile) -> OccupancyReport:
    """Dynamic occupancy from a tile's executed-cycle counters."""
    if tile.cycle == 0:
        raise ConfigurationError("tile has not executed any cycles")
    rows = []
    for label, per_alu in sorted(tile.busy_cycles.items()):
        # cycles where at least one ALU ran this label = max per-ALU count
        # (ops of one label always co-issue on their ALU set in the DDC).
        cycles = max(per_alu.values())
        rows.append(
            OccupancyRow(label, len(per_alu), 100.0 * cycles / tile.cycle)
        )
    return OccupancyReport(tuple(rows), tile.cycle)


_FIG9_GLYPHS = {
    "nco_cic2_int": "N",
    "cic2_comb": "2",
    "cic5_int": "5",
    "cic5_comb": "c",
    "fir125": "F",
}


def render_figure9(program: TileProgram, cycles: int = 40) -> str:
    """ASCII Gantt of the first ``cycles`` clock cycles (paper Fig. 9).

    One row per ALU, one column per cycle; glyphs mark the DDC part each
    ALU is executing ('.' = idle).  The paper's figure shows exactly this:
    three ALUs continuously on NCO/address generation + CIC2 integration,
    the comb part repeating every 16 cycles on the remaining two.
    """
    if cycles < 1:
        raise ConfigurationError("cycles must be >= 1")
    header = "cycle  " + "".join(str(c % 10) for c in range(cycles))
    lines = [header]
    for alu in range(MontiumTile.N_ALUS):
        row = []
        for c in range(cycles):
            op = program.ops_at(c).get(alu)
            row.append(_FIG9_GLYPHS.get(op.label, "?") if op else ".")
        lines.append(f"ALU{alu + 1}   " + "".join(row))
    legend = (
        "legend: N=NCO+CIC2-int/addr-gen  2=CIC2 comb  5=CIC5 int  "
        "c=CIC5 comb  F=FIR125  .=idle"
    )
    lines.append(legend)
    return "\n".join(lines)
