"""The Montium tile: five ALUs + memories + environment + sequencer.

The tile executes a :class:`~repro.archs.montium.program.TileProgram`
cycle by cycle.  Operand routing uses string tokens resolved against the
tile state — the stand-in for the interconnect decoder of Fig. 6:

=================  ====================================================
token              meaning
=================  ====================================================
``env:NAME``       named scalar location (register-file entry)
``mem:NAME``       read/write memory ``NAME`` at its AGU address
``mem:NAME:agu+``  read/write at the AGU address, then step the AGU
``mem:NAME@123``   read/write at literal address 123
``const:42``       literal constant (sources only)
``ext:in``         next external input sample (sources only)
``ext:out``        append to the external output stream (dests only)
``null``           discard (dests only)
=================  ====================================================

Environment scalars are 16-bit-wrapped on ALU writes by the ALU itself;
``env32:NAME`` locations hold double-word (32-bit) values for the CIC5
integrators, which the mapping implements as paired-ALU double-precision
adds (see :mod:`~repro.archs.montium.ddc_mapping`).
"""

from __future__ import annotations

from collections import defaultdict

from ...errors import ConfigurationError, SimulationError
from .alu import MontiumALU
from .memory import LocalMemory, RegisterFile
from .program import TileProgram


def _wrap32(v: int) -> int:
    v &= (1 << 32) - 1
    return v - (1 << 32) if v >= 1 << 31 else v


class MontiumTile:
    """Functional Montium TP executing an unrolled periodic schedule."""

    N_ALUS = 5

    def __init__(self, name: str = "tile0") -> None:
        self.name = name
        self.alus = [MontiumALU(i) for i in range(self.N_ALUS)]
        # two local memories per ALU, as in Fig. 6
        self.memories: dict[str, LocalMemory] = {}
        for i in range(self.N_ALUS):
            for j in (1, 2):
                mname = f"mem{i}_{j}"
                self.memories[mname] = LocalMemory(mname)
        self.register_files = [RegisterFile(f"rf{i}") for i in range(self.N_ALUS)]
        self.env: dict[str, int] = defaultdict(int)
        self.inputs: list[int] = []
        self._in_pos = 0
        self.outputs: list[int] = []
        self.cycle = 0
        #: cycles each ALU spent executing, per op label (Table 6 feed)
        self.busy_cycles: dict[str, dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    # ------------------------------------------------------------ routing
    def _resolve_source(self, token: str) -> int:
        if token.startswith("const:"):
            return int(token[6:])
        if token.startswith("env32:"):
            return self.env[token]
        if token.startswith("env:"):
            return self.env[token]
        if token == "ext:in":
            if self._in_pos >= len(self.inputs):
                raise SimulationError("tile ran out of input samples")
            v = self.inputs[self._in_pos]
            self._in_pos += 1
            return v
        if token.startswith("mem:"):
            return self._mem_access(token, None)
        raise ConfigurationError(f"bad source token {token!r}")

    def _store_dest(self, token: str, value: int) -> None:
        if token == "null":
            return
        if token == "ext:out":
            self.outputs.append(value)
            return
        if token.startswith("env32:"):
            self.env[token] = _wrap32(value)
            return
        if token.startswith("env:"):
            self.env[token] = value
            return
        if token.startswith("mem:"):
            self._mem_access(token, value)
            return
        raise ConfigurationError(f"bad dest token {token!r}")

    def _mem_access(self, token: str, write_value: int | None) -> int:
        body = token[4:]
        step = False
        addr: int | None = None
        if body.endswith(":agu+"):
            body = body[: -len(":agu+")]
            step = True
        if "@" in body:
            body, _, addr_s = body.partition("@")
            addr = int(addr_s)
        mem = self.memories.get(body)
        if mem is None:
            raise ConfigurationError(f"unknown memory {body!r}")
        if write_value is None:
            out = mem.read(addr)
        else:
            mem.write(write_value, addr)
            out = write_value
        if step:
            mem.step_agu()
        return out

    # ------------------------------------------------------------- running
    def load_inputs(self, samples: list[int]) -> None:
        """Provide the external input stream."""
        self.inputs = [int(v) for v in samples]
        self._in_pos = 0

    def step(self, program: TileProgram) -> None:
        """Execute one cycle of the (periodic) program."""
        from .alu import Level2Fn

        ops = program.ops_at(self.cycle)
        for alu_idx, op in sorted(ops.items()):
            if op.level2 is Level2Fn.FIR_STEP:
                self._fir_step(alu_idx, op)
            else:
                operands = [self._resolve_source(s) for s in op.sources]
                results = self.alus[alu_idx].execute(op, operands)
                if len(op.dests) > len(results):
                    raise ConfigurationError(
                        f"op {op.label!r}: {len(op.dests)} dests but only "
                        f"{len(results)} results"
                    )
                for dest, value in zip(op.dests, results):
                    self._store_dest(dest, value)
            self.busy_cycles[op.label][alu_idx] += 1
        self.cycle += 1

    def _fir_step(self, alu_idx: int, op) -> None:
        """Polyphase FIR bookkeeping (paper Section 6.2.1).

        One CIC5 output sample is multiplied with the ceil(125/8) = 16
        coefficients it contributes to and accumulated into the partial
        output sums held in a local memory; every 8th sample the completed
        sum is emitted.  The 16 multiplications physically ride on the
        multiplier slots of cycles already charged to the CIC work (the
        ALUs' level-2 multipliers are idle there); this op is the residual
        bookkeeping cycle that Table 6 prices at ~0.5 %.

        ``op.meta = (coeff_mem, sum_mem, state_prefix)``;
        ``op.sources[0]`` is the input token, ``op.dests[0]`` the output.
        """
        from .alu import wrap16

        if len(op.meta) != 3 or len(op.sources) != 1 or len(op.dests) != 1:
            raise ConfigurationError("malformed FIR_STEP op")
        coeff_mem_name, sum_mem_name, prefix = op.meta
        coeff_mem = self.memories.get(coeff_mem_name)
        sum_mem = self.memories.get(sum_mem_name)
        if coeff_mem is None or sum_mem is None:
            raise ConfigurationError("FIR_STEP memories not found")
        x = self._resolve_source(op.sources[0])
        n = self.env[f"{prefix}.n"]            # input sample counter
        taps = self.env[f"{prefix}.taps"]      # tap count (e.g. 125)
        decim = self.env[f"{prefix}.decim"]    # decimation (e.g. 8)
        if taps <= 0 or decim <= 0:
            raise ConfigurationError("FIR_STEP state not initialised")
        ring = taps // decim + 2               # active partial sums
        # x[n] contributes h[m*decim - n] to output m.
        m_lo = -(-n // decim)                  # ceil(n / decim)
        m_hi = (n + taps - 1) // decim
        for m in range(m_lo, m_hi + 1):
            k = m * decim - n
            h = coeff_mem.read(k)
            slot = m % ring
            acc = sum_mem.read(slot)
            sum_mem.write(wrap16(acc + ((x * h) >> 15)), slot)
            self.alus[alu_idx].mul_count += 1
        if n % decim == 0:
            slot = (n // decim) % ring
            self._store_dest(op.dests[0], sum_mem.read(slot))
            sum_mem.write(0, slot)
        self.env[f"{prefix}.n"] = n + 1

    def run(self, program: TileProgram, cycles: int) -> None:
        """Execute ``cycles`` cycles."""
        if cycles < 0:
            raise ConfigurationError("cycles must be >= 0")
        for _ in range(cycles):
            self.step(program)

    def process_block(self, program: TileProgram, cycles: int) -> None:
        """Execute ``cycles`` cycles on the fast path where possible.

        Programs carrying DDC schedule metadata (built by
        :func:`~repro.archs.montium.ddc_mapping.build_ddc_schedule`) run
        through the vectorised block engine of
        :mod:`~repro.archs.montium.block` — bit-identical state, outputs,
        cycle counts and ALU utilisation, ~2 orders of magnitude faster.
        Other programs (and windows that would underrun the input stream,
        which must raise at the exact stepped cycle) fall back to
        :meth:`run`.  Block and stepped execution interleave freely on one
        tile: the engine resumes from any point in the macro period.
        """
        if cycles < 0:
            raise ConfigurationError("cycles must be >= 0")
        from .block import can_process_block, process_ddc_block

        if can_process_block(self, program, cycles):
            process_ddc_block(self, program, cycles)
        else:
            self.run(program, cycles)

    def reset(self) -> None:
        """Clear all state and statistics."""
        for m in self.memories.values():
            m.reset()
        for rf in self.register_files:
            rf.reset()
        self.env.clear()
        self.inputs = []
        self._in_pos = 0
        self.outputs = []
        self.cycle = 0
        self.busy_cycles.clear()
        for i, _ in enumerate(self.alus):
            self.alus[i] = MontiumALU(i)

    # ---------------------------------------------------------------- stats
    def alu_utilisation(self) -> dict[int, float]:
        """Fraction of elapsed cycles each ALU was busy."""
        if self.cycle == 0:
            return {i: 0.0 for i in range(self.N_ALUS)}
        busy: dict[int, int] = defaultdict(int)
        for per_alu in self.busy_cycles.values():
            for alu, n in per_alu.items():
                busy[alu] += n
        return {i: busy.get(i, 0) / self.cycle for i in range(self.N_ALUS)}
