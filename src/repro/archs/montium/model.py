"""Montium device model and the Section 6.2.2 power arithmetic.

"The power consumption of the Montium is measured to be 0.6 mW/MHz in
0.13 µm technology and a Vdd of 1.2 V. ... we can estimate that a Montium
TP needs 38.7 mW to perform the DDC algorithm."
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config import DDCConfig, REFERENCE_DDC
from ...energy.technology import TECH_130NM, TechnologyNode
from ..base import ArchitectureModel, Flexibility, ImplementationReport
from .ddc_mapping import build_ddc_schedule
from .program import estimate_config_bytes
from .schedule import analyze_schedule


@dataclass(frozen=True)
class MontiumSpec:
    """Published Montium TP constants (Section 6 / Table 7)."""

    name: str = "Montium TP"
    technology: TechnologyNode = TECH_130NM
    power_mw_per_mhz: float = 0.6
    area_mm2: float = 2.2
    n_alus: int = 5
    memories_per_alu: int = 2
    memory_words: int = 512


#: The device the paper uses.
MONTIUM_SPEC = MontiumSpec()


class MontiumModel(ArchitectureModel):
    """Montium architecture model: schedule feasibility + 0.6 mW/MHz."""

    name = "Montium TP"

    def __init__(self, spec: MontiumSpec = MONTIUM_SPEC) -> None:
        self.spec = spec

    def supports(self, config: DDCConfig) -> bool:
        """The hand mapping exists for the reference decimation plan."""
        return (
            config.cic2_decimation == 16
            and config.cic5_decimation == 21
            and config.fir_decimation == 8
        )

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        program = build_ddc_schedule(config)
        occupancy = analyze_schedule(program)
        clock_hz = config.input_rate_hz  # one input sample per tile cycle
        power_w = clock_hz / 1e6 * self.spec.power_mw_per_mhz * 1e-3
        config_bytes = estimate_config_bytes(program)
        return ImplementationReport(
            architecture=self.spec.name,
            technology=self.spec.technology,
            clock_hz=clock_hz,
            power_w=power_w,
            area_mm2=self.spec.area_mm2,
            flexibility=Flexibility.RECONFIGURABLE,
            feasible=True,
            notes=(
                f"5-ALU schedule, period {occupancy.period} cycles, "
                f"~{config_bytes} B configuration; 0.6 mW/MHz measured "
                "constant"
            ),
        )
