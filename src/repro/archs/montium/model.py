"""Montium device model and the Section 6.2.2 power arithmetic.

"The power consumption of the Montium is measured to be 0.6 mW/MHz in
0.13 µm technology and a Vdd of 1.2 V. ... we can estimate that a Montium
TP needs 38.7 mW to perform the DDC algorithm."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...config import DDCConfig, REFERENCE_DDC
from ...energy.technology import TECH_130NM, TechnologyNode
from ...errors import ConfigurationError, MappingError
from ..base import (
    ArchitectureModel,
    BatchImplementationReport,
    Flexibility,
    ImplementationReport,
)
from .ddc_mapping import build_ddc_schedule
from .program import estimate_config_bytes
from .schedule import analyze_schedule


def _schedule_key(config: DDCConfig) -> tuple:
    """The configuration fields :func:`build_ddc_schedule` reads.

    Configurations that agree on these fields produce identical schedules
    (and identical mapping errors), so a batch builds each distinct
    schedule once.  Pinned by the batch==scalar Hypothesis suite in
    ``tests/test_evaluator_batch.py`` — extend the key if the mapping
    grows a new configuration dependence.
    """
    return (
        config.input_rate_hz,
        config.nco_frequency_hz,
        config.cic2_decimation,
        config.cic5_decimation,
        config.fir_decimation,
        config.fir_taps,
    )


@dataclass(frozen=True)
class MontiumSpec:
    """Published Montium TP constants (Section 6 / Table 7)."""

    name: str = "Montium TP"
    technology: TechnologyNode = TECH_130NM
    power_mw_per_mhz: float = 0.6
    area_mm2: float = 2.2
    n_alus: int = 5
    memories_per_alu: int = 2
    memory_words: int = 512


#: The device the paper uses.
MONTIUM_SPEC = MontiumSpec()


class MontiumModel(ArchitectureModel):
    """Montium architecture model: schedule feasibility + 0.6 mW/MHz."""

    name = "Montium TP"

    def __init__(self, spec: MontiumSpec = MONTIUM_SPEC) -> None:
        self.spec = spec

    def supports(self, config: DDCConfig) -> bool:
        """The hand mapping exists for the reference decimation plan."""
        return (
            config.cic2_decimation == 16
            and config.cic5_decimation == 21
            and config.fir_decimation == 8
        )

    def _report(
        self, config: DDCConfig, period: int, config_bytes: int
    ) -> ImplementationReport:
        """Assemble the Table 7 row (shared by scalar and batched paths)."""
        clock_hz = config.input_rate_hz  # one input sample per tile cycle
        power_w = clock_hz / 1e6 * self.spec.power_mw_per_mhz * 1e-3
        return ImplementationReport(
            architecture=self.spec.name,
            technology=self.spec.technology,
            clock_hz=clock_hz,
            power_w=power_w,
            area_mm2=self.spec.area_mm2,
            flexibility=Flexibility.RECONFIGURABLE,
            feasible=True,
            notes=(
                f"5-ALU schedule, period {period} cycles, "
                f"~{config_bytes} B configuration; 0.6 mW/MHz measured "
                "constant"
            ),
        )

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        program = build_ddc_schedule(config)
        occupancy = analyze_schedule(program)
        return self._report(
            config, occupancy.period, estimate_config_bytes(program)
        )

    def implement_batch(
        self, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """Batched :meth:`implement` over a configuration axis.

        Schedule construction is deduplicated on the configuration fields
        the mapping actually reads (:func:`_schedule_key`): each distinct
        schedule — or each distinct mapping error — is built once and
        shared by every configuration with the same key, and the
        power/notes arithmetic per configuration is the same as the
        scalar path, so reports and errors are bit-identical to the
        scalar loop.
        """
        built: dict[tuple, tuple[int, int] | Exception] = {}
        reports: list[ImplementationReport | None] = []
        errors: list[Exception | None] = []
        for config in configs:
            key = _schedule_key(config)
            outcome = built.get(key)
            if outcome is None:
                try:
                    program = build_ddc_schedule(config)
                    outcome = (
                        analyze_schedule(program).period,
                        estimate_config_bytes(program),
                    )
                except (ConfigurationError, MappingError) as exc:
                    outcome = exc
                built[key] = outcome
            if isinstance(outcome, Exception):
                reports.append(None)
                errors.append(outcome)
            else:
                period, config_bytes = outcome
                reports.append(self._report(config, period, config_bytes))
                errors.append(None)
        return BatchImplementationReport.from_reports(
            self.spec.name, reports, errors
        )

    def cache_key(self) -> tuple:
        return (type(self).__qualname__, self.spec)
