"""The Montium two-level ALU (paper Fig. 7).

Level 1 holds four function units for logic/addition on the four 16-bit
inputs; level 2 holds a multiplier, an adder/subtractor (which can take the
17-bit east neighbour input) and the butterfly structure.  "Each ALU can
perform multiple non-multiply operations and one multiplication in one
clock cycle" — which is exactly what the DDC mapping exploits: Fig. 8 shows
one ALU doing mix-multiply *and* both CIC2 integrations per clock.

The model executes one configured operation bundle per clock with 16-bit
wrapping arithmetic (17-bit on the east/west ports), matching the tile's
fixed word width.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ...errors import ConfigurationError

_W16 = 16
_W17 = 17


def wrap16(v: int) -> int:
    """Two's-complement wrap to 16 bits."""
    v &= (1 << _W16) - 1
    return v - (1 << _W16) if v >= 1 << (_W16 - 1) else v


def wrap17(v: int) -> int:
    """Two's-complement wrap to 17 bits (east/west neighbour ports)."""
    v &= (1 << _W17) - 1
    return v - (1 << _W17) if v >= 1 << (_W17 - 1) else v


def wrap32(v: int) -> int:
    """Two's-complement wrap to 32 bits (double-word CIC arithmetic)."""
    v &= (1 << 32) - 1
    return v - (1 << 32) if v >= 1 << 31 else v


class Level1Fn(enum.Enum):
    """Function-unit operations available at level 1."""

    PASS_A = "pass_a"
    ADD = "add"          # a + b
    SUB = "sub"          # a - b
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT_A = "not_a"


class Level2Fn(enum.Enum):
    """Level-2 operations.

    The ``CIC_*`` entries are *double-word* compound operations: the
    Montium's level-1 and level-2 adders process the low and high half of
    a 32-bit value in the same cycle (the standard carry-chaining of a
    16-bit datapath), which is how the paper's mapping fits the CIC5's
    >16-bit intermediate words into "two ALUs for four clock cycles".
    They operate and wrap at 32 bits.

    ``FIR_STEP`` marks the polyphase FIR bookkeeping cycle; its arithmetic
    is executed by the tile (it owns the memories) — see
    :meth:`repro.archs.montium.tile.MontiumTile.step`.
    """

    NONE = "none"
    MUL = "mul"              # a * b, truncated back to 16 bits (Q15 x Q15)
    MAC = "mac"              # a * b + c
    ADD = "add"              # a + b
    SUB = "sub"              # a - b
    BUTTERFLY = "butterfly"  # (a + b, a - b)
    CIC2_COMB = "cic2_comb"  # [x, x - d0, (x-d0)-d1] (16-bit, chained)
    CIC_INT1 = "cic_int1"    # [s0 + x]               (32-bit)
    CIC_INT2 = "cic_int2"    # [s0 + x, s1 + s0 + x]  (32-bit, chained)
    CIC_COMB1 = "cic_comb1"  # [x, x - d0]            (32-bit)
    CIC_COMB2 = "cic_comb2"  # [x, x - d0, (x-d0)-d1] (32-bit, chained)
    FIR_STEP = "fir_step"    # handled by the tile (memory-resident state)


@dataclass(frozen=True)
class ALUOp:
    """One cycle's configuration of one ALU.

    The operand model is deliberately simple: ``sources`` name where the
    four inputs A..D come from; ``level1``/``level2`` select the functions;
    ``dests`` name where results go.  Routing names are resolved by the
    tile (register files, memories, neighbour ports).

    ``label`` ties the op to a DDC algorithm part so the schedule analysis
    can attribute cycles (Table 6).
    """

    label: str
    level1: tuple[Level1Fn, ...] = ()
    level2: Level2Fn = Level2Fn.NONE
    sources: tuple[str, ...] = ()
    dests: tuple[str, ...] = ()
    #: Multiplier product shift (Q15 x Q15 -> Q15 keeps the top 16 bits).
    mul_shift: int = 15
    #: Operand-index pairs consumed by each level-1 function unit; default
    #: is ((0,1), (2,3), (0,2), (1,3)) over inputs A..D.
    level1_pairs: tuple[tuple[int, int], ...] = ()
    #: When True, level 2's first operand is the *output of function unit
    #: 0* instead of raw input A — Fig. 7's "can choose its input values
    #: from ... function units three and four" routing.
    level2_from_l1: bool = False
    #: Arithmetic right shift applied to level-2 add/sub/CIC results
    #: before they are stored (the output scaling between filter stages).
    post_shift: int = 0
    #: Free-form routing metadata for tile-executed compound ops
    #: (FIR_STEP uses it to name its coefficient/partial-sum memories and
    #: its state prefix).
    meta: tuple[str, ...] = ()


class MontiumALU:
    """Functional two-level ALU."""

    def __init__(self, index: int) -> None:
        if not 0 <= index < 5:
            raise ConfigurationError("Montium has ALUs 0..4")
        self.index = index
        self.ops_executed = 0
        self.mul_count = 0

    def execute(self, op: ALUOp, operands: list[int]) -> list[int]:
        """Execute one op on resolved operand values; returns results.

        Results are produced in the order: level-1 outputs (one per
        configured function), then the level-2 output(s).
        """
        a = operands[0] if len(operands) > 0 else 0
        b = operands[1] if len(operands) > 1 else 0
        c = operands[2] if len(operands) > 2 else 0
        d = operands[3] if len(operands) > 3 else 0

        results: list[int] = []
        l1_out: list[int] = []
        # Level 1: function units consume operand pairs; default routing is
        # (A,B), (C,D), (A,C), (B,D), overridable per op.
        values = [a, b, c, d]
        if op.level1_pairs:
            pairs = [(values[i], values[j]) for i, j in op.level1_pairs]
        else:
            pairs = [(a, b), (c, d), (a, c), (b, d)]
        for i, fn in enumerate(op.level1):
            x, y = pairs[i % len(pairs)]
            if fn is Level1Fn.PASS_A:
                r = x
            elif fn is Level1Fn.ADD:
                r = wrap16(x + y)
            elif fn is Level1Fn.SUB:
                r = wrap16(x - y)
            elif fn is Level1Fn.AND:
                r = x & y
            elif fn is Level1Fn.OR:
                r = x | y
            elif fn is Level1Fn.XOR:
                r = x ^ y
            elif fn is Level1Fn.NOT_A:
                r = wrap16(~x)
            else:  # pragma: no cover - exhaustive
                raise ConfigurationError(f"unknown level1 fn {fn}")
            l1_out.append(r)
        results.extend(l1_out)

        # Level 2: multiplier / adder / butterfly.  The first operand is
        # raw input A, or function unit 0's output when level2_from_l1.
        p = l1_out[0] if (op.level2_from_l1 and l1_out) else a
        sh = op.post_shift
        if op.level2 is Level2Fn.MUL:
            results.append(wrap16((p * b) >> op.mul_shift))
            self.mul_count += 1
        elif op.level2 is Level2Fn.MAC:
            results.append(wrap16(((p * b) >> op.mul_shift) + c))
            self.mul_count += 1
        elif op.level2 is Level2Fn.ADD:
            results.append(wrap17(p + b) >> sh)
        elif op.level2 is Level2Fn.SUB:
            results.append(wrap17(p - b) >> sh)
        elif op.level2 is Level2Fn.CIC2_COMB:
            # 16-bit comb pair: wrap at the *integrator* modulus (2**16)
            # before scaling — Hogenauer correctness needs one modulus
            # through the whole integrator/comb chain.
            r1 = wrap16(a - b)
            results.append(a)
            results.append(r1)
            results.append(wrap16(r1 - c) >> sh)
        elif op.level2 is Level2Fn.BUTTERFLY:
            results.append(wrap17(p + b))
            results.append(wrap17(p - b))
        elif op.level2 is Level2Fn.CIC_INT1:
            results.append(wrap32(b + a) >> sh)
        elif op.level2 is Level2Fn.CIC_INT2:
            s0 = wrap32(b + a)
            results.append(s0)
            results.append(wrap32(c + s0) >> sh)
        elif op.level2 is Level2Fn.CIC_COMB1:
            results.append(a)
            results.append(wrap32(a - b) >> sh)
        elif op.level2 is Level2Fn.CIC_COMB2:
            r1 = wrap32(a - b)
            results.append(a)
            results.append(r1)
            results.append(wrap32(r1 - c) >> sh)
        elif op.level2 is Level2Fn.FIR_STEP:
            pass  # arithmetic performed by the tile (memory access needed)
        self.ops_executed += 1
        return results
