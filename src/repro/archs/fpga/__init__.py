"""Altera Cyclone FPGA model (paper Section 5).

The paper implements the DDC in VHDL for the two smallest Cyclone devices,
synthesises it with Quartus II, and estimates power with PowerPlay.  The
equivalents here:

- :mod:`~repro.archs.fpga.devices` — the Cyclone I EP1C3T100C6 and
  Cyclone II EP2C5T144C6 device catalog entries (Section 5.1);
- :mod:`~repro.archs.fpga.rtl_nco` / :mod:`~repro.archs.fpga.rtl_cic` /
  :mod:`~repro.archs.fpga.rtl_fir` — cycle-accurate RTL components on the
  :mod:`repro.simkernel` (12-bit buses, output-valid handshakes, the
  sequential 125-cycle polyphase FIR of Fig. 5);
- :mod:`~repro.archs.fpga.rtl_ddc` — the full-DDC top level, verified
  bit-for-bit against :class:`repro.dsp.ddc.FixedDDC`;
- :mod:`~repro.archs.fpga.resources` — the LE / memory-bit / multiplier
  estimator regenerating Table 4;
- :mod:`~repro.archs.fpga.power` — the PowerPlay-style static +
  toggle-linear dynamic power model fitted to the published calibration
  points (Table 5 and the 57.98 mW Cyclone II figure);
- :mod:`~repro.archs.fpga.model` — the :class:`ArchitectureModel` facade.
"""

from .devices import CYCLONE_I_EP1C3, CYCLONE_II_EP2C5, FPGADevice
from .resources import ResourceUsage, estimate_ddc_resources
from .power import FPGAPowerModel, PowerBreakdown
from .rtl_ddc import RTLDDC
from .model import CycloneModel

__all__ = [
    "FPGADevice",
    "CYCLONE_I_EP1C3",
    "CYCLONE_II_EP2C5",
    "ResourceUsage",
    "estimate_ddc_resources",
    "FPGAPowerModel",
    "PowerBreakdown",
    "RTLDDC",
    "CycloneModel",
]
