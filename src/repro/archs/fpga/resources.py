"""FPGA resource estimation — the synthesis-results model behind Table 4.

Quartus maps the VHDL DDC onto logic elements (LEs), M4K memory bits,
embedded multipliers and pins.  This module estimates the same quantities
from the DDC configuration with an explicit per-block cost model:

- registered adders/subtractors cost ``width`` LEs (one LE = 4-LUT + FF);
- a ``w x w`` soft multiplier costs ``alpha * w**2`` LEs on devices without
  embedded multipliers (Cyclone I) and 2 embedded 9-bit multipliers per
  12x12 product on devices that have them (Cyclone II: 4 products -> the
  published 8/26);
- control (counters, valid pipelining, FSMs) is charged per component;
- the FIR sample RAM, coefficient ROM and NCO sine ROM go to M4K bits.

The constant ``alpha`` and the control overheads are calibrated so the
reference design reproduces the published utilisation (1656 LE on the
Cyclone I, 906 LE on the Cyclone II, ~6.8-7.7 kbit of memory, 41 pins);
the *model structure* — which blocks dominate, how costs scale with widths
and decimations — is what the ablation benches exercise.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...config import DDCConfig, REFERENCE_DDC
from ...errors import ConfigurationError, MappingError
from ...fixedpoint import cic_bit_growth, fir_accumulator_bits
from .devices import FPGADevice

#: LEs per product bit for an LE-based multiplier (calibrated).
_ALPHA_MULT = 0.85
#: Control overhead per CIC (counter + valid logic), LEs.
_CTRL_CIC = 18
#: Control overhead of the sequential FIR FSM (address counters,
#: trigger logic, quantiser), LEs.
_CTRL_FIR = 35
#: NCO control: phase accumulator + ROM addressing, LEs.
_CTRL_NCO = 30
#: Top-level glue (I/O registers, reset tree), LEs.
_CTRL_TOP = 40
#: Cyclone II LEs pack arithmetic chains more densely (dedicated
#: add/carry mode); calibrated against the published 906-LE figure.
_CYCLONE_II_PACKING = 0.75


@dataclass(frozen=True)
class ResourceUsage:
    """Estimated device utilisation of one DDC implementation."""

    logic_elements: int
    memory_bits: int
    multipliers_9bit: int
    pins: int

    def fits(self, device: FPGADevice) -> bool:
        """True if the design fits the device."""
        return (
            self.logic_elements <= device.logic_elements
            and self.memory_bits <= device.memory_bits
            and self.multipliers_9bit <= device.multipliers_9bit
            and self.pins <= device.user_pins
        )

    def utilisation(self, device: FPGADevice) -> dict[str, float]:
        """Fractions used per resource class (Table 4's percentages)."""
        return {
            "logic_elements": self.logic_elements / device.logic_elements,
            "memory_bits": self.memory_bits / device.memory_bits,
            "multipliers_9bit": (
                self.multipliers_9bit / device.multipliers_9bit
                if device.multipliers_9bit
                else 0.0
            ),
            "pins": self.pins / device.user_pins,
        }


def _soft_multiplier_les(w1: int, w2: int) -> int:
    """LE cost of a soft multiplier."""
    return math.ceil(_ALPHA_MULT * w1 * w2)


def _embedded_mults_for(w1: int, w2: int) -> int:
    """9-bit embedded multiplier blocks for a w1 x w2 product.

    Cyclone II embedded multipliers are 18x18 blocks that can split into
    two independent 9x9s; Quartus reports them in 9-bit units.  Any product
    up to 18x18 therefore occupies one 18x18 block = *2* reported 9-bit
    multipliers — which is how the paper's four 12x12 products (two mixer,
    two FIR) show up as "8 / 26" in Table 4.
    """
    return 2 * math.ceil(w1 / 18) * math.ceil(w2 / 18)


def estimate_ddc_resources(
    device: FPGADevice,
    config: DDCConfig = REFERENCE_DDC,
    fir_taps_impl: int | None = None,
    lut_bits: int = 6,
) -> ResourceUsage:
    """Estimate the Table 4 row for ``config`` on ``device``.

    ``fir_taps_impl`` defaults to ``config.fir_taps - 1`` (the paper's 124-
    tap trick); ``lut_bits`` is the sine ROM depth (the paper's memory
    budget implies a small table, 64 entries by default).
    """
    w = config.data_width
    if fir_taps_impl is None:
        fir_taps_impl = config.fir_taps - 1

    use_embedded = device.multipliers_9bit > 0
    les = _CTRL_TOP
    mults = 0

    # ---------------------------------------------------------- NCO + mixer
    les += 32 + _CTRL_NCO  # 32-bit phase accumulator
    for _ in range(2):  # two mixer products (I and Q)
        if use_embedded:
            mults += _embedded_mults_for(w, w)
            les += 2 * w  # product register + rounding
        else:
            les += _soft_multiplier_les(w, w) + w

    # ----------------------------------------------------------- CIC stages
    for order, decimation in (
        (config.cic2_order, config.cic2_decimation),
        (config.cic5_order, config.cic5_decimation),
    ):
        if order == 0 or decimation == 1:
            continue
        internal = w + cic_bit_growth(order, decimation)
        per_rail = 2 * order * internal  # integrators + combs (adder+reg)
        les += 2 * per_rail + 2 * _CTRL_CIC  # both rails

    # ------------------------------------------------------------------ FIR
    acc_w = fir_accumulator_bits(w, w, fir_taps_impl)
    for _ in range(2):  # two rails
        if use_embedded:
            mults += _embedded_mults_for(w, w)
            les += acc_w + _CTRL_FIR  # accumulator + FSM
        else:
            les += _soft_multiplier_les(w, w) + acc_w + _CTRL_FIR

    # --------------------------------------------------------------- memory
    fir_ram_bits = 2 * fir_taps_impl * w          # sample rings, I and Q
    fir_rom_bits = 2 * (fir_taps_impl + 1) * w    # coefficient ROMs
    nco_rom_bits = (1 << lut_bits) * w            # shared sine table
    memory_bits = fir_ram_bits + fir_rom_bits + nco_rom_bits
    if device.family == "Cyclone II":
        # Quartus pads M4K contents to 9-bit lanes on Cyclone II (parity
        # bits are usable there), inflating the reported bit count.
        memory_bits = math.ceil(memory_bits * 1.13)

    # ----------------------------------------------------------------- pins
    pins = w + 2 * w + 5  # ADC in, I/Q out, clk/rst/valids

    if device.family == "Cyclone II":
        les = math.ceil(les * _CYCLONE_II_PACKING)

    usage = ResourceUsage(
        logic_elements=les,
        memory_bits=memory_bits,
        multipliers_9bit=mults,
        pins=pins,
    )
    return usage


@functools.lru_cache(maxsize=None)
def _cic_growth_cached(order: int, decimation: int) -> int:
    """Memoised :func:`~repro.fixedpoint.cic_bit_growth` — the integer
    bookkeeping the batch estimator shares, value for value, with the
    scalar path (same helper, so bit-growth can never diverge)."""
    return cic_bit_growth(order, decimation)


@functools.lru_cache(maxsize=None)
def _fir_acc_cached(width: int, taps_impl: int) -> int:
    """Memoised :func:`~repro.fixedpoint.fir_accumulator_bits`."""
    return fir_accumulator_bits(width, width, taps_impl)


def estimate_ddc_resources_batch(
    device: FPGADevice,
    configs: Sequence[DDCConfig],
    lut_bits: int = 6,
) -> tuple[list[ResourceUsage | None], list[Exception | None]]:
    """Vectorised :func:`estimate_ddc_resources` over a configuration axis.

    One numpy pass over the LE/memory/multiplier/pin arithmetic: every
    per-config quantity accumulates elementwise in the same operation
    order as the scalar estimator (integer adds and the same
    ``math.ceil``-equivalent roundings), and the word-length bookkeeping
    rides the identical :func:`~repro.fixedpoint.cic_bit_growth` /
    :func:`~repro.fixedpoint.fir_accumulator_bits` helpers (memoised per
    distinct operand pair), so each returned :class:`ResourceUsage` is
    bit-identical to ``estimate_ddc_resources(device, config)``.

    Returns ``(usages, errors)`` in the struct-of-arrays batch idiom: a
    configuration whose word-length analysis is degenerate (e.g. a
    single-tap FIR, whose implemented tap count is zero) gets ``None``
    and the scalar-identical :class:`~repro.errors.ConfigurationError`
    instead of aborting the batch.
    """
    n = len(configs)
    if n == 0:
        return [], []
    errors: list[Exception | None] = [None] * n
    w = np.array([c.data_width for c in configs], dtype=np.int64)
    taps_impl = np.array(
        [c.fir_taps - 1 for c in configs], dtype=np.int64
    )

    use_embedded = device.multipliers_9bit > 0
    les = np.full(n, _CTRL_TOP, dtype=np.int64)
    mults = np.zeros(n, dtype=np.int64)

    # ---------------------------------------------------------- NCO + mixer
    les += 32 + _CTRL_NCO
    # one 18x18 block (reported as 2 9-bit units) per <=18-bit product
    embedded_units = 2 * (-(-w // 18)) * (-(-w // 18))
    soft_les = np.ceil(_ALPHA_MULT * w * w).astype(np.int64)
    for _ in range(2):  # two mixer products (I and Q)
        if use_embedded:
            mults += embedded_units
            les += 2 * w
        else:
            les += soft_les + w

    # ----------------------------------------------------------- CIC stages
    for orders, decims in (
        (
            np.array([c.cic2_order for c in configs], dtype=np.int64),
            np.array([c.cic2_decimation for c in configs], dtype=np.int64),
        ),
        (
            np.array([c.cic5_order for c in configs], dtype=np.int64),
            np.array([c.cic5_decimation for c in configs], dtype=np.int64),
        ),
    ):
        present = (orders != 0) & (decims != 1)
        growth = np.array(
            [
                _cic_growth_cached(int(o), int(d)) if p else 0
                for o, d, p in zip(orders, decims, present)
            ],
            dtype=np.int64,
        )
        internal = w + growth
        per_rail = 2 * orders * internal
        les += np.where(present, 2 * per_rail + 2 * _CTRL_CIC, 0)

    # ------------------------------------------------------------------ FIR
    acc_list = []
    for i, (wi, t) in enumerate(zip(w, taps_impl)):
        try:
            acc_list.append(_fir_acc_cached(int(wi), int(t)))
        except (ConfigurationError, MappingError) as exc:
            errors[i] = exc
            acc_list.append(0)
    acc_w = np.array(acc_list, dtype=np.int64)
    for _ in range(2):  # two rails
        if use_embedded:
            mults += embedded_units
            les += acc_w + _CTRL_FIR
        else:
            les += soft_les + acc_w + _CTRL_FIR

    # --------------------------------------------------------------- memory
    fir_ram_bits = 2 * taps_impl * w
    fir_rom_bits = 2 * (taps_impl + 1) * w
    nco_rom_bits = (1 << lut_bits) * w
    memory_bits = fir_ram_bits + fir_rom_bits + nco_rom_bits
    if device.family == "Cyclone II":
        memory_bits = np.ceil(memory_bits * 1.13).astype(np.int64)

    # ----------------------------------------------------------------- pins
    pins = w + 2 * w + 5

    if device.family == "Cyclone II":
        les = np.ceil(les * _CYCLONE_II_PACKING).astype(np.int64)

    usages = [
        None
        if errors[i] is not None
        else ResourceUsage(
            logic_elements=int(les[i]),
            memory_bits=int(memory_bits[i]),
            multipliers_9bit=int(mults[i]),
            pins=int(pins[i]),
        )
        for i in range(n)
    ]
    return usages, errors


def require_fit(usage: ResourceUsage, device: FPGADevice) -> None:
    """Raise :class:`MappingError` when the design does not fit."""
    if not usage.fits(device):
        util = usage.utilisation(device)
        over = {k: f"{v:.0%}" for k, v in util.items() if v > 1.0}
        raise MappingError(
            f"design does not fit {device.name}: over budget on {over}"
        )
