"""PowerPlay-style FPGA power model (paper Section 5.2.2, Table 5).

Quartus' PowerPlay decomposes power into a static part and a dynamic part
whose logic contribution is linear in the internal toggle rate.  The
published Cyclone I sweep *is* linear to better than 0.5 mW:

====================  =======  =======  =======  ========
internal toggle rate     5 %     10 %     50 %     87.5 %
dynamic (mW)            72.9     93.4    257.2     410.8
====================  =======  =======  =======  ========

fit: ``dynamic = 52.4 mW + 409.6 mW * toggle``.  We decompose the model as

    P = P_static + P_clock_io * (f / f_cal) + k * LE * f * toggle

with the device constants of :mod:`repro.archs.fpga.devices` fitted so the
published points are reproduced exactly on the Cyclone I and the published
57.98 mW total on the Cyclone II.  The input toggle rate enters the
clock/IO intercept; the paper holds it at 50 % ("random data") and so does
the default here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigurationError
from .devices import FPGADevice
from .resources import ResourceUsage


@dataclass(frozen=True)
class PowerBreakdown:
    """Static/dynamic decomposition, Table 5's three rows."""

    static_w: float
    clock_io_w: float
    logic_w: float

    @property
    def dynamic_w(self) -> float:
        """Dynamic = clock/IO + toggle-dependent logic."""
        return self.clock_io_w + self.logic_w

    @property
    def total_w(self) -> float:
        """Total thermal power."""
        return self.static_w + self.dynamic_w

    @property
    def total_mw(self) -> float:
        """Total in mW (the paper's unit)."""
        return self.total_w * 1e3


class FPGAPowerModel:
    """Estimates DDC power on a device from utilisation and activity."""

    def __init__(self, device: FPGADevice) -> None:
        self.device = device

    def estimate(
        self,
        usage: ResourceUsage,
        frequency_hz: float = 64_512_000.0,
        internal_toggle: float = 0.10,
        input_toggle: float = 0.50,
    ) -> PowerBreakdown:
        """Power at the given clock and toggle rates.

        ``internal_toggle`` is the design-average fraction of internal bits
        toggling per cycle (Table 5's sweep variable); ``input_toggle``
        scales the I/O part of the intercept around the 50 % calibration
        point.
        """
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if not 0.0 <= internal_toggle <= 1.0:
            raise ConfigurationError("internal_toggle must be in [0, 1]")
        if not 0.0 <= input_toggle <= 1.0:
            raise ConfigurationError("input_toggle must be in [0, 1]")
        dev = self.device
        f_ratio = frequency_hz / dev.calibration_frequency_hz
        # Half the intercept is I/O (scales with input toggle), half is the
        # clock tree (toggle independent).
        clock_w = 0.5 * dev.clock_io_power_w * f_ratio
        io_w = 0.5 * dev.clock_io_power_w * f_ratio * (input_toggle / 0.5)
        logic_w = (
            dev.logic_power_w_per_le_hz_toggle
            * usage.logic_elements
            * frequency_hz
            * internal_toggle
        )
        return PowerBreakdown(
            static_w=dev.static_power_w,
            clock_io_w=clock_w + io_w,
            logic_w=logic_w,
        )

    def estimate_batch(
        self,
        usage,
        toggle_rates,
        frequency_hz=64_512_000.0,
        input_toggle: float = 0.50,
    ) -> list[PowerBreakdown]:
        """Batched :meth:`estimate` over a whole grid of operating points.

        One numpy pass instead of a Python loop; each breakdown is
        bit-identical to the scalar estimate at the same point (same
        operation order in float64).

        Any of ``usage`` (a :class:`ResourceUsage` or a sequence of
        them), ``toggle_rates`` and ``frequency_hz`` may be a grid; they
        broadcast against each other, so both the Table 5 toggle sweep
        (one usage, many toggles) and the batched architecture model
        (many usages/frequencies, one toggle) ride this entry point.
        """
        import numpy as np

        toggles = np.asarray(toggle_rates, dtype=np.float64)
        if isinstance(usage, ResourceUsage):
            les = np.asarray(float(usage.logic_elements))
        else:
            les = np.array(
                [u.logic_elements for u in usage], dtype=np.float64
            )
        freqs = np.asarray(frequency_hz, dtype=np.float64)
        if toggles.ndim > 1 or les.ndim > 1 or freqs.ndim > 1:
            raise ConfigurationError(
                "batch axes must be scalars or one-dimensional grids"
            )
        try:
            shape = np.broadcast_shapes(
                toggles.shape, les.shape, freqs.shape
            )
        except ValueError:
            raise ConfigurationError(
                "usage, toggle_rates and frequency_hz grids must broadcast"
            ) from None
        if int(np.prod(shape, dtype=np.int64)) == 0 or shape == ():
            raise ConfigurationError(
                "toggle_rates must be a non-empty one-dimensional grid"
            )
        if float(toggles.min()) < 0.0 or float(toggles.max()) > 1.0:
            raise ConfigurationError("internal_toggle must be in [0, 1]")
        if float(freqs.min()) <= 0:
            raise ConfigurationError("frequency must be positive")
        if not 0.0 <= input_toggle <= 1.0:
            raise ConfigurationError("input_toggle must be in [0, 1]")
        dev = self.device
        f_ratio = freqs / dev.calibration_frequency_hz
        clock_w = np.broadcast_to(
            0.5 * dev.clock_io_power_w * f_ratio
            + 0.5 * dev.clock_io_power_w * f_ratio * (input_toggle / 0.5),
            shape,
        )
        logic_w = np.broadcast_to(
            dev.logic_power_w_per_le_hz_toggle * les * freqs * toggles,
            shape,
        )
        return [
            PowerBreakdown(
                static_w=dev.static_power_w,
                clock_io_w=float(cw),
                logic_w=float(lw),
            )
            for cw, lw in zip(clock_w, logic_w)
        ]

    def table5_sweep(
        self,
        usage: ResourceUsage,
        toggle_rates: tuple[float, ...] = (0.05, 0.10, 0.50, 0.875),
        frequency_hz: float = 64_512_000.0,
        workers: int | None = None,
    ) -> list[tuple[float, PowerBreakdown]]:
        """The Table 5 sweep: (toggle, breakdown) pairs.

        Rides :meth:`estimate_batch` (one numpy pass); ``workers`` instead
        fans scalar estimates out over a thread pool (see
        :mod:`repro.parallel`).  Both paths produce bit-identical
        breakdowns in input order.
        """
        if workers and workers > 1:
            from ...parallel import parallel_map

            breakdowns = parallel_map(
                lambda t: self.estimate(usage, frequency_hz,
                                        internal_toggle=t),
                toggle_rates,
                workers=workers,
            )
        else:
            breakdowns = self.estimate_batch(usage, toggle_rates, frequency_hz)
        return list(zip(toggle_rates, breakdowns))
