"""Vectorised block-execution helpers for the FPGA RTL models.

The cycle-accurate simulation commits every wire on every clock edge and
counts toggles one XOR/popcount at a time.  Block mode computes the same
driven-value *streams* with numpy in one pass, so toggle activity has to be
recovered analytically.  The key observation: a wire only changes value on
the cycles it is driven (it holds otherwise), so the total toggle count of
a run equals the popcount of XORs between *consecutive driven values*,
starting from the reset value.  For data buses the driven-value stream is
exactly the sample stream the block engine already computes, which makes
the reconstruction exact, not approximate.

Valid strobes are the one exception handled by formula: a decimated valid
line rises and falls once per emitted word (two toggles per word), and a
streaming valid line rises once at the start and falls once when the input
is exhausted.
"""

from __future__ import annotations

import numpy as np

from ...simkernel.trace import ActivityReport, WireActivity
from ...simkernel.wire import Wire

_U64_MASK = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def popcount_sum(values: np.ndarray) -> int:
    """Total number of set bits across an unsigned integer array."""
    arr = np.ascontiguousarray(values, dtype=np.uint64)
    if arr.size == 0:
        return 0
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return int(np.bitwise_count(arr).sum())
    return int(np.unpackbits(arr.view(np.uint8)).sum())  # pragma: no cover


def stream_toggles(values: np.ndarray, width: int, initial: int = 0) -> int:
    """Toggles accumulated by a wire driven with ``values`` in sequence.

    ``values`` are the signed words committed to the wire (holds between
    them contribute nothing); ``initial`` is the wire's reset value.
    Matches :meth:`repro.simkernel.wire.Wire.commit` bit for bit.
    """
    v = np.asarray(values)
    if v.size == 0:
        return 0
    mask = _U64_MASK if width >= 64 else np.uint64((1 << width) - 1)
    seq = np.empty(v.size + 1, dtype=np.uint64)
    seq[0] = np.uint64(initial & ((1 << width) - 1))
    # int -> uint64 view is the two's-complement bit pattern.
    seq[1:] = v.astype(np.int64).astype(np.uint64)
    seq &= mask
    return popcount_sum(seq[1:] ^ seq[:-1])


def strobe_toggles(n_words: int) -> int:
    """Toggles of a 1-bit valid line pulsing high once per emitted word.

    Emissions are separated by at least one idle cycle in every decimating
    stage of the reference chain, so each word costs one rise + one fall.
    """
    return 2 * n_words if n_words > 0 else 0


def streaming_valid_toggles(n_samples: int, deasserts: bool = True) -> int:
    """Toggles of a valid line held high for a back-to-back input burst."""
    if n_samples <= 0:
        return 0
    return 2 if deasserts else 1


def build_activity_report(
    wires: dict[str, Wire],
    toggles_by_wire: dict[str, int],
    cycles: int,
) -> ActivityReport:
    """Assemble an :class:`ActivityReport` from per-wire toggle counts.

    Every registered wire appears in the report (unlisted wires as idle),
    mirroring the shape of a cycle-accurate
    :meth:`~repro.simkernel.scheduler.Simulator.activity_report`.
    """
    acts = tuple(
        WireActivity(name, w.width, int(toggles_by_wire.get(name, 0)), cycles)
        for name, w in wires.items()
    )
    return ActivityReport(cycles=cycles, wires=acts)
