"""Cyclone device catalog (paper Section 5.1, Tables 4 and 5).

Only the quantities the paper uses are modelled: logic element count, M4K
RAM blocks (512 bytes each), user pins, embedded 9-bit multipliers, PLLs,
technology node, and the achieved f_max of the DDC design on each device
(66.08 MHz on the Cyclone I, 80.87 MHz on the Cyclone II).

Power-model calibration constants live here too because they are device
properties: the static power and the PowerPlay dynamic decomposition fitted
to the published points (see :mod:`repro.archs.fpga.power`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...energy.technology import TECH_90NM, TECH_130NM, TechnologyNode
from ...errors import ConfigurationError


@dataclass(frozen=True)
class FPGADevice:
    """One FPGA device entry.

    Attributes mirror the figures quoted in Section 5.1 / Table 4, plus
    fitted power constants (see :class:`repro.archs.fpga.power.FPGAPowerModel`):

    - ``static_power_w``: leakage, toggle independent;
    - ``clock_io_power_w``: dynamic intercept at the DDC's 64.512 MHz run
      (clock tree + 50 %-toggling I/O), scaled linearly with frequency;
    - ``logic_power_w_per_le_hz_toggle``: dynamic logic energy constant
      ``k`` such that P_logic = k * LEs * f * toggle_rate.
    """

    name: str
    family: str
    technology: TechnologyNode
    logic_elements: int
    m4k_blocks: int
    user_pins: int
    multipliers_9bit: int
    plls: int
    fmax_ddc_hz: float
    static_power_w: float
    clock_io_power_w: float
    logic_power_w_per_le_hz_toggle: float
    calibration_frequency_hz: float = 64_512_000.0

    def __post_init__(self) -> None:
        if self.logic_elements <= 0 or self.m4k_blocks < 0:
            raise ConfigurationError("invalid device resource counts")

    @property
    def memory_bits(self) -> int:
        """Total block-RAM bits: each M4K block stores 512 bytes of data
        (per the paper: "Each RAM block provides a storage space of 512
        bytes") plus parity, giving the datasheet 4608 bits; the paper's
        Table 4 denominators (59,904 / 119,808) are block count x 4608."""
        return self.m4k_blocks * 4608


#: Altera Cyclone I EP1C3T100C6 — smallest Cyclone I (Section 5.2).
#: Power constants fitted to Table 5: static 48.0 mW; dynamic
#: 52.4 mW intercept + 409.6 mW/toggle slope at 64.512 MHz (the published
#: sweep 72.9/93.4/257.2/410.8 mW at 5/10/50/87.5 % is linear to <0.5 mW).
CYCLONE_I_EP1C3 = FPGADevice(
    name="EP1C3T100C6",
    family="Cyclone I",
    technology=TECH_130NM,
    logic_elements=2910,
    m4k_blocks=13,
    user_pins=65,
    multipliers_9bit=0,
    plls=1,
    fmax_ddc_hz=66_080_000.0,
    static_power_w=0.0480,
    clock_io_power_w=0.0524,
    logic_power_w_per_le_hz_toggle=0.4096 / (1656 * 64_512_000.0),
)

#: Altera Cyclone II EP2C5T144C6 — smallest Cyclone II.
#: Static 26.86 mW (published); logic constant scaled from the Cyclone I fit
#: by the 0.09/0.13 capacitance ratio (same 1.2 V supply as the reference
#: node in the paper's rule); the clock/IO intercept is then fixed by the
#: published 31.11 mW dynamic at 10 % internal toggle and 906 LEs.
CYCLONE_II_EP2C5 = FPGADevice(
    name="EP2C5T144C6",
    family="Cyclone II",
    technology=TECH_90NM,
    logic_elements=4608,
    m4k_blocks=26,
    user_pins=89,
    multipliers_9bit=26,
    plls=2,
    fmax_ddc_hz=80_870_000.0,
    static_power_w=0.02686,
    clock_io_power_w=0.03111
    - (0.4096 / (1656 * 64_512_000.0)) * (0.09 / 0.13) * 906 * 64_512_000.0 * 0.10,
    logic_power_w_per_le_hz_toggle=(0.4096 / (1656 * 64_512_000.0)) * (0.09 / 0.13),
)
