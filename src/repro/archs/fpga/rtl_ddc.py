"""Full-DDC FPGA top level on the simulation kernel.

Wires the RTL components into the paper's Fig. 1 structure (both I and Q
rails), feeds ADC samples one per clock at 64.512 MHz, collects the 24 kHz
outputs, and exposes the toggle-activity report that drives the power
model.

The top level is verified bit-for-bit against
:class:`repro.dsp.ddc.FixedDDC` in ``tests/test_fpga_rtl.py`` — the same
words must appear on the output buses in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...config import DDCConfig, REFERENCE_DDC
from ...dsp.firdesign import quantize_taps, reference_fir_taps
from ...errors import ConfigurationError
from ...simkernel import ClockDomain, Component, Simulator, Wire
from ...simkernel.trace import ActivityReport
from .block import (
    build_activity_report,
    stream_toggles,
    streaming_valid_toggles,
    strobe_toggles,
)
from .rtl_cic import RTLCIC
from .rtl_fir import RTLPolyphaseFIR
from .rtl_nco import RTLNCOMixer


class _InputSource(Component):
    """Drives one ADC sample per clock from a preloaded array."""

    def __init__(self, name: str, data: Wire, valid: Wire) -> None:
        super().__init__(name)
        self.add_output("x", data)
        self.add_output("x_valid", valid)
        self._samples: list[int] = []
        self._pos = 0

    def load(self, samples: np.ndarray) -> None:
        self._samples = [int(v) for v in samples]
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._samples)

    def tick(self, cycle: int) -> None:
        if self._pos < len(self._samples):
            self.write("x", self._samples[self._pos])
            self.write("x_valid", 1)
            self._pos += 1
        else:
            self.write("x_valid", 0)


class _OutputSink(Component):
    """Collects (i, q) words whenever both rails' valids assert."""

    def __init__(
        self, name: str, i: Wire, iv: Wire, q: Wire, qv: Wire
    ) -> None:
        super().__init__(name)
        self.add_input("i", i)
        self.add_input("i_valid", iv)
        self.add_input("q", q)
        self.add_input("q_valid", qv)
        self.i_samples: list[int] = []
        self.q_samples: list[int] = []

    def reset(self) -> None:
        self.i_samples.clear()
        self.q_samples.clear()

    def tick(self, cycle: int) -> None:
        if self.read("i_valid"):
            self.i_samples.append(self.read("i"))
        if self.read("q_valid"):
            self.q_samples.append(self.read("q"))


@dataclass
class RTLRunResult:
    """Outputs and activity of one RTL simulation run."""

    i: np.ndarray
    q: np.ndarray
    cycles: int
    activity: ActivityReport


class RTLDDC:
    """The complete FPGA DDC: NCO/mixer + 2x(CIC2, CIC5, FIR)."""

    def __init__(
        self,
        config: DDCConfig = REFERENCE_DDC,
        lut_bits: int = 10,
        fir_taps: np.ndarray | None = None,
    ) -> None:
        if config.cic2_order < 1 or config.cic2_decimation < 2:
            raise ConfigurationError(
                "the RTL top level implements the reference two-CIC chain"
            )
        self.config = config
        w = config.data_width
        if fir_taps is None:
            fir_rate = config.input_rate_hz / (
                config.cic2_decimation * config.cic5_decimation
            )
            fir_taps = reference_fir_taps(
                config.fir_taps, fir_rate, config.output_rate_hz
            )
        taps_raw, tap_fmt = quantize_taps(np.asarray(fir_taps), w)
        self.taps_raw = taps_raw

        sim = Simulator(ClockDomain("clk", config.input_rate_hz))
        self.sim = sim

        from ...fixedpoint import cic_bit_growth, fir_accumulator_bits

        g2 = w + cic_bit_growth(config.cic2_order, config.cic2_decimation)
        g5 = w + cic_bit_growth(config.cic5_order, config.cic5_decimation)
        acc_w = fir_accumulator_bits(w, w, len(taps_raw))
        addr_w = max(2, (len(taps_raw) - 1).bit_length() + 1)

        x = sim.wire("adc", w)
        xv = sim.wire("adc_valid", 1)
        self.source = sim.add(_InputSource("source", x, xv))

        i_mix = sim.wire("i_mix", w)
        q_mix = sim.wire("q_mix", w)
        mix_v = sim.wire("mix_valid", 1)
        self.nco = sim.add(
            RTLNCOMixer(
                "nco_mixer", x, xv, i_mix, q_mix, mix_v,
                sim.wire("nco_phase", 32),
                sim.wire("nco_cos", w), sim.wire("nco_sin", w),
                frequency_hz=config.nco_frequency_hz,
                sample_rate_hz=config.input_rate_hz,
                data_width=w, lut_bits=lut_bits,
            )
        )

        def rail(tag: str, mixed: Wire) -> tuple[Wire, Wire]:
            c2_y = sim.wire(f"{tag}_cic2", w)
            c2_v = sim.wire(f"{tag}_cic2_valid", 1)
            cic2 = sim.add(
                RTLCIC(
                    f"cic2_{tag}", mixed, mix_v, c2_y, c2_v,
                    sim.wire(f"{tag}_cic2_int", g2),
                    sim.wire(f"{tag}_cic2_comb", g2),
                    config.cic2_order, config.cic2_decimation, w,
                )
            )
            c5_y = sim.wire(f"{tag}_cic5", w)
            c5_v = sim.wire(f"{tag}_cic5_valid", 1)
            cic5 = sim.add(
                RTLCIC(
                    f"cic5_{tag}", c2_y, c2_v, c5_y, c5_v,
                    sim.wire(f"{tag}_cic5_int", g5),
                    sim.wire(f"{tag}_cic5_comb", g5),
                    config.cic5_order, config.cic5_decimation, w,
                )
            )
            out = sim.wire(f"{tag}_out", w)
            out_v = sim.wire(f"{tag}_out_valid", 1)
            fir = sim.add(
                RTLPolyphaseFIR(
                    f"fir_{tag}", c5_y, c5_v, out, out_v,
                    sim.wire(f"{tag}_fir_acc", acc_w),
                    sim.wire(f"{tag}_fir_addr", addr_w),
                    taps_raw, config.fir_decimation, w,
                    output_shift=max(0, tap_fmt.frac),
                )
            )
            self._rails[tag] = (cic2, cic5, fir)
            return out, out_v

        self._rails: dict[str, tuple[RTLCIC, RTLCIC, RTLPolyphaseFIR]] = {}
        i_out, i_v = rail("i", i_mix)
        q_out, q_v = rail("q", q_mix)
        self.sink = sim.add(_OutputSink("sink", i_out, i_v, q_out, q_v))

    def run(
        self,
        samples: np.ndarray,
        drain_cycles: int | None = None,
        mode: str | None = None,
        activity: bool = True,
        *,
        engine: str | None = None,
    ) -> RTLRunResult:
        """Feed ``samples`` (one per clock) and collect outputs.

        ``drain_cycles`` extra cycles flush the pipeline after the last
        input (default: enough for the FIR latency).

        ``engine`` selects the execution engine (default ``"cycle"``;
        ``mode=`` is the deprecated spelling of the same knob and keeps
        working behind a ``DeprecationWarning``):

        - ``"cycle"`` — the cycle-accurate simulation kernel, one clock
          edge per Python iteration.  This is the oracle.
        - ``"block"`` — the vectorised fast path: each RTL component's
          ``process_block`` runs the bit-true numpy models over the whole
          burst, cycle counts are derived analytically (one input per
          clock plus the drain), and the activity report is reconstructed
          from the driven-value streams.  Outputs are bit-identical to the
          cycle path run with a sufficient drain (the default); block mode
          always returns every triggered output, whereas a too-small
          ``drain_cycles`` truncates the cycle path's pipeline.  Component
          state advances identically, but the kernel wires themselves are
          not exercised (``reset`` still clears everything).  Block-mode
          activity assumes the run started from a freshly reset design.

        ``activity=False`` skips toggle accounting in either mode — the
        returned report then carries zero toggles — which is the right
        setting for functional and throughput runs.
        """
        from ...compat import resolve_engine_kwarg

        mode = resolve_engine_kwarg("RTLDDC.run", engine, mode, "cycle")
        samples = np.asarray(samples)
        if not np.issubdtype(samples.dtype, np.integer):
            raise ConfigurationError("RTL DDC input must be raw integers")
        if drain_cycles is None:
            drain_cycles = len(self.taps_raw) + 16
        if mode == "cycle":
            self.sim.activity = activity
            self.source.load(samples)
            self.sim.step(len(samples) + drain_cycles)
            report = (
                self.sim.activity_report()
                if activity
                # The wires may hold stale counters from earlier activity
                # runs; honour the opt-out with an explicitly zeroed report.
                else build_activity_report(self.sim._wires, {}, self.sim.cycle)
            )
            return RTLRunResult(
                i=np.array(self.sink.i_samples, dtype=np.int64),
                q=np.array(self.sink.q_samples, dtype=np.int64),
                cycles=self.sim.cycle,
                activity=report,
            )
        if mode == "block":
            return self._run_block(samples, drain_cycles, activity)
        raise ConfigurationError(f"unknown RTL run engine {mode!r}")

    def _run_block(
        self, samples: np.ndarray, drain_cycles: int, activity: bool
    ) -> RTLRunResult:
        """The vectorised execution engine behind ``run(mode="block")``."""
        x = samples.astype(np.int64, copy=False)
        n = x.size
        if n:
            # Cycle mode rejects out-of-range samples at the adc wire;
            # keep the fast path equally strict.
            w = self.config.data_width
            lo, hi = -(1 << (w - 1)), (1 << (w - 1)) - 1
            if int(x.min()) < lo or int(x.max()) > hi:
                raise ConfigurationError(
                    f"RTL DDC input sample out of the {w}-bit adc range"
                )
        cycles = n + drain_cycles
        internals: dict[str, dict[str, np.ndarray]] | None = (
            {} if activity else None
        )

        def probes(name: str) -> dict[str, np.ndarray] | None:
            if internals is None:
                return None
            return internals.setdefault(name, {})

        i_mix, q_mix = self.nco.process_block(x, internals=probes("nco"))
        rail_out: dict[str, np.ndarray] = {}
        rail_streams: dict[str, tuple[np.ndarray, ...]] = {}
        for tag, mixed in (("i", i_mix), ("q", q_mix)):
            cic2, cic5, fir = self._rails[tag]
            c2 = cic2.process_block(mixed, internals=probes(f"cic2_{tag}"))
            c5 = cic5.process_block(c2, internals=probes(f"cic5_{tag}"))
            out = fir.process_block(c5, internals=probes(f"fir_{tag}"))
            rail_out[tag] = out
            rail_streams[tag] = (mixed, c2, c5, out)

        report = (
            self._block_activity(x, rail_streams, internals, cycles)
            if internals is not None
            else build_activity_report(self.sim._wires, {}, cycles)
        )
        return RTLRunResult(
            i=rail_out["i"], q=rail_out["q"], cycles=cycles, activity=report,
        )

    def _block_activity(
        self,
        x: np.ndarray,
        rail_streams: dict[str, tuple[np.ndarray, ...]],
        internals: dict[str, dict[str, np.ndarray]],
        cycles: int,
    ) -> ActivityReport:
        """Reconstruct the cycle-accurate toggle counts from block streams.

        Every data bus's committed-value sequence is known exactly (wires
        hold between valid strobes), so the reconstruction matches the
        cycle-accurate simulation bit for bit; only the 1-bit valid lines
        use the closed-form strobe count.
        """
        wires = self.sim._wires
        n = x.size
        toggles: dict[str, int] = {}

        def add_stream(name: str, values: np.ndarray) -> None:
            toggles[name] = stream_toggles(values, wires[name].width)

        add_stream("adc", x)
        toggles["adc_valid"] = streaming_valid_toggles(n)
        toggles["mix_valid"] = streaming_valid_toggles(n)
        nco = internals["nco"]
        add_stream("nco_phase", nco["phase"])
        add_stream("nco_cos", nco["cos"])
        add_stream("nco_sin", nco["sin"])
        for tag in ("i", "q"):
            mixed, c2, c5, out = rail_streams[tag]
            add_stream(f"{tag}_mix", mixed)
            add_stream(f"{tag}_cic2", c2)
            add_stream(f"{tag}_cic5", c5)
            add_stream(f"{tag}_out", out)
            toggles[f"{tag}_cic2_valid"] = strobe_toggles(len(c2))
            toggles[f"{tag}_cic5_valid"] = strobe_toggles(len(c5))
            toggles[f"{tag}_out_valid"] = strobe_toggles(len(out))
            cic2_p = internals[f"cic2_{tag}"]
            add_stream(f"{tag}_cic2_int", cic2_p["int_top"])
            add_stream(f"{tag}_cic2_comb", cic2_p["comb_out"])
            cic5_p = internals[f"cic5_{tag}"]
            add_stream(f"{tag}_cic5_int", cic5_p["int_top"])
            add_stream(f"{tag}_cic5_comb", cic5_p["comb_out"])
            fir_p = internals[f"fir_{tag}"]
            add_stream(f"{tag}_fir_acc", fir_p["acc"])
            add_stream(f"{tag}_fir_addr", fir_p["mac_addr"])
        return build_activity_report(wires, toggles, cycles)

    def reset(self) -> None:
        """Reset the whole design (wires, components, statistics)."""
        self.sim.reset()


def ddc_workload_mapping():
    """The DDC workload's FPGA mapping descriptor (see
    :mod:`repro.workloads`): the structural RTL design run through the
    block engine, bit-identical to the cycle-accurate oracle."""
    from ...config import REFERENCE_DDC
    from ...workloads.base import WorkloadMapping

    def run(samples, config=REFERENCE_DDC, engine="block"):
        return RTLDDC(config).run(samples, engine=engine)

    return WorkloadMapping(
        architecture="Altera Cyclone",
        description=(
            "structural RTL DDC (NCO ROM + CIC rails + sequential "
            "polyphase FIR); engine='block' is the vectorised fast path, "
            "engine='cycle' the cycle-accurate oracle"
        ),
        run=run,
    )
