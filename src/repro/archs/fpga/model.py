"""FPGA architecture facade for the Table 7 comparison.

Combines the resource estimator and the power model into an
:class:`~repro.archs.base.ArchitectureModel`: estimate utilisation, check
the design fits and meets timing (f_max from Section 5.2.1), and report
power at the paper's assumed 10 % internal toggle rate.
"""

from __future__ import annotations

from ...config import DDCConfig, REFERENCE_DDC
from ...errors import MappingError
from ..base import ArchitectureModel, Flexibility, ImplementationReport
from .devices import CYCLONE_II_EP2C5, FPGADevice
from .power import FPGAPowerModel
from .resources import estimate_ddc_resources, require_fit


class CycloneModel(ArchitectureModel):
    """Altera Cyclone I/II implementation of the DDC."""

    def __init__(
        self,
        device: FPGADevice = CYCLONE_II_EP2C5,
        internal_toggle: float = 0.10,
        input_toggle: float = 0.50,
    ) -> None:
        self.device = device
        self.internal_toggle = internal_toggle
        self.input_toggle = input_toggle
        self.power_model = FPGAPowerModel(device)
        self.name = f"Altera {device.family} {device.name}"

    def supports(self, config: DDCConfig) -> bool:
        """Fit + timing check."""
        try:
            usage = estimate_ddc_resources(self.device, config)
            require_fit(usage, self.device)
        except MappingError:
            return False
        return config.input_rate_hz <= self.device.fmax_ddc_hz

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        usage = estimate_ddc_resources(self.device, config)
        require_fit(usage, self.device)
        clock_hz = config.input_rate_hz
        feasible = clock_hz <= self.device.fmax_ddc_hz
        power = self.power_model.estimate(
            usage, clock_hz, self.internal_toggle, self.input_toggle
        )
        return ImplementationReport(
            architecture=f"Altera {self.device.family}",
            technology=self.device.technology,
            clock_hz=clock_hz,
            power_w=power.total_w,
            area_mm2=None,
            flexibility=Flexibility.RECONFIGURABLE,
            feasible=feasible,
            notes=(
                f"{usage.logic_elements} LEs, {usage.memory_bits} memory "
                f"bits, {usage.multipliers_9bit} embedded 9-bit multipliers; "
                f"{self.internal_toggle:.0%} internal / "
                f"{self.input_toggle:.0%} input toggle assumed"
            ),
        )

    def dynamic_power_w(self, config: DDCConfig = REFERENCE_DDC) -> float:
        """Dynamic-only power (the component the paper scales for the
        Cyclone II 0.13 um estimate in Table 7)."""
        usage = estimate_ddc_resources(self.device, config)
        power = self.power_model.estimate(
            usage, config.input_rate_hz, self.internal_toggle, self.input_toggle
        )
        return power.dynamic_w
