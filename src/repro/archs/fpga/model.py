"""FPGA architecture facade for the Table 7 comparison.

Combines the resource estimator and the power model into an
:class:`~repro.archs.base.ArchitectureModel`: estimate utilisation, check
the design fits and meets timing (f_max from Section 5.2.1), and report
power at the paper's assumed 10 % internal toggle rate.
"""

from __future__ import annotations

from typing import Sequence

from ...config import DDCConfig, REFERENCE_DDC
from ...errors import ConfigurationError, MappingError
from ..base import (
    ArchitectureModel,
    BatchImplementationReport,
    Flexibility,
    ImplementationReport,
)
from .devices import CYCLONE_II_EP2C5, FPGADevice
from .power import FPGAPowerModel
from .resources import (
    ResourceUsage,
    estimate_ddc_resources,
    estimate_ddc_resources_batch,
    require_fit,
)


class CycloneModel(ArchitectureModel):
    """Altera Cyclone I/II implementation of the DDC."""

    def __init__(
        self,
        device: FPGADevice = CYCLONE_II_EP2C5,
        internal_toggle: float = 0.10,
        input_toggle: float = 0.50,
    ) -> None:
        self.device = device
        self.internal_toggle = internal_toggle
        self.input_toggle = input_toggle
        self.power_model = FPGAPowerModel(device)
        self.name = f"Altera {device.family} {device.name}"

    def supports(self, config: DDCConfig) -> bool:
        """Fit + timing check."""
        try:
            usage = estimate_ddc_resources(self.device, config)
            require_fit(usage, self.device)
        except MappingError:
            return False
        return config.input_rate_hz <= self.device.fmax_ddc_hz

    def _report(
        self, config: DDCConfig, usage: ResourceUsage, total_w: float
    ) -> ImplementationReport:
        """Assemble the Table 7 row (shared by scalar and batched paths)."""
        clock_hz = config.input_rate_hz
        return ImplementationReport(
            architecture=f"Altera {self.device.family}",
            technology=self.device.technology,
            clock_hz=clock_hz,
            power_w=total_w,
            area_mm2=None,
            flexibility=Flexibility.RECONFIGURABLE,
            feasible=clock_hz <= self.device.fmax_ddc_hz,
            notes=(
                f"{usage.logic_elements} LEs, {usage.memory_bits} memory "
                f"bits, {usage.multipliers_9bit} embedded 9-bit multipliers; "
                f"{self.internal_toggle:.0%} internal / "
                f"{self.input_toggle:.0%} input toggle assumed"
            ),
        )

    def implement(self, config: DDCConfig = REFERENCE_DDC) -> ImplementationReport:
        usage = estimate_ddc_resources(self.device, config)
        require_fit(usage, self.device)
        power = self.power_model.estimate(
            usage, config.input_rate_hz, self.internal_toggle,
            self.input_toggle,
        )
        return self._report(config, usage, power.total_w)

    def implement_batch(
        self, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """Batched :meth:`implement` over a configuration axis.

        Resource estimation is one
        :func:`~repro.archs.fpga.resources.estimate_ddc_resources_batch`
        numpy pass (bit-identical integer bookkeeping); designs that do
        not fit re-run the scalar :func:`require_fit` to record the
        scalar-identical :class:`~repro.errors.MappingError`, and the
        power arithmetic for every mappable configuration is one
        :meth:`FPGAPowerModel.estimate_batch` numpy pass, bit-identical
        to the scalar estimates.
        """
        estimated, errors = estimate_ddc_resources_batch(
            self.device, configs
        )
        usages: list[ResourceUsage | None] = []
        for i, usage in enumerate(estimated):
            if usage is not None and not usage.fits(self.device):
                try:
                    require_fit(usage, self.device)
                except (ConfigurationError, MappingError) as exc:
                    errors[i] = exc
                    usage = None
            usages.append(usage)
        mappable = [i for i, u in enumerate(usages) if u is not None]
        reports: list[ImplementationReport | None] = [None] * len(configs)
        if mappable:
            breakdowns = self.power_model.estimate_batch(
                [usages[i] for i in mappable],
                self.internal_toggle,
                [configs[i].input_rate_hz for i in mappable],
                self.input_toggle,
            )
            for i, power in zip(mappable, breakdowns):
                usage = usages[i]
                assert usage is not None
                reports[i] = self._report(configs[i], usage, power.total_w)
        return BatchImplementationReport.from_reports(
            f"Altera {self.device.family}", reports, errors
        )

    def dynamic_power_w(self, config: DDCConfig = REFERENCE_DDC) -> float:
        """Dynamic-only power (the component the paper scales for the
        Cyclone II 0.13 um estimate in Table 7)."""
        usage = estimate_ddc_resources(self.device, config)
        power = self.power_model.estimate(
            usage, config.input_rate_hz, self.internal_toggle, self.input_toggle
        )
        return power.dynamic_w

    def dynamic_power_batch(self, configs: Sequence[DDCConfig]) -> list[float]:
        """Batched :meth:`dynamic_power_w`: one
        :func:`~repro.archs.fpga.resources.estimate_ddc_resources_batch`
        pass plus one :meth:`FPGAPowerModel.estimate_batch` pass over the
        axis.  A configuration the estimator rejects raises exactly the
        scalar :meth:`dynamic_power_w` error."""
        if not configs:
            return []
        estimated, errors = estimate_ddc_resources_batch(
            self.device, configs
        )
        usages = []
        for usage, error in zip(estimated, errors):
            if error is not None:
                raise error
            usages.append(usage)
        breakdowns = self.power_model.estimate_batch(
            usages,
            self.internal_toggle,
            [c.input_rate_hz for c in configs],
            self.input_toggle,
        )
        return [b.dynamic_w for b in breakdowns]

    def cache_key(self) -> tuple:
        return (
            type(self).__qualname__, self.device.name,
            self.internal_toggle, self.input_toggle,
        )
