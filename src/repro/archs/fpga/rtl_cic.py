"""RTL CIC decimator (integrator chain + decimating comb chain).

Section 5.2.1: "The integrating part of the CIC filter has a counter to
register the number of processed inputs.  If this part should deliver a
value to the comb part, it makes its output valid signal high for one clock
cycle.  The comb component reads the signal and processes it.  This way the
comb part of the CIC filters receives decimated information."

One :class:`RTLCIC` component owns both parts for one rail.  Arithmetic is
identical to :class:`repro.dsp.cic.FixedCICDecimator`: wrapping integrators
at the Hogenauer width, comb subtractions at the same width, and output
truncation back to the 12-bit bus.  The integrator registers and the comb
output are exposed on probe wires so toggle activity is observable.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ...fixedpoint import QFormat, cic_bit_growth, wrap
from ...simkernel import Component, Wire


class RTLCIC(Component):
    """Bit-true decimating CIC for one data rail.

    Ports
    -----
    in: ``x`` (data_width), ``x_valid`` (1)
    out: ``y`` (out_width), ``y_valid`` (1)
    probe out: ``int_top`` (internal width) — last integrator register;
    ``comb_out`` (internal width) — pre-truncation comb result.
    """

    def __init__(
        self,
        name: str,
        x: Wire,
        x_valid: Wire,
        y: Wire,
        y_valid: Wire,
        int_probe: Wire,
        comb_probe: Wire,
        order: int,
        decimation: int,
        data_width: int = 12,
    ) -> None:
        super().__init__(name)
        if order < 1 or decimation < 1:
            raise ConfigurationError("order and decimation must be >= 1")
        self.add_input("x", x)
        self.add_input("x_valid", x_valid)
        self.add_output("y", y)
        self.add_output("y_valid", y_valid)
        self.add_output("int_top", int_probe)
        self.add_output("comb_out", comb_probe)
        self.order = order
        self.decimation = decimation
        self.data_width = data_width
        growth = cic_bit_growth(order, decimation)
        self.internal_width = data_width + growth
        if self.internal_width > 62:
            raise ConfigurationError("CIC internal width exceeds int64 range")
        self.truncation_shift = growth
        self._mask = (1 << self.internal_width) - 1
        self._half = 1 << (self.internal_width - 1)
        self._out_fmt = QFormat(data_width, 0)
        self.reset()

    def reset(self) -> None:
        self._int = [0] * self.order
        self._comb_delay = [0] * self.order
        self._count = 0

    # ---------------------------------------------------------- block mode
    def process_block(
        self, x: np.ndarray, internals: dict[str, np.ndarray] | None = None
    ) -> np.ndarray:
        """Vectorised equivalent of ``tick`` over a valid sample burst.

        Delegates the arithmetic to the bit-true numpy model
        (:class:`repro.dsp.cic.FixedCICDecimator`), syncing the component's
        integrator/comb/decimator state into it and back out, so block and
        cycle processing can be interleaved freely on one instance.  When
        ``internals`` is a dict, the driven streams of the ``int_top`` and
        ``comb_out`` probes are stored in it.
        """
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.integer):
            raise ConfigurationError("CIC block input must be integers")
        x = x.astype(np.int64, copy=False)
        if x.size == 0:
            if internals is not None:
                empty = np.empty(0, dtype=np.int64)
                internals.update(int_top=empty, comb_out=empty)
            return np.empty(0, dtype=np.int64)
        if internals is not None:
            self._block_internals(x, internals)

        blk = self._block_model()
        blk._int_state[:] = self._int
        blk._comb_state[:, 0] = self._comb_delay
        blk._phase = self._count
        y = blk.process(x)
        self._int = [int(v) for v in blk._int_state]
        self._comb_delay = [int(v) for v in blk._comb_state[:, 0]]
        self._count = blk._phase
        return y

    def _block_model(self):
        """Lazily built FixedCICDecimator mirror (shared, state-synced)."""
        blk = getattr(self, "_block", None)
        if blk is None:
            from ...dsp.cic import FixedCICDecimator

            blk = FixedCICDecimator(
                self.order, self.decimation, input_width=self.data_width
            )
            self._block = blk
        return blk

    def _block_internals(self, x: np.ndarray, internals: dict) -> None:
        """Driven-value streams of the probe wires for this input burst."""
        fmt = QFormat(self.internal_width, 0)
        with np.errstate(over="ignore"):
            y = x
            for s in range(self.order):
                y = wrap(np.cumsum(y) + self._int[s], fmt)
            internals["int_top"] = y
            first = (-self._count) % self.decimation
            z = y[first :: self.decimation]
            for s in range(self.order):
                with_hist = np.concatenate(([self._comb_delay[s]], z))
                z = wrap(with_hist[1:] - with_hist[:-1], fmt)
            internals["comb_out"] = z

    def _wrap(self, v: int) -> int:
        v &= self._mask
        return v - (1 << self.internal_width) if v >= self._half else v

    def tick(self, cycle: int) -> None:
        if not self.read("x_valid"):
            self.write("y_valid", 0)
            return
        x = self.read("x")
        # Integrator cascade (wrapping adds).
        acc = x
        for s in range(self.order):
            self._int[s] = self._wrap(self._int[s] + acc)
            acc = self._int[s]
        self.write("int_top", self._int[-1])

        emit = self._count == 0
        self._count = (self._count + 1) % self.decimation
        if not emit:
            self.write("y_valid", 0)
            return
        # Comb cascade at the decimated rate.
        v = self._int[-1]
        for s in range(self.order):
            prev = self._comb_delay[s]
            self._comb_delay[s] = v
            v = self._wrap(v - prev)
        self.write("comb_out", v)
        y = v >> self.truncation_shift
        self.write("y", y)
        self.write("y_valid", 1)
