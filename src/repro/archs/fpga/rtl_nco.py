"""RTL NCO + mixer front end.

Implements the first stage of the FPGA DDC: a phase accumulator, a sine
ROM (quarter-shifted read for the cosine), and the two mixer multipliers
producing the 12-bit I and Q buses with a data-valid line — the
"NCO ... implemented as explained in section 2" of Section 5.2.1.

The component is bit-true against :class:`repro.dsp.ddc.FixedDDC`'s mixer
stage: same LUT contents, same phase-before-step convention, same
truncate-then-saturate product quantisation.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ...fixedpoint import QFormat, to_fixed
from ...simkernel import Component, Wire


def build_sine_rom(lut_bits: int, width: int) -> list[int]:
    """Sine ROM contents: the FixedDDC LUT (bin-centre grid, Q(w-1))."""
    n = 1 << lut_bits
    fmt = QFormat(width, width - 1)
    table = to_fixed(np.sin(2 * np.pi * (np.arange(n) + 0.5) / n), fmt)
    return [int(v) for v in table]


class RTLNCOMixer(Component):
    """Phase accumulator + sine ROM + I/Q mixer multipliers.

    Ports
    -----
    in: ``x`` (data_width), ``x_valid`` (1)
    out: ``i`` / ``q`` (data_width), ``iq_valid`` (1)
    probe out: ``phase`` (32), ``cos`` / ``sin`` (data_width) — exposed so
    the activity report sees the oscillator's internal node activity.
    """

    def __init__(
        self,
        name: str,
        x: Wire,
        x_valid: Wire,
        i_out: Wire,
        q_out: Wire,
        iq_valid: Wire,
        phase_probe: Wire,
        cos_probe: Wire,
        sin_probe: Wire,
        frequency_hz: float,
        sample_rate_hz: float,
        data_width: int = 12,
        lut_bits: int = 10,
        phase_bits: int = 32,
    ) -> None:
        super().__init__(name)
        if abs(frequency_hz) > sample_rate_hz / 2:
            raise ConfigurationError("NCO frequency must be below Nyquist")
        self.add_input("x", x)
        self.add_input("x_valid", x_valid)
        self.add_output("i", i_out)
        self.add_output("q", q_out)
        self.add_output("iq_valid", iq_valid)
        self.add_output("phase", phase_probe)
        self.add_output("cos", cos_probe)
        self.add_output("sin", sin_probe)
        self.data_width = data_width
        self.lut_bits = lut_bits
        self.phase_bits = phase_bits
        self.rom = build_sine_rom(lut_bits, data_width)
        self._rom_arr = np.asarray(self.rom, dtype=np.int64)
        self.fcw = round(frequency_hz / sample_rate_hz * (1 << phase_bits)) % (
            1 << phase_bits
        )
        self._phase = 0
        self._fmt = QFormat(data_width, 0)

    def reset(self) -> None:
        self._phase = 0

    def process_block(
        self, x: np.ndarray, internals: dict[str, np.ndarray] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised equivalent of ``tick`` over a whole sample block.

        Consumes ``x`` as a back-to-back valid burst and returns the
        ``(i, q)`` bus words; phase state carries across calls exactly like
        the cycle-accurate path.  When ``internals`` is a dict, the driven
        streams of the probe ports (``phase``, ``cos``, ``sin``) are stored
        in it for analytic toggle accounting.
        """
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.integer):
            raise ConfigurationError("NCO mixer block input must be integers")
        x = x.astype(np.int64, copy=False)
        n = x.size
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            if internals is not None:
                internals.update(phase=empty, cos=empty, sin=empty)
            return empty, empty

        pb, lb = self.phase_bits, self.lut_bits
        mask = np.uint64((1 << pb) - 1)
        fcw = np.uint64(self.fcw)
        phases = (
            np.uint64(self._phase) + fcw * np.arange(n, dtype=np.uint64)
        ) & mask
        idx = (phases >> np.uint64(pb - lb)).astype(np.intp)
        n_lut = 1 << lb
        sin_v = self._rom_arr[idx]
        cos_v = self._rom_arr[(idx + n_lut // 4) % n_lut]

        shift = self.data_width - 1
        i_val = (x * cos_v) >> shift
        q_val = (-(x * sin_v)) >> shift
        lo, hi = self._fmt.min_raw, self._fmt.max_raw
        i_val = np.clip(i_val, lo, hi)
        q_val = np.clip(q_val, lo, hi)

        if internals is not None:
            # The phase probe shows the accumulator *after* the step, as a
            # 32-bit signed view — mirroring tick's hardcoded conversion
            # (the probe wire is 32 bits wide regardless of phase_bits).
            ph = ((phases + fcw) & mask).astype(np.int64)
            ph = np.where(ph >= np.int64(1) << 31, ph - (np.int64(1) << 32), ph)
            internals.update(phase=ph, cos=cos_v, sin=sin_v)

        self._phase = (self._phase + self.fcw * n) % (1 << pb)
        return i_val, q_val

    def tick(self, cycle: int) -> None:
        if not self.read("x_valid"):
            self.write("iq_valid", 0)
            return
        x = self.read("x")
        n_lut = 1 << self.lut_bits
        idx = self._phase >> (self.phase_bits - self.lut_bits)
        sin_v = self.rom[idx]
        cos_v = self.rom[(idx + n_lut // 4) % n_lut]
        self._phase = (self._phase + self.fcw) % (1 << self.phase_bits)

        shift = self.data_width - 1
        i_val = (x * cos_v) >> shift
        q_val = (-(x * sin_v)) >> shift
        i_val = max(self._fmt.min_raw, min(self._fmt.max_raw, i_val))
        q_val = max(self._fmt.min_raw, min(self._fmt.max_raw, q_val))

        self.write("i", i_val)
        self.write("q", q_val)
        self.write("iq_valid", 1)
        # probes: signed 32-bit view of the accumulator
        ph = self._phase if self._phase < 1 << 31 else self._phase - (1 << 32)
        self.write("phase", ph)
        self.write("cos", cos_v)
        self.write("sin", sin_v)
