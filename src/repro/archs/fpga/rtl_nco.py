"""RTL NCO + mixer front end.

Implements the first stage of the FPGA DDC: a phase accumulator, a sine
ROM (quarter-shifted read for the cosine), and the two mixer multipliers
producing the 12-bit I and Q buses with a data-valid line — the
"NCO ... implemented as explained in section 2" of Section 5.2.1.

The component is bit-true against :class:`repro.dsp.ddc.FixedDDC`'s mixer
stage: same LUT contents, same phase-before-step convention, same
truncate-then-saturate product quantisation.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ...fixedpoint import QFormat, to_fixed
from ...simkernel import Component, Wire


def build_sine_rom(lut_bits: int, width: int) -> list[int]:
    """Sine ROM contents: the FixedDDC LUT (bin-centre grid, Q(w-1))."""
    n = 1 << lut_bits
    fmt = QFormat(width, width - 1)
    table = to_fixed(np.sin(2 * np.pi * (np.arange(n) + 0.5) / n), fmt)
    return [int(v) for v in table]


class RTLNCOMixer(Component):
    """Phase accumulator + sine ROM + I/Q mixer multipliers.

    Ports
    -----
    in: ``x`` (data_width), ``x_valid`` (1)
    out: ``i`` / ``q`` (data_width), ``iq_valid`` (1)
    probe out: ``phase`` (32), ``cos`` / ``sin`` (data_width) — exposed so
    the activity report sees the oscillator's internal node activity.
    """

    def __init__(
        self,
        name: str,
        x: Wire,
        x_valid: Wire,
        i_out: Wire,
        q_out: Wire,
        iq_valid: Wire,
        phase_probe: Wire,
        cos_probe: Wire,
        sin_probe: Wire,
        frequency_hz: float,
        sample_rate_hz: float,
        data_width: int = 12,
        lut_bits: int = 10,
        phase_bits: int = 32,
    ) -> None:
        super().__init__(name)
        if abs(frequency_hz) > sample_rate_hz / 2:
            raise ConfigurationError("NCO frequency must be below Nyquist")
        self.add_input("x", x)
        self.add_input("x_valid", x_valid)
        self.add_output("i", i_out)
        self.add_output("q", q_out)
        self.add_output("iq_valid", iq_valid)
        self.add_output("phase", phase_probe)
        self.add_output("cos", cos_probe)
        self.add_output("sin", sin_probe)
        self.data_width = data_width
        self.lut_bits = lut_bits
        self.phase_bits = phase_bits
        self.rom = build_sine_rom(lut_bits, data_width)
        self.fcw = round(frequency_hz / sample_rate_hz * (1 << phase_bits)) % (
            1 << phase_bits
        )
        self._phase = 0
        self._fmt = QFormat(data_width, 0)

    def reset(self) -> None:
        self._phase = 0

    def tick(self, cycle: int) -> None:
        if not self.read("x_valid"):
            self.write("iq_valid", 0)
            return
        x = self.read("x")
        n_lut = 1 << self.lut_bits
        idx = self._phase >> (self.phase_bits - self.lut_bits)
        sin_v = self.rom[idx]
        cos_v = self.rom[(idx + n_lut // 4) % n_lut]
        self._phase = (self._phase + self.fcw) % (1 << self.phase_bits)

        shift = self.data_width - 1
        i_val = (x * cos_v) >> shift
        q_val = (-(x * sin_v)) >> shift
        i_val = max(self._fmt.min_raw, min(self._fmt.max_raw, i_val))
        q_val = max(self._fmt.min_raw, min(self._fmt.max_raw, q_val))

        self.write("i", i_val)
        self.write("q", q_val)
        self.write("iq_valid", 1)
        # probes: signed 32-bit view of the accumulator
        ph = self._phase if self._phase < 1 << 31 else self._phase - (1 << 32)
        self.write("phase", ph)
        self.write("cos", cos_v)
        self.write("sin", sin_v)
