"""RTL sequential polyphase FIR (paper Fig. 5).

Section 5.2.1: "It has been decided to implement the filter as a sequential
algorithm. ... The sequential implementation makes the logic cells run at
the full clock speed of 64.512 MHz. ... The filter calculates its result,
once it has received D samples from the CIC5. ... Every cycle a coefficient
and the corresponding input are read from the ROM and the RAM.  These
values are multiplied with each other and the result is added to the
intermediate result.  When all inputs are processed, the result is
delivered on the output and valid becomes active for one clock cycle."

The MAC loop, the 31-bit intermediate result and the truncate+saturate
output quantiser ("the 11 least significant bits ... and a sign bit; in
case of saturation the maximum or the minimum value is returned") are
implemented cycle-by-cycle.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError, SimulationError
from ...fixedpoint import QFormat, fir_accumulator_bits
from ...simkernel import Component, Wire


class RTLPolyphaseFIR(Component):
    """Sequential decimating FIR for one rail, bit-true vs FixedPolyphase.

    Ports
    -----
    in: ``x`` (data_width), ``x_valid`` (1)
    out: ``y`` (data_width), ``y_valid`` (1)
    probe out: ``acc`` (accumulator width), ``mac_addr`` (ceil(log2(taps))+1)
    """

    def __init__(
        self,
        name: str,
        x: Wire,
        x_valid: Wire,
        y: Wire,
        y_valid: Wire,
        acc_probe: Wire,
        addr_probe: Wire,
        taps_raw: np.ndarray,
        decimation: int,
        data_width: int = 12,
        output_shift: int | None = None,
    ) -> None:
        super().__init__(name)
        taps_raw = np.asarray(taps_raw)
        if not np.issubdtype(taps_raw.dtype, np.integer):
            raise ConfigurationError("taps_raw must be integers")
        if decimation < 1:
            raise ConfigurationError("decimation must be >= 1")
        self.add_input("x", x)
        self.add_input("x_valid", x_valid)
        self.add_output("y", y)
        self.add_output("y_valid", y_valid)
        self.add_output("acc", acc_probe)
        self.add_output("mac_addr", addr_probe)
        self.rom = [int(v) for v in taps_raw]
        self._taps_arr = np.asarray(self.rom, dtype=np.int64)
        self.taps = len(self.rom)
        self.decimation = decimation
        self.data_width = data_width
        self.acc_width = fir_accumulator_bits(data_width, data_width, self.taps)
        self.output_shift = (
            data_width - 1 if output_shift is None else output_shift
        )
        self._out_fmt = QFormat(data_width, 0)
        self.reset()

    def reset(self) -> None:
        self.ram = [0] * self.taps
        self._widx = 0          # next write position in the sample ring
        self._count = 0         # inputs since the last triggered output
        self._busy = False
        self._k = 0             # MAC step
        self._acc = 0

    # The cycle budget of Section 5.2.1: taps MAC cycles + 1 output cycle.
    def cycles_per_output(self) -> int:
        """Clock cycles from trigger to valid output (taps + 1)."""
        return self.taps + 1

    # ---------------------------------------------------------- block mode
    def _ram_chronological(self) -> np.ndarray:
        """Sample ring contents ordered oldest to newest."""
        widx, taps = self._widx, self.taps
        ram = np.asarray(self.ram, dtype=np.int64)
        return np.concatenate([ram[widx:], ram[:widx]])

    def process_block(
        self, x: np.ndarray, internals: dict[str, np.ndarray] | None = None
    ) -> np.ndarray:
        """Vectorised equivalent of ``tick`` over a valid sample burst.

        Delegates to the bit-true numpy model
        (:class:`repro.dsp.fir.FixedPolyphaseDecimator`), syncing the ring
        RAM and decimator phase into it and back, so block and cycle
        processing interleave freely.  Must not be called while the
        sequential MAC loop is mid-flight.  When ``internals`` is a dict,
        the driven streams of the ``acc`` and ``mac_addr`` probes are
        stored in it.
        """
        if self._busy:
            raise SimulationError(
                f"{self.name}: process_block while the MAC loop is busy"
            )
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.integer):
            raise ConfigurationError("FIR block input must be integers")
        x = x.astype(np.int64, copy=False)
        if x.size == 0:
            if internals is not None:
                empty = np.empty(0, dtype=np.int64)
                internals.update(acc=empty, mac_addr=empty)
            return np.empty(0, dtype=np.int64)

        ordered = self._ram_chronological()
        if internals is not None:
            self._block_internals(x, ordered, internals)

        blk = self._block_model()
        blk._hist = ordered[1:].copy() if self.taps > 1 else ordered[:0]
        blk._offset = self._count
        y = blk.process(x)

        full = np.concatenate([ordered, x])
        self.ram = [int(v) for v in full[-self.taps :]]
        self._widx = 0
        self._count = blk._offset
        return y

    def _block_model(self):
        """Lazily built FixedPolyphaseDecimator mirror (state-synced)."""
        blk = getattr(self, "_block", None)
        if blk is None:
            from ...dsp.fir import FixedPolyphaseDecimator

            blk = FixedPolyphaseDecimator(
                self._taps_arr,
                self.decimation,
                data_width=self.data_width,
                coeff_width=self.data_width,
                output_shift=self.output_shift,
            )
            self._block = blk
        return blk

    def _block_internals(
        self, x: np.ndarray, ordered: np.ndarray, internals: dict
    ) -> None:
        """Driven-value streams of the MAC probes for this input burst."""
        hist = ordered[1:] if self.taps > 1 else ordered[:0]
        buf = np.concatenate([hist, x])
        first = (-self._count) % self.decimation
        pos = np.arange(first, x.size, self.decimation)
        if pos.size == 0:
            empty = np.empty(0, dtype=np.int64)
            internals.update(acc=empty, mac_addr=empty)
            return
        idx = pos[:, None] + hist.size - np.arange(self.taps)[None, :]
        prod = buf[idx] * self._taps_arr[None, :]
        internals["acc"] = np.cumsum(prod, axis=1).ravel()
        internals["mac_addr"] = np.tile(
            np.arange(self.taps, dtype=np.int64), pos.size
        )

    def tick(self, cycle: int) -> None:
        out_valid = 0

        if self.read("x_valid"):
            # Store the incoming sample at the ring position.
            self.ram[self._widx] = self.read("x")
            self._widx = (self._widx + 1) % self.taps
            trigger = self._count == 0
            self._count = (self._count + 1) % self.decimation
            if trigger:
                if self._busy:
                    raise SimulationError(
                        f"{self.name}: new FIR trigger while MAC loop busy"
                    )
                self._busy = True
                self._k = 0
                self._acc = 0

        if self._busy:
            # One MAC per cycle: coefficient k against sample x[i - k].
            ridx = (self._widx - 1 - self._k) % self.taps
            self._acc += self.rom[self._k] * self.ram[ridx]
            self.write("acc", self._acc)
            self.write("mac_addr", self._k)
            self._k += 1
            if self._k == self.taps:
                self._busy = False
                val = self._acc >> self.output_shift
                val = max(self._out_fmt.min_raw,
                          min(self._out_fmt.max_raw, val))
                self.write("y", val)
                out_valid = 1

        self.write("y_valid", out_valid)
