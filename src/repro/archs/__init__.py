"""Executable models of the paper's five target architectures.

- :mod:`repro.archs.asic` — the TI GC4016 quad-DDC chip and the customised
  low-power DDC ASIC (Section 3);
- :mod:`repro.archs.gpp` — the ARM922T general-purpose processor with an
  instruction-level simulator and profiler (Section 4);
- :mod:`repro.archs.fpga` — the Altera Cyclone I/II RTL implementation,
  resource estimator and PowerPlay-style power model (Section 5);
- :mod:`repro.archs.montium` — the Montium Tile Processor and the paper's
  hand mapping of the DDC onto its five ALUs (Section 6).

Every architecture exposes an :class:`~repro.archs.base.ArchitectureModel`
implementation so :mod:`repro.energy.comparison` can build Table 7.
"""

from .base import (
    ArchitectureModel,
    BatchImplementationReport,
    ImplementationReport,
)

__all__ = [
    "ArchitectureModel",
    "BatchImplementationReport",
    "ImplementationReport",
]
