"""Scalar fixed-point value wrapper.

:class:`FixedWord` bundles a raw integer with its :class:`~repro.fixedpoint.
qformat.QFormat` and provides arithmetic with explicit, hardware-like
semantics.  It is deliberately scalar and simple — the hot paths of the
library use the vectorised functions in :mod:`repro.fixedpoint.ops`; the
wrapper exists for readability in component models, tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FixedPointError
from .qformat import QFormat
from .ops import Overflow, Rounding, requantize, saturate, to_fixed, wrap


@dataclass(frozen=True)
class FixedWord:
    """An immutable fixed-point scalar: raw two's-complement value + format."""

    raw: int
    fmt: QFormat

    def __post_init__(self) -> None:
        if not isinstance(self.raw, int):
            raise FixedPointError(f"raw must be int, got {type(self.raw).__name__}")
        if not self.fmt.contains_raw(self.raw):
            raise FixedPointError(
                f"raw value {self.raw} does not fit {self.fmt}"
            )

    # ------------------------------------------------------------- factories
    @classmethod
    def from_real(
        cls,
        value: float,
        fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "FixedWord":
        """Quantise a real value into ``fmt``."""
        raw = int(to_fixed(value, fmt, rounding, overflow))
        return cls(raw, fmt)

    @classmethod
    def zero(cls, fmt: QFormat) -> "FixedWord":
        """The zero word in ``fmt``."""
        return cls(0, fmt)

    # ------------------------------------------------------------ conversion
    @property
    def value(self) -> float:
        """Real value represented by this word."""
        return self.raw * self.fmt.scale

    def cast(
        self,
        fmt: QFormat,
        rounding: Rounding = Rounding.TRUNCATE,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "FixedWord":
        """Requantise into another format."""
        raw = int(requantize(self.raw, self.fmt, fmt, rounding, overflow))
        return FixedWord(raw, fmt)

    # ------------------------------------------------------------ arithmetic
    def _binary(self, other: "FixedWord", op: str, overflow: Overflow) -> "FixedWord":
        if not isinstance(other, FixedWord):
            raise FixedPointError(f"cannot {op} FixedWord with {type(other).__name__}")
        if other.fmt.frac != self.fmt.frac:
            raise FixedPointError(
                f"{op} requires matching fraction bits: {self.fmt} vs {other.fmt}"
            )
        fmt = self.fmt if self.fmt.width >= other.fmt.width else other.fmt
        raw = self.raw + other.raw if op == "add" else self.raw - other.raw
        if overflow is Overflow.SATURATE:
            raw = int(saturate(raw, fmt))
        else:
            raw = int(wrap(raw, fmt))
        return FixedWord(raw, fmt)

    def add(self, other: "FixedWord", overflow: Overflow = Overflow.SATURATE) -> "FixedWord":
        """Addition with the given overflow policy (same fraction bits)."""
        return self._binary(other, "add", overflow)

    def sub(self, other: "FixedWord", overflow: Overflow = Overflow.SATURATE) -> "FixedWord":
        """Subtraction with the given overflow policy (same fraction bits)."""
        return self._binary(other, "sub", overflow)

    def mul(self, other: "FixedWord") -> "FixedWord":
        """Full-precision product; result format grows like a hardware
        multiplier (sum of widths and fraction bits)."""
        if not isinstance(other, FixedWord):
            raise FixedPointError(f"cannot mul FixedWord with {type(other).__name__}")
        fmt = self.fmt.for_product(other.fmt)
        if fmt.width > 64:
            raise FixedPointError(f"product format {fmt} exceeds 64 bits")
        return FixedWord(self.raw * other.raw, fmt)

    def __add__(self, other: "FixedWord") -> "FixedWord":
        return self.add(other)

    def __sub__(self, other: "FixedWord") -> "FixedWord":
        return self.sub(other)

    def __mul__(self, other: "FixedWord") -> "FixedWord":
        return self.mul(other)

    def __neg__(self) -> "FixedWord":
        return FixedWord(int(saturate(-self.raw, self.fmt)), self.fmt)

    def __float__(self) -> float:
        return self.value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:+.6g} ({self.fmt}, raw={self.raw})"
