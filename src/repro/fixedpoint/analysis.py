"""Word-length growth analysis for decimating filter chains.

The paper sizes its FPGA data paths "in such a way that overflow cannot
occur" (Section 5.2.1): the polyphase FIR keeps a 31-bit intermediate result
for 12-bit data, and CIC filters must grow by ``N * ceil(log2(R * M))`` bits
(Hogenauer 1981) to guarantee modular-arithmetic correctness.  This module
implements that worst-case analysis so that the hardware models derive their
internal widths instead of hard-coding them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .qformat import QFormat


def cic_gain(order: int, decimation: int, diff_delay: int = 1) -> int:
    """DC gain of an ``order``-stage CIC decimator: ``(R*M)**N``.

    This is the worst-case growth of any internal node, reached at DC.
    """
    _check(order, decimation, diff_delay)
    return (decimation * diff_delay) ** order


def cic_bit_growth(order: int, decimation: int, diff_delay: int = 1) -> int:
    """Number of extra integer bits a CIC needs: ``ceil(N * log2(R*M))``.

    Registers sized ``input_width + growth`` can never overflow in the
    two's-complement (wrap-around) sense that matters for CIC correctness.
    """
    _check(order, decimation, diff_delay)
    return math.ceil(order * math.log2(decimation * diff_delay))


def fir_accumulator_bits(
    input_width: int, coeff_width: int, taps: int
) -> int:
    """Width of an accumulator that can never overflow for a ``taps``-tap FIR.

    Product of a ``w_i``-bit sample and a ``w_c``-bit coefficient needs
    ``w_i + w_c`` bits; summing ``taps`` of them adds ``ceil(log2(taps))``.
    For the paper's FPGA FIR (12-bit data, 12-bit coefficients, 124 taps)
    this gives 12 + 12 + 7 = 31 bits — exactly the 31-bit intermediate
    result bus of Fig. 5.
    """
    if input_width < 1 or coeff_width < 1:
        raise ConfigurationError("widths must be positive")
    if taps < 1:
        raise ConfigurationError(f"taps must be >= 1, got {taps}")
    return input_width + coeff_width + math.ceil(math.log2(taps))


@dataclass(frozen=True)
class StageGrowth:
    """Word-length report for one chain stage."""

    name: str
    input_width: int
    growth_bits: int

    @property
    def internal_width(self) -> int:
        """Register width that guarantees no harmful overflow."""
        return self.input_width + self.growth_bits


def growth_schedule(
    input_fmt: QFormat,
    cic_stages: list[tuple[str, int, int]],
    fir_taps: int,
    coeff_width: int | None = None,
) -> list[StageGrowth]:
    """Full-precision width schedule for a CIC/CIC/.../FIR chain.

    Parameters
    ----------
    input_fmt:
        Format of the chain input (e.g. ``QFormat(12, 11)``).
    cic_stages:
        Sequence of ``(name, order, decimation)`` tuples, applied in order.
        Each stage's output is assumed truncated back to the input width
        (the paper's 12-bit inter-stage buses).
    fir_taps:
        Tap count of the final FIR.
    coeff_width:
        FIR coefficient width; defaults to the data width.

    Returns
    -------
    list of :class:`StageGrowth`, one per CIC stage plus one for the FIR.
    """
    width = input_fmt.width
    schedule: list[StageGrowth] = []
    for name, order, decimation in cic_stages:
        growth = cic_bit_growth(order, decimation)
        schedule.append(StageGrowth(name, width, growth))
    cw = coeff_width if coeff_width is not None else width
    fir_growth = fir_accumulator_bits(width, cw, fir_taps) - width
    schedule.append(StageGrowth(f"FIR{fir_taps}", width, fir_growth))
    return schedule


def measured_peak_growth(samples: np.ndarray, input_fmt: QFormat) -> int:
    """Empirical bit growth of a raw integer signal relative to a format.

    Used by tests and the bit-width ablation to compare the worst-case
    analysis with what real stimuli actually excite.
    """
    arr = np.asarray(samples)
    if arr.size == 0:
        return 0
    peak = max(int(arr.max()), -int(arr.min()) - 1, 0)
    needed = peak.bit_length() + 1  # + sign bit
    return max(0, needed - input_fmt.width)


def _check(order: int, decimation: int, diff_delay: int) -> None:
    if order < 1:
        raise ConfigurationError(f"CIC order must be >= 1, got {order}")
    if decimation < 1:
        raise ConfigurationError(
            f"CIC decimation must be >= 1, got {decimation}"
        )
    if diff_delay < 1:
        raise ConfigurationError(
            f"CIC differential delay must be >= 1, got {diff_delay}"
        )
