"""Fixed-point arithmetic substrate.

All hardware models in this reproduction (the FPGA RTL components, the
Montium ALUs, the ASIC channel models) compute on two's-complement words of
bounded width, exactly like the paper's 12-bit data buses and 31-bit FIR
accumulator.  This package provides:

- :class:`QFormat` — a signed two's-complement format descriptor ``Q(w, f)``
  with ``w`` total bits and ``f`` fraction bits;
- vectorised NumPy operations with explicit overflow behaviour
  (:func:`saturate`, :func:`wrap`) and rounding modes (:func:`quantize`);
- :class:`FixedWord` — a convenience scalar wrapper used in tests and
  examples;
- bit-growth analysis helpers (:func:`cic_bit_growth`,
  :func:`fir_accumulator_bits`) matching the worst-case analysis the paper
  uses to size the FPGA's 31-bit intermediate result bus.
"""

from .qformat import QFormat
from .ops import (
    Overflow,
    Rounding,
    clip_range,
    saturate,
    wrap,
    quantize,
    to_fixed,
    from_fixed,
    add_sat,
    sub_sat,
    mul_full,
    requantize,
)
from .word import FixedWord
from .analysis import (
    cic_bit_growth,
    cic_gain,
    fir_accumulator_bits,
    growth_schedule,
)

__all__ = [
    "QFormat",
    "Overflow",
    "Rounding",
    "clip_range",
    "saturate",
    "wrap",
    "quantize",
    "to_fixed",
    "from_fixed",
    "add_sat",
    "sub_sat",
    "mul_full",
    "requantize",
    "FixedWord",
    "cic_bit_growth",
    "cic_gain",
    "fir_accumulator_bits",
    "growth_schedule",
]
