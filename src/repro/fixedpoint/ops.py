"""Vectorised fixed-point operations with explicit overflow and rounding.

All functions operate on raw integer representations held in ``int64`` NumPy
arrays (or Python ints) and are safe for word lengths up to 62 bits of
result.  Overflow behaviour is always explicit:

- :data:`Overflow.SATURATE` clamps to the representable range, the behaviour
  of the FPGA FIR output stage ("In case of saturation, the maximum or the
  minimum value is returned", Section 5.2.1);
- :data:`Overflow.WRAP` wraps modulo ``2**width``, the behaviour of CIC
  integrators, which rely on modular arithmetic to cancel overflow between
  the integrator and comb sections (Hogenauer's classic result).

Rounding modes cover the two used by real DDC hardware: truncation toward
minus infinity (drop LSBs, what the paper's FPGA quantiser does) and
round-half-up.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from ..errors import FixedPointError
from .qformat import QFormat

ArrayLike = Union[int, float, np.ndarray]


class Overflow(enum.Enum):
    """Overflow policy for fixed-point results."""

    SATURATE = "saturate"
    WRAP = "wrap"


class Rounding(enum.Enum):
    """Rounding policy when discarding fraction bits."""

    TRUNCATE = "truncate"        # floor: drop bits (hardware truncation)
    NEAREST = "nearest"          # round half away from zero
    FLOOR = "floor"              # alias of TRUNCATE semantics


def clip_range(fmt: QFormat) -> tuple[int, int]:
    """Return ``(min_raw, max_raw)`` of a format as plain ints."""
    return fmt.min_raw, fmt.max_raw


def _as_int64(x: ArrayLike) -> np.ndarray:
    arr = np.asarray(x)
    if not np.issubdtype(arr.dtype, np.integer):
        raise FixedPointError(
            f"raw fixed-point values must be integers, got dtype {arr.dtype}"
        )
    return arr.astype(np.int64, copy=False)


def saturate(raw: ArrayLike, fmt: QFormat) -> np.ndarray:
    """Clamp raw values into the representable range of ``fmt``."""
    arr = _as_int64(raw)
    return np.clip(arr, fmt.min_raw, fmt.max_raw)


def wrap(raw: ArrayLike, fmt: QFormat) -> np.ndarray:
    """Wrap raw values modulo ``2**width`` into ``fmt``'s signed range.

    This reproduces two's-complement register behaviour: bits above the
    word width are discarded and the sign bit is re-interpreted.
    """
    arr = _as_int64(raw)
    if fmt.width >= 64:
        # int64 arithmetic is already modulo 2**64; reinterpretation is a no-op.
        return arr.copy()
    # Bias so the sign bit becomes a carry into the masked-off region:
    # ((v + half) mod 2**width) - half maps any v onto [-half, half) while
    # preserving congruence mod 2**width.  Two cheap passes (add folds into
    # the mask's temp) instead of mask + compare + where.
    half = np.int64(1) << (fmt.width - 1)
    mask = (np.int64(1) << fmt.width) - 1
    with np.errstate(over="ignore"):
        return ((arr + half) & mask) - half


def _apply_overflow(raw: np.ndarray, fmt: QFormat, policy: Overflow) -> np.ndarray:
    if policy is Overflow.SATURATE:
        return saturate(raw, fmt)
    if policy is Overflow.WRAP:
        return wrap(raw, fmt)
    raise FixedPointError(f"unknown overflow policy {policy!r}")


def quantize(
    raw: ArrayLike,
    shift: int,
    rounding: Rounding = Rounding.TRUNCATE,
) -> np.ndarray:
    """Discard ``shift`` LSBs from raw values with the given rounding.

    ``shift`` may be zero (no-op) but not negative; widening is a plain
    left shift and needs no rounding decision.
    """
    if shift < 0:
        raise FixedPointError(f"quantize shift must be >= 0, got {shift}")
    arr = _as_int64(raw)
    if shift == 0:
        return arr.copy()
    if rounding in (Rounding.TRUNCATE, Rounding.FLOOR):
        # Arithmetic right shift == floor division by 2**shift.
        return arr >> shift
    if rounding is Rounding.NEAREST:
        half = np.int64(1) << (shift - 1)
        # Round half away from zero to keep the quantiser odd-symmetric.
        return np.where(arr >= 0, (arr + half) >> shift, -((-arr + half) >> shift))
    raise FixedPointError(f"unknown rounding mode {rounding!r}")


def to_fixed(
    value: ArrayLike,
    fmt: QFormat,
    rounding: Rounding = Rounding.NEAREST,
    overflow: Overflow = Overflow.SATURATE,
) -> np.ndarray:
    """Convert real values to raw integers in ``fmt``.

    Rounding happens in floating point (the values are real numbers, not
    raw words), then the overflow policy is applied.
    """
    arr = np.asarray(value, dtype=np.float64)
    scaled = arr * (2.0 ** fmt.frac)
    if rounding is Rounding.NEAREST:
        raw = np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
    elif rounding in (Rounding.TRUNCATE, Rounding.FLOOR):
        raw = np.floor(scaled)
    else:
        raise FixedPointError(f"unknown rounding mode {rounding!r}")
    raw = raw.astype(np.int64)
    return _apply_overflow(raw, fmt, overflow)


def from_fixed(raw: ArrayLike, fmt: QFormat) -> np.ndarray:
    """Convert raw integers in ``fmt`` back to real values (float64)."""
    arr = _as_int64(raw)
    return arr.astype(np.float64) * fmt.scale


def add_sat(a: ArrayLike, b: ArrayLike, fmt: QFormat) -> np.ndarray:
    """Saturating addition of raw values in ``fmt``."""
    result = _as_int64(a) + _as_int64(b)
    return saturate(result, fmt)


def sub_sat(a: ArrayLike, b: ArrayLike, fmt: QFormat) -> np.ndarray:
    """Saturating subtraction of raw values in ``fmt``."""
    result = _as_int64(a) - _as_int64(b)
    return saturate(result, fmt)


def mul_full(a: ArrayLike, b: ArrayLike, a_fmt: QFormat, b_fmt: QFormat) -> np.ndarray:
    """Full-precision product of raw values; result format is
    ``a_fmt.for_product(b_fmt)``.

    Raises :class:`FixedPointError` if the product could exceed int64,
    which would silently corrupt the simulation.
    """
    if a_fmt.width + b_fmt.width > 63:
        raise FixedPointError(
            "product width "
            f"{a_fmt.width}+{b_fmt.width} exceeds the 63-bit safe range"
        )
    return _as_int64(a) * _as_int64(b)


def requantize(
    raw: ArrayLike,
    src: QFormat,
    dst: QFormat,
    rounding: Rounding = Rounding.TRUNCATE,
    overflow: Overflow = Overflow.SATURATE,
) -> np.ndarray:
    """Convert raw values from ``src`` format to ``dst`` format.

    Handles both narrowing (rounding then overflow policy) and widening
    (exact left shift).  This is the single conversion primitive used at
    every stage boundary of the hardware models.
    """
    arr = _as_int64(raw)
    shift = src.frac - dst.frac
    if shift > 0:
        arr = quantize(arr, shift, rounding)
    elif shift < 0:
        if arr.size and (
            int(arr.max(initial=0)) > (fmt_max := (1 << 62)) // (1 << -shift)
            or int(arr.min(initial=0)) < -fmt_max // (1 << -shift)
        ):
            raise FixedPointError("left shift in requantize would overflow int64")
        arr = arr << (-shift)
    return _apply_overflow(arr, dst, overflow)
