"""Two's-complement fixed-point format descriptor.

A :class:`QFormat` describes signed two's-complement words with ``width``
total bits of which ``frac`` are fraction bits.  The representable integer
range is ``[-2**(width-1), 2**(width-1) - 1]`` and the real value of a raw
integer ``r`` is ``r * 2**-frac``.

The paper's data paths map onto this as:

- the 12-bit FPGA data bus → ``QFormat(12, 11)`` (full-scale ±1),
- the 31-bit FIR intermediate result → ``QFormat(31, ...)``,
- the Montium's 16-bit ALU inputs → ``QFormat(16, 15)``,
- the 17-bit east/west ALU ports → ``QFormat(17, 15)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FixedPointError


@dataclass(frozen=True, order=False)
class QFormat:
    """Signed two's-complement fixed-point format.

    Parameters
    ----------
    width:
        Total number of bits, including the sign bit.  Must be in
        ``1..64`` so that raw values fit an ``int64`` NumPy array.
    frac:
        Number of fraction bits.  May be negative (values scaled up) or
        exceed ``width`` (values scaled down); both are valid Q notations.
    """

    width: int
    frac: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.width, int) or not isinstance(self.frac, int):
            raise FixedPointError(
                f"QFormat fields must be ints, got ({self.width!r}, {self.frac!r})"
            )
        if not 1 <= self.width <= 64:
            raise FixedPointError(
                f"QFormat width must be in 1..64, got {self.width}"
            )

    # ------------------------------------------------------------------ raw
    @property
    def min_raw(self) -> int:
        """Most negative representable raw integer."""
        return -(1 << (self.width - 1))

    @property
    def max_raw(self) -> int:
        """Most positive representable raw integer."""
        return (1 << (self.width - 1)) - 1

    @property
    def scale(self) -> float:
        """Real value of one LSB: ``2**-frac``."""
        return 2.0 ** (-self.frac)

    # ----------------------------------------------------------------- real
    @property
    def min_value(self) -> float:
        """Most negative representable real value."""
        return self.min_raw * self.scale

    @property
    def max_value(self) -> float:
        """Most positive representable real value."""
        return self.max_raw * self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable step (same as :attr:`scale`)."""
        return self.scale

    # ------------------------------------------------------------ operators
    def contains_raw(self, raw: int) -> bool:
        """True if ``raw`` is representable in this format."""
        return self.min_raw <= raw <= self.max_raw

    def grow(self, int_bits: int = 0, frac_bits: int = 0) -> "QFormat":
        """Return a wider format with extra integer and/or fraction bits."""
        if int_bits < 0 or frac_bits < 0:
            raise FixedPointError("grow() takes non-negative bit counts")
        return QFormat(self.width + int_bits + frac_bits, self.frac + frac_bits)

    def for_product(self, other: "QFormat") -> "QFormat":
        """Format holding the full product of values in ``self * other``.

        The product of a ``w1``- and a ``w2``-bit signed word needs
        ``w1 + w2 - 1`` bits except for the single corner case
        ``min * min``; hardware multipliers provide ``w1 + w2`` bits, and
        that is what we model.
        """
        return QFormat(self.width + other.width, self.frac + other.frac)

    def for_sum(self, terms: int) -> "QFormat":
        """Format holding the sum of ``terms`` values of this format."""
        if terms < 1:
            raise FixedPointError(f"terms must be >= 1, got {terms}")
        extra = max(0, (terms - 1).bit_length())
        return QFormat(self.width + extra, self.frac)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.width}.{self.frac}"


#: 12-bit bus used throughout the FPGA implementation (Section 5.2.1).
BUS12 = QFormat(12, 11)

#: 31-bit intermediate result of the FPGA polyphase FIR (Fig. 5).
ACC31 = QFormat(31, 22)

#: 16-bit Montium ALU operand format.
MONTIUM16 = QFormat(16, 15)

#: 17-bit Montium east/west neighbour port format.
MONTIUM17 = QFormat(17, 15)
