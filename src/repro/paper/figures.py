"""Figures 1-9: structural figures rendered + executable demonstrations.

The paper's figures are block diagrams (1-8) and one schedule plot (9).
For each we provide a text rendering *and* the executable artefact the
figure describes, so "reproducing the figure" means both drawing it and
running it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DDCConfig, REFERENCE_DDC


@dataclass
class FigureResult:
    """A regenerated figure: text art plus a machine-checkable payload."""

    name: str
    text: str
    payload: object = None

    def render(self) -> str:
        return f"{self.name}\n{self.text}"


def figure1(config: DDCConfig = REFERENCE_DDC) -> FigureResult:
    """Fig. 1: the DDC chain topology (executable: repro.dsp.ddc.DDC)."""
    stages = config.stages()
    parts = [f"Input ({config.input_rate_hz / 1e6:.3f} MHz)"]
    for s in stages[1:]:
        parts.append(f"{s.name} (D={s.decimation})")
    parts.append(f"Output ({config.output_rate_hz / 1e3:.0f} kHz)")
    art = (
        "          +-> [x cos] -> " + " -> ".join(parts[1:]) + "  (I)\n"
        f"{parts[0]} -+   NCO sin/cos\n"
        "          +-> [x -sin] -> " + " -> ".join(parts[1:]) + "  (Q)"
    )
    return FigureResult("Figure 1: DDC algorithm", art, config)


def figure2() -> FigureResult:
    """Fig. 2: CIC2 structure (executable: repro.dsp.cic.CICDecimator)."""
    art = (
        "x[n] ->(+)->(+)-> [decimate R] ->(-)->(-)--> y[m]\n"
        "        ^    ^                    |z-M |z-M\n"
        "        |z-1 |z-1   (2 integrators, 2 combs)"
    )
    from ..dsp.cic import CICDecimator

    return FigureResult("Figure 2: CIC2", art, CICDecimator(2, 16))


def figure3() -> FigureResult:
    """Fig. 3: polyphase FIR (executable: PolyphaseDecimator, D=5, 5 taps)."""
    from ..dsp.fir import PolyphaseDecimator, polyphase_decompose

    taps = np.array([0.1, 0.2, 0.4, 0.2, 0.1])
    phases = polyphase_decompose(taps, 5)
    art = (
        "decimator/control writes x[n] to register n mod 5;\n"
        "every 5th cycle: y = sum_m h[m] * reg[m]\n"
        f"phase rows (h split mod 5): {phases.tolist()}"
    )
    return FigureResult(
        "Figure 3: Polyphase FIR filter with 5 taps and a decimation of 5",
        art,
        PolyphaseDecimator(taps, 5),
    )


def figure4() -> FigureResult:
    """Fig. 4: one GC4016 channel (executable: GC4016Channel)."""
    from ..archs.asic.gc4016 import GC4016Channel

    art = (
        "in -> [NCO mix] -> [CIC5, D=8..4096] -> [CFIR 21 taps, D=2]"
        " -> [PFIR 63 taps, D=2] -> out"
    )
    channel = GC4016Channel(
        input_rate_hz=69.333e6, nco_frequency_hz=10e6, cic_decimation=64
    )
    return FigureResult("Figure 4: Channel of the TI GC4016", art, channel)


def figure8() -> FigureResult:
    """Fig. 8: the NCO+CIC2 configuration of one Montium ALU."""
    from ..archs.montium.ddc_mapping import build_ddc_schedule

    art = (
        "inputs: A=x, B=cos (from LUT memory), C=Reg1, D=Reg2\n"
        "level 2: MAC  Reg1' = x*cos + Reg1   (mix + 1st integration)\n"
        "level 1: ADD  Reg2' = Reg1 + Reg2    (2nd integration)"
    )
    program = build_ddc_schedule()
    op = program.cycles[0][0]  # ALU0's steady-state op
    return FigureResult(
        "Figure 8: NCO and CIC2 on a Montium TP ALU", art, op
    )


def figure_duty_cycle(
    config: DDCConfig = REFERENCE_DDC, steps: int = 101
) -> FigureResult:
    """Duty-cycle winner map of Section 7 (executable: repro.sweep).

    Not a numbered figure in the paper — the conclusion argues it in
    prose — but the natural plot of its scenario analysis: which
    architecture is cheapest at each DDC duty cycle.  Rendered from one
    batched pass of the sweep engine over candidates produced by the
    batched model layer (the per-process shared evaluator); the payload
    is the full :class:`~repro.energy.scenarios.ScenarioGrid`.
    """
    from ..core.evaluator import shared_evaluator
    from ..sweep import duty_cycle_grid

    analysis = shared_evaluator().scenario_analysis(config)
    grid = duty_cycle_grid(analysis, steps)
    regions = grid.winning_regions()
    keys = {name: str(j) for j, name in enumerate(grid.names)}
    strip = "".join(keys[w] for w in grid.winners())
    lines = ["duty cycle 0% " + strip + " 100%"]
    for lo, hi, name in regions:
        lines.append(f"  {lo:6.1%} .. {hi:6.1%}  {name}")
    lines.append(
        "  (" + ", ".join(f"{keys[n]}={n}" for n in grid.names) + ")"
    )
    return FigureResult(
        "Figure S7: duty-cycle winner map (Section 7 scenarios)",
        "\n".join(lines),
        grid,
    )


def figure_pareto(
    config: DDCConfig = REFERENCE_DDC, steps: int = 101
) -> FigureResult:
    """Duty-cycle/energy frontier per architecture (executable: repro.explore).

    Not a numbered figure in the paper — its conclusion weighs power
    against reconfigurable-area reuse in prose — but the natural Pareto
    view of that argument: per architecture, the energy attributable to
    one output sample across DDC duty cycles, with the Section 7 winner
    regions and the (power, area) Pareto frontier of the implementation
    reports.  Rendered from one batched pass of the model layer through
    the per-process shared evaluator; the payload is the
    ``(candidates, frontier mask, scenario grid)`` triple.
    """
    from ..core.evaluator import shared_evaluator
    from ..explore.pareto import frontier_from_batches
    from ..sweep import duty_cycle_grid

    evaluator = shared_evaluator()
    batches = evaluator.report_batches([config])
    candidates = evaluator.scenario_candidates_from_batches(
        batches, [config], strict=False
    )[0]
    mask = frontier_from_batches(batches, ("power_w", "area_mm2"))[0]
    frontier = {
        batches[j].architecture for j in range(len(batches)) if mask[j]
    }
    from ..energy.scenarios import ScenarioAnalysis

    analysis = ScenarioAnalysis(candidates)
    grid = duty_cycle_grid(analysis, steps)
    lines = ["energy per 24 kHz output sample (nJ) by DDC duty cycle:"]
    marks = (0.05, 0.25, 0.50, 1.00)
    header = "  architecture" + " " * 16 + "".join(
        f"{m:>9.0%}" for m in marks
    )
    lines.append(header)
    for j, name in enumerate(grid.names):
        cells = []
        for m in marks:
            k = round(m * (steps - 1))
            cells.append(f"{grid.powers_w[k, j] / 24_000.0 * 1e9:9.2f}")
        tag = " *" if name in frontier else ""
        lines.append(f"  {name:<28}" + "".join(cells) + tag)
    lines.append("  (* = on the (power, area) Pareto frontier)")
    lines.append("cheapest architecture by duty cycle:")
    for lo, hi, name in grid.winning_regions():
        lines.append(f"  {lo:6.1%} .. {hi:6.1%}  {name}")
    return FigureResult(
        "Figure S8: duty-cycle/energy Pareto frontier per architecture",
        "\n".join(lines),
        (candidates, mask, grid),
    )


def figure_population(
    n_samples: int = 200_000, seed: int = 0
) -> FigureResult:
    """Population energy distributions (executable: repro.montecarlo).

    Not a numbered figure in the paper — its conclusion weighs the
    architectures for a *single* operating point — but the population
    view of that argument: a seeded Monte-Carlo population of users
    (the workload's declared duty-cycle and configuration-axis
    distributions) pushed through the vectorised scenario engine in one
    pass.  Shown per architecture: p50/p95/p99 effective power and
    battery life, the overall winner probability, and the
    winner-probability map over duty-cycle bins.  The payload is the
    full :class:`~repro.montecarlo.PopulationReport`.
    """
    from ..montecarlo import PopulationSpec, run_population

    spec = PopulationSpec(workload="ddc", n_samples=n_samples, seed=seed)
    report = run_population(spec)
    lines = [report.summary()]
    lines.append("winner probability by duty-cycle bin:")
    bins = spec.duty_bins
    for b in range(bins):
        cells = {
            a.name: a.win_probability_by_duty[b]
            for a in report.architectures
        }
        if all(p is None for p in cells.values()):
            continue
        top = max(cells, key=lambda k: cells[k] or 0.0)
        share = cells[top] or 0.0
        bar = "#" * round(20 * share)
        lines.append(
            f"  {b / bins:5.0%} .. {(b + 1) / bins:5.0%}  "
            f"{top:<28} {share:6.1%} {bar}"
        )
    return FigureResult(
        "Figure S9: population energy distributions (Monte-Carlo)",
        "\n".join(lines),
        report,
    )


def figure9(cycles: int = 40) -> FigureResult:
    """Fig. 9: the first 40 clock cycles of the Montium DDC schedule."""
    from ..archs.montium.ddc_mapping import build_ddc_schedule
    from ..archs.montium.schedule import render_figure9

    program = build_ddc_schedule()
    art = render_figure9(program, cycles)
    return FigureResult(
        "Figure 9: First 40 clock cycles of the DDC", art, program
    )
