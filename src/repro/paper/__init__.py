"""Regeneration of every table and figure of the paper.

Each ``tableN()`` / ``figureN()`` function recomputes the published
artefact from the library's models and returns a structured result with a
``render()`` text form; ``benchmarks/`` wraps each in a pytest-benchmark
target, and ``EXPERIMENTS.md`` records paper-vs-measured values.
"""

from .tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    TableResult,
)
from .figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure8,
    figure9,
    figure_duty_cycle,
    figure_pareto,
    figure_population,
)
from .scenarios import section7_scenarios

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "TableResult",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure8",
    "figure9",
    "figure_duty_cycle",
    "figure_pareto",
    "figure_population",
    "section7_scenarios",
]
