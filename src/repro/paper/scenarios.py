"""Section 7: the static and reconfigurable deployment scenarios."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DDCConfig, REFERENCE_DDC
from ..core.evaluator import DDCEvaluator


@dataclass
class Section7Result:
    """The conclusion's two recommendations plus the duty-cycle map."""

    static_winner: str
    reconfigurable_winner: str
    winning_regions: list[tuple[float, float, str]]

    def render(self) -> str:
        lines = [
            "Section 7 scenarios",
            f"  static (full-time DDC):        {self.static_winner}",
            f"  reconfigurable (part-time):    {self.reconfigurable_winner}",
            "  duty-cycle winners:",
        ]
        for lo, hi, name in self.winning_regions:
            lines.append(f"    {lo:5.1%} .. {hi:5.1%}: {name}")
        return "\n".join(lines)


def section7_scenarios(
    config: DDCConfig = REFERENCE_DDC,
    evaluator: DDCEvaluator | None = None,
    steps: int = 501,
) -> Section7Result:
    """Recompute the paper's conclusion.

    Batched end to end: the architecture models run through the shared
    evaluator's ``evaluate_batch``/``scenario_analysis`` (each model's
    ``implement_batch``, cached per process) and the duty-cycle map rides
    the batched sweep engine (:func:`repro.sweep.duty_cycle_grid` — one
    numpy pass over the whole grid) rather than 501 scalar evaluations;
    the output is bit-identical to the scalar paths either way.
    """
    from ..core.evaluator import shared_evaluator
    from ..sweep import duty_cycle_grid

    ev = evaluator or shared_evaluator()
    result = ev.evaluate_batch([config])[0]
    grid = duty_cycle_grid(ev.scenario_analysis(config), steps)
    return Section7Result(
        static_winner=result.static_winner,
        reconfigurable_winner=result.reconfigurable_winner,
        winning_regions=grid.winning_regions(),
    )
