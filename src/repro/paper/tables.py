"""Tables 1-7, recomputed from the models.

Every function returns a :class:`TableResult`: named rows (list of tuples)
plus a ``render()``-able text form and, where the paper published numbers
we can compare against, the published values for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import DDCConfig, REFERENCE_DDC
from ..core.evaluator import DDCEvaluator


@dataclass
class TableResult:
    """A regenerated table."""

    name: str
    header: tuple[str, ...]
    rows: list[tuple[Any, ...]]
    published: list[tuple[Any, ...]] = field(default_factory=list)

    def render(self) -> str:
        """Fixed-width text rendering."""
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in self.rows)) + 2
            for i, h in enumerate(self.header)
        ]
        lines = [self.name]
        lines.append(
            "".join(str(h).ljust(w) for h, w in zip(self.header, widths))
        )
        lines.append("-" * sum(widths))
        for r in self.rows:
            lines.append(
                "".join(str(v).ljust(w) for v, w in zip(r, widths))
            )
        return "\n".join(lines)


def table1(config: DDCConfig = REFERENCE_DDC) -> TableResult:
    """Table 1: clock/sample rate and decimation per component."""
    rows = []
    for name, rate_hz, decim in config.table1_rows():
        rate = (
            f"{rate_hz / 1e6:.3f} MHz" if rate_hz >= 1e6
            else f"{rate_hz / 1e3:.0f} kHz"
        )
        rows.append((name, rate, "-" if decim is None else decim))
    published = [
        ("NCO", "64.512 MHz", "-"),
        ("CIC2", "64.512 MHz", 16),
        ("CIC5", "4.032 MHz", 21),
        ("125 taps FIR", "192 kHz", 8),
        ("Output", "24 kHz", "-"),
    ]
    return TableResult(
        "Table 1: Clock speed and decimation in a DDC",
        ("Component", "Clock/sample rate", "Decimation (D)"),
        rows,
        published,
    )


def table2() -> TableResult:
    """Table 2: GC4016 configuration limits (datasheet model constants)."""
    from ..archs.asic.gc4016 import GC4016_SPEC as s

    rows = [
        ("Input speed of filter", f"Up to {s.max_input_msps:.0f} MSPS"),
        ("Input size of filter",
         f"{s.input_bits_4ch} (4ch.) or {s.input_bits_3ch}-bit (3ch.)"),
        ("Decimation of a channel",
         f"{s.min_decimation} to {s.max_decimation}"),
        ("Output size of filter",
         ",".join(str(b) for b in s.output_bits) + "-Bit"),
        ("Energy consumption for a GSM channel",
         f"{s.example_power_w * 1e3:.0f}mW "
         f"({s.example_clock_hz / 1e6:.0f} MHz & {s.technology.vdd} V)"),
    ]
    return TableResult(
        "Table 2: Configuration of a TI Quad DDC",
        ("Parameter", "Value"),
        rows,
    )


def table3(n_samples: int | None = None) -> TableResult:
    """Table 3: division of the DDC cycles on the ARM (profiled)."""
    from ..archs.gpp.profiler import profile_ddc

    prof = profile_ddc(n_samples=n_samples)
    display = {
        "nco": ("NCO", "64.512 MHz"),
        "cic2_int": ("CIC2-integrating", ""),
        "cic2_comb": ("CIC2-cascading", "4.032 MHz"),
        "cic5_int": ("CIC5-integrating", ""),
        "cic5_comb": ("CIC5-cascading", "192 kHz"),
        "fir_poly": ("FIR125-poly-phase", ""),
        "fir_sum": ("FIR125-summation", "24 kHz"),
    }
    rows = [
        (display[region][0], display[region][1], f"{pct:.1f} %")
        for region, pct in prof.table3_rows()
    ]
    published = [
        ("NCO", "64.512 MHz", "50 %"),
        ("CIC2-integrating", "", "40 %"),
        ("CIC2-cascading", "4.032 MHz", "3.2 %"),
        ("CIC5-integrating", "", "4.4 %"),
        ("CIC5-cascading", "192 kHz", "< 0.5 %"),
        ("FIR125-poly-phase", "", "< 0.5 %"),
        ("FIR125-summation", "24 kHz", "1.6 %"),
    ]
    return TableResult(
        "Table 3: Division of the DDC code for an ARM",
        ("Part of filter", "Clock speed", "Percentage of clock cycles"),
        rows,
        published,
    )


def table4() -> TableResult:
    """Table 4: synthesis results for Cyclone I and II."""
    from ..archs.fpga.devices import CYCLONE_I_EP1C3, CYCLONE_II_EP2C5
    from ..archs.fpga.resources import estimate_ddc_resources

    rows = []
    for dev in (CYCLONE_I_EP1C3, CYCLONE_II_EP2C5):
        u = estimate_ddc_resources(dev)
        util = u.utilisation(dev)
        rows.append(
            (
                dev.name,
                f"{u.logic_elements} / {dev.logic_elements}"
                f" ({util['logic_elements']:.0%})",
                f"{u.pins} / {dev.user_pins} ({util['pins']:.0%})",
                f"{u.memory_bits} / {dev.memory_bits}"
                f" ({util['memory_bits']:.0%})",
                f"{u.multipliers_9bit} / {dev.multipliers_9bit}",
            )
        )
    published = [
        ("EP1C3T100C6", "1,656 / 2,910 (56 %)", "41 / 65 (63 %)",
         "6,780 / 59,904 (12 %)", "0 / 0"),
        ("EP2C5T144C6", "906 / 4,608 (20 %)", "41 / 89 (46 %)",
         "7,686 / 119,808 (6 %)", "8 / 26"),
    ]
    return TableResult(
        "Table 4: Synthesis results for Cyclone I and II",
        ("Device", "Logic elements", "Pins", "Memory bits",
         "9-bit multipliers"),
        rows,
        published,
    )


def table5(workers: int | None = None) -> TableResult:
    """Table 5: Cyclone I power vs internal toggle rate.

    The sweep rides :meth:`FPGAPowerModel.estimate_batch` — one numpy
    pass over the toggle grid; ``workers`` instead fans scalar estimates
    out over a thread pool.  Output is bit-identical either way (see
    :mod:`repro.parallel`).
    """
    from ..archs.fpga.devices import CYCLONE_I_EP1C3
    from ..archs.fpga.power import FPGAPowerModel
    from ..archs.fpga.resources import estimate_ddc_resources

    usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
    model = FPGAPowerModel(CYCLONE_I_EP1C3)
    sweep = model.table5_sweep(usage, workers=workers)
    rows = [
        ("Total Thermal Power Dissipation",
         *(f"{b.total_mw:.1f} mW" for _, b in sweep)),
        ("Dynamic Thermal Power Dissipation",
         *(f"{b.dynamic_w * 1e3:.1f} mW" for _, b in sweep)),
        ("Static Thermal Power Dissipation",
         *(f"{b.static_w * 1e3:.1f} mW" for _, b in sweep)),
    ]
    published = [
        ("Total", "120.9 mW", "141.4 mW", "305.3 mW", "458.9 mW"),
        ("Dynamic", "72.9 mW", "93.4 mW", "257.2 mW", "410.8 mW"),
        ("Static", "48.0 mW", "48.0 mW", "48.0 mW", "48.0 mW"),
    ]
    return TableResult(
        "Table 5: Power consumption of Cyclone I (input toggle rate 50%)",
        ("Internal toggle rate", "5%", "10%", "50%", "87.5%"),
        rows,
        published,
    )


def table6() -> TableResult:
    """Table 6: the DDC algorithm on a Montium (ALUs + occupancy)."""
    from ..archs.montium.ddc_mapping import build_ddc_schedule
    from ..archs.montium.schedule import analyze_schedule

    report = analyze_schedule(build_ddc_schedule())
    rows = [
        (name, n_alus, f"{pct:.1f}%")
        for name, n_alus, pct in report.table6_rows()
    ]
    published = [
        ("NCO + CIC2 integrating", 3, "100%"),
        ("CIC2 cascading", 2, "6.3%"),
        ("CIC5 integrating", 2, "25%"),
        ("CIC5 cascading", 2, "0.9%"),
        ("FIR125", 2, "0.5%"),
    ]
    return TableResult(
        "Table 6: DDC algorithm on a Montium",
        ("Algorithm part", "#ALUs", "Percentage of time on ALUs"),
        rows,
        published,
    )


def table7(
    config: DDCConfig = REFERENCE_DDC,
    evaluator: DDCEvaluator | None = None,
) -> TableResult:
    """Table 7: summary of results across all architectures.

    Rides the batched model layer — the default evaluator is the
    per-process :func:`~repro.core.evaluator.shared_evaluator` (cached
    ``implement_batch`` reports, bit-identical to the scalar path);
    ``evaluator`` lets callers that already paid for the model runs (the
    sweep subsystem, the artifacts CLI) share their own instance.
    """
    from ..core.evaluator import shared_evaluator

    ev = evaluator or shared_evaluator()
    result = ev.evaluate_batch([config])[0]
    rows = []
    for r in result.comparison.rows:
        area = f"{r.area_mm2:.1f}mm2" if r.area_mm2 is not None else "n.a."
        rows.append(
            (
                r.architecture,
                str(r.technology),
                f"{r.clock_hz / 1e6:.1f}",
                f"{r.power_mw:.1f} mW",
                f"{r.power_scaled_mw:.1f} mW",
                area,
            )
        )
    published = [
        ("TI GC4016", "0.25um", "80.0", "115.0 mW", "13.8 mW", "n.a."),
        ("Customised Low Power DDC", "0.18um", "64.512", "27.0 mW",
         "8.7 mW", "1.7mm2 (printed as 17mm2)"),
        ("ARM922T", "0.13um", "6697.0", "2435 mW", "2435 mW", "3.2mm2"),
        ("Altera Cyclone I", "0.13um", "64.512", "93.4 mW (dynamic)",
         "-", "n.a."),
        ("Altera Cyclone II", "0.09um", "64.512", "31.11 mW (dynamic)",
         "44.94 mW", "n.a."),
        ("Montium TP", "0.13um", "64.512", "38.7 mW", "38.7 mW", "2.2mm2"),
    ]
    return TableResult(
        "Table 7: Summary of results",
        ("Solution", "Size", "Freq[MHz]", "Power", "Power @0.13um", "Area"),
        rows,
        published,
    )
