"""CLI entry point: ``PYTHONPATH=src python -m repro.paper``.

Regenerates every table and figure of the paper from the models and
writes them as text artifacts — what the CI ``paper-artifacts`` job
uploads.  With ``--check GOLDEN_DIR`` it instead regenerates the tables
and diffs them byte-for-byte against the committed goldens
(``tests/goldens/``), exiting non-zero on any drift: table output is a
*contract*, and a model change that moves a published number must change
the golden in the same PR.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path

from . import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure8,
    figure9,
    figure_duty_cycle,
    figure_pareto,
    figure_population,
    section7_scenarios,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

#: The golden-diffed artifacts: every regenerated table plus the Section 7
#: scenario summary (all deterministic functions of the models).
TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "section7": section7_scenarios,
}

#: Uploaded as artifacts but not golden-diffed (text art, no published
#: numbers to pin).
FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure8": figure8,
    "figure9": figure9,
    "figure_duty_cycle": figure_duty_cycle,
    "figure_pareto": figure_pareto,
    "figure_population": figure_population,
}


def render_tables() -> dict[str, str]:
    """name -> rendered text (trailing newline) for every golden artifact."""
    return {name: fn().render() + "\n" for name, fn in TABLES.items()}


def render_figures() -> dict[str, str]:
    """name -> rendered text for the figure artifacts."""
    return {name: fn().render() + "\n" for name, fn in FIGURES.items()}


def write_artifacts(out_dir: Path) -> list[Path]:
    """Write every table and figure under ``out_dir``; returns the paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in {**render_tables(), **render_figures()}.items():
        path = out_dir / f"{name}.txt"
        path.write_text(text)
        written.append(path)
    return written


def check_goldens(golden_dir: Path) -> list[str]:
    """Regenerate the tables and diff against ``golden_dir``.

    Returns human-readable failure strings (empty = pass).  A golden file
    missing for a regenerated table — or a stray ``*.txt`` golden no
    table produces — is a failure too, so the guard cannot rot silently.
    """
    failures: list[str] = []
    rendered = render_tables()
    for name, text in rendered.items():
        path = golden_dir / f"{name}.txt"
        if not path.is_file():
            failures.append(f"{name}: missing golden {path}")
            continue
        golden = path.read_text()
        if golden != text:
            diff = "".join(
                difflib.unified_diff(
                    golden.splitlines(keepends=True),
                    text.splitlines(keepends=True),
                    fromfile=str(path),
                    tofile=f"{name} (regenerated)",
                )
            )
            failures.append(f"{name}: output drifted from golden\n{diff}")
    for stray in sorted(golden_dir.glob("*.txt")):
        if stray.stem not in rendered:
            failures.append(
                f"{stray.name}: golden has no matching table artifact"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.paper",
        description="Regenerate the paper's tables and figures.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--output-dir", metavar="DIR",
        help="write every table/figure as DIR/<name>.txt",
    )
    mode.add_argument(
        "--check", metavar="GOLDEN_DIR",
        help="diff regenerated tables against committed goldens; "
        "exit 1 on any drift",
    )
    args = parser.parse_args(argv)

    if args.check:
        failures = check_goldens(Path(args.check))
        if failures:
            print("PAPER-ARTIFACT CHECK FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(
            f"paper-artifact check against {args.check}: "
            f"{len(TABLES)} tables OK"
        )
        return 0

    written = write_artifacts(Path(args.output_dir))
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
