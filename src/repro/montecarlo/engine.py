"""The population engine: million-user runs in one vectorised pass.

Execution plan for a :class:`~repro.montecarlo.spec.PopulationSpec`:

1. **Sample once, up front.**  One ``np.random.default_rng(seed)`` pass
   draws the duty-cycle array and the per-axis index arrays in
   declaration order.  Everything downstream only *slices* these — which
   is why reports are byte-identical across chunk sizes, worker counts
   and thread/process backends.
2. **Deduplicate to distinct configurations.**  Axis index tuples are
   packed into mixed-radix codes; ``np.unique(..., return_inverse=True)``
   maps every sample to a distinct-config row.  10^6 samples over
   ``choice(63,125,255)`` cost three model evaluations, not a million.
3. **One batched model evaluation per distinct config.**  The candidate
   table (architectures x distinct configs of active/idle watts, ``nan``
   marking infeasible cells) is built from
   ``DDCEvaluator.report_batches`` — or, in the scalar oracle, from each
   model's ``implement_batch_scalar`` loop, so ``--verify`` covers the
   model layer too.
4. **Chunked fused streaming.**  Samples stream through
   :func:`repro.energy.scenarios.effective_power_samples` +
   :func:`~repro.energy.scenarios.winner_counts` in ``chunk_samples``
   slices fanned out via :func:`repro.parallel.parallel_map`; the only
   per-sample state ever materialised is one float64 power per
   architecture (48 MB at 10^6 samples x 6 architectures — needed for
   exact percentiles), never per-sample reports or python objects.

Failure policy mirrors the sweep engine: ``on_error="raise"`` aborts on
the first poisoned config; ``"skip"``/``"retry"`` record
:class:`ConfigFailure`/:class:`ChunkFailure` entries on the report's
error channel, drop the affected samples, and mark the report partial
(all-samples-lost raises :class:`~repro.errors.PartialResultError`).
Chunks declare the ``montecarlo.chunk`` fault-injection site.

The scalar oracle (``engine="scalar"``) re-derives every per-sample
number through the scalar seed APIs — a python dict lookup from the
sample's axis-index tuple to its config row, a
:meth:`~repro.energy.scenarios.ScenarioCandidate.effective_power_w`
call per architecture, a python ``min`` winner — and feeds the *same*
aggregation code, so ``--verify`` byte-compares full reports.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..energy.scenarios import (
    ScenarioCandidate,
    check_duty_cycles,
    effective_power_samples,
    winner_counts,
)
from .. import telemetry
from ..errors import ConfigurationError, PartialResultError
from ..faults import fault_point
from ..parallel import parallel_map
from ..resilience import DEFAULT_RETRY, call_with_retry, failure_cause
from .spec import PopulationSpec

ENGINES = ("vector", "scalar")

#: Mixed-radix codes must fit int64 with headroom.
_MAX_DISTINCT = 2**62


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose one of: "
            + ", ".join(ENGINES)
        )


# --------------------------------------------------------------------------
# failures (picklable, JSON-ready; mirrors sweep.PointFailure)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ConfigFailure:
    """One distinct configuration's recorded failure.

    ``phase`` is ``"build"`` (the axis values do not form a valid
    configuration) or ``"infeasible"`` (no architecture yields a
    feasible scenario candidate).  ``n_samples`` counts the sampled
    users dropped with it.
    """

    row: int
    phase: str
    overrides: tuple[tuple[str, Any], ...]
    error_type: str
    message: str
    n_samples: int

    def describe(self) -> dict[str, Any]:
        return {
            "row": self.row,
            "phase": self.phase,
            "overrides": {k: v for k, v in self.overrides},
            "error_type": self.error_type,
            "message": self.message,
            "n_samples": self.n_samples,
        }


@dataclass(frozen=True)
class ChunkFailure:
    """One streamed chunk's recorded failure (its samples are dropped)."""

    index: int
    start: int
    stop: int
    error_type: str
    message: str

    def describe(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "stop": self.stop,
            "error_type": self.error_type,
            "message": self.message,
        }


# --------------------------------------------------------------------------
# sampling + dedup
# --------------------------------------------------------------------------
def sample_population(
    spec: PopulationSpec,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Draw the whole population in one seeded pass.

    Returns the duty-cycle array (validated through the shared
    :func:`~repro.energy.scenarios.check_duty_cycles` gate — the spec's
    bounds proof makes this a no-op assertion) and one int64 index array
    per config axis, in declaration order.
    """
    rng = np.random.default_rng(spec.seed)
    duty = np.asarray(
        spec.duty_cycle.sample(rng, spec.n_samples), dtype=np.float64
    )
    duty = check_duty_cycles(duty)
    axis_indices = [
        dist.sample_indices(rng, spec.n_samples) for _, dist in spec.axes
    ]
    return duty, axis_indices


def dedup_axis_indices(
    spec: PopulationSpec, axis_indices: Sequence[np.ndarray]
) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Unique-point deduplication over the discrete axes.

    Packs each sample's axis-index tuple into a mixed-radix int64 code
    and uniquifies.  Returns ``(inverse, keys)``: ``inverse[i]`` is the
    distinct-config row of sample ``i`` and ``keys[r]`` the axis-index
    tuple of row ``r`` (rows in ascending code order — deterministic).
    """
    n = spec.n_samples
    if not axis_indices:
        return np.zeros(n, dtype=np.int64), [()]
    if spec.n_distinct_bound() > _MAX_DISTINCT:
        raise ConfigurationError(
            "population axes span more than 2^62 distinct configurations; "
            "thin the axis supports"
        )
    radices = [len(dist.support) for _, dist in spec.axes]
    codes = np.zeros(n, dtype=np.int64)
    for idx, radix in zip(axis_indices, radices):
        codes = codes * radix + idx
    total = spec.n_distinct_bound()
    if total <= (1 << 22):
        # Small code spaces (the common case: a few discrete axes) take
        # the O(n) bincount route instead of np.unique's O(n log n)
        # sort; the distinct rows come out in the same ascending-code
        # order either way.
        hist = np.bincount(codes, minlength=total)
        uniq = np.nonzero(hist)[0]
        lookup = np.zeros(total, dtype=np.int64)
        lookup[uniq] = np.arange(len(uniq), dtype=np.int64)
        inverse = lookup[codes]
    else:
        uniq, inverse = np.unique(codes, return_inverse=True)
    keys = []
    for code in uniq.tolist():
        key = []
        for radix in reversed(radices):
            key.append(int(code % radix))
            code //= radix
        keys.append(tuple(reversed(key)))
    return inverse.astype(np.int64), keys


def _overrides(
    spec: PopulationSpec, key: tuple[int, ...]
) -> tuple[tuple[str, Any], ...]:
    """Row key -> config overrides, preserving python value types."""
    return tuple(
        (name, dist.support[i])
        for (name, dist), i in zip(spec.axes, key)
    )


# --------------------------------------------------------------------------
# the candidate table
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class CandidateTable:
    """Distinct configs x architectures, as flat arrays (picklable).

    Columns are the workload's models in declaration order — the same
    order every scalar consumer sees, so "first minimum wins ties" means
    the same candidate on both engines.  ``nan`` cells are infeasible /
    unmappable; ``ok[r]`` is False when row ``r`` has no feasible column
    (or its configuration failed to build) and its samples are dropped.
    """

    names: tuple[str, ...]
    reusable: tuple[bool, ...]
    active_w: np.ndarray
    idle_w: np.ndarray
    ok: np.ndarray
    row_keys: tuple[tuple[int, ...], ...]


def build_candidate_table(
    spec: PopulationSpec,
    keys: Sequence[tuple[int, ...]],
    engine: str = "vector",
) -> tuple[CandidateTable, list[ConfigFailure], list[Any]]:
    """One batched model evaluation per distinct configuration.

    ``engine="vector"`` rides the workload's shared cached evaluator
    (``report_batches`` -> each model's ``implement_batch`` once);
    ``engine="scalar"`` rebuilds the table through each model's
    ``implement_batch_scalar`` per-config loop, so the oracle's numbers
    carry scalar provenance end to end.  Returned failures have
    ``n_samples=0`` — the caller weights them with the dedup counts.
    """
    from ..workloads import get as get_workload

    wl = get_workload(spec.workload)
    tolerant = spec.on_error != "raise"

    configs: list[Any] = []
    build_failures: dict[int, ConfigFailure] = {}
    valid_rows: list[int] = []
    for r, key in enumerate(keys):
        overrides = _overrides(spec, key)
        try:
            config = dataclasses.replace(
                spec.base_config, **{k: v for k, v in overrides}
            )
            wl.check_config(config)
        except ConfigurationError as exc:
            if not tolerant:
                raise
            build_failures[r] = ConfigFailure(
                row=r, phase="build", overrides=overrides,
                error_type=type(exc).__name__, message=str(exc),
                n_samples=0,
            )
            configs.append(None)
            continue
        valid_rows.append(r)
        configs.append(config)

    if engine == "scalar":
        evaluator = wl.evaluator()
        models = evaluator.models
        valid_configs = [configs[r] for r in valid_rows]
        batches = [
            model.implement_batch_scalar(valid_configs) for model in models
        ]
    else:
        evaluator = wl.shared_evaluator()
        models = evaluator.models
        valid_configs = [configs[r] for r in valid_rows]
        batches = evaluator.report_batches(valid_configs)

    m, n_arch = len(keys), len(models)
    active = np.full((m, n_arch), np.nan)
    idle = np.full((m, n_arch), np.nan)
    names = [model.name for model in models]
    reusable = [False] * n_arch
    named = [False] * n_arch
    for j, batch in enumerate(batches):
        for i, r in enumerate(valid_rows):
            if batch.errors[i] is not None:
                continue
            report = batch.reports[i]
            if report is None or not report.feasible:
                continue
            cand = evaluator._candidate(report, spec.standby_fraction)
            active[r, j] = cand.active_power_w
            idle[r, j] = cand.idle_power_w
            if not named[j]:
                names[j] = cand.name
                reusable[j] = cand.reusable
                named[j] = True

    ok = ~np.all(np.isnan(active), axis=1)
    failures = list(build_failures.values())
    # Reuse the evaluator's tolerant candidate builder for the
    # no-feasible-architecture error channel, so messages (and the
    # strict-mode raise) match the rest of the stack exactly.
    outcomes = evaluator.scenario_candidate_outcomes_from_batches(
        batches, valid_configs, spec.standby_fraction
    )
    for i, r in enumerate(valid_rows):
        candidates, error = outcomes[i]
        if error is None:
            continue
        if not tolerant:
            raise error
        failures.append(
            ConfigFailure(
                row=r, phase="infeasible", overrides=_overrides(
                    spec, keys[r]
                ),
                error_type=type(error).__name__, message=str(error),
                n_samples=0,
            )
        )
        ok[r] = False

    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"workload {spec.workload!r} architecture labels collide: "
            f"{names!r}; the scalar oracle's name-keyed seed API "
            "(ScenarioAnalysis.evaluate) needs them distinct"
        )
    table = CandidateTable(
        names=tuple(names),
        reusable=tuple(reusable),
        active_w=active,
        idle_w=idle,
        ok=ok,
        row_keys=tuple(tuple(k) for k in keys),
    )
    failures.sort(key=lambda f: f.row)
    return table, failures, configs


# --------------------------------------------------------------------------
# chunked fused streaming (vector engine)
# --------------------------------------------------------------------------
def _chunk_pass(
    table: CandidateTable,
    duty_bins: int,
    duty_c: np.ndarray,
    inverse_c: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One fused numpy pass over a sample slice.

    Gathers each sample's candidate row, computes every effective power
    in one :func:`effective_power_samples` call, and aggregates winners
    with :func:`winner_counts`.  Dropped/infeasible cells ride the
    ``nan`` channel throughout.
    """
    active = table.active_w[inverse_c]
    idle = table.idle_w[inverse_c]
    powers = effective_power_samples(active, idle, duty_c)
    bins_idx = np.minimum(
        (duty_c * duty_bins).astype(np.int64), duty_bins - 1
    )
    counts = winner_counts(powers, bins_idx, duty_bins)
    return powers, counts


def _chunk_task(
    table: CandidateTable,
    duty_bins: int,
    on_error: str,
    item: tuple[int, int, np.ndarray, np.ndarray],
) -> tuple[int, int, np.ndarray, np.ndarray] | ChunkFailure:
    """Pool task for one chunk (module-level + partial: picklable)."""
    index, start, duty_c, inverse_c = item

    def run() -> tuple[np.ndarray, np.ndarray]:
        # Span and fault site share the "montecarlo.chunk" vocabulary;
        # each retry attempt times as its own span.
        with telemetry.span(
            "montecarlo.chunk", index=index, size=int(len(duty_c))
        ):
            fault_point("montecarlo.chunk", key=index)
            return _chunk_pass(table, duty_bins, duty_c, inverse_c)

    if on_error == "raise":
        powers, counts = run()
        return (index, start, powers, counts)
    try:
        if on_error == "retry":
            powers, counts = call_with_retry(
                run, DEFAULT_RETRY, label=f"montecarlo chunk {index}"
            )
        else:
            powers, counts = run()
    except Exception as exc:  # recorded, never silently swallowed
        cause = failure_cause(exc)
        return ChunkFailure(
            index=index, start=start, stop=start + len(duty_c),
            error_type=type(cause).__name__, message=str(cause),
        )
    return (index, start, powers, counts)


def _run_vector(
    spec: PopulationSpec,
    table: CandidateTable,
    duty: np.ndarray,
    inverse: np.ndarray,
    workers: int | None,
    backend: str,
) -> tuple[np.ndarray, np.ndarray, list[ChunkFailure]]:
    n, n_arch = spec.n_samples, len(table.names)
    items = []
    for k, start in enumerate(range(0, n, spec.chunk_samples)):
        stop = min(start + spec.chunk_samples, n)
        items.append((k, start, duty[start:stop], inverse[start:stop]))
    task = functools.partial(
        _chunk_task, table, spec.duty_bins, spec.on_error
    )
    pool_retry = DEFAULT_RETRY if spec.on_error == "retry" else None
    raw = parallel_map(
        task, items, workers=workers, backend=backend, retry=pool_retry
    )
    # Every sample row is written exactly once below — by its chunk's
    # result, or with nan for a failed chunk — so the matrix can start
    # uninitialised instead of paying an n x n_arch fill pass.
    powers = np.empty((n, n_arch))
    counts = np.zeros((spec.duty_bins, n_arch), dtype=np.int64)
    chunk_failures: list[ChunkFailure] = []
    for result in raw:
        if isinstance(result, ChunkFailure):
            chunk_failures.append(result)
            powers[result.start:result.stop] = np.nan
            continue
        index, start, chunk_powers, chunk_counts = result
        powers[start:start + len(chunk_powers)] = chunk_powers
        counts += chunk_counts
    return powers, counts, chunk_failures


# --------------------------------------------------------------------------
# the scalar per-sample oracle
# --------------------------------------------------------------------------
def _run_scalar(
    spec: PopulationSpec,
    table: CandidateTable,
    duty: np.ndarray,
    axis_indices: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """The per-sample scalar oracle loop — the naive seed-API program.

    What a user without this package would write: for every sampled
    user, build the configuration (``dataclasses.replace`` per sample),
    ask the evaluator for its scenario candidates
    (:meth:`~repro.core.evaluator.DDCEvaluator.scenario_candidates`,
    scalar ``implement`` memoised through a
    :class:`~repro.core.evaluator.ReportCache` — without memoisation a
    10^4-sample run would re-run the instruction-set simulator per
    user), and rank them with the seed's scalar
    :meth:`~repro.energy.scenarios.ScenarioAnalysis.evaluate` (one
    name-keyed powers dict + python ``min``; insertion order = column
    order, so its first-minimum tie rule is the batched argmin's).
    No unique-point dedup, no vectorisation — that contrast is exactly
    what the ``montecarlo_population`` bench prices.  Feeds the same
    aggregation as the vector engine, so any estimator divergence shows
    up as a byte diff under ``--verify``.
    """
    from ..core.evaluator import ReportCache
    from ..energy.scenarios import ScenarioAnalysis
    from ..workloads import get as get_workload

    wl = get_workload(spec.workload)
    evaluator = wl.evaluator(cache=ReportCache())
    n, n_arch = spec.n_samples, len(table.names)
    column_of = {name: j for j, name in enumerate(table.names)}
    powers = np.full((n, n_arch), np.nan)
    counts = np.zeros((spec.duty_bins, n_arch), dtype=np.int64)
    axis_columns = [np.asarray(ax) for ax in axis_indices]
    supports = [dist.support for _, dist in spec.axes]
    fields = [name for name, _ in spec.axes]
    bins = spec.duty_bins
    for i in range(n):
        overrides = {
            field: supports[k][int(axis_columns[k][i])]
            for k, field in enumerate(fields)
        }
        try:
            config = dataclasses.replace(spec.base_config, **overrides)
            candidates = evaluator.scenario_candidates(
                config, spec.standby_fraction, strict=False
            )
            analysis = ScenarioAnalysis(candidates)
        except ConfigurationError:
            # Tolerant-mode drop; under on_error="raise" the candidate
            # table already raised for this configuration.
            continue
        d = float(duty[i])
        result = analysis.evaluate(d)
        for candidate, power in zip(
            candidates, result.powers_w.values()
        ):
            powers[i, column_of[candidate.name]] = power
        bin_index = min(int(d * bins), bins - 1)
        counts[bin_index, column_of[result.winner]] += 1
    return powers, counts


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------
def run_population(
    spec: PopulationSpec,
    workers: int | None = None,
    backend: str = "thread",
    engine: str = "vector",
):
    """Run a population spec to a deterministic report.

    ``engine="vector"`` is the production path (dedup + chunked fused
    streaming, optionally fanned out over ``workers``/``backend``);
    ``engine="scalar"`` is the per-sample oracle loop (always serial —
    it *is* the reference).  Identical specs produce byte-identical
    reports across engines, chunk sizes, worker counts and backends.
    """
    from .report import build_report

    _check_engine(engine)
    duty, axis_indices = sample_population(spec)
    inverse, keys = dedup_axis_indices(spec, axis_indices)
    table, failures, _ = build_candidate_table(spec, keys, engine)

    row_samples = np.bincount(inverse, minlength=len(keys))
    failures = [
        dataclasses.replace(f, n_samples=int(row_samples[f.row]))
        for f in failures
    ]

    if engine == "scalar":
        powers, counts = _run_scalar(spec, table, duty, axis_indices)
        chunk_failures: list[ChunkFailure] = []
    else:
        powers, counts, chunk_failures = _run_vector(
            spec, table, duty, inverse, workers, backend
        )

    # Every valid sample lands exactly one winner count, so the counts
    # total is the valid-sample total — no all-nan row scan needed.
    n_valid = int(counts.sum())
    if n_valid == 0:
        first = failures[0] if failures else chunk_failures[0]
        raise PartialResultError(
            f"all {spec.n_samples} sampled users dropped under "
            f"on_error={spec.on_error!r}; first error: "
            f"{first.error_type}: {first.message}"
        )
    return build_report(
        spec, table, powers, counts,
        failures=tuple(failures), chunk_failures=tuple(chunk_failures),
    )
