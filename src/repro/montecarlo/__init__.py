"""Population-scale Monte-Carlo scenario simulation.

Declare a user population (:class:`PopulationSpec` — seeded
distributions over duty cycle and any workload configuration axis), run
it (:func:`run_population`), and read distributions instead of point
answers: p50/p95/p99 power and battery life per architecture plus
winner-probability maps over duty cycle, as deterministic JSON.

The vectorised engine deduplicates samples to distinct configurations
(one batched model evaluation per distinct config) and streams the
per-sample math in fused numpy chunks; ``python -m repro.montecarlo
--verify`` proves it byte-identical to a per-sample scalar oracle loop.
See ``benchmarks/README.md`` ("Population simulation") for the spec
schema and the contracts.
"""

from .engine import (
    ENGINES,
    CandidateTable,
    ChunkFailure,
    ConfigFailure,
    build_candidate_table,
    dedup_axis_indices,
    run_population,
    sample_population,
)
from .report import (
    SCHEMA,
    ArchitectureStats,
    PopulationReport,
    battery_life_percentile,
    build_report,
    nearest_rank,
)
from .spec import (
    Choice,
    Distribution,
    LogNormal,
    Mixture,
    Normal,
    PopulationSpec,
    Trace,
    Uniform,
    parse_distribution,
)

__all__ = [
    "ENGINES",
    "SCHEMA",
    "ArchitectureStats",
    "CandidateTable",
    "Choice",
    "ChunkFailure",
    "ConfigFailure",
    "Distribution",
    "LogNormal",
    "Mixture",
    "Normal",
    "PopulationReport",
    "PopulationSpec",
    "Trace",
    "Uniform",
    "battery_life_percentile",
    "build_candidate_table",
    "build_report",
    "dedup_axis_indices",
    "nearest_rank",
    "parse_distribution",
    "run_population",
    "sample_population",
]
