"""Declarative population specs for Monte-Carlo scenario simulation.

The paper answers "which architecture wins at duty cycle d?" for a
handful of hand-picked d (Table 7); a production system asks what the
energy / battery-life *distribution* looks like across millions of
users.  A :class:`PopulationSpec` declares that population: a seeded
sample count, a continuous **duty-cycle distribution**, and discrete
**config-axis distributions** over any workload
``scenario_axes()``/``config_axes()`` field.

Two structural rules keep a 10^6-sample run cheap and exactly
reproducible:

- **Config axes are discrete.**  Every config-axis distribution exposes
  a finite ``support`` and samples *indices* into it, so the engine can
  deduplicate samples down to distinct configurations (mixed-radix
  codes + ``np.unique``) and pay one batched model evaluation per
  distinct config — not per sample.  Python value types (``int``
  fir_taps vs ``float`` rates) survive the round trip because configs
  are rebuilt from the support values themselves.
- **The duty cycle is the streamed continuous axis.**  Its distribution
  must be provably bounded within [0, 1] (:meth:`Distribution.bounds`),
  so every sampled value passes
  :func:`repro.energy.scenarios.check_duty_cycles` by construction.

All distributions are frozen dataclasses of primitives/tuples: picklable
(process-pool chunk fan-out), comparable, and serialisable via
:meth:`Distribution.describe` into the deterministic report JSON.
Sampling draws from a single ``numpy.random.Generator`` in declaration
order — duty cycle first, then axes — which is what makes reports
byte-identical across chunk sizes, worker counts and backends: the
engine samples once up front and only *slices* per chunk.
"""

from __future__ import annotations

import dataclasses
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ConfigurationError
from ..resilience import check_on_error

#: Execution knobs excluded from ``PopulationSpec.describe()``: they pick
#: how the estimator is *run*, not what it estimates, and the seeded
#: determinism contract promises byte-identical reports across them.
EXECUTION_FIELDS = ("chunk_samples",)


# --------------------------------------------------------------------------
# distributions
# --------------------------------------------------------------------------
class Distribution(ABC):
    """A named, seeded, vectorised sampling rule.

    ``discrete`` distributions additionally expose a finite
    :attr:`support` and :meth:`sample_indices`; only they may drive
    config axes (the dedup contract).  Every subclass draws a fixed,
    size-dependent number of variates from the generator it is handed —
    never a data-dependent number — so multi-axis sampling stays
    reproducible in declaration order.
    """

    #: Registry name used by :func:`parse_distribution` and ``describe``.
    kind: str = "abstract"
    #: Finite-support distributions (Choice/Trace) sample indices.
    discrete: bool = False

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` float64 variates."""

    def bounds(self) -> tuple[float, float] | None:
        """Provable ``(lo, hi)`` value bounds, or ``None`` if unbounded.

        The duty-cycle axis requires bounds within [0, 1]; wrap unbounded
        distributions (``normal``/``lognormal``) with clip bounds.
        """
        return None

    def describe(self) -> dict[str, Any]:
        """JSON-ready declaration (goes into the report verbatim)."""
        doc: dict[str, Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            if not f.name.startswith("_"):
                doc[f.name] = getattr(self, f.name)
        return doc


class DiscreteDistribution(Distribution):
    """A distribution over a finite support, sampled as indices."""

    discrete = True

    @property
    @abstractmethod
    def support(self) -> tuple[Any, ...]:
        """The distinct values, in a deterministic declared order."""

    @abstractmethod
    def sample_indices(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` int64 indices into :attr:`support`."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values = np.asarray(self.support, dtype=np.float64)
        return values[self.sample_indices(rng, n)]

    def bounds(self) -> tuple[float, float] | None:
        try:
            return (float(min(self.support)), float(max(self.support)))
        except (TypeError, ValueError):
            return None


def _check_clip(low: float | None, high: float | None) -> None:
    if low is not None and high is not None and not low <= high:
        raise ConfigurationError(
            f"clip bounds are inverted: low={low!r} > high={high!r}"
        )


def _clip(x: np.ndarray, low: float | None, high: float | None) -> np.ndarray:
    if low is None and high is None:
        return x
    return np.clip(x, low, high)


def _cumulative(weights: tuple[float, ...], what: str) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        raise ConfigurationError(f"{what} must not be empty")
    if not np.all(np.isfinite(w)) or np.any(w < 0) or float(w.sum()) <= 0:
        raise ConfigurationError(
            f"{what} must be non-negative, finite, with a positive sum; "
            f"got {weights!r}"
        )
    return np.cumsum(w) / float(w.sum())


def _weighted_indices(
    cumulative: np.ndarray, rng: np.random.Generator, n: int
) -> np.ndarray:
    # Inverse-CDF sampling: rng.random() < 1, so the searchsorted index
    # is already < len(cumulative) whenever the cumulative tail reaches
    # 1.0 exactly; the clip guards the float-rounding case where it
    # lands at 1 - ulp.
    u = rng.random(n)
    idx = np.searchsorted(cumulative, u, side="right")
    return np.minimum(idx, len(cumulative) - 1).astype(np.int64)


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high)``."""

    low: float = 0.0
    high: float = 1.0
    kind = "uniform"

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ConfigurationError(
                f"uniform bounds are inverted: low={self.low!r} > "
                f"high={self.high!r}"
            )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, n)

    def bounds(self) -> tuple[float, float]:
        return (float(self.low), float(self.high))


@dataclass(frozen=True)
class Normal(Distribution):
    """Gaussian, optionally clipped to ``[low, high]``.

    Clipping (not rejection) keeps the draw count fixed per sample; the
    probability mass outside the bounds piles up *at* the bounds, which
    is the intended reading for duty cycles ("saturated users").
    """

    mean: float = 0.0
    std: float = 1.0
    low: float | None = None
    high: float | None = None
    kind = "normal"

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ConfigurationError(f"std must be >= 0, got {self.std!r}")
        _check_clip(self.low, self.high)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return _clip(rng.normal(self.mean, self.std, n), self.low, self.high)

    def bounds(self) -> tuple[float, float] | None:
        if self.low is None or self.high is None:
            return None
        return (float(self.low), float(self.high))


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal (``exp(N(mu, sigma))``), optionally clipped."""

    mu: float = 0.0
    sigma: float = 1.0
    low: float | None = None
    high: float | None = None
    kind = "lognormal"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(
                f"sigma must be >= 0, got {self.sigma!r}"
            )
        _check_clip(self.low, self.high)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return _clip(
            rng.lognormal(self.mu, self.sigma, n), self.low, self.high
        )

    def bounds(self) -> tuple[float, float] | None:
        if self.high is None:
            return None
        return (float(self.low) if self.low is not None else 0.0,
                float(self.high))


@dataclass(frozen=True)
class Mixture(Distribution):
    """Weighted mixture of continuous components.

    ``components`` is ``((weight, distribution), ...)``; weights are
    normalised internally.  Sampling draws the component selector first,
    then a full ``n`` variates from *every* component and selects — a
    fixed draw count per component, which is what keeps multi-axis
    sampling order-stable.  Discrete components are rejected: a mixture
    of ``Choice``s is just one ``Choice`` with combined weights, and
    allowing both would fork the dedup support.
    """

    components: tuple[tuple[float, Distribution], ...] = ()
    kind = "mixture"

    def __post_init__(self) -> None:
        if len(self.components) == 0:
            raise ConfigurationError("mixture needs at least one component")
        for w, dist in self.components:
            if not isinstance(dist, Distribution):
                raise ConfigurationError(
                    f"mixture component {dist!r} is not a Distribution"
                )
            if dist.discrete:
                raise ConfigurationError(
                    "mixture components must be continuous; fold discrete "
                    "components into a single weighted Choice instead"
                )
        _cumulative(tuple(w for w, _ in self.components), "mixture weights")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        cum = _cumulative(
            tuple(w for w, _ in self.components), "mixture weights"
        )
        which = _weighted_indices(cum, rng, n)
        out = np.empty(n, dtype=np.float64)
        for k, (_, dist) in enumerate(self.components):
            draws = dist.sample(rng, n)
            mask = which == k
            out[mask] = draws[mask]
        return out

    def bounds(self) -> tuple[float, float] | None:
        lo, hi = np.inf, -np.inf
        for _, dist in self.components:
            b = dist.bounds()
            if b is None:
                return None
            lo, hi = min(lo, b[0]), max(hi, b[1])
        return (float(lo), float(hi))

    def describe(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "components": [
                {"weight": w, "distribution": d.describe()}
                for w, d in self.components
            ],
        }


@dataclass(frozen=True)
class Choice(DiscreteDistribution):
    """A weighted categorical over explicit values (unweighted default)."""

    values: tuple[Any, ...] = ()
    weights: tuple[float, ...] | None = None
    kind = "choice"

    def __post_init__(self) -> None:
        if len(self.values) == 0:
            raise ConfigurationError("choice needs at least one value")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ConfigurationError(
                f"choice values must be distinct, got {self.values!r}"
            )
        if self.weights is not None:
            if len(self.weights) != len(self.values):
                raise ConfigurationError(
                    f"choice has {len(self.values)} values but "
                    f"{len(self.weights)} weights"
                )
            _cumulative(self.weights, "choice weights")

    @property
    def support(self) -> tuple[Any, ...]:
        return self.values

    def sample_indices(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.weights is None:
            return rng.integers(0, len(self.values), n, dtype=np.int64)
        return _weighted_indices(
            _cumulative(self.weights, "choice weights"), rng, n
        )


@dataclass(frozen=True)
class Trace(DiscreteDistribution):
    """Empirical replay of a recorded trace.

    ``replay="bootstrap"`` resamples trace positions uniformly with
    replacement (the empirical distribution); ``replay="cycle"`` replays
    the trace in order, wrapping — sample ``i`` takes trace position
    ``i mod len(trace)``, independent of the RNG (it still participates
    in the seeded pass for draw-order stability of *other* axes by
    consuming zero draws).  The support is the distinct trace values in
    first-appearance order, so dedup cost scales with distinct values,
    not trace length.
    """

    trace: tuple[Any, ...] = ()
    replay: str = "bootstrap"
    kind = "trace"
    _support: tuple[Any, ...] = field(
        init=False, repr=False, compare=False, default=()
    )
    _position_index: tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if len(self.trace) == 0:
            raise ConfigurationError("trace must not be empty")
        if self.replay not in ("bootstrap", "cycle"):
            raise ConfigurationError(
                f"unknown trace replay {self.replay!r}; "
                "choose one of: bootstrap, cycle"
            )
        seen: dict[str, int] = {}
        support: list[Any] = []
        positions: list[int] = []
        for value in self.trace:
            key = repr(value)
            if key not in seen:
                seen[key] = len(support)
                support.append(value)
            positions.append(seen[key])
        object.__setattr__(self, "_support", tuple(support))
        object.__setattr__(self, "_position_index", tuple(positions))

    @property
    def support(self) -> tuple[Any, ...]:
        return self._support

    def sample_indices(self, rng: np.random.Generator, n: int) -> np.ndarray:
        pos_to_support = np.asarray(self._position_index, dtype=np.int64)
        if self.replay == "cycle":
            pos = np.arange(n, dtype=np.int64) % len(self.trace)
        else:
            pos = rng.integers(0, len(self.trace), n, dtype=np.int64)
        return pos_to_support[pos]


# --------------------------------------------------------------------------
# CLI grammar
# --------------------------------------------------------------------------
_DIST_RE = re.compile(r"^\s*([a-z_]+)\s*\(\s*(.*?)\s*\)\s*$")


def _coerce(token: str) -> Any:
    """int-first numeric coercion (int axis values must stay int)."""
    token = token.strip()
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError as exc:
        raise ConfigurationError(
            f"cannot parse {token!r} as a number"
        ) from exc


def _split_args(body: str) -> list[str]:
    return [t for t in (p.strip() for p in body.split(",")) if t]


def parse_distribution(text: str) -> Distribution:
    """Parse the CLI distribution grammar.

    ``uniform(lo,hi)`` · ``normal(mean,std[,lo,hi])`` ·
    ``lognormal(mu,sigma[,lo,hi])`` · ``choice(v1,v2,...)`` /
    ``choice(v1:w1,v2:w2,...)`` · ``trace(v1,v2,...)`` (cycle replay) ·
    ``point(v)`` (a one-value choice).  Mixtures are API-only.
    """
    m = _DIST_RE.match(text)
    if not m:
        raise ConfigurationError(
            f"cannot parse distribution {text!r}; expected e.g. "
            "'uniform(0,1)', 'normal(0.3,0.1,0,1)', 'choice(63,125,255)', "
            "'trace(0.1,0.4,0.1)', 'point(125)'"
        )
    kind, body = m.group(1), m.group(2)
    args = _split_args(body)
    if kind == "uniform":
        if len(args) != 2:
            raise ConfigurationError("uniform takes exactly (low, high)")
        return Uniform(low=float(_coerce(args[0])),
                       high=float(_coerce(args[1])))
    if kind in ("normal", "lognormal"):
        if len(args) not in (2, 4):
            raise ConfigurationError(
                f"{kind} takes (a, b) or (a, b, low, high)"
            )
        nums = [float(_coerce(a)) for a in args]
        lo, hi = (nums[2], nums[3]) if len(nums) == 4 else (None, None)
        if kind == "normal":
            return Normal(mean=nums[0], std=nums[1], low=lo, high=hi)
        return LogNormal(mu=nums[0], sigma=nums[1], low=lo, high=hi)
    if kind == "choice":
        if not args:
            raise ConfigurationError("choice needs at least one value")
        if any(":" in a for a in args):
            pairs = []
            for a in args:
                v, _, w = a.partition(":")
                if not w:
                    raise ConfigurationError(
                        f"weighted choice entry {a!r} needs 'value:weight'"
                    )
                pairs.append((_coerce(v), float(_coerce(w))))
            return Choice(values=tuple(v for v, _ in pairs),
                          weights=tuple(w for _, w in pairs))
        return Choice(values=tuple(_coerce(a) for a in args))
    if kind == "trace":
        if not args:
            raise ConfigurationError("trace needs at least one value")
        return Trace(trace=tuple(_coerce(a) for a in args), replay="cycle")
    if kind == "point":
        if len(args) != 1:
            raise ConfigurationError("point takes exactly one value")
        return Choice(values=(_coerce(args[0]),))
    raise ConfigurationError(
        f"unknown distribution kind {kind!r}; choose one of: "
        "uniform, normal, lognormal, choice, trace, point"
    )


# --------------------------------------------------------------------------
# the spec
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class PopulationSpec:
    """A seeded user population over one workload.

    ``duty_cycle=None`` / ``axes=None`` resolve to the workload's
    declared defaults (:meth:`~repro.workloads.base.Workload.
    duty_cycle_distribution` / ``population_axes``); pass ``axes=()``
    explicitly for a reference-config-only population.  ``chunk_samples``
    is an execution knob, not part of the population — reports are
    byte-identical across its values (see :data:`EXECUTION_FIELDS`).
    """

    workload: str = "ddc"
    n_samples: int = 100_000
    seed: int = 0
    duty_cycle: Distribution | None = None
    axes: tuple[tuple[str, Distribution], ...] | None = None
    base_config: Any = None
    standby_fraction: float = 0.05
    battery_wh: float = 3.7
    duty_bins: int = 10
    percentiles: tuple[float, ...] = (50.0, 95.0, 99.0)
    chunk_samples: int = 65_536
    on_error: str = "raise"

    def __post_init__(self) -> None:
        from ..workloads import get as get_workload

        wl = get_workload(self.workload)
        object.__setattr__(self, "workload", wl.name)
        if self.base_config is None:
            object.__setattr__(self, "base_config", wl.default_config)
        wl.check_config(self.base_config)

        if self.n_samples < 1:
            raise ConfigurationError(
                f"n_samples must be >= 1, got {self.n_samples!r}"
            )
        if self.chunk_samples < 1:
            raise ConfigurationError(
                f"chunk_samples must be >= 1, got {self.chunk_samples!r}"
            )
        if self.duty_bins < 1:
            raise ConfigurationError(
                f"duty_bins must be >= 1, got {self.duty_bins!r}"
            )
        if not 0.0 <= self.standby_fraction <= 1.0:
            raise ConfigurationError(
                f"standby_fraction {self.standby_fraction!r} is outside "
                "[0, 1]"
            )
        if self.battery_wh <= 0:
            raise ConfigurationError(
                f"battery_wh must be > 0, got {self.battery_wh!r}"
            )
        if len(self.percentiles) == 0:
            raise ConfigurationError("need at least one percentile")
        for q in self.percentiles:
            if not 0.0 < q <= 100.0:
                raise ConfigurationError(
                    f"percentile {q!r} is outside (0, 100]"
                )
        check_on_error(self.on_error)

        duty = self.duty_cycle
        if duty is None:
            duty = wl.duty_cycle_distribution()
        if not isinstance(duty, Distribution):
            raise ConfigurationError(
                f"duty_cycle must be a Distribution, got {duty!r}"
            )
        b = duty.bounds()
        if b is None or b[0] < 0.0 or b[1] > 1.0:
            raise ConfigurationError(
                f"duty-cycle distribution {duty.describe()!r} must be "
                "provably bounded within [0, 1]; clip unbounded "
                "distributions (normal/lognormal take low/high bounds)"
            )
        object.__setattr__(self, "duty_cycle", duty)

        axes = self.axes
        if axes is None:
            axes = tuple(wl.population_axes().items())
        axes = tuple((name, dist) for name, dist in axes)
        wl.check_axes(axes, kind="population")
        for name, dist in axes:
            if not isinstance(dist, Distribution) or not dist.discrete:
                raise ConfigurationError(
                    f"population axis {name!r} needs a *discrete* "
                    "distribution (choice/trace) so unique-point "
                    f"deduplication applies; got {dist!r}"
                )
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "percentiles",
                           tuple(float(q) for q in self.percentiles))

    # ------------------------------------------------------------- helpers
    def n_distinct_bound(self) -> int:
        """Upper bound on distinct configurations (product of supports)."""
        total = 1
        for _, dist in self.axes:
            total *= len(dist.support)
        return total

    def describe(self) -> dict[str, Any]:
        """JSON-ready spec (statistical fields only; see module doc)."""
        return {
            "workload": self.workload,
            "n_samples": self.n_samples,
            "seed": self.seed,
            "duty_cycle": self.duty_cycle.describe(),
            "axes": [
                {"field": name, "distribution": dist.describe()}
                for name, dist in self.axes
            ],
            "base_config": dataclasses.asdict(self.base_config),
            "standby_fraction": self.standby_fraction,
            "battery_wh": self.battery_wh,
            "duty_bins": self.duty_bins,
            "percentiles": list(self.percentiles),
            "on_error": self.on_error,
        }
