"""CLI entry point: ``PYTHONPATH=src python -m repro.montecarlo``.

With no arguments it simulates a 100k-user population of the default
workload (the workload's declared duty-cycle and axis distributions)
and prints the JSON report.  ``--duty``/``--axis`` override the
distributions with the grammar of
:func:`~repro.montecarlo.spec.parse_distribution`, ``--backend process
--workers N`` fans sample chunks out over a pool, and ``--verify``
proves the vectorised estimator byte-identical to the per-sample
scalar oracle loop while timing both.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..errors import ConfigurationError, ReproError
from ..telemetry import tracing
from ..telemetry.cli import (
    add_telemetry_args,
    cache_counts,
    cache_stats_line,
    print_metrics,
)
from .engine import run_population
from .spec import PopulationSpec, parse_distribution

#: Default sample counts: population runs are cheap vectorised; verify
#: also runs the per-sample python oracle, so it defaults smaller (still
#: >= the 10^4 the acceptance contract asks for).
DEFAULT_SAMPLES = 100_000
DEFAULT_VERIFY_SAMPLES = 20_000


def _parse_axis(text: str) -> tuple[str, object]:
    name, sep, raw = text.partition("=")
    if not sep or not raw:
        raise ConfigurationError(
            f"--axis expects FIELD=DISTRIBUTION, got {text!r}"
        )
    return name.strip(), parse_distribution(raw)


def build_spec(args: argparse.Namespace) -> PopulationSpec:
    """Translate parsed CLI arguments into a PopulationSpec."""
    n_samples = args.samples
    if n_samples is None:
        n_samples = DEFAULT_VERIFY_SAMPLES if args.verify else DEFAULT_SAMPLES
    duty = parse_distribution(args.duty) if args.duty else None
    axes = None
    if args.axis:
        axes = tuple(_parse_axis(a) for a in args.axis)
    return PopulationSpec(
        workload=args.workload,
        n_samples=n_samples,
        seed=args.seed,
        duty_cycle=duty,
        axes=axes,
        standby_fraction=args.standby_fraction,
        battery_wh=args.battery_wh,
        duty_bins=args.duty_bins,
        chunk_samples=args.chunk_samples,
        on_error=args.on_error,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.montecarlo",
        description="Population-scale Monte-Carlo scenario simulation.",
    )
    from ..workloads import available, default_name

    parser.add_argument(
        "--workload", default=default_name(), metavar="NAME",
        help="workload to simulate, one of: "
        f"{', '.join(available())} (default: %(default)s, i.e. "
        "$REPRO_WORKLOAD or ddc)",
    )
    parser.add_argument(
        "--samples", type=int, default=None, metavar="N",
        help="population size (default: "
        f"{DEFAULT_SAMPLES}, or {DEFAULT_VERIFY_SAMPLES} under --verify)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed; identical specs+seeds give byte-identical "
        "reports (default: %(default)s)",
    )
    parser.add_argument(
        "--duty", default=None, metavar="DIST",
        help="duty-cycle distribution, e.g. 'uniform(0,1)' or "
        "'normal(0.3,0.1,0,1)' (default: the workload's declared "
        "distribution); must be bounded within [0, 1]",
    )
    parser.add_argument(
        "--axis", action="append", default=[], metavar="FIELD=DIST",
        help="configuration-axis distribution (repeatable), e.g. "
        "fir_taps='choice(63,125,255)' or 'choice(1:0.6,2:0.4)' or "
        "'trace(63,125,63)'; must be discrete (choice/trace/point); "
        "default: the workload's declared population axes",
    )
    parser.add_argument(
        "--standby-fraction", type=float, default=0.05,
        help="fixed-function idle power as a fraction of active power "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--battery-wh", type=float, default=3.7,
        help="battery capacity for life distributions "
        "(default: %(default)s Wh)",
    )
    parser.add_argument(
        "--duty-bins", type=int, default=10,
        help="duty-cycle bins of the winner-probability map "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--chunk-samples", type=int, default=65_536,
        help="streaming chunk size (execution knob: reports are "
        "byte-identical across values; default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="fan sample chunks out over a pool (default: serial)",
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="pool type for --workers (default: %(default)s)",
    )
    parser.add_argument(
        "--engine", choices=("vector", "scalar"), default="vector",
        help="estimator path (scalar = the per-sample oracle loop; "
        "default: %(default)s)",
    )
    parser.add_argument(
        "--output", default="-", metavar="PATH",
        help="report path, '-' = stdout (default: stdout)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="raise",
        help="failure policy for poisoned configs/chunks: raise = abort, "
        "skip = record and continue, retry = retry first; a report with "
        "recorded failures is marked partial and exits with status 3 "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="print the human-readable percentile/winner table instead "
        "of the JSON report",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run BOTH engines (vectorised + per-sample scalar oracle), "
        "require byte-identical reports, report the measured speedup; "
        "exits 1 on any divergence",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)

    try:
        with tracing(args.trace):
            return _run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    """The CLI body, inside the (possibly no-op) tracing context."""
    spec = build_spec(args)
    cache_before = cache_counts(spec.workload)
    try:
        if args.verify:
            # Warm model/numpy import paths and the report cache so the
            # timed runs compare estimators, not first-call imports.
            from dataclasses import replace

            warm = replace(spec, n_samples=64, chunk_samples=32)
            run_population(warm, engine="vector")
            run_population(warm, engine="scalar")
            t0 = time.perf_counter()
            vector = run_population(
                spec, workers=args.workers, backend=args.backend,
                engine="vector",
            )
            t_vector = time.perf_counter() - t0
            t0 = time.perf_counter()
            scalar = run_population(spec, engine="scalar")
            t_scalar = time.perf_counter() - t0
            vector_bytes = vector.render().encode()
            scalar_bytes = scalar.render().encode()
            if vector_bytes != scalar_bytes:
                print(
                    "VERIFY FAILED: vectorised and scalar-oracle "
                    "reports differ",
                    file=sys.stderr,
                )
                return 1
            print(
                f"verify OK: {len(vector_bytes)} bytes identical across "
                f"engines ({spec.n_samples} samples, "
                f"{vector.n_distinct_configs} distinct configs)"
            )
            print(
                f"  vector {t_vector * 1e3:.2f} ms, scalar "
                f"{t_scalar * 1e3:.2f} ms, speedup "
                f"{t_scalar / t_vector:.1f}x"
            )
            if args.metrics:
                print_metrics(cache_before, spec.workload)
            return 0

        report = run_population(
            spec, workers=args.workers, backend=args.backend,
            engine=args.engine,
        )
        if args.metrics:
            print_metrics(cache_before, spec.workload)
        if args.summary:
            print(report.summary())
            print(cache_stats_line(cache_before, spec.workload))
        else:
            text = report.render()
            if args.output == "-":
                sys.stdout.write(text)
            else:
                with open(args.output, "w", encoding="utf-8") as fh:
                    fh.write(text)
                print(f"wrote {args.output}")
        if report.partial:
            print(
                f"warning: partial report — {report.n_dropped_samples} "
                f"sample(s) dropped under --on-error {spec.on_error}",
                file=sys.stderr,
            )
            return 3
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
