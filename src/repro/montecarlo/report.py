"""Deterministic population reports (percentiles, winner maps, JSON).

Both engines hand this module the same two artefacts — the per-sample
power matrix (``nan`` = infeasible/dropped) and the duty-bin x
architecture winner counts — and every derived number (nearest-rank
percentiles, battery-life distributions, winner probabilities) is
computed here exactly once, so the vector engine and the scalar oracle
cannot diverge in aggregation, only in estimation.  The JSON document
is a pure function of the :class:`~repro.montecarlo.spec.PopulationSpec`
(sorted keys, no timings, no host info, execution knobs excluded from
the spec block), which is what the seeded-determinism tests
byte-compare across seeds, engines, chunk sizes and pool backends.

Percentiles use the **nearest-rank** definition (the value at index
``ceil(q * m / 100)`` of the sorted sample, 1-based): an actual sample
value, no interpolation, so float equality across engines is exact.
Battery life is ``battery_wh / power_w`` hours per user — a monotone
*decreasing* map, so its q-th percentile is derived from the
``(m - rank + 1)``-th smallest power; a zero-power percentile (a
reusable fabric at duty 0) yields ``null``, not infinity.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from .engine import CandidateTable, ChunkFailure, ConfigFailure
from .spec import PopulationSpec

SCHEMA = "repro-montecarlo/v1"


def nearest_rank(sorted_values: np.ndarray, q: float) -> float | None:
    """The q-th nearest-rank percentile of an ascending-sorted sample."""
    m = int(sorted_values.size)
    if m == 0:
        return None
    rank = max(1, math.ceil(q * m / 100.0))
    return float(sorted_values[min(rank, m) - 1])


def battery_life_percentile(
    sorted_powers: np.ndarray, q: float, battery_wh: float
) -> float | None:
    """The q-th percentile of ``battery_wh / power`` hours.

    Derived from the sorted *powers* (life sorts as reversed power):
    the q-th smallest life is the battery over the q-th *largest*
    power.  ``None`` for an empty sample or a zero-power denominator.
    """
    m = int(sorted_powers.size)
    if m == 0:
        return None
    rank = max(1, math.ceil(q * m / 100.0))
    power = float(sorted_powers[m - min(rank, m)])
    if power <= 0.0:
        return None
    return battery_wh / power


def percentile_label(q: float) -> str:
    return f"p{q:g}"


@dataclass(frozen=True)
class ArchitectureStats:
    """One architecture's population outcome (JSON-ready)."""

    name: str
    reusable: bool
    n_feasible: int
    power_w: dict[str, float | None]
    battery_life_h: dict[str, float | None]
    win_probability: float
    win_probability_by_duty: tuple[float | None, ...]

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "reusable": self.reusable,
            "n_feasible": self.n_feasible,
            "power_w": self.power_w,
            "battery_life_h": self.battery_life_h,
            "win_probability": self.win_probability,
            "win_probability_by_duty": list(self.win_probability_by_duty),
        }


@dataclass(frozen=True)
class PopulationReport:
    """The full population answer; render with :meth:`render`."""

    spec: PopulationSpec
    architectures: tuple[ArchitectureStats, ...]
    n_distinct_configs: int
    n_valid_samples: int
    duty_bin_samples: tuple[int, ...]
    failures: tuple[ConfigFailure, ...] = ()
    chunk_failures: tuple[ChunkFailure, ...] = ()

    @property
    def partial(self) -> bool:
        return bool(self.failures or self.chunk_failures)

    @property
    def n_dropped_samples(self) -> int:
        return self.spec.n_samples - self.n_valid_samples

    def winners(self) -> dict[str, float]:
        """Architecture -> overall winner probability (report order)."""
        return {
            a.name: a.win_probability for a in self.architectures
        }

    def to_doc(self) -> dict[str, Any]:
        bins = self.spec.duty_bins
        return {
            "schema": SCHEMA,
            "spec": self.spec.describe(),
            "n_distinct_configs": self.n_distinct_configs,
            "n_valid_samples": self.n_valid_samples,
            "n_dropped_samples": self.n_dropped_samples,
            "partial": self.partial,
            "duty_bin_edges": [i / bins for i in range(bins + 1)],
            "duty_bin_samples": list(self.duty_bin_samples),
            "architectures": [a.describe() for a in self.architectures],
            "failures": [f.describe() for f in self.failures],
            "chunk_failures": [f.describe() for f in self.chunk_failures],
        }

    def render(self) -> str:
        return json.dumps(self.to_doc(), indent=2, sort_keys=True) + "\n"

    def summary(self) -> str:
        """A terminal-friendly digest (not part of the byte contract)."""
        spec = self.spec
        lines = [
            f"population: workload={spec.workload} "
            f"samples={spec.n_samples} seed={spec.seed} "
            f"distinct={self.n_distinct_configs} "
            f"valid={self.n_valid_samples}"
            + (" [PARTIAL]" if self.partial else "")
        ]
        labels = [percentile_label(q) for q in spec.percentiles]
        header = (
            f"  {'architecture':<28} {'win%':>6} "
            + " ".join(f"{lbl + ' W':>10}" for lbl in labels)
            + " "
            + " ".join(f"{lbl + ' h':>9}" for lbl in labels)
        )
        lines.append(header)
        for arch in self.architectures:
            power = " ".join(
                f"{arch.power_w[lbl]:>10.4f}"
                if arch.power_w[lbl] is not None else f"{'-':>10}"
                for lbl in labels
            )
            life = " ".join(
                f"{arch.battery_life_h[lbl]:>9.1f}"
                if arch.battery_life_h[lbl] is not None else f"{'-':>9}"
                for lbl in labels
            )
            lines.append(
                f"  {arch.name:<28} {100 * arch.win_probability:>5.1f}% "
                f"{power} {life}"
            )
        if self.failures or self.chunk_failures:
            lines.append(
                f"  dropped: {self.n_dropped_samples} samples "
                f"({len(self.failures)} config failure(s), "
                f"{len(self.chunk_failures)} chunk failure(s))"
            )
        return "\n".join(lines)


def build_report(
    spec: PopulationSpec,
    table: CandidateTable,
    powers: np.ndarray,
    counts: np.ndarray,
    failures: tuple[ConfigFailure, ...] = (),
    chunk_failures: tuple[ChunkFailure, ...] = (),
) -> PopulationReport:
    """Aggregate per-sample powers + winner counts into the report.

    The single shared aggregation path: ``powers`` is the ``(n_samples,
    n_architectures)`` effective-power matrix (``nan`` where infeasible
    or dropped), ``counts`` the ``(duty_bins, n_architectures)`` winner
    counts.  Everything here is deterministic elementwise float64 math
    on identical inputs, so engine equality lifts to byte equality.
    """
    n_arch = len(table.names)
    # Every valid sample lands exactly one winner count.
    n_valid = int(counts.sum())
    bin_samples = counts.sum(axis=1)
    total_wins = counts.sum(axis=0)
    labels = [percentile_label(q) for q in spec.percentiles]

    stats = []
    for j in range(n_arch):
        column = powers[:, j]
        finite = column[~np.isnan(column)]
        finite.sort()
        power_p: dict[str, float | None] = {}
        life_p: dict[str, float | None] = {}
        for q, label in zip(spec.percentiles, labels):
            power_p[label] = nearest_rank(finite, q)
            life_p[label] = battery_life_percentile(
                finite, q, spec.battery_wh
            )
        by_duty = tuple(
            (int(counts[b, j]) / int(bin_samples[b]))
            if bin_samples[b] > 0 else None
            for b in range(spec.duty_bins)
        )
        stats.append(
            ArchitectureStats(
                name=table.names[j],
                reusable=table.reusable[j],
                n_feasible=int(finite.size),
                power_w=power_p,
                battery_life_h=life_p,
                win_probability=int(total_wins[j]) / n_valid,
                win_probability_by_duty=by_duty,
            )
        )

    return PopulationReport(
        spec=spec,
        architectures=tuple(stats),
        n_distinct_configs=len(table.row_keys),
        n_valid_samples=n_valid,
        duty_bin_samples=tuple(int(b) for b in bin_samples),
        failures=failures,
        chunk_failures=chunk_failures,
    )
