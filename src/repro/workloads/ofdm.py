"""FFT/OFDM demodulator front end as a workload.

Behind the DDC, a DRM (or DAB) receiver demodulates OFDM symbols: strip
the cyclic prefix, run an ``fft_size``-point FFT, keep the ``carriers``
active bins.  This workload puts that next pipeline stage through the
paper's methodology — the same architectures, the same question of which
one hosts the kernel most efficiently — with costs derived from the
radix-2 butterfly count rather than new magic constants:

- :class:`OFDMARM9Model` — software butterflies on the ARM922T at the
  paper's 0.25 mW/MHz; feasible at low symbol rates, falling over as the
  sample rate grows (the GPP's DDC story in miniature);
- :class:`OFDMCycloneModel` — a single time-shared complex-multiplier
  butterfly engine; the delay/reorder memory is what actually decides
  mappability (the EP1C3's 59 kbit cannot hold a 2k-point FFT);
- :class:`OFDMMontiumModel` — the butterflies spread over the tile's
  five ALUs, bounded by the 10 x 512-word memories.

All models use the inherited scalar ``implement_batch`` loop, so the
batch == scalar bit-identity contract holds by construction.
:func:`ofdm_demodulate` is the functional reference mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..archs.base import (
    ArchitectureModel,
    Flexibility,
    ImplementationReport,
)
from ..config import StageConfig
from ..errors import ConfigurationError, MappingError
from ..fixedpoint import QFormat
from .base import Workload, WorkloadMapping


@dataclass(frozen=True)
class OFDMDemodConfig:
    """An OFDM symbol demodulator: CP removal + FFT + carrier select.

    The defaults sketch DRM robustness mode A-like numbers at a DAB-ish
    2.048 MS/s complex baseband: 2048-point FFT, 504-sample cyclic
    prefix, 1536 active carriers.
    """

    sample_rate_hz: float = 2_048_000.0
    fft_size: int = 2048
    cp_len: int = 504
    data_width: int = 16
    carriers: int = 1536

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if self.fft_size < 8 or self.fft_size & (self.fft_size - 1):
            raise ConfigurationError(
                f"fft_size must be a power of two >= 8, got {self.fft_size}"
            )
        if not 0 <= self.cp_len < self.fft_size:
            raise ConfigurationError(
                "cp_len must satisfy 0 <= cp_len < fft_size"
            )
        if not 1 <= self.carriers <= self.fft_size:
            raise ConfigurationError(
                "carriers must satisfy 1 <= carriers <= fft_size"
            )
        if not 8 <= self.data_width <= 32:
            raise ConfigurationError("data_width must be in 8..32")

    @property
    def symbol_len(self) -> int:
        """Samples per OFDM symbol including the cyclic prefix."""
        return self.fft_size + self.cp_len

    @property
    def symbol_rate_hz(self) -> float:
        return self.sample_rate_hz / self.symbol_len

    @property
    def fft_stages(self) -> int:
        return self.fft_size.bit_length() - 1

    @property
    def butterflies_per_symbol(self) -> int:
        """Radix-2 butterfly count: (N/2) * log2(N)."""
        return (self.fft_size // 2) * self.fft_stages


class OFDMARM9Model(ArchitectureModel):
    """GPP: software radix-2 FFT on the ARM922T."""

    name = "ARM922T (OFDM)"

    #: Cycles per radix-2 butterfly on the scalar core: 4 multiplies,
    #: 6 adds/subs, loads/stores — the same order of accounting as the
    #: DDC profiler's inner loops.
    CYCLES_PER_BUTTERFLY = 8

    def __init__(self) -> None:
        from ..archs.gpp.arm9 import ARM922T

        self.spec = ARM922T

    def _clock_hz(self, config: OFDMDemodConfig) -> float:
        cycles = (
            self.CYCLES_PER_BUTTERFLY * config.butterflies_per_symbol
            + 2 * config.symbol_len       # CP strip + sample shuffling
            + 6 * config.carriers          # per-carrier extraction
        )
        return config.symbol_rate_hz * cycles

    def supports(self, config: OFDMDemodConfig) -> bool:
        return True

    def implement(self, config: OFDMDemodConfig) -> ImplementationReport:
        clock_hz = self._clock_hz(config)
        power_w = clock_hz / 1e6 * self.spec.power_mw_per_mhz * 1e-3
        return ImplementationReport(
            architecture=self.name,
            technology=self.spec.technology,
            clock_hz=clock_hz,
            power_w=power_w,
            area_mm2=self.spec.area_mm2,
            flexibility=Flexibility.PROGRAMMABLE,
            feasible=clock_hz <= self.spec.max_clock_hz,
            notes=(
                f"{config.butterflies_per_symbol} butterflies/symbol at "
                f"{config.symbol_rate_hz:.0f} symbols/s, "
                f"{self.CYCLES_PER_BUTTERFLY} cycles each"
            ),
        )


class OFDMCycloneModel(ArchitectureModel):
    """FPGA: one time-shared radix-2 butterfly engine per device."""

    def __init__(self, device=None) -> None:
        from ..archs.fpga.devices import CYCLONE_II_EP2C5
        from ..archs.fpga.power import FPGAPowerModel

        self.device = device if device is not None else CYCLONE_II_EP2C5
        self.power_model = FPGAPowerModel(self.device)
        self.name = (
            f"Altera {self.device.family} {self.device.name} (OFDM)"
        )

    def _usage(self, config: OFDMDemodConfig):
        from ..archs.fpga.resources import _ALPHA_MULT, ResourceUsage

        w = config.data_width
        # One complex multiplier = 4 real w x w products, on embedded
        # 9-bit multiplier blocks where the device has them, in soft
        # logic (the DDC estimator's LEs-per-product-bit slope) where
        # it does not.
        products = 4
        if self.device.multipliers_9bit:
            per_product = max(1, -(-w // 9)) ** 2
            multipliers = products * per_product
            mult_les = 0
        else:
            multipliers = 0
            mult_les = int(round(_ALPHA_MULT * w * w)) * products
        # Butterfly adders + twiddle/stage control, per stage of the
        # time-shared pipeline.
        logic = mult_les + 4 * (w + 2) * config.fft_stages + 200
        # I/Q delay + reorder buffering dominates: two w-bit rails over
        # the symbol, plus the twiddle ROM (N/2 complex factors).
        memory_bits = 2 * w * (config.fft_size - 1) + 2 * w * (
            config.fft_size // 2
        )
        return ResourceUsage(
            logic_elements=logic,
            memory_bits=memory_bits,
            multipliers_9bit=multipliers,
            pins=2 * w + 4,
        )

    def _clock_hz(self, config: OFDMDemodConfig) -> float:
        """The butterfly engine's clock: one butterfly per cycle."""
        return (
            config.symbol_rate_hz * config.butterflies_per_symbol
        )

    def supports(self, config: OFDMDemodConfig) -> bool:
        try:
            usage = self._usage(config)
        except (ConfigurationError, MappingError):
            return False
        return (
            usage.fits(self.device)
            and self._clock_hz(config) <= self.device.fmax_ddc_hz
        )

    def implement(self, config: OFDMDemodConfig) -> ImplementationReport:
        from ..archs.fpga.resources import require_fit

        usage = self._usage(config)
        require_fit(usage, self.device)
        clock_hz = self._clock_hz(config)
        power = self.power_model.estimate(usage, clock_hz, 0.10, 0.50)
        return ImplementationReport(
            architecture=f"Altera {self.device.family} (OFDM)",
            technology=self.device.technology,
            clock_hz=clock_hz,
            power_w=power.total_w,
            area_mm2=None,
            flexibility=Flexibility.RECONFIGURABLE,
            feasible=clock_hz <= self.device.fmax_ddc_hz,
            notes=(
                f"time-shared butterfly: {usage.logic_elements} LEs, "
                f"{usage.memory_bits} memory bits, "
                f"{usage.multipliers_9bit} embedded 9-bit multipliers"
            ),
        )


class OFDMMontiumModel(ArchitectureModel):
    """Montium TP: butterflies spread over the tile's five ALUs."""

    name = "Montium TP (OFDM)"

    #: The tile keeps real-time FFTs up to this clock (the DDC mapping
    #: runs the tile at the 64.5 MHz sample rate; 100 MHz is the
    #: device's design corner).
    MAX_CLOCK_HZ = 100e6

    def __init__(self) -> None:
        from ..archs.montium.model import MONTIUM_SPEC

        self.spec = MONTIUM_SPEC

    def _check_memories(self, config: OFDMDemodConfig) -> None:
        words = (
            self.spec.n_alus
            * self.spec.memories_per_alu
            * self.spec.memory_words
        )
        if config.fft_size > words:
            raise MappingError(
                f"{config.fft_size}-point FFT exceeds the tile's "
                f"{words} memory words"
            )

    def _clock_hz(self, config: OFDMDemodConfig) -> float:
        # 2 ALU ops per butterfly (complex MAC pair) + per-carrier
        # extraction, spread over the five ALUs.
        cycles = 2 * config.butterflies_per_symbol + config.carriers
        return config.symbol_rate_hz * cycles / self.spec.n_alus

    def supports(self, config: OFDMDemodConfig) -> bool:
        try:
            self._check_memories(config)
        except MappingError:
            return False
        return self._clock_hz(config) <= self.MAX_CLOCK_HZ

    def implement(self, config: OFDMDemodConfig) -> ImplementationReport:
        self._check_memories(config)
        clock_hz = self._clock_hz(config)
        power_w = clock_hz / 1e6 * self.spec.power_mw_per_mhz * 1e-3
        return ImplementationReport(
            architecture=self.name,
            technology=self.spec.technology,
            clock_hz=clock_hz,
            power_w=power_w,
            area_mm2=self.spec.area_mm2,
            flexibility=Flexibility.RECONFIGURABLE,
            feasible=clock_hz <= self.MAX_CLOCK_HZ,
            notes=(
                f"{config.butterflies_per_symbol} butterflies/symbol over "
                f"{self.spec.n_alus} ALUs; 0.6 mW/MHz measured constant"
            ),
        )


def ofdm_demodulate(
    samples: np.ndarray,
    config: OFDMDemodConfig | None = None,
) -> np.ndarray:
    """Functional reference mapping: CP strip + FFT + carrier select.

    ``samples`` is complex baseband; whole symbols only (a trailing
    partial symbol is dropped).  Returns shape ``(n_symbols, carriers)``
    with the active carriers taken symmetrically about DC (the DRM/DAB
    layout: negative bins last in FFT order).
    """
    cfg = config if config is not None else OFDMDemodConfig()
    x = np.asarray(samples)
    n_symbols = len(x) // cfg.symbol_len
    if n_symbols == 0:
        return np.empty((0, cfg.carriers), dtype=np.complex128)
    x = x[: n_symbols * cfg.symbol_len].reshape(n_symbols, cfg.symbol_len)
    spectrum = np.fft.fft(x[:, cfg.cp_len :], axis=1)
    half = cfg.carriers // 2
    upper = spectrum[:, 1 : cfg.carriers - half + 1]
    lower = spectrum[:, cfg.fft_size - half :]
    return np.concatenate([upper, lower], axis=1)


class OFDMDemodWorkload(Workload):
    """The FFT/OFDM demodulator front end."""

    name = "ofdm"
    title = "FFT/OFDM demodulator front end (DRM/DAB symbol recovery)"
    config_cls = OFDMDemodConfig

    def models(self):
        from ..archs.fpga.devices import CYCLONE_I_EP1C3, CYCLONE_II_EP2C5

        return [
            OFDMARM9Model(),
            OFDMCycloneModel(CYCLONE_I_EP1C3),
            OFDMCycloneModel(CYCLONE_II_EP2C5),
            OFDMMontiumModel(),
        ]

    def default_explore_axis(self) -> tuple[str, float, float]:
        # Spans the ARM9's real-time threshold (it keeps up at DAB-like
        # rates, not at several MS/s) while the fabrics stay feasible.
        return ("sample_rate_hz", 1_024_000.0, 9_216_000.0)

    def scenario_axes(self) -> Mapping[str, tuple[Any, ...]]:
        # FFT length: 2048 fits the EP2C5 and the tile, 4096 only the
        # tile, 8192 only software — each value keeps >= 1 architecture
        # feasible with the default 1536 carriers.
        return {"fft_size": (2048, 4096, 8192)}

    def chain(
        self, config: OFDMDemodConfig | None = None
    ) -> tuple[StageConfig, ...]:
        cfg = self.check_config(config or self.default_config)
        # StageConfig speaks decimation: CP removal drops cp_len of every
        # symbol_len samples; the FFT+select stage emits carriers bins
        # per fft_size samples (order = log2 N butterfly stages).
        return (
            StageConfig(
                name="CP strip",
                input_rate_hz=cfg.sample_rate_hz,
                decimation=1,
                order=0,
            ),
            StageConfig(
                name=f"FFT-{cfg.fft_size}",
                input_rate_hz=(
                    cfg.sample_rate_hz * cfg.fft_size / cfg.symbol_len
                ),
                decimation=1,
                order=cfg.fft_stages,
            ),
            StageConfig(
                name="carrier select",
                input_rate_hz=(
                    cfg.sample_rate_hz * cfg.fft_size / cfg.symbol_len
                ),
                decimation=max(1, cfg.fft_size // cfg.carriers),
                order=0,
            ),
        )

    def fixed_formats(
        self, config: OFDMDemodConfig | None = None
    ) -> Mapping[str, QFormat]:
        cfg = self.check_config(config or self.default_config)
        w = cfg.data_width
        # Bit growth through the FFT: one bit per butterfly stage into
        # the accumulator word, rounded back to w at the output.
        return {
            "baseband_in": QFormat(w, w - 1),
            "twiddle": QFormat(w, w - 1),
            "butterfly_acc": QFormat(w + cfg.fft_stages, w - 1),
            "carriers_out": QFormat(w, w - 1),
        }

    def mappings(self) -> Mapping[str, WorkloadMapping]:
        return {
            "gpp": WorkloadMapping(
                architecture="ARM922T (OFDM)",
                description=(
                    "software radix-2 FFT; ofdm_demodulate is the "
                    "functional reference"
                ),
                run=ofdm_demodulate,
            ),
            "fpga": WorkloadMapping(
                architecture="Altera Cyclone (OFDM)",
                description=(
                    "single time-shared butterfly engine; mappability "
                    "decided by the delay/reorder memory footprint"
                ),
            ),
            "montium": WorkloadMapping(
                architecture="Montium TP (OFDM)",
                description=(
                    "butterflies over 5 ALUs, symbol held in the tile's "
                    "10 x 512-word memories"
                ),
            ),
        }
