"""The :class:`Workload` protocol — what a kernel must declare to ride
the whole stack.

The paper evaluates exactly one kernel (the DRM channel-selection DDC)
across five architectures; the surrounding machinery — batched
architecture models, scenario sweeps, Pareto exploration, fault
tolerance, the bench guard — is kernel-agnostic once a workload says

- what its **configuration** looks like (a frozen dataclass of
  primitives, the unit the report cache keys on),
- which **architecture models** realise it (each an
  :class:`~repro.archs.base.ArchitectureModel` honouring the
  batch == scalar bit-identity contract),
- which configuration fields form its **scenario axes** (discrete sweep
  values and the continuous explore axis), and
- how the dataflow is **mapped** per architecture (functional run hooks
  plus the chain/fixed-point declarations the docs and conformance
  tests read).

Everything downstream is inherited: a registered workload immediately
works with ``python -m repro.sweep --workload NAME``, ``python -m
repro.explore --workload NAME``, ``repro.parallel`` process pools, the
``on_error`` failure policies, and a ``<name>_sweep`` bench entry.  The
conformance suite (``tests/test_workloads.py``) asserts the contract
over every registered workload.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..archs.base import ArchitectureModel
from ..config import StageConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadMapping:
    """One architecture's mapping of a workload's dataflow.

    ``run`` is the functional entry point (``run(samples, config)`` or a
    documented equivalent) where an executable mapping exists in-tree —
    e.g. the Montium tile schedule or the RTL block engine for the DDC.
    ``None`` marks an analytic-only mapping (the model reports
    clock/power/area without a sample-level executor).
    """

    architecture: str
    description: str
    run: Callable[..., Any] | None = None


class Workload(ABC):
    """A kernel the evaluation stack can sweep, explore and benchmark.

    Subclasses declare identity (:attr:`name`, :attr:`title`), the
    configuration dataclass (:attr:`config_cls` / :attr:`default_config`)
    and the architecture models (:meth:`models`); the base class derives
    the rest — evaluators, axes, cache sharing — from those.
    """

    #: Registry key (``--workload NAME`` / ``REPRO_WORKLOAD``).
    name: str = "abstract"
    #: One-line human description for ``--help`` and reports.
    title: str = ""
    #: The frozen configuration dataclass of primitives.
    config_cls: type = object

    def __init__(self) -> None:
        self._shared_evaluator = None

    # ------------------------------------------------------------- identity
    @property
    def default_config(self) -> Any:
        """The reference configuration (the dataclass defaults)."""
        return self.config_cls()

    @abstractmethod
    def models(self) -> list[ArchitectureModel]:
        """Fresh architecture-model instances, report order."""

    # ----------------------------------------------------------- evaluators
    def evaluator(self, cache=None):
        """A fresh evaluator over this workload's models.

        ``cache=None`` is the scalar-oracle behaviour sweeps verify
        against; pass a :class:`~repro.core.evaluator.ReportCache` to
        memoise per-(model, configuration) reports.
        """
        from ..core.evaluator import WorkloadEvaluator

        return WorkloadEvaluator(models=self.models(), cache=cache)

    def shared_evaluator(self):
        """The per-process cached evaluator grid consumers share.

        Lazily built once per workload instance (the registry caches
        instances per process) with its own
        :class:`~repro.core.evaluator.ReportCache`; the DDC workload
        overrides this to return the process-wide
        :func:`~repro.core.evaluator.shared_evaluator` so existing
        consumers keep sharing one cache.
        """
        if self._shared_evaluator is None:
            from ..core.evaluator import ReportCache

            self._shared_evaluator = self.evaluator(cache=ReportCache())
        return self._shared_evaluator

    # ----------------------------------------------------------------- axes
    def config_axes(self) -> tuple[str, ...]:
        """Configuration fields a sweep/discrete axis may range over."""
        return tuple(f.name for f in dataclasses.fields(self.config_cls))

    def continuous_axes(self) -> tuple[str, ...]:
        """Fields the continuous explore axis may range over.

        Default: the float-typed configuration fields (integer fields
        belong on discrete axes).
        """
        return tuple(
            f.name
            for f in dataclasses.fields(self.config_cls)
            if isinstance(f.default, float)
        )

    @abstractmethod
    def default_explore_axis(self) -> tuple[str, float, float]:
        """``(field, lo, hi)`` — the reference continuous search axis."""

    @abstractmethod
    def scenario_axes(self) -> Mapping[str, tuple[Any, ...]]:
        """Suggested sweep axes: field name -> interesting values.

        The workload's own "Table 7 neighbourhood": every value bound to
        the default configuration must leave at least one architecture
        feasible (the conformance suite and the ``<name>_sweep`` bench
        both grid over exactly these axes).
        """

    # ------------------------------------------------------------- dataflow
    @abstractmethod
    def chain(self, config: Any | None = None) -> tuple[StageConfig, ...]:
        """The DSP chain as :class:`~repro.config.StageConfig` stages."""

    @abstractmethod
    def fixed_formats(self, config: Any | None = None) -> Mapping[str, Any]:
        """Signal name -> fixed-point format at the declared chain seams."""

    @abstractmethod
    def mappings(self) -> Mapping[str, WorkloadMapping]:
        """Per-architecture mapping descriptors, keyed by a short slug."""

    # ------------------------------------------------------- population (MC)
    def population_axes(self) -> Mapping[str, Any]:
        """Default Monte-Carlo distributions over the discrete axes.

        Field name -> :class:`~repro.montecarlo.spec.Distribution` drawn
        per sampled user.  The default is an unweighted
        :class:`~repro.montecarlo.spec.Choice` over each
        :meth:`scenario_axes` value set; workloads with an opinion about
        their user population (how many channels a typical receiver
        decodes, say) override this with weighted or trace-replay
        distributions.  Config axes must stay *discrete* so the engine's
        unique-point deduplication keeps model evaluations proportional
        to distinct configurations, not samples.
        """
        from ..montecarlo.spec import Choice

        return {
            name: Choice(values=tuple(values))
            for name, values in self.scenario_axes().items()
        }

    def duty_cycle_distribution(self) -> Any:
        """Default per-user duty-cycle distribution (continuous axis).

        Uniform over [0, 1] unless the workload knows better; must stay
        bounded within [0, 1] (the spec validates declared bounds).
        """
        from ..montecarlo.spec import Uniform

        return Uniform(low=0.0, high=1.0)

    # ------------------------------------------------------------ validation
    def check_config(self, config: Any) -> Any:
        """Reject configurations of the wrong workload early and legibly."""
        if not isinstance(config, self.config_cls):
            raise ConfigurationError(
                f"workload {self.name!r} expects a "
                f"{self.config_cls.__name__} configuration, got "
                f"{type(config).__name__}"
            )
        return config

    def check_axes(
        self, axes: Sequence[tuple[str, Any]], kind: str = "sweep"
    ) -> None:
        """Validate axis field names against this workload's config."""
        known = self.config_axes()
        for name, _ in axes:
            if name not in known:
                raise ConfigurationError(
                    f"unknown {kind} axis {name!r}; workload "
                    f"{self.name!r} ({self.config_cls.__name__}) fields "
                    f"are {', '.join(known)}"
                )

    def __repr__(self) -> str:
        return f"<Workload {self.name!r}: {self.title}>"
