"""The paper's kernel as a registered workload: the DRM channel-selection
DDC, unchanged.

This is a *wrapper*, not a reimplementation: configuration, models,
evaluators and axes all come verbatim from the modules that predate the
workload layer (:mod:`repro.config`, :mod:`repro.core.evaluator`,
:mod:`repro.sweep.spec`), so a ``workload="ddc"`` sweep or exploration is
byte-identical to the pre-workload code paths — including the shared
per-process report cache, which :meth:`DDCWorkload.shared_evaluator`
forwards to :func:`repro.core.evaluator.shared_evaluator` rather than
keeping a private one.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..config import DDCConfig, REFERENCE_DDC, StageConfig
from ..fixedpoint import QFormat
from .base import Workload, WorkloadMapping


class DDCWorkload(Workload):
    """The reference digital down converter (paper Sections 2-7)."""

    name = "ddc"
    title = "DRM channel-selection DDC (the paper's reference kernel)"
    config_cls = DDCConfig

    @property
    def default_config(self) -> DDCConfig:
        return REFERENCE_DDC

    def models(self):
        from ..core.evaluator import default_models

        return default_models()

    def evaluator(self, cache=None):
        from ..core.evaluator import DDCEvaluator

        return DDCEvaluator(cache=cache)

    def shared_evaluator(self):
        """The process-wide cached evaluator — the *same* instance the
        planner, the paper artifacts and pre-workload sweeps share, so
        reports warmed by any consumer serve all of them."""
        from ..core.evaluator import shared_evaluator

        return shared_evaluator()

    def default_explore_axis(self) -> tuple[str, float, float]:
        # The reference explore space: the input-rate span crossing both
        # Cyclone f_max thresholds (ExploreSpec's historical default).
        return ("input_rate_hz", 24_192_000.0, 96_768_000.0)

    def scenario_axes(self) -> Mapping[str, tuple[Any, ...]]:
        # The sweep-subsystem's canonical FIR-length neighbourhood (the
        # sweep_faulty bench grid): every value keeps several
        # architectures feasible while moving the FPGA/GPP numbers.
        return {"fir_taps": (63, 125, 255)}

    def chain(self, config: DDCConfig | None = None) -> tuple[StageConfig, ...]:
        cfg = self.check_config(config or self.default_config)
        return cfg.stages()

    def fixed_formats(
        self, config: DDCConfig | None = None
    ) -> Mapping[str, QFormat]:
        cfg = self.check_config(config or self.default_config)
        w = cfg.data_width
        return {
            "adc": QFormat(w, 0),
            "nco": QFormat(w, w - 1),
            "mixer": QFormat(w, 0),
            "cic_out": QFormat(w, 0),
            "fir_out": QFormat(w, 0),
        }

    def mappings(self) -> Mapping[str, WorkloadMapping]:
        from ..archs.fpga.rtl_ddc import ddc_workload_mapping as fpga_map
        from ..archs.gpp.profiler import ddc_workload_mapping as gpp_map
        from ..archs.montium.ddc_mapping import (
            ddc_workload_mapping as montium_map,
        )

        return {"gpp": gpp_map(), "fpga": fpga_map(), "montium": montium_map()}
