"""End-to-end DRM receiver front end as a workload.

The paper motivates the DDC with Digital Radio Mondiale reception on a
multimedia device (``examples/drm_receiver.py`` sketches the scenario: a
crowded shortwave band, several stations, one selected channel).  This
workload generalises that sketch to an ``n_channels``-way receiver — a
diversity/monitoring front end that down-converts several DRM stations
from one ADC stream simultaneously — and asks the paper's question of
it: which architecture hosts *n* channel-selection rails most
efficiently?

Every per-channel rail is exactly the reference DDC
(:meth:`DRMReceiverConfig.ddc_config` derives the per-station
:class:`~repro.config.DDCConfig`), so the architecture models here
compose the in-tree DDC models instead of inventing new constants:

- :class:`DRMARM9Model` — the profiled ARM922T clock requirement, times
  ``n_channels`` (software rails share nothing);
- :class:`DRMCycloneModel` — ``n_channels`` copies of the estimated DDC
  resource footprint on one device, which is where the workload gets
  interesting: the EP1C3 holds exactly one rail, the EP2C5 a few;
- :class:`DRMMontiumModel` — one Montium TP tile per channel (the
  paper's mapping fills a tile), power and area scaling linearly.

All three use the inherited scalar ``implement_batch`` loop, so the
batch == scalar bit-identity contract holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..archs.base import (
    ArchitectureModel,
    Flexibility,
    ImplementationReport,
)
from ..config import DDCConfig, StageConfig
from ..errors import ConfigurationError
from ..fixedpoint import QFormat
from .base import Workload, WorkloadMapping

#: Station spacing of the synthesised band: four 24 kHz channel widths,
#: comfortably wider than a 10 kHz DRM signal, so adjacent stations fall
#: well outside each rail's passband.
STATION_SPACING_HZ = 96_000.0


@dataclass(frozen=True)
class DRMReceiverConfig:
    """An ``n_channels``-way DRM channel-selection front end.

    One ADC at ``input_rate_hz`` feeds ``n_channels`` independent DDC
    rails; rail ``k`` is tuned ``k`` station spacings above
    ``nco_frequency_hz``.  The per-rail decimation plan fields mirror
    :class:`~repro.config.DDCConfig` so sweep axes carry over.
    """

    input_rate_hz: float = 64_512_000.0
    n_channels: int = 3
    cic2_decimation: int = 16
    cic5_decimation: int = 21
    fir_decimation: int = 8
    fir_taps: int = 125
    data_width: int = 12
    nco_frequency_hz: float = 10_000_000.0

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ConfigurationError("n_channels must be >= 1")
        # Delegate the per-rail validation (positive decimations, NCO
        # below Nyquist for every station) to DDCConfig itself.
        for k in range(self.n_channels):
            self.ddc_config(k)

    def station_frequencies(self) -> tuple[float, ...]:
        """The tuned carrier of each rail, lowest station first."""
        return tuple(
            self.nco_frequency_hz + k * STATION_SPACING_HZ
            for k in range(self.n_channels)
        )

    def ddc_config(self, channel: int = 0) -> DDCConfig:
        """The per-rail DDC configuration of one tuned channel."""
        if not 0 <= channel < self.n_channels:
            raise ConfigurationError(
                f"channel {channel} out of range 0..{self.n_channels - 1}"
            )
        return DDCConfig(
            input_rate_hz=self.input_rate_hz,
            cic2_decimation=self.cic2_decimation,
            cic5_decimation=self.cic5_decimation,
            fir_decimation=self.fir_decimation,
            fir_taps=self.fir_taps,
            data_width=self.data_width,
            nco_frequency_hz=(
                self.nco_frequency_hz + channel * STATION_SPACING_HZ
            ),
        )

    @property
    def total_decimation(self) -> int:
        return (
            self.cic2_decimation * self.cic5_decimation * self.fir_decimation
        )

    @property
    def output_rate_hz(self) -> float:
        return self.input_rate_hz / self.total_decimation


class DRMARM9Model(ArchitectureModel):
    """GPP: ``n_channels`` profiled software rails on one (fast) core."""

    name = "ARM922T (DRM)"

    def __init__(self) -> None:
        from ..archs.gpp.arm9 import ARM9Model

        self.inner = ARM9Model()

    def supports(self, config: DRMReceiverConfig) -> bool:
        return True

    def implement(self, config: DRMReceiverConfig) -> ImplementationReport:
        # Every rail runs the same instruction mix (only the NCO stride
        # differs), so one analytic profile serves all n channels.
        base = self.inner.implement_batch([config.ddc_config(0)]).report_at(0)
        n = config.n_channels
        clock_hz = base.clock_hz * n
        return ImplementationReport(
            architecture=self.name,
            technology=base.technology,
            clock_hz=clock_hz,
            power_w=base.power_w * n,
            area_mm2=base.area_mm2,
            flexibility=Flexibility.PROGRAMMABLE,
            feasible=clock_hz <= self.inner.spec.max_clock_hz,
            notes=(
                f"{n} software DDC rail(s) at {base.clock_hz / 1e6:.0f} MHz "
                f"each; {self.inner.spec.name} sustains "
                f"{self.inner.spec.max_clock_hz / 1e6:.0f} MHz"
            ),
        )


class DRMCycloneModel(ArchitectureModel):
    """FPGA: ``n_channels`` DDC rail footprints on one Cyclone device."""

    def __init__(self, device=None) -> None:
        from ..archs.fpga.devices import CYCLONE_II_EP2C5
        from ..archs.fpga.power import FPGAPowerModel

        self.device = device if device is not None else CYCLONE_II_EP2C5
        self.power_model = FPGAPowerModel(self.device)
        self.name = (
            f"Altera {self.device.family} {self.device.name} (DRM)"
        )

    def _usage(self, config: DRMReceiverConfig):
        from ..archs.fpga.resources import (
            ResourceUsage,
            estimate_ddc_resources,
        )

        rail = estimate_ddc_resources(self.device, config.ddc_config(0))
        n = config.n_channels
        # n complete rails share the ADC pins and the clock tree only.
        return ResourceUsage(
            logic_elements=rail.logic_elements * n,
            memory_bits=rail.memory_bits * n,
            multipliers_9bit=rail.multipliers_9bit * n,
            pins=rail.pins,
        )

    def supports(self, config: DRMReceiverConfig) -> bool:
        from ..errors import MappingError

        try:
            usage = self._usage(config)
        except (ConfigurationError, MappingError):
            return False
        return (
            usage.fits(self.device)
            and config.input_rate_hz <= self.device.fmax_ddc_hz
        )

    def implement(self, config: DRMReceiverConfig) -> ImplementationReport:
        from ..archs.fpga.resources import require_fit

        usage = self._usage(config)
        require_fit(usage, self.device)
        power = self.power_model.estimate(
            usage, config.input_rate_hz, 0.10, 0.50
        )
        return ImplementationReport(
            architecture=f"Altera {self.device.family} (DRM)",
            technology=self.device.technology,
            clock_hz=config.input_rate_hz,
            power_w=power.total_w,
            area_mm2=None,
            flexibility=Flexibility.RECONFIGURABLE,
            feasible=config.input_rate_hz <= self.device.fmax_ddc_hz,
            notes=(
                f"{config.n_channels} DDC rail(s): {usage.logic_elements} "
                f"LEs, {usage.memory_bits} memory bits, "
                f"{usage.multipliers_9bit} embedded 9-bit multipliers"
            ),
        )


class DRMMontiumModel(ArchitectureModel):
    """Montium: one TP tile per channel, the paper's mapping per tile."""

    name = "Montium TP (DRM)"

    def __init__(self) -> None:
        from ..archs.montium.model import MontiumModel

        self.inner = MontiumModel()

    def supports(self, config: DRMReceiverConfig) -> bool:
        return self.inner.supports(config.ddc_config(0))

    def implement(self, config: DRMReceiverConfig) -> ImplementationReport:
        base = self.inner.implement(config.ddc_config(0))
        n = config.n_channels
        return ImplementationReport(
            architecture=self.name,
            technology=base.technology,
            clock_hz=base.clock_hz,
            power_w=base.power_w * n,
            area_mm2=self.inner.spec.area_mm2 * n,
            flexibility=Flexibility.RECONFIGURABLE,
            feasible=base.feasible,
            notes=f"{n} tile(s), each: {base.notes}",
        )


def drm_receive(
    samples: np.ndarray,
    config: DRMReceiverConfig | None = None,
) -> np.ndarray:
    """Functional reference mapping: demodulate every station.

    Runs the bit-true :class:`~repro.dsp.ddc.FixedDDC` once per rail
    (the GPP realisation of the receiver) and returns the complex
    baseband of each station, shape ``(n_channels, n_out)``.
    """
    from ..dsp.ddc import FixedDDC

    cfg = config if config is not None else DRMReceiverConfig()
    outs = []
    for k in range(cfg.n_channels):
        i, q = FixedDDC(cfg.ddc_config(k)).process(np.asarray(samples))
        outs.append(i.astype(np.float64) + 1j * q.astype(np.float64))
    return np.stack(outs)


class DRMReceiverWorkload(Workload):
    """The multi-channel DRM receiver front end."""

    name = "drm"
    title = "end-to-end multi-channel DRM receiver front end"
    config_cls = DRMReceiverConfig

    def models(self):
        from ..archs.fpga.devices import CYCLONE_I_EP1C3, CYCLONE_II_EP2C5

        return [
            DRMARM9Model(),
            DRMCycloneModel(CYCLONE_I_EP1C3),
            DRMCycloneModel(CYCLONE_II_EP2C5),
            DRMMontiumModel(),
        ]

    def default_explore_axis(self) -> tuple[str, float, float]:
        # The DDC workload's reference span: crossing both Cyclone f_max
        # thresholds moves the FPGA rails in and out of feasibility.
        return ("input_rate_hz", 24_192_000.0, 96_768_000.0)

    def scenario_axes(self) -> Mapping[str, tuple[Any, ...]]:
        # Receiver width: one rail fits the EP1C3, a few fit the EP2C5,
        # the Montium scales a tile at a time, the ARM9 never keeps up.
        return {"n_channels": (1, 2, 3, 4)}

    def population_axes(self) -> Mapping[str, Any]:
        # Most receivers decode a single programme; multi-channel
        # monitoring rigs thin out fast.
        from ..montecarlo.spec import Choice

        return {
            "n_channels": Choice(
                values=(1, 2, 3, 4), weights=(0.55, 0.25, 0.15, 0.05)
            )
        }

    def duty_cycle_distribution(self) -> Any:
        # Bimodal listeners: background/occasional (short news checks)
        # vs programme followers who keep the receiver decoding.
        from ..montecarlo.spec import Mixture, Normal

        return Mixture(
            components=(
                (0.7, Normal(mean=0.08, std=0.05, low=0.0, high=1.0)),
                (0.3, Normal(mean=0.55, std=0.15, low=0.0, high=1.0)),
            )
        )

    def chain(
        self, config: DRMReceiverConfig | None = None
    ) -> tuple[StageConfig, ...]:
        cfg = self.check_config(config or self.default_config)
        # The per-rail chain (all rails are identical up to NCO tuning).
        return cfg.ddc_config(0).stages()

    def fixed_formats(
        self, config: DRMReceiverConfig | None = None
    ) -> Mapping[str, QFormat]:
        cfg = self.check_config(config or self.default_config)
        w = cfg.data_width
        return {
            "adc": QFormat(w, 0),
            "nco": QFormat(w, w - 1),
            "mixer": QFormat(w, 0),
            "cic_out": QFormat(w, 0),
            "fir_out": QFormat(w, 0),
        }

    def mappings(self) -> Mapping[str, WorkloadMapping]:
        return {
            "gpp": WorkloadMapping(
                architecture="ARM922T (DRM)",
                description=(
                    "n bit-true software DDC rails (FixedDDC per "
                    "station), the functional reference"
                ),
                run=drm_receive,
            ),
            "fpga": WorkloadMapping(
                architecture="Altera Cyclone (DRM)",
                description=(
                    "n replicated RTL DDC rails on one device, sharing "
                    "ADC pins and clock tree (analytic resource model)"
                ),
            ),
            "montium": WorkloadMapping(
                architecture="Montium TP (DRM)",
                description=(
                    "one tile per station running the paper's 5-ALU DDC "
                    "schedule (analytic; per-tile executor is the ddc "
                    "workload's montium mapping)"
                ),
            ),
        }
