"""Workload registry: pluggable kernels over one evaluation stack.

A :class:`~repro.workloads.base.Workload` bundles a configuration
dataclass, architecture models, scenario axes and per-architecture
mappings; the registry resolves them by name so the sweep/explore CLIs
(``--workload``), the bench harness and library callers all share one
namespace.

Built-ins (imported lazily — listing costs nothing, instantiating a
workload imports only its own models):

- ``ddc`` — the paper's DRM channel-selection DDC (the default);
- ``drm`` — the end-to-end multi-channel DRM receiver front end
  (n parallel DDC rails, the ``examples/drm_receiver.py`` scenario);
- ``ofdm`` — an FFT/OFDM demodulator front end (DRM/DAB-style symbol
  demodulation behind the DDC).

``REPRO_WORKLOAD`` selects the process-wide default (CLIs also take
``--workload``); unset means ``ddc``.  :func:`register` adds third-party
workloads to the same namespace.
"""

from __future__ import annotations

import os

from ..errors import ConfigurationError
from .base import Workload, WorkloadMapping

#: Environment variable naming the default workload.
ENV_VAR = "REPRO_WORKLOAD"

#: The fallback default (the paper's kernel).
DEFAULT_WORKLOAD = "ddc"


def _builtin_factories():
    """Name -> zero-arg constructor for the in-tree workloads (lazy)."""

    def ddc():
        from .ddc import DDCWorkload

        return DDCWorkload()

    def drm():
        from .drm import DRMReceiverWorkload

        return DRMReceiverWorkload()

    def ofdm():
        from .ofdm import OFDMDemodWorkload

        return OFDMDemodWorkload()

    return {"ddc": ddc, "drm": drm, "ofdm": ofdm}


_FACTORIES = _builtin_factories()
_INSTANCES: dict[str, Workload] = {}


def register(workload: Workload, replace: bool = False) -> Workload:
    """Add a workload instance to the registry under ``workload.name``.

    Registering over an existing name is an error unless
    ``replace=True`` — silent shadowing of a built-in would make
    ``--workload`` mean different things in different processes.
    """
    name = workload.name
    if not name or name == "abstract":
        raise ConfigurationError(
            "a workload must declare a non-default name to register"
        )
    if not replace and (name in _FACTORIES or name in _INSTANCES):
        raise ConfigurationError(
            f"workload {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _INSTANCES[name] = workload
    return workload


def available() -> tuple[str, ...]:
    """Every registered workload name, sorted (built-ins included)."""
    return tuple(sorted(set(_FACTORIES) | set(_INSTANCES)))


def default_name() -> str:
    """The process default: ``$REPRO_WORKLOAD`` or ``"ddc"``."""
    return os.environ.get(ENV_VAR, DEFAULT_WORKLOAD) or DEFAULT_WORKLOAD


def get(name: str | None = None) -> Workload:
    """Resolve a workload by name (``None`` = the process default).

    Instances are cached per process, so repeated resolution — every
    sweep point, every explore round — shares one workload object and
    hence one :meth:`~repro.workloads.base.Workload.shared_evaluator`.
    """
    if name is None:
        name = default_name()
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(available())} (set {ENV_VAR} or pass --workload)"
        )
    instance = factory()
    if instance.name != name:
        raise ConfigurationError(
            f"workload factory for {name!r} built {instance.name!r}"
        )
    _INSTANCES[name] = instance
    return instance


__all__ = [
    "Workload",
    "WorkloadMapping",
    "ENV_VAR",
    "DEFAULT_WORKLOAD",
    "register",
    "available",
    "default_name",
    "get",
]
