"""Wires: named buses with two-phase update and toggle counting.

A :class:`Wire` holds a signed two's-complement value of fixed ``width``.
During a cycle, components read :attr:`value` (the registered value from the
previous cycle) and call :meth:`drive` to set the value for the next cycle;
the simulator then calls :meth:`commit` on every wire.  Driving the same
wire twice in one cycle raises :class:`~repro.errors.SimulationError`
(multiple drivers = bus contention).

Toggle accounting: on every commit the number of flipped bits between the
old and new value is accumulated.  ``toggles / (cycles * width)`` is the
wire's *toggle rate* — the quantity Quartus' PowerPlay sweeps in the paper's
Table 5 and that our FPGA power model consumes.

This module sits on the innermost loop of the cycle-driven simulator
(one :meth:`drive` per component output and one :meth:`commit` per wire per
clock edge), so the hot methods are written for speed: ``__slots__``
storage, a precomputed width mask, an early-out when the wire holds its
value, and a popcount that uses :meth:`int.bit_count` where available.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..fixedpoint import QFormat

try:  # Python >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on old runtimes
    def _popcount(v: int) -> int:
        return bin(v).count("1")


class Wire:
    """A named synchronous bus."""

    __slots__ = (
        "name",
        "width",
        "_fmt",
        "_lo",
        "_hi",
        "_mask",
        "reset_value",
        "value",
        "_next",
        "_driver",
        "toggles",
        "commits",
    )

    def __init__(self, name: str, width: int = 1, reset_value: int = 0) -> None:
        if not 1 <= width <= 64:
            raise SimulationError(f"wire {name!r}: width must be in 1..64")
        self.name = name
        self.width = width
        self._fmt = QFormat(width, 0) if width > 1 else None
        self._lo, self._hi = self._range()
        self._mask = (1 << width) - 1
        if not self._lo <= reset_value <= self._hi:
            raise SimulationError(
                f"wire {name!r}: reset value {reset_value} does not fit "
                f"{width} bits"
            )
        self.reset_value = reset_value
        self.value = reset_value
        self._next: int | None = None
        self._driver: str | None = None
        self.toggles = 0
        self.commits = 0

    def _range(self) -> tuple[int, int]:
        if self.width == 1:
            return 0, 1
        assert self._fmt is not None
        return self._fmt.min_raw, self._fmt.max_raw

    # ------------------------------------------------------------------ API
    def drive(self, value: int, driver: str = "?") -> None:
        """Schedule ``value`` to appear on the wire next cycle."""
        if type(value) is not int:
            # numpy integer scalars compare correctly against the range
            # bounds but must be stored as Python ints so commit's XOR /
            # popcount stays in exact arbitrary-precision arithmetic.
            value = int(value)
        if self._next is not None:
            raise SimulationError(
                f"wire {self.name!r}: driven by both {self._driver!r} and "
                f"{driver!r} in the same cycle"
            )
        if not self._lo <= value <= self._hi:
            raise SimulationError(
                f"wire {self.name!r}: value {value} does not fit "
                f"{self.width} bits (driver {driver!r})"
            )
        self._next = value
        self._driver = driver

    def commit(self) -> None:
        """Latch the driven value (or hold) and count bit toggles."""
        new = self._next
        self.commits += 1
        if new is None:  # hold: value unchanged, no bits flip
            return
        old = self.value
        if new != old:
            # Two's-complement XOR over the wire width counts flipped bits.
            self.toggles += _popcount((old ^ new) & self._mask)
            self.value = new
        self._next = None
        self._driver = None

    def commit_no_activity(self) -> None:
        """Latch the driven value without toggle accounting.

        Identical latching semantics to :meth:`commit`, but toggle counters
        stay untouched (and meaningless) — for runs that never read the
        activity report.
        """
        new = self._next
        self.commits += 1
        if new is None:
            return
        self.value = new
        self._next = None
        self._driver = None

    # Batched-commit fast paths used by the compiled Simulator.step loop.
    # They skip the per-cycle ``commits`` increment; the scheduler bulk-adds
    # the cycle count after the batch (every wire commits every cycle), so
    # observable counters are identical once ``step`` returns.
    def _latch(self) -> None:
        new = self._next
        if new is None:
            return
        old = self.value
        if new != old:
            self.toggles += _popcount((old ^ new) & self._mask)
            self.value = new
        self._next = None
        self._driver = None

    def _latch_no_activity(self) -> None:
        new = self._next
        if new is None:
            return
        self.value = new
        self._next = None
        self._driver = None

    def reset(self) -> None:
        """Return to the reset value and clear statistics."""
        self.value = self.reset_value
        self._next = None
        self._driver = None
        self.toggles = 0
        self.commits = 0

    @property
    def toggle_rate(self) -> float:
        """Average fraction of bits toggling per cycle (0..1)."""
        if self.commits == 0:
            return 0.0
        return self.toggles / (self.commits * self.width)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Wire({self.name!r}, width={self.width}, value={self.value})"
