"""Wires: named buses with two-phase update and toggle counting.

A :class:`Wire` holds a signed two's-complement value of fixed ``width``.
During a cycle, components read :attr:`value` (the registered value from the
previous cycle) and call :meth:`drive` to set the value for the next cycle;
the simulator then calls :meth:`commit` on every wire.  Driving the same
wire twice in one cycle raises :class:`~repro.errors.SimulationError`
(multiple drivers = bus contention).

Toggle accounting: on every commit the number of flipped bits between the
old and new value is accumulated.  ``toggles / (cycles * width)`` is the
wire's *toggle rate* — the quantity Quartus' PowerPlay sweeps in the paper's
Table 5 and that our FPGA power model consumes.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..fixedpoint import QFormat


class Wire:
    """A named synchronous bus."""

    def __init__(self, name: str, width: int = 1, reset_value: int = 0) -> None:
        if not 1 <= width <= 64:
            raise SimulationError(f"wire {name!r}: width must be in 1..64")
        self.name = name
        self.width = width
        self._fmt = QFormat(width, 0) if width > 1 else None
        self._lo, self._hi = self._range()
        if not self._lo <= reset_value <= self._hi:
            raise SimulationError(
                f"wire {name!r}: reset value {reset_value} does not fit "
                f"{width} bits"
            )
        self.reset_value = reset_value
        self.value = reset_value
        self._next: int | None = None
        self._driver: str | None = None
        self.toggles = 0
        self.commits = 0

    def _range(self) -> tuple[int, int]:
        if self.width == 1:
            return 0, 1
        assert self._fmt is not None
        return self._fmt.min_raw, self._fmt.max_raw

    # ------------------------------------------------------------------ API
    def drive(self, value: int, driver: str = "?") -> None:
        """Schedule ``value`` to appear on the wire next cycle."""
        value = int(value)
        if self._next is not None:
            raise SimulationError(
                f"wire {self.name!r}: driven by both {self._driver!r} and "
                f"{driver!r} in the same cycle"
            )
        if not self._lo <= value <= self._hi:
            raise SimulationError(
                f"wire {self.name!r}: value {value} does not fit "
                f"{self.width} bits (driver {driver!r})"
            )
        self._next = value
        self._driver = driver

    def commit(self) -> None:
        """Latch the driven value (or hold) and count bit toggles."""
        new = self.value if self._next is None else self._next
        # Two's-complement XOR over the wire width counts flipped bits.
        mask = (1 << self.width) - 1
        diff = (self.value ^ new) & mask
        self.toggles += diff.bit_count()
        self.commits += 1
        self.value = new
        self._next = None
        self._driver = None

    def reset(self) -> None:
        """Return to the reset value and clear statistics."""
        self.value = self.reset_value
        self._next = None
        self._driver = None
        self.toggles = 0
        self.commits = 0

    @property
    def toggle_rate(self) -> float:
        """Average fraction of bits toggling per cycle (0..1)."""
        if self.commits == 0:
            return 0.0
        return self.toggles / (self.commits * self.width)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Wire({self.name!r}, width={self.width}, value={self.value})"
