"""Waveform capture and toggle-activity reporting.

:class:`WaveTrace` records selected wires' values every cycle (a tiny VCD
stand-in used by tests and the Fig. 9-style schedule rendering).

:class:`ActivityReport` aggregates per-wire toggle counts into the design-
level *internal toggle rate* — the single number the paper sweeps in
Table 5 ("we assumed an internal toggle rate of 10 % for both FPGAs") and
that :mod:`repro.archs.fpga.power` converts to dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SimulationError
from .wire import Wire


class WaveTrace:
    """Records the value of selected wires each cycle."""

    def __init__(self, wires: list[Wire]) -> None:
        if not wires:
            raise SimulationError("WaveTrace needs at least one wire")
        self._wires = list(wires)
        self._history: dict[str, list[int]] = {w.name: [] for w in self._wires}
        self._cycles: list[int] = []

    def sample(self, cycle: int) -> None:
        """Capture the committed value of every traced wire."""
        self._cycles.append(cycle)
        for w in self._wires:
            self._history[w.name].append(w.value)

    def clear(self) -> None:
        """Drop all captured samples."""
        self._cycles.clear()
        for h in self._history.values():
            h.clear()

    def values(self, wire_name: str) -> list[int]:
        """Captured sample list for one wire."""
        try:
            return list(self._history[wire_name])
        except KeyError:
            raise SimulationError(f"wire {wire_name!r} is not traced") from None

    @property
    def cycles(self) -> list[int]:
        """Cycle numbers at which samples were taken."""
        return list(self._cycles)

    def changes(self, wire_name: str) -> list[tuple[int, int]]:
        """(cycle, new_value) pairs at which the wire changed."""
        vals = self.values(wire_name)
        out: list[tuple[int, int]] = []
        prev: int | None = None
        for cyc, v in zip(self._cycles, vals):
            if prev is None or v != prev:
                out.append((cyc, v))
            prev = v
        return out


@dataclass(frozen=True)
class WireActivity:
    """Toggle statistics of a single wire."""

    name: str
    width: int
    toggles: int
    commits: int

    @property
    def toggle_rate(self) -> float:
        """Fraction of bits toggling per cycle (0..1)."""
        if self.commits == 0:
            return 0.0
        return self.toggles / (self.commits * self.width)


@dataclass(frozen=True)
class ActivityReport:
    """Aggregate toggle activity over a simulation run."""

    cycles: int
    wires: tuple[WireActivity, ...] = field(default_factory=tuple)

    @classmethod
    def from_wires(cls, wires: Iterable[Wire], cycles: int) -> "ActivityReport":
        """Snapshot the current counters of ``wires``."""
        acts = tuple(
            WireActivity(w.name, w.width, w.toggles, w.commits) for w in wires
        )
        return cls(cycles=cycles, wires=acts)

    @property
    def total_bits(self) -> int:
        """Sum of wire widths (the togglable bit population)."""
        return sum(w.width for w in self.wires)

    @property
    def mean_toggle_rate(self) -> float:
        """Bit-weighted average toggle rate across all wires.

        This is the design-level "internal toggle rate" of Table 5.
        """
        denom = sum(w.width * w.commits for w in self.wires)
        if denom == 0:
            return 0.0
        return sum(w.toggles for w in self.wires) / denom

    def by_name(self, name: str) -> WireActivity:
        """Activity record of one wire."""
        for w in self.wires:
            if w.name == name:
                return w
        raise SimulationError(f"no activity recorded for wire {name!r}")

    def busiest(self, n: int = 5) -> list[WireActivity]:
        """The ``n`` wires with the highest toggle rate."""
        return sorted(self.wires, key=lambda w: w.toggle_rate, reverse=True)[:n]
