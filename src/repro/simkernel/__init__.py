"""Cycle-driven structural hardware simulator.

The FPGA implementation of Section 5 is described at the register-transfer
level: 12-bit data buses, output-valid handshake lines, a sequential
polyphase FIR spending 125 clock cycles per output.  To reproduce its
behaviour (bit-true output) *and* its cost (toggle activity feeding the
PowerPlay-style power model), this package provides a small synchronous
simulator:

- :class:`~repro.simkernel.wire.Wire` — a named bus with a current value,
  single-driver next-value semantics and toggle counting;
- :class:`~repro.simkernel.component.Component` — synchronous logic
  evaluated once per cycle, reading wires' *current* values and driving
  their *next* values (two-phase update, so evaluation order never matters);
- :class:`~repro.simkernel.scheduler.Simulator` — owns the clock, the wires
  and the components, advances cycles, and aggregates activity;
- :class:`~repro.simkernel.trace.WaveTrace` / activity reports — waveform
  capture and per-wire toggle-rate statistics (the "internal toggle rate"
  that Table 5 sweeps).
"""

from .clock import ClockDomain
from .wire import Wire
from .component import Component
from .scheduler import Simulator
from .trace import ActivityReport, WaveTrace

__all__ = [
    "ClockDomain",
    "Wire",
    "Component",
    "Simulator",
    "ActivityReport",
    "WaveTrace",
]
