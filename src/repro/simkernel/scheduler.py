"""The cycle-driven simulator.

:class:`Simulator` owns one clock domain, a set of wires and a set of
components.  :meth:`Simulator.step` advances one clock edge in two phases:

1. evaluate — every component's ``tick`` runs, reading committed wire
   values and scheduling next values;
2. commit — every wire latches its next value and updates toggle counts.

The kernel is deliberately small: all behaviour lives in components, all
observability in wires and traces.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import SimulationError
from .clock import ClockDomain
from .component import Component
from .trace import ActivityReport, WaveTrace
from .wire import Wire


class Simulator:
    """Synchronous single-clock simulator."""

    def __init__(self, clock: ClockDomain) -> None:
        self.clock = clock
        self._wires: dict[str, Wire] = {}
        self._components: dict[str, Component] = {}
        self._traces: list[WaveTrace] = []
        self.cycle = 0

    # ------------------------------------------------------------- assembly
    def wire(self, name: str, width: int = 1, reset_value: int = 0) -> Wire:
        """Create and register a wire (names must be unique)."""
        if name in self._wires:
            raise SimulationError(f"duplicate wire name {name!r}")
        w = Wire(name, width, reset_value)
        self._wires[name] = w
        return w

    def add(self, component: Component) -> Component:
        """Register a component (names must be unique)."""
        if component.name in self._components:
            raise SimulationError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component
        return component

    def attach_trace(self, trace: WaveTrace) -> WaveTrace:
        """Record the given trace every cycle."""
        self._traces.append(trace)
        return trace

    @property
    def wires(self) -> dict[str, Wire]:
        """Registered wires by name."""
        return dict(self._wires)

    @property
    def components(self) -> dict[str, Component]:
        """Registered components by name."""
        return dict(self._components)

    # -------------------------------------------------------------- running
    def step(self, cycles: int = 1) -> None:
        """Advance ``cycles`` clock edges."""
        if cycles < 0:
            raise SimulationError("cycles must be >= 0")
        for _ in range(cycles):
            for comp in self._components.values():
                comp.tick(self.cycle)
            for w in self._wires.values():
                w.commit()
            for t in self._traces:
                t.sample(self.cycle)
            self.cycle += 1

    def run_until(self, predicate, max_cycles: int = 1_000_000) -> int:
        """Step until ``predicate(sim)`` is true; returns the cycle count.

        Raises :class:`SimulationError` if ``max_cycles`` elapse first.
        """
        start = self.cycle
        while not predicate(self):
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"run_until exceeded {max_cycles} cycles"
                )
            self.step()
        return self.cycle - start

    def reset(self) -> None:
        """Reset wires, components, traces and the cycle counter."""
        for w in self._wires.values():
            w.reset()
        for c in self._components.values():
            c.reset()
        for t in self._traces:
            t.clear()
        self.cycle = 0

    # ---------------------------------------------------------------- stats
    def activity_report(self) -> ActivityReport:
        """Per-wire and aggregate toggle statistics for the run so far."""
        return ActivityReport.from_wires(self._wires.values(), self.cycle)

    def elapsed_time_s(self) -> float:
        """Simulated wall-clock time."""
        return self.clock.time_of(self.cycle)
