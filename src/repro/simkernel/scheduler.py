"""The cycle-driven simulator.

:class:`Simulator` owns one clock domain, a set of wires and a set of
components.  :meth:`Simulator.step` advances one clock edge in two phases:

1. evaluate — every component's ``tick`` runs, reading committed wire
   values and scheduling next values;
2. commit — every wire latches its next value and updates toggle counts.

The kernel is deliberately small: all behaviour lives in components, all
observability in wires and traces.

Execution speed
---------------
``step`` is the hot loop of every RTL run (one Python iteration per clock
edge), so the simulator *compiles* itself before running: the component
``tick`` and wire ``commit`` bound methods are snapshotted into flat tuples
(:meth:`compile`), removing all per-cycle dict iteration and attribute
lookups.  The compiled plan is built lazily on first ``step`` and
invalidated automatically whenever a wire, component or trace is added, so
callers never have to manage it — but may call :meth:`compile` explicitly
after assembly to pay the (tiny) cost up front.

Activity tracing is opt-out-able: constructing with ``activity=False``
commits wires through a latching-only fast path that skips toggle counting
entirely.  Only power-model runs (the paper's Table 5) consume toggle
statistics; functional and throughput runs should switch it off.
"""

from __future__ import annotations


from ..errors import SimulationError
from .clock import ClockDomain
from .component import Component
from .trace import ActivityReport, WaveTrace
from .wire import Wire


class Simulator:
    """Synchronous single-clock simulator."""

    def __init__(self, clock: ClockDomain, activity: bool = True) -> None:
        self.clock = clock
        self._wires: dict[str, Wire] = {}
        self._components: dict[str, Component] = {}
        self._traces: list[WaveTrace] = []
        self._activity = bool(activity)
        self._plan: tuple[tuple, tuple, tuple] | None = None
        self._step_fn = None
        self.cycle = 0

    # ------------------------------------------------------------- assembly
    def wire(self, name: str, width: int = 1, reset_value: int = 0) -> Wire:
        """Create and register a wire (names must be unique)."""
        if name in self._wires:
            raise SimulationError(f"duplicate wire name {name!r}")
        w = Wire(name, width, reset_value)
        self._wires[name] = w
        self._invalidate()
        return w

    def _invalidate(self) -> None:
        self._plan = None
        self._step_fn = None

    def add(self, component: Component) -> Component:
        """Register a component (names must be unique)."""
        if component.name in self._components:
            raise SimulationError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component
        self._invalidate()
        return component

    def attach_trace(self, trace: WaveTrace) -> WaveTrace:
        """Record the given trace every cycle."""
        self._traces.append(trace)
        self._invalidate()
        return trace

    @property
    def wires(self) -> dict[str, Wire]:
        """Registered wires by name."""
        return dict(self._wires)

    @property
    def components(self) -> dict[str, Component]:
        """Registered components by name."""
        return dict(self._components)

    @property
    def activity(self) -> bool:
        """Whether wire toggle activity is being accumulated."""
        return self._activity

    @activity.setter
    def activity(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled != self._activity:
            self._activity = enabled
            self._invalidate()

    # ------------------------------------------------------------ compiling
    def compile(self, engine: str | None = None) -> "Simulator":
        """Snapshot the design into an executable step plan.

        Idempotent and safe to call at any time; assembly methods
        invalidate the plan so a stale snapshot can never run.

        ``engine`` selects the kernel tier (``python`` = the flat tuple
        plan below, ``fused`` = a generated single-function step loop with
        the latch bodies inlined; ``None`` = the ``REPRO_KERNELS``
        default).  Both tiers are cycle- and state-identical, including
        partial-cycle semantics on a mid-cycle exception.
        """
        from ..kernels import dispatch as _dispatch

        tier = _dispatch.resolve("sim_step", engine)
        if tier != "python":
            self._step_fn = _dispatch.kernel("sim_step", tier)(self)
            self._plan = None
            return self
        wires = tuple(self._wires.values())
        latches = (
            tuple(w._latch for w in wires)
            if self._activity
            else tuple(w._latch_no_activity for w in wires)
        )
        self._plan = (
            tuple(c.tick for c in self._components.values()),
            latches,
            wires,
        )
        self._step_fn = None
        return self

    @property
    def compiled(self) -> bool:
        """True while a current compiled plan exists."""
        return self._plan is not None or self._step_fn is not None

    # -------------------------------------------------------------- running
    def step(self, cycles: int = 1) -> None:
        """Advance ``cycles`` clock edges."""
        if cycles < 0:
            raise SimulationError("cycles must be >= 0")
        if self._plan is None and self._step_fn is None:
            self.compile()
        if self._step_fn is not None:
            self._step_fn(self, cycles)
            return
        assert self._plan is not None
        ticks, latches, wires = self._plan
        traces = self._traces
        cycle = self.cycle
        try:
            if traces:
                for _ in range(cycles):
                    for tick in ticks:
                        tick(cycle)
                    for latch in latches:
                        latch()
                    for t in traces:
                        t.sample(cycle)
                    cycle += 1
            else:
                for _ in range(cycles):
                    for tick in ticks:
                        tick(cycle)
                    for latch in latches:
                        latch()
                    cycle += 1
        finally:
            # On a mid-cycle exception the partially evaluated cycle is not
            # counted, matching the uncompiled per-cycle loop's behaviour.
            # Commit counters are bulk-added here (every wire commits every
            # completed cycle), which is what makes the latch loop cheap.
            done = cycle - self.cycle
            if done:
                for w in wires:
                    w.commits += done
            self.cycle = cycle

    def run_until(self, predicate, max_cycles: int = 1_000_000) -> int:
        """Step until ``predicate(sim)`` is true; returns the cycle count.

        Raises :class:`SimulationError` if ``max_cycles`` elapse first.
        """
        start = self.cycle
        while not predicate(self):
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"run_until exceeded {max_cycles} cycles"
                )
            self.step()
        return self.cycle - start

    def reset(self) -> None:
        """Reset wires, components, traces and the cycle counter."""
        for w in self._wires.values():
            w.reset()
        for c in self._components.values():
            c.reset()
        for t in self._traces:
            t.clear()
        self.cycle = 0

    # ---------------------------------------------------------------- stats
    def activity_report(self) -> ActivityReport:
        """Per-wire and aggregate toggle statistics for the run so far."""
        return ActivityReport.from_wires(self._wires.values(), self.cycle)

    def elapsed_time_s(self) -> float:
        """Simulated wall-clock time."""
        return self.clock.time_of(self.cycle)
