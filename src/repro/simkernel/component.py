"""Synchronous components.

A :class:`Component` is a block of registered logic: once per clock cycle
the simulator calls :meth:`Component.tick`, which reads the *current*
values of its input wires and drives the *next* values of its output wires.
Because every read sees last cycle's committed state, evaluation order
between components cannot change results — the property that makes the
kernel deterministic and lets the test suite compare against the bit-true
:mod:`repro.dsp` models sample-for-sample.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import SimulationError
from .wire import Wire


class Component(ABC):
    """Base class for synchronous logic blocks."""

    # Subclasses that declare their own __slots__ stay dict-free; ones that
    # don't simply regain a __dict__ for their extra attributes.
    __slots__ = ("name", "_inputs", "_outputs")

    def __init__(self, name: str) -> None:
        if not name:
            raise SimulationError("component name must be non-empty")
        self.name = name
        self._inputs: dict[str, Wire] = {}
        self._outputs: dict[str, Wire] = {}

    # ----------------------------------------------------------- port setup
    def add_input(self, port: str, wire: Wire) -> Wire:
        """Connect ``wire`` as input ``port``."""
        if port in self._inputs:
            raise SimulationError(f"{self.name}: duplicate input port {port!r}")
        self._inputs[port] = wire
        return wire

    def add_output(self, port: str, wire: Wire) -> Wire:
        """Connect ``wire`` as output ``port``."""
        if port in self._outputs:
            raise SimulationError(f"{self.name}: duplicate output port {port!r}")
        self._outputs[port] = wire
        return wire

    # ------------------------------------------------------------ port use
    def read(self, port: str) -> int:
        """Current (previous-cycle) value of an input port."""
        try:
            return self._inputs[port].value
        except KeyError:
            raise SimulationError(
                f"{self.name}: read of unconnected input {port!r}"
            ) from None

    def write(self, port: str, value: int) -> None:
        """Drive an output port for the next cycle."""
        try:
            self._outputs[port].drive(value, driver=self.name)
        except KeyError:
            raise SimulationError(
                f"{self.name}: write to unconnected output {port!r}"
            ) from None

    @property
    def inputs(self) -> dict[str, Wire]:
        """Connected input wires by port name."""
        return dict(self._inputs)

    @property
    def outputs(self) -> dict[str, Wire]:
        """Connected output wires by port name."""
        return dict(self._outputs)

    # -------------------------------------------------------------- dynamics
    @abstractmethod
    def tick(self, cycle: int) -> None:
        """Evaluate one clock cycle (read inputs, drive outputs)."""

    def reset(self) -> None:
        """Clear internal registers; default is stateless."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"
