"""Clock domains.

The paper's FPGA DDC runs everything at the 64.512 MHz input clock (the
sequential FIR trades hardware for cycles precisely to avoid a second
domain), so most simulations use a single :class:`ClockDomain`; the class
still carries frequency so power models can convert cycle counts and toggle
counts into time and dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with a frequency in Hz."""

    name: str
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"clock {self.name!r}: frequency must be positive, "
                f"got {self.frequency_hz}"
            )

    @property
    def period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    def cycles_for(self, seconds: float) -> int:
        """Number of whole cycles elapsing in ``seconds``."""
        if seconds < 0:
            raise ConfigurationError("seconds must be >= 0")
        return int(seconds * self.frequency_hz)

    def time_of(self, cycles: int) -> float:
        """Wall-clock time of ``cycles`` clock periods, in seconds."""
        if cycles < 0:
            raise ConfigurationError("cycles must be >= 0")
        return cycles * self.period_s
