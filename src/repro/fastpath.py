"""Shared numpy primitives for the vectorised fast engines.

The block/trace engines (:mod:`repro.archs.gpp.ddc_kernel`,
:mod:`repro.archs.montium.block`) replay fixed-point hardware arithmetic
over whole sample blocks.  Their bit-identity contracts all rest on the
same two primitives, kept here in one place so a fix to either cannot
drift between architectures:

- :func:`wrap16` / :func:`wrap32` — vectorised two's-complement wrapping
  (``& mask`` then signed re-bias), valid for scalars and int64 arrays;
- :func:`delay_chain` — a one-event delay line seeded with the carried
  register value, the building block of every comb stage.

Why prefix sums are safe: a chain of wrapped additions
``s[t] = wrapN(s[t-1] + x[t])`` equals ``wrapN(s[-1] + cumsum(x)[t])``
because wrapping only discards multiples of ``2**N`` — so the engines may
``cumsum`` in int64 first and wrap once, as long as the unwrapped partial
sums stay inside int64 (all DDC streams do by a wide margin).
"""

from __future__ import annotations

import numpy as np

_M16 = np.int64(0xFFFF)
_H16 = np.int64(1 << 15)
_M32 = np.int64(0xFFFFFFFF)
_H32 = np.int64(1 << 31)


def wrap16(a):
    """Vectorised signed 16-bit two's-complement wrap."""
    return ((a + _H16) & _M16) - _H16


def wrap32(a):
    """Vectorised signed 32-bit two's-complement wrap."""
    return ((a + _H32) & _M32) - _H32


def delay_chain(x: np.ndarray, init: int) -> np.ndarray:
    """``x`` delayed by one element, seeded with ``init``."""
    out = np.empty_like(x)
    if len(x):
        out[0] = init
        out[1:] = x[:-1]
    return out
