"""Retry policies and the error-policy contract of the execution layer.

PRs 3-5 made the design-space stack fast; this module makes it survive
production-scale operation: flaky tasks, wedged workers and dying
processes must degrade or recover instead of throwing away a whole run.
Two primitives live here, shared by :func:`repro.parallel.parallel_map`,
the sweep engine and the design-space explorer:

- :class:`RetryPolicy` — a frozen, picklable description of *how* to
  retry: attempt budget, deterministic exponential backoff and an
  optional per-task timeout.  The policy never sleeps or reads a clock
  itself; callers pass an injectable ``sleep`` so tests (and the chaos
  suite) run wall-clock free.  **Determinism rule**: retrying must not
  change results — a task that succeeds on attempt 3 returns exactly
  what it would have returned on attempt 1, and nothing derived from
  attempt counts, timestamps or backoff delays may enter a report's
  serialised output.
- :data:`ON_ERROR_POLICIES` / :func:`check_on_error` — the shared
  ``on_error`` vocabulary of :class:`~repro.sweep.spec.SweepSpec` and
  :class:`~repro.explore.spec.ExploreSpec`:

  - ``"raise"`` (default) — the strict mode: the first failing cell
    aborts the run, exactly the pre-resilience behaviour;
  - ``"skip"`` — a failing cell is recorded on the run's error channel
    and the report is marked partial; the run survives;
  - ``"retry"`` — like ``"skip"``, but each failing cell is first
    retried under :data:`DEFAULT_RETRY`; only a cell that fails every
    attempt is recorded.

Transient faults (injected or real) therefore leave ``"retry"`` runs
byte-identical to fault-free runs — the chaos suite in
``tests/test_faults.py`` asserts exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from .errors import ConfigurationError, TaskFailedError

R = TypeVar("R")

#: Cell-failure policies accepted by the sweep/explore specs.
ON_ERROR_POLICIES = ("raise", "skip", "retry")


def check_on_error(policy: str) -> str:
    """Validate an ``on_error`` policy name (shared by both specs)."""
    if policy not in ON_ERROR_POLICIES:
        raise ConfigurationError(
            f"unknown on_error policy {policy!r}; expected one of "
            f"{ON_ERROR_POLICIES}"
        )
    return policy


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a failing task (frozen, picklable, clock-free).

    Parameters
    ----------
    max_attempts:
        Total times a task may run (>= 1; ``1`` disables retrying).
    backoff_s:
        Delay before the first retry.  Subsequent retries wait
        ``backoff_s * backoff_factor**(k-1)`` after the ``k``-th failure
        — a pure function of the attempt number, never of the clock.
    backoff_factor:
        Exponential growth of the backoff (>= 1).
    timeout_s:
        Optional per-task timeout, enforced through the futures API by
        the pooled path of :func:`repro.parallel.parallel_map`
        (``Future.result(timeout=...)``).  A timed-out attempt counts as
        a failure and is retried like any other; the serial path cannot
        preempt a running call and ignores it.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0.0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ConfigurationError(
                f"timeout_s must be None or > 0, got {self.timeout_s}"
            )

    def delay_s(self, failures: int) -> float:
        """Backoff before the retry that follows the ``failures``-th
        failure (1-based) — deterministic exponential schedule."""
        if failures < 1:
            raise ConfigurationError(
                f"delay_s counts failures from 1, got {failures}"
            )
        return self.backoff_s * self.backoff_factor ** (failures - 1)

    def delays(self) -> tuple[float, ...]:
        """Every backoff delay the policy can produce, in order."""
        return tuple(
            self.delay_s(k) for k in range(1, self.max_attempts)
        )


#: The policy ``on_error="retry"`` runs cells under: three attempts,
#: no backoff (cell evaluation is CPU-bound and deterministic — waiting
#: cannot help it, and benches must not sleep).
DEFAULT_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0)


def call_with_retry(
    fn: Callable[[], R],
    policy: RetryPolicy = DEFAULT_RETRY,
    sleep: Callable[[float], None] = time.sleep,
    label: str = "task",
) -> R:
    """Run ``fn()`` under ``policy``; the serial retry primitive.

    Returns the first successful result.  After ``max_attempts``
    failures raises :class:`~repro.errors.TaskFailedError` with the last
    exception as ``__cause__``.  ``sleep`` is injectable so tests assert
    the deterministic backoff schedule without waiting it out.  (The
    policy's ``timeout_s`` is not enforced here — a serial caller cannot
    preempt its own call; see :func:`repro.parallel.parallel_map` for
    the pooled enforcement.)
    """
    last: Exception | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except Exception as exc:
            last = exc
            if attempt == policy.max_attempts:
                raise TaskFailedError(
                    f"{label} failed on every one of {attempt} attempt(s): "
                    f"{exc}",
                    attempts=attempt,
                ) from exc
            sleep(policy.delay_s(attempt))
    raise AssertionError("unreachable")  # pragma: no cover


def failure_cause(exc: Exception) -> Exception:
    """The underlying error of a retry failure (or the error itself).

    Error channels record *what went wrong*, not the retry wrapper:
    a :class:`~repro.errors.TaskFailedError` is unwrapped to its cause.
    """
    if isinstance(exc, TaskFailedError) and isinstance(
        exc.__cause__, Exception
    ):
        return exc.__cause__
    return exc


def failure_attempts(exc: Exception) -> int:
    """How many times the failed task ran (1 when never retried)."""
    if isinstance(exc, TaskFailedError):
        return exc.attempts
    return 1
