"""Complex mixer: frequency translation of the real ADC stream.

Section 2.1: "To generate an in-phase (I) signal the input signal is
multiplied with the cosine signal.  The quadrature part (Q) is derived by
multiplying the input signal with the sine signal."

The mixer is a pure element-wise multiply and therefore trivially
vectorised; the class exists so the streaming chain and the hardware models
share one definition of the I/Q sign convention:

``I[n] = x[n] * cos(w n)``, ``Q[n] = -x[n] * sin(w n)``, i.e. the complex
baseband signal is ``x[n] * exp(-j w n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .nco import NCO


@dataclass
class Mixer:
    """Down-mixing stage driven by an :class:`~repro.dsp.nco.NCO`."""

    nco: NCO

    def process(self, x: np.ndarray) -> np.ndarray:
        """Mix a real block to complex baseband: ``x * exp(-j w n)``.

        Phase continuity across blocks is provided by the NCO's
        accumulator state.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ConfigurationError("mixer input must be one-dimensional")
        lo = self.nco.generate_complex(len(x))
        return x * lo

    def process_iq(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mix and return the I and Q rails separately (paper's Fig. 1)."""
        y = self.process(x)
        return y.real.copy(), y.imag.copy()


def mix_to_baseband(
    x: np.ndarray,
    sample_rate_hz: float,
    frequency_hz: float,
    phase0: float = 0.0,
) -> np.ndarray:
    """One-shot ideal down-mix with a float64 oscillator (no NCO artefacts).

    The gold-model DDC uses this for its reference path; the NCO-driven
    :class:`Mixer` is compared against it in the tests to bound LUT error.
    """
    x = np.asarray(x, dtype=np.float64)
    n = np.arange(len(x), dtype=np.float64)
    w = 2 * np.pi * frequency_hz / sample_rate_hz
    return x * np.exp(-1j * (w * n + phase0))
