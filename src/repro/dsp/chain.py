"""Composition of stream blocks into a processing chain.

A :class:`Chain` is itself a :class:`~repro.dsp.streaming.StreamBlock`, so
chains nest.  The reference DDC (:mod:`repro.dsp.ddc`) is a Chain of
mixer -> CIC2 -> CIC5 -> polyphase FIR.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .streaming import StreamBlock


class Chain:
    """Serial composition of streaming blocks."""

    def __init__(self, blocks: Sequence[StreamBlock], name: str = "chain") -> None:
        blocks = list(blocks)
        if not blocks:
            raise ConfigurationError("a chain needs at least one block")
        for b in blocks:
            if not (hasattr(b, "process") and callable(b.process)):
                raise ConfigurationError(f"{b!r} does not implement process()")
        self.blocks = blocks
        self.name = name

    def process(self, x: np.ndarray) -> np.ndarray:
        """Run one block of samples through every stage in order."""
        y = x
        for b in self.blocks:
            y = b.process(y)
        return y

    def reset(self) -> None:
        """Reset every stage that supports it."""
        for b in self.blocks:
            reset = getattr(b, "reset", None)
            if callable(reset):
                reset()

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterable[StreamBlock]:
        return iter(self.blocks)

    def __getitem__(self, i: int) -> StreamBlock:
        return self.blocks[i]
