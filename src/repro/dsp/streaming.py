"""Streaming block protocol.

Every DDC stage is a *stream block*: an object with a ``process(block) ->
block`` method whose internal state carries across calls, plus ``reset()``.
This file defines the protocol and small adaptors; :mod:`repro.dsp.chain`
composes blocks into pipelines.

The protocol matters for fidelity: the paper's hardware processes an
unbounded sample stream, so all our models must produce identical results
whether a signal arrives as one array or as arbitrary block slices — a
property the test suite asserts with Hypothesis-generated block splits.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError

BlockFn = Callable[[np.ndarray], np.ndarray]


@runtime_checkable
class StreamBlock(Protocol):
    """Structural protocol for a streaming processing stage."""

    def process(self, x: np.ndarray) -> np.ndarray:
        """Consume one input block, emit the corresponding output block."""
        ...

    def reset(self) -> None:
        """Return to the initial (all-zero) state."""
        ...


class FnBlock:
    """Wrap a stateless function as a :class:`StreamBlock`."""

    def __init__(self, fn: BlockFn, name: str | None = None) -> None:
        if not callable(fn):
            raise ConfigurationError("fn must be callable")
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "fn")

    def process(self, x: np.ndarray) -> np.ndarray:
        return self._fn(x)

    def reset(self) -> None:  # stateless
        return None


class Tap:
    """Pass-through block that records everything flowing through it.

    Useful for inspecting intermediate rails of a chain (e.g. the CIC2
    output) without disturbing the pipeline.
    """

    def __init__(self, name: str = "tap") -> None:
        self.name = name
        self._chunks: list[np.ndarray] = []

    def process(self, x: np.ndarray) -> np.ndarray:
        self._chunks.append(np.array(x, copy=True))
        return x

    def reset(self) -> None:
        self._chunks.clear()

    @property
    def data(self) -> np.ndarray:
        """All samples seen so far, concatenated."""
        if not self._chunks:
            return np.empty(0)
        return np.concatenate(self._chunks)


def stream_in_blocks(
    block: StreamBlock, x: np.ndarray, block_size: int
) -> np.ndarray:
    """Feed ``x`` through ``block`` in slices of ``block_size``.

    Returns the concatenated output.  This is the reference harness for the
    "block-split invariance" property tests.
    """
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    outs = []
    for start in range(0, len(x), block_size):
        outs.append(block.process(x[start : start + block_size]))
    if not outs:
        return np.empty(0)
    return np.concatenate(outs)
