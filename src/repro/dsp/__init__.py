"""Digital signal processing core: the DDC algorithm of Section 2.

This package implements every block in the paper's Fig. 1 chain, in both a
fast vectorised floating-point form (the "gold" reference) and a bit-true
integer form matching the hardware models:

- :mod:`~repro.dsp.nco` — numerically controlled oscillator (phase
  accumulator + sine LUT or Taylor evaluation);
- :mod:`~repro.dsp.mixer` — complex down-mixing of the real input;
- :mod:`~repro.dsp.cic` — cascaded integrator-comb decimators (Fig. 2);
- :mod:`~repro.dsp.fir` — direct-form and polyphase decimating FIR (Fig. 3);
- :mod:`~repro.dsp.firdesign` — coefficient design including CIC droop
  compensation;
- :mod:`~repro.dsp.ddc` — the full reference DDC;
- :mod:`~repro.dsp.streaming` / :mod:`~repro.dsp.chain` — block streaming;
- :mod:`~repro.dsp.response` — theoretical frequency responses;
- :mod:`~repro.dsp.signals` — synthetic stimuli (tones, noise, DRM-like
  OFDM, GSM-like bursts);
- :mod:`~repro.dsp.metrics` — SNR / SFDR / ripple / rejection measurement.
"""

from .nco import NCO, NCOMode
from .mixer import Mixer, mix_to_baseband
from .cic import CICDecimator, FixedCICDecimator, cic_reference_output
from .fir import (
    FIRFilter,
    PolyphaseDecimator,
    FixedPolyphaseDecimator,
    polyphase_decompose,
)
from .firdesign import (
    design_lowpass,
    design_kaiser_lowpass,
    design_remez_lowpass,
    design_cic_compensator,
    reference_fir_taps,
    quantize_taps,
)
from .ddc import DDC, DDCResult, FixedDDC
from .streaming import StreamBlock, BlockFn
from .chain import Chain
from .response import (
    cic_response,
    fir_response,
    cascade_response,
    chain_response,
    alias_rejection,
)
from .signals import (
    tone,
    complex_tone,
    multi_tone,
    white_noise,
    chirp,
    drm_like_ofdm,
    gsm_like_burst,
    quantize_to_adc,
)
from .metrics import (
    snr_db,
    sfdr_db,
    sinad_db,
    enob,
    passband_ripple_db,
    stopband_attenuation_db,
    tone_power_db,
)

__all__ = [
    "NCO",
    "NCOMode",
    "Mixer",
    "mix_to_baseband",
    "CICDecimator",
    "FixedCICDecimator",
    "cic_reference_output",
    "FIRFilter",
    "PolyphaseDecimator",
    "FixedPolyphaseDecimator",
    "polyphase_decompose",
    "design_lowpass",
    "design_kaiser_lowpass",
    "design_remez_lowpass",
    "design_cic_compensator",
    "reference_fir_taps",
    "quantize_taps",
    "DDC",
    "DDCResult",
    "FixedDDC",
    "StreamBlock",
    "BlockFn",
    "Chain",
    "cic_response",
    "fir_response",
    "cascade_response",
    "chain_response",
    "alias_rejection",
    "tone",
    "complex_tone",
    "multi_tone",
    "white_noise",
    "chirp",
    "drm_like_ofdm",
    "gsm_like_burst",
    "quantize_to_adc",
    "snr_db",
    "sfdr_db",
    "sinad_db",
    "enob",
    "passband_ripple_db",
    "stopband_attenuation_db",
    "tone_power_db",
]
