"""Synthetic stimuli for the DDC.

The paper evaluates with *no* recorded RF data: the FPGA power estimate
assumes "input bit toggling ... 50 %, which corresponds to random data", and
the motivating workloads are DRM / DAB radio and GSM.  This module provides
the corresponding synthetic equivalents:

- deterministic test tones (:func:`tone`, :func:`complex_tone`,
  :func:`multi_tone`, :func:`chirp`);
- :func:`white_noise` — the 50 %-toggle "random data" stimulus;
- :func:`drm_like_ofdm` — an OFDM multicarrier burst with DRM robustness-
  mode-B-like numerology, centred on a tunable carrier: the workload the
  reference DDC is configured for;
- :func:`gsm_like_burst` — a GMSK-approximating constant-envelope burst at
  GSM symbol rate: the workload of the GC4016 datasheet example;
- :func:`quantize_to_adc` — quantise any float stimulus to the raw integer
  samples an ``n``-bit AD-converter would deliver.

All generators take an explicit ``rng`` or ``seed`` so experiments are
reproducible.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..fixedpoint import QFormat, to_fixed


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def tone(
    n: int, freq_hz: float, sample_rate_hz: float,
    amplitude: float = 1.0, phase: float = 0.0,
) -> np.ndarray:
    """Real cosine tone."""
    _check(n, sample_rate_hz)
    t = np.arange(n) / sample_rate_hz
    return amplitude * np.cos(2 * np.pi * freq_hz * t + phase)


def complex_tone(
    n: int, freq_hz: float, sample_rate_hz: float,
    amplitude: float = 1.0, phase: float = 0.0,
) -> np.ndarray:
    """Complex exponential tone."""
    _check(n, sample_rate_hz)
    t = np.arange(n) / sample_rate_hz
    return amplitude * np.exp(1j * (2 * np.pi * freq_hz * t + phase))


def multi_tone(
    n: int,
    freqs_hz: list[float],
    sample_rate_hz: float,
    amplitudes: list[float] | None = None,
) -> np.ndarray:
    """Sum of real tones (for intermodulation / selectivity tests)."""
    _check(n, sample_rate_hz)
    if amplitudes is None:
        amplitudes = [1.0] * len(freqs_hz)
    if len(amplitudes) != len(freqs_hz):
        raise ConfigurationError("freqs and amplitudes must match in length")
    out = np.zeros(n)
    for f, a in zip(freqs_hz, amplitudes):
        out += tone(n, f, sample_rate_hz, a)
    return out


def chirp(
    n: int, f0_hz: float, f1_hz: float, sample_rate_hz: float,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Linear frequency sweep from ``f0`` to ``f1`` over the block."""
    _check(n, sample_rate_hz)
    t = np.arange(n) / sample_rate_hz
    duration = n / sample_rate_hz
    k = (f1_hz - f0_hz) / duration
    return amplitude * np.cos(2 * np.pi * (f0_hz * t + 0.5 * k * t * t))


def white_noise(
    n: int, rms: float = 0.25, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Gaussian white noise; the '50 % toggle random data' stimulus."""
    if n < 0:
        raise ConfigurationError("n must be >= 0")
    return _rng(seed).normal(0.0, rms, n)


def drm_like_ofdm(
    n: int,
    sample_rate_hz: float,
    carrier_hz: float,
    bandwidth_hz: float = 10_000.0,
    n_subcarriers: int = 206,
    rms: float = 0.2,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """DRM-like OFDM multicarrier signal centred at ``carrier_hz``.

    DRM robustness mode B uses 206 active subcarriers in a ~10 kHz channel;
    we synthesise QPSK symbols on that grid and mix the baseband multicarrier
    up to the carrier.  The result is a *real* passband signal as the
    AD-converter would deliver.
    """
    _check(n, sample_rate_hz)
    if not 0 < carrier_hz < sample_rate_hz / 2:
        raise ConfigurationError("carrier must be in (0, Nyquist)")
    if n_subcarriers < 1:
        raise ConfigurationError("n_subcarriers must be >= 1")
    rng = _rng(seed)
    t = np.arange(n) / sample_rate_hz
    spacing = bandwidth_hz / n_subcarriers
    offsets = (np.arange(n_subcarriers) - (n_subcarriers - 1) / 2) * spacing
    # QPSK symbol per subcarrier, constant over the block (one OFDM symbol).
    phases = rng.integers(0, 4, n_subcarriers) * (np.pi / 2) + np.pi / 4
    baseband = np.zeros(n, dtype=np.complex128)
    for df, ph in zip(offsets, phases):
        baseband += np.exp(1j * (2 * np.pi * df * t + ph))
    baseband /= np.sqrt(n_subcarriers)
    passband = np.real(baseband * np.exp(1j * 2 * np.pi * carrier_hz * t))
    current_rms = np.sqrt(np.mean(passband**2)) or 1.0
    return passband * (rms / current_rms)


def gsm_like_burst(
    n: int,
    sample_rate_hz: float,
    carrier_hz: float,
    symbol_rate_hz: float = 270_833.0,
    amplitude: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Constant-envelope GMSK-like burst (the GC4016 GSM example workload).

    GMSK is approximated as MSK with a Gaussian-smoothed phase ramp: random
    bits drive +-pi/2 phase increments per symbol, smoothed over 3 symbols
    (BT~0.3), then mixed to the carrier.  The constant envelope and the
    270.833 kHz symbol rate are the properties that matter for exercising
    the DDC.
    """
    _check(n, sample_rate_hz)
    if not 0 < carrier_hz < sample_rate_hz / 2:
        raise ConfigurationError("carrier must be in (0, Nyquist)")
    if symbol_rate_hz <= 0 or symbol_rate_hz > sample_rate_hz:
        raise ConfigurationError("symbol rate must be in (0, sample rate]")
    rng = _rng(seed)
    sps = sample_rate_hz / symbol_rate_hz
    n_symbols = int(np.ceil(n / sps)) + 4
    bits = rng.integers(0, 2, n_symbols) * 2 - 1  # +-1
    # Phase increments per sample.
    sym_index = np.minimum((np.arange(n) / sps).astype(np.int64), n_symbols - 1)
    inc = bits[sym_index] * (np.pi / 2) / sps
    # Gaussian smoothing across ~3 symbol periods.
    klen = max(3, int(3 * sps) | 1)
    k = np.exp(-0.5 * ((np.arange(klen) - klen // 2) / (0.4 * sps)) ** 2)
    k /= k.sum()
    inc = np.convolve(inc, k, mode="same")
    phase = np.cumsum(inc)
    t = np.arange(n) / sample_rate_hz
    return amplitude * np.cos(2 * np.pi * carrier_hz * t + phase)


def quantize_to_adc(
    x: np.ndarray, bits: int = 12, full_scale: float = 1.0
) -> np.ndarray:
    """Quantise a float signal to raw ``bits``-bit ADC integer samples.

    Values are clipped to ``+-full_scale`` and scaled so full scale maps to
    the extreme codes — the 12/14-bit inputs the paper's architectures see.
    """
    if not 2 <= bits <= 32:
        raise ConfigurationError("bits must be in 2..32")
    if full_scale <= 0:
        raise ConfigurationError("full_scale must be positive")
    fmt = QFormat(bits, 0)
    scaled = np.asarray(x, dtype=np.float64) / full_scale * fmt.max_raw
    return to_fixed(scaled, fmt)


def _check(n: int, sample_rate_hz: float) -> None:
    if n < 0:
        raise ConfigurationError("n must be >= 0")
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample_rate_hz must be positive")
