"""The reference Digital Down Converter (paper Section 2, Fig. 1, Table 1).

Two complete implementations of the chain

``NCO/mixer -> CIC2 (D=16) -> CIC5 (D=21) -> 125-tap FIR (D=8)``

are provided:

:class:`DDC`
    The floating-point gold model.  The mixer is driven by a configurable
    :class:`~repro.dsp.nco.NCO`; the filters run in float64.  This model
    defines *correct* DDC output for the entire repository — every hardware
    model is validated against it.

:class:`FixedDDC`
    The bit-true integer model with the paper's FPGA word lengths: 12-bit
    data buses between stages, integer sin/cos LUT, wrapping CIC
    arithmetic, 31-bit FIR accumulator with saturating 12-bit output.  The
    FPGA RTL simulation must agree with this model bit-for-bit.

Both are streaming blocks (state carries across ``process`` calls).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DDCConfig, REFERENCE_DDC
from ..errors import ConfigurationError
from ..fixedpoint import QFormat, quantize, saturate
from ..fixedpoint.ops import Rounding
from .cic import CICDecimator, FixedCICDecimator
from .fir import FixedPolyphaseDecimator, PolyphaseDecimator
from .firdesign import quantize_taps, reference_fir_taps
from .mixer import Mixer
from .nco import NCO, NCOMode


@dataclass
class DDCResult:
    """Output of a DDC run: complex baseband plus optional intermediates."""

    baseband: np.ndarray
    cic2_out: np.ndarray | None = None
    cic5_out: np.ndarray | None = None

    @property
    def i(self) -> np.ndarray:
        """In-phase rail."""
        return self.baseband.real

    @property
    def q(self) -> np.ndarray:
        """Quadrature rail."""
        return self.baseband.imag


class ComplexCIC:
    """Pair of real CIC decimators forming one complex stage.

    The paper runs two identical real rails (I and Q, Fig. 1); by linearity
    this equals one complex filter, which is how the gold model composes.
    """

    def __init__(self, order: int, decimation: int) -> None:
        self.order = order
        self.decimation = decimation
        self.re = CICDecimator(order, decimation)
        self.im = CICDecimator(order, decimation)

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter + decimate a complex block."""
        return self.re.process(np.real(x)) + 1j * self.im.process(np.imag(x))

    def reset(self) -> None:
        """Reset both rails."""
        self.re.reset()
        self.im.reset()


class DDC:
    """Floating-point reference DDC (gold model).

    Parameters
    ----------
    config:
        Chain configuration; defaults to the paper's Table 1 reference.
    fir_taps:
        Final-filter coefficients; defaults to
        :func:`~repro.dsp.firdesign.reference_fir_taps`.
    nco_mode, lut_addr_bits, nco_amplitude_bits:
        Forwarded to the :class:`~repro.dsp.nco.NCO`; by default a
        4096-entry full-precision LUT.
    """

    def __init__(
        self,
        config: DDCConfig = REFERENCE_DDC,
        fir_taps: np.ndarray | None = None,
        nco_mode: NCOMode = NCOMode.LUT,
        lut_addr_bits: int = 12,
        nco_amplitude_bits: int | None = None,
    ) -> None:
        self.config = config
        if fir_taps is None:
            fir_rate = config.input_rate_hz / (
                config.cic2_decimation * config.cic5_decimation
            )
            fir_taps = reference_fir_taps(
                config.fir_taps, fir_rate, config.output_rate_hz
            )
        self.fir_taps = np.asarray(fir_taps, dtype=np.float64)
        self.nco = NCO(
            sample_rate_hz=config.input_rate_hz,
            frequency_hz=config.nco_frequency_hz,
            mode=nco_mode,
            lut_addr_bits=lut_addr_bits,
            amplitude_bits=nco_amplitude_bits,
        )
        self.mixer = Mixer(self.nco)
        self.cic2: ComplexCIC | None = (
            ComplexCIC(config.cic2_order, config.cic2_decimation)
            if config.cic2_order > 0 and config.cic2_decimation > 1
            else None
        )
        self.cic5 = ComplexCIC(config.cic5_order, config.cic5_decimation)
        self.fir = PolyphaseDecimator(self.fir_taps, config.fir_decimation)

    @property
    def total_decimation(self) -> int:
        """Overall rate change of the chain."""
        return self.config.total_decimation

    def reset(self) -> None:
        """Reset every stage, including NCO phase."""
        self.nco.reset()
        if self.cic2 is not None:
            self.cic2.reset()
        self.cic5.reset()
        self.fir.reset()

    def process(self, x: np.ndarray, keep_intermediates: bool = False) -> DDCResult:
        """Down-convert one block of real input samples."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ConfigurationError("DDC input must be one-dimensional")
        stage = self.mixer.process(x)
        cic2_out = None
        if self.cic2 is not None:
            stage = self.cic2.process(stage)
            cic2_out = stage.copy() if keep_intermediates else None
        stage = self.cic5.process(stage)
        cic5_out = stage.copy() if keep_intermediates else None
        baseband = self.fir.process(stage)
        return DDCResult(baseband, cic2_out, cic5_out)


class FixedDDC:
    """Bit-true DDC with the paper's FPGA word lengths.

    Input: raw integers from a ``data_width``-bit ADC.  Output: raw 12-bit
    complex baseband (I, Q integer pair).

    Data path (per rail):

    1. multiply the 12-bit sample by the 12-bit LUT sin/cos (Q11), keep the
       top 12 bits — the mixer of Fig. 1;
    2. CIC2: wrap-around integrators at 20-bit internal width
       (12 + 2*log2(16)), truncate to 12 bits;
    3. CIC5: internal width 12 + ceil(5*log2(21)) = 34 bits, truncate to 12;
    4. polyphase FIR: 12x12 MACs into a 31-bit accumulator, truncate +
       saturate to 12 bits (Fig. 5's quantiser).
    """

    def __init__(
        self,
        config: DDCConfig = REFERENCE_DDC,
        fir_taps: np.ndarray | None = None,
        lut_addr_bits: int = 10,
    ) -> None:
        self.config = config
        self.data_width = config.data_width
        self._amp_fmt = QFormat(self.data_width, self.data_width - 1)
        self.nco = NCO(
            sample_rate_hz=config.input_rate_hz,
            frequency_hz=config.nco_frequency_hz,
            mode=NCOMode.LUT,
            lut_addr_bits=lut_addr_bits,
            amplitude_bits=self.data_width,
        )
        if fir_taps is None:
            fir_rate = config.input_rate_hz / (
                config.cic2_decimation * config.cic5_decimation
            )
            fir_taps = reference_fir_taps(
                config.fir_taps, fir_rate, config.output_rate_hz
            )
        self.fir_taps_raw, self.fir_tap_fmt = quantize_taps(
            fir_taps, self.data_width
        )
        self._make_stages()

    def _make_stages(self) -> None:
        cfg = self.config
        w = self.data_width

        def make_cic(order: int, decimation: int) -> FixedCICDecimator | None:
            if order == 0 or decimation == 1:
                return None
            return FixedCICDecimator(order, decimation, input_width=w)

        self.cic2_i = make_cic(cfg.cic2_order, cfg.cic2_decimation)
        self.cic2_q = make_cic(cfg.cic2_order, cfg.cic2_decimation)
        self.cic5_i = FixedCICDecimator(
            cfg.cic5_order, cfg.cic5_decimation, input_width=w
        )
        self.cic5_q = FixedCICDecimator(
            cfg.cic5_order, cfg.cic5_decimation, input_width=w
        )
        shift = max(0, self.fir_tap_fmt.frac)
        self.fir_i = FixedPolyphaseDecimator(
            self.fir_taps_raw, cfg.fir_decimation, data_width=w,
            coeff_width=self.fir_tap_fmt.width, output_shift=shift,
        )
        self.fir_q = FixedPolyphaseDecimator(
            self.fir_taps_raw, cfg.fir_decimation, data_width=w,
            coeff_width=self.fir_tap_fmt.width, output_shift=shift,
        )

    def reset(self) -> None:
        """Reset all stage state and NCO phase."""
        self.nco.reset()
        for stage in (
            self.cic2_i, self.cic2_q, self.cic5_i, self.cic5_q,
            self.fir_i, self.fir_q,
        ):
            if stage is not None:
                stage.reset()

    def lut_raw(self) -> np.ndarray:
        """The NCO's sine table as raw integers (fills hardware ROMs)."""
        assert self.nco._lut is not None
        return np.round(self.nco._lut / self._amp_fmt.scale).astype(np.int64)

    def process(
        self, x_raw: np.ndarray, engine: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Down-convert raw integer ADC samples; returns raw (I, Q).

        ``engine`` selects the kernel tier (``python``/``fused``/``jit``;
        ``None`` = the ``REPRO_KERNELS`` default).  The non-python tiers
        run the whole chain as one fused end-to-end kernel — integer-LUT
        mixer, fused CIC rails, strided FIR — bit-identical to the
        stage-by-stage oracle below.
        """
        from ..kernels import dispatch as _dispatch

        tier = _dispatch.resolve("fixed_ddc", engine)
        if tier != "python":
            return _dispatch.kernel("fixed_ddc", tier)(self, x_raw)
        return self._process_python(x_raw)

    def _process_python(
        self, x_raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The oracle tier: per-stage processing with float LUT staging."""
        x_raw = np.asarray(x_raw)
        if not np.issubdtype(x_raw.dtype, np.integer):
            raise ConfigurationError("FixedDDC input must be raw integers")
        x_raw = x_raw.astype(np.int64, copy=False)
        in_fmt = QFormat(self.data_width, 0)
        if x_raw.size and (
            int(x_raw.max()) > in_fmt.max_raw or int(x_raw.min()) < in_fmt.min_raw
        ):
            raise ConfigurationError(f"input sample out of {in_fmt} range")

        cos_f, sin_f = self.nco.generate(len(x_raw), engine="python")
        # LUT values are already quantised floats on the amplitude grid;
        # recover their raw integers exactly.
        cos_raw = np.round(cos_f / self._amp_fmt.scale).astype(np.int64)
        sin_raw = np.round(sin_f / self._amp_fmt.scale).astype(np.int64)

        # Mixer: 12x12 -> 24-bit product, truncate back to the 12-bit bus.
        shift = self.data_width - 1
        i_mixed = saturate(
            quantize(x_raw * cos_raw, shift, Rounding.TRUNCATE), in_fmt
        )
        q_mixed = saturate(
            quantize(-(x_raw * sin_raw), shift, Rounding.TRUNCATE), in_fmt
        )

        i_s, q_s = i_mixed, q_mixed
        if self.cic2_i is not None and self.cic2_q is not None:
            i_s = self.cic2_i.process(i_s, engine="python")
            q_s = self.cic2_q.process(q_s, engine="python")
        i_s = self.cic5_i.process(i_s, engine="python")
        q_s = self.cic5_q.process(q_s, engine="python")
        i_out = self.fir_i.process(i_s, engine="python")
        q_out = self.fir_q.process(q_s, engine="python")
        return i_out, q_out

    def process_to_float(self, x_raw: np.ndarray) -> np.ndarray:
        """Down-convert and scale the raw I/Q output to +-1.0 floats."""
        i_out, q_out = self.process(x_raw)
        scale = 2.0 ** -(self.data_width - 1)
        return (i_out + 1j * q_out) * scale
