"""Theoretical frequency responses of the DDC filter stages.

These closed forms back the filter-quality analysis the paper alludes to
("The drawback of the CIC filters is their sub-optimal frequency
attenuation") and are used by the design functions, the metric tests and the
alias-rejection ablation.

All responses are evaluated at absolute frequencies in Hz against the rate
at which the filter runs, so cascades across rate changes compose naturally
via :func:`chain_response`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


def cic_response(
    freqs_hz: np.ndarray,
    order: int,
    decimation: int,
    input_rate_hz: float,
    diff_delay: int = 1,
    normalize: bool = True,
) -> np.ndarray:
    """Complex response of an ``order``-stage CIC decimator before decimation.

    ``H(f) = [sin(pi f R M / fs) / sin(pi f / fs)]**N`` with the linear-phase
    term omitted (magnitude analysis).  The DC limit ``(R M)**N`` is handled
    explicitly.  With ``normalize`` the response is divided by the DC gain.
    """
    if input_rate_hz <= 0:
        raise ConfigurationError("input_rate_hz must be positive")
    if order < 1 or decimation < 1 or diff_delay < 1:
        raise ConfigurationError("order, decimation, diff_delay must be >= 1")
    f = np.asarray(freqs_hz, dtype=np.float64)
    x = np.pi * f / input_rate_hz
    rm = decimation * diff_delay
    num = np.sin(rm * x)
    den = np.sin(x)
    with np.errstate(divide="ignore", invalid="ignore"):
        h = np.where(np.abs(den) < 1e-15, float(rm), num / den) ** order
    if normalize:
        h = h / float(rm**order)
    return h


def fir_response(
    freqs_hz: np.ndarray, taps: np.ndarray, sample_rate_hz: float
) -> np.ndarray:
    """Complex response of an FIR filter at absolute frequencies."""
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample_rate_hz must be positive")
    taps = np.asarray(taps, dtype=np.float64)
    f = np.asarray(freqs_hz, dtype=np.float64)
    w = 2 * np.pi * f / sample_rate_hz
    n = np.arange(len(taps))
    return np.exp(-1j * np.outer(w, n)) @ taps


def cascade_response(responses: list[np.ndarray]) -> np.ndarray:
    """Product of pre-evaluated stage responses on a common frequency grid."""
    if not responses:
        raise ConfigurationError("cascade_response needs at least one response")
    out = np.asarray(responses[0], dtype=np.complex128).copy()
    for r in responses[1:]:
        out *= r
    return out


def chain_response(
    freqs_hz: np.ndarray,
    input_rate_hz: float,
    cic_stages: list[tuple[int, int]],
    fir_taps: np.ndarray | None = None,
) -> np.ndarray:
    """Response of a CIC/.../FIR chain referenced to the chain input.

    ``cic_stages`` is ``[(order, decimation), ...]`` applied in order; each
    stage runs at the rate left over by its predecessors.  The optional FIR
    runs at the final CIC output rate.  Aliasing is not folded in — this is
    the response to an input tone before decimation images; use
    :func:`alias_rejection` for the folded-image question.
    """
    freqs = np.asarray(freqs_hz, dtype=np.float64)
    rate = input_rate_hz
    total = np.ones(len(freqs), dtype=np.complex128)
    for order, decimation in cic_stages:
        total *= cic_response(freqs, order, decimation, rate)
        rate /= decimation
    if fir_taps is not None:
        total *= fir_response(freqs, fir_taps, rate)
    return total


def alias_rejection(
    order: int,
    decimation: int,
    input_rate_hz: float,
    band_edge_hz: float,
    diff_delay: int = 1,
) -> float:
    """Worst-case aliasing rejection of a CIC decimator, in dB.

    The images that fold onto the passband edge ``band_edge_hz`` come from
    ``k * fs/R ± band_edge`` for ``k = 1..R-1``; the rejection is the CIC
    attenuation at the least-attenuated of those frequencies relative to
    the passband-edge gain.  Positive result = attenuation in dB.
    """
    if not 0 < band_edge_hz < input_rate_hz / (2 * decimation):
        raise ConfigurationError(
            "band_edge must be within the post-decimation Nyquist band"
        )
    low_rate = input_rate_hz / decimation
    # Candidate folding frequencies below the input Nyquist.
    ks = np.arange(1, decimation)
    candidates = np.concatenate([ks * low_rate - band_edge_hz,
                                 ks * low_rate + band_edge_hz])
    candidates = candidates[(candidates > 0) & (candidates <= input_rate_hz / 2)]
    if candidates.size == 0:
        return float("inf")
    h_pass = np.abs(
        cic_response(np.array([band_edge_hz]), order, decimation,
                     input_rate_hz, diff_delay)
    )[0]
    h_img = np.abs(
        cic_response(candidates, order, decimation, input_rate_hz, diff_delay)
    )
    worst = h_img.max()
    if worst == 0:
        return float("inf")
    return 20 * np.log10(h_pass / worst)
