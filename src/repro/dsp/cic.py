"""Cascaded Integrator-Comb (CIC) decimation filters (paper Fig. 2).

Section 2.1: "The CIC filter is used in the parts with the highest sample
rates.  The high sample rates can be handled by using only additions and no
multiplications.  The filter consists of a cascaded set of integrating and
comb filters."

Two implementations share one structure:

:class:`CICDecimator`
    Floating-point, fully vectorised (cumulative sums for the integrators,
    array differences for the combs).  This is the gold model.

:class:`FixedCICDecimator`
    Bit-true two's-complement model.  The integrators *wrap* — Hogenauer's
    classic result is that modular arithmetic makes integrator overflow
    harmless provided every register holds at least
    ``input_width + N*log2(R*M)`` bits; the register width is derived from
    :func:`repro.fixedpoint.analysis.cic_bit_growth`.

Both are streaming: state (integrator registers, comb delay lines,
decimator phase) is carried across :meth:`process` calls, which is what the
block-based :class:`~repro.dsp.chain.Chain` relies on.

The helper :func:`cic_reference_output` computes the mathematically
equivalent "cascade of boxcars then downsample" form used by the
property-based tests: an ``N``-stage CIC with decimation ``R`` and
differential delay ``M`` equals convolution with the ``N``-fold
self-convolution of a length-``R*M`` boxcar, followed by keeping every
``R``-th sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..fixedpoint import QFormat, cic_bit_growth, cic_gain, quantize, wrap
from ..fixedpoint.ops import Rounding


def _validate(order: int, decimation: int, diff_delay: int) -> None:
    if not isinstance(order, int) or order < 1:
        raise ConfigurationError(f"CIC order must be a positive int, got {order!r}")
    if not isinstance(decimation, int) or decimation < 1:
        raise ConfigurationError(
            f"CIC decimation must be a positive int, got {decimation!r}"
        )
    if not isinstance(diff_delay, int) or diff_delay < 1:
        raise ConfigurationError(
            f"CIC differential delay must be a positive int, got {diff_delay!r}"
        )


@dataclass
class CICDecimator:
    """Floating-point streaming CIC decimator.

    Parameters
    ----------
    order:
        Number of integrator/comb pairs (2 for the paper's CIC2, 5 for CIC5).
    decimation:
        Rate change factor ``R`` (16 and 21 in the reference chain).
    diff_delay:
        Differential delay ``M`` of each comb (1 in the paper, the common
        hardware choice).
    normalize:
        If True (default), divide the output by the DC gain ``(R*M)**N`` so
        unit-DC input produces unit-DC output.  The bit-true model never
        normalises; hardware compensates by bit truncation instead.
    """

    order: int
    decimation: int
    diff_delay: int = 1
    normalize: bool = True
    _int_state: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _comb_state: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _phase: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        _validate(self.order, self.decimation, self.diff_delay)
        self.reset()

    def reset(self) -> None:
        """Clear all integrator registers, comb delays and decimator phase."""
        self._int_state = np.zeros(self.order, dtype=np.float64)
        self._comb_state = np.zeros(
            (self.order, self.diff_delay), dtype=np.float64
        )
        self._phase = 0

    @property
    def gain(self) -> int:
        """DC gain of the unnormalised filter: ``(R*M)**N``."""
        return cic_gain(self.order, self.decimation, self.diff_delay)

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter and decimate one block; returns the decimated samples.

        Output length is ``floor((phase + len(x)) / R) - floor(phase / R)``
        where ``phase`` is the running input-sample count modulo ``R``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ConfigurationError("CIC input must be one-dimensional")
        if x.size == 0:
            return np.empty(0, dtype=np.float64)

        # Integrator cascade: each stage is a cumulative sum with carry-in.
        y = x
        for s in range(self.order):
            y = np.cumsum(y)
            y += self._int_state[s]
            self._int_state[s] = y[-1]

        # Decimate: keep samples where the running index hits a multiple of R.
        # self._phase counts input samples since the last kept sample.
        first = (-self._phase) % self.decimation
        kept = y[first :: self.decimation]
        self._phase = (self._phase + len(x)) % self.decimation

        # Comb cascade at the low rate.
        z = kept
        for s in range(self.order):
            with_hist = np.concatenate([self._comb_state[s], z])
            out = with_hist[self.diff_delay :] - with_hist[: -self.diff_delay]
            if len(with_hist) >= self.diff_delay:
                self._comb_state[s] = with_hist[len(with_hist) - self.diff_delay :]
            z = out

        if self.normalize:
            z = z / self.gain
        return z


@dataclass
class FixedCICDecimator:
    """Bit-true two's-complement CIC decimator with wrapping integrators.

    Parameters
    ----------
    order, decimation, diff_delay:
        As for :class:`CICDecimator`.
    input_width:
        Width of the input samples in bits (12 for the paper's bus).
    output_width:
        Width to truncate the output to; defaults to ``input_width`` (the
        paper's 12-bit inter-stage buses).  Truncation drops
        ``internal_width - output_width`` LSBs, i.e. the full DC gain is
        compensated by the shift except for rounding.
    """

    order: int
    decimation: int
    diff_delay: int = 1
    input_width: int = 12
    output_width: int | None = None
    _int_state: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _comb_state: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _phase: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        _validate(self.order, self.decimation, self.diff_delay)
        if not 2 <= self.input_width <= 32:
            raise ConfigurationError("input_width must be in 2..32")
        if self.output_width is None:
            self.output_width = self.input_width
        if not 2 <= self.output_width <= self.internal_width:
            raise ConfigurationError(
                "output_width must be between 2 and the internal width "
                f"({self.internal_width})"
            )
        if self.internal_width > 62:
            raise ConfigurationError(
                f"internal width {self.internal_width} exceeds the int64-safe"
                " range; reduce order, decimation or input width"
            )
        self.reset()

    @property
    def growth_bits(self) -> int:
        """Hogenauer worst-case growth ``ceil(N*log2(R*M))``."""
        return cic_bit_growth(self.order, self.decimation, self.diff_delay)

    @property
    def internal_width(self) -> int:
        """Register width guaranteeing modular-arithmetic correctness."""
        return self.input_width + self.growth_bits

    @property
    def internal_format(self) -> QFormat:
        """Format of the integrator/comb registers."""
        return QFormat(self.internal_width, 0)

    @property
    def output_format(self) -> QFormat:
        """Format of the truncated output."""
        assert self.output_width is not None
        return QFormat(self.output_width, 0)

    @property
    def truncation_shift(self) -> int:
        """LSBs dropped at the output to fit ``output_width``."""
        assert self.output_width is not None
        return self.internal_width - self.output_width

    def reset(self) -> None:
        """Clear registers, delays and phase."""
        self._int_state = np.zeros(self.order, dtype=np.int64)
        self._comb_state = np.zeros(
            (self.order, self.diff_delay), dtype=np.int64
        )
        self._phase = 0

    def process(self, x: np.ndarray, engine: str | None = None) -> np.ndarray:
        """Filter and decimate a block of raw integer samples.

        Input values must fit ``input_width`` bits (checked).  Returns raw
        integers in :attr:`output_format`.

        ``engine`` selects the kernel tier (``python``/``fused``/``jit``;
        ``None`` = the ``REPRO_KERNELS`` default).  All tiers are
        bit-identical in outputs and carried state.
        """
        from ..kernels import dispatch as _dispatch

        tier = _dispatch.resolve("cic", engine)
        if tier != "python":
            return _dispatch.kernel("cic", tier)(self, x)
        return self._process_python(x)

    def _process_python(self, x: np.ndarray) -> np.ndarray:
        """The oracle tier: the original per-stage wrap implementation."""
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.integer):
            raise ConfigurationError("fixed CIC input must be integer raw values")
        x = x.astype(np.int64, copy=False)
        if x.size == 0:
            return np.empty(0, dtype=np.int64)
        in_fmt = QFormat(self.input_width, 0)
        if int(x.max()) > in_fmt.max_raw or int(x.min()) < in_fmt.min_raw:
            raise ConfigurationError(
                f"input sample out of {in_fmt} range"
            )

        internal = self.internal_format
        # Integrators: int64 cumsum wraps mod 2**64; reducing mod 2**W is
        # consistent because 2**W divides 2**64, so vectorised cumsum is a
        # faithful model of W-bit wrapping accumulators.
        with np.errstate(over="ignore"):
            y = x
            for s in range(self.order):
                y = np.cumsum(y)  # always a fresh buffer: in-place ops below are safe
                y += self._int_state[s]
                y = wrap(y, internal)
                self._int_state[s] = y[-1]

            first = (-self._phase) % self.decimation
            kept = y[first :: self.decimation]
            self._phase = (self._phase + len(x)) % self.decimation

            z = kept
            for s in range(self.order):
                with_hist = np.concatenate([self._comb_state[s], z])
                out = with_hist[self.diff_delay :] - with_hist[: -self.diff_delay]
                out = wrap(out, internal)
                if len(with_hist) >= self.diff_delay:
                    self._comb_state[s] = with_hist[
                        len(with_hist) - self.diff_delay :
                    ]
                z = out

        return quantize(z, self.truncation_shift, Rounding.TRUNCATE)


def cic_impulse_response(order: int, decimation: int, diff_delay: int = 1) -> np.ndarray:
    """Impulse response of the unnormalised CIC before decimation.

    The ``N``-fold convolution of a length ``R*M`` boxcar.  Length is
    ``N*(R*M - 1) + 1``.
    """
    _validate(order, decimation, diff_delay)
    box = np.ones(decimation * diff_delay, dtype=np.float64)
    h = np.array([1.0])
    for _ in range(order):
        h = np.convolve(h, box)
    return h


def cic_reference_output(
    x: np.ndarray,
    order: int,
    decimation: int,
    diff_delay: int = 1,
    normalize: bool = True,
) -> np.ndarray:
    """Mathematically equivalent CIC output: FIR convolution + downsample.

    Used as the independent oracle in property-based tests.  Zero initial
    conditions, matching a freshly reset :class:`CICDecimator`.
    """
    x = np.asarray(x, dtype=np.float64)
    h = cic_impulse_response(order, decimation, diff_delay)
    full = np.convolve(x, h)[: len(x)]
    # The streaming decimators keep samples at global indices 0, R, 2R, ...
    kept = full[::decimation]
    if normalize:
        kept = kept / cic_gain(order, decimation, diff_delay)
    return kept
