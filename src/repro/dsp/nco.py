"""Numerically Controlled Oscillator (NCO).

Section 2.1: "This component produces a sine and cosine signal.  The NCO
calculates these values, e.g. by Taylor series, or reading from a look-up
table."

Both evaluation strategies are implemented behind one phase-accumulator
front end:

- ``NCOMode.LUT`` — a table of ``2**lut_addr_bits`` samples, optionally
  exploiting quarter-wave symmetry so only a quarter sine is stored (this is
  what the FPGA and Montium implementations do: "the values for the sine and
  cosine are stored in the local memories");
- ``NCOMode.TAYLOR`` — polynomial evaluation around the nearest table-free
  grid point, the alternative the paper mentions for the ASIC/GPP.

The phase accumulator is a ``phase_bits``-wide unsigned integer that
advances by a frequency control word each sample; its top ``lut_addr_bits``
bits address the table.  This is the standard DDS structure, and the
spurious-free dynamic range (SFDR) it achieves is measured in
``tests/test_nco.py`` and the NCO ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..fixedpoint import QFormat, to_fixed


class NCOMode(enum.Enum):
    """Sin/cos evaluation strategy (Section 2.1 offers both)."""

    LUT = "lut"
    TAYLOR = "taylor"


@dataclass
class NCO:
    """Phase-accumulator NCO producing paired cosine and sine streams.

    Parameters
    ----------
    sample_rate_hz:
        Rate at which the oscillator is clocked (64.512 MHz in the paper).
    frequency_hz:
        Output frequency.  May be changed at runtime via :meth:`retune` —
        the Montium implementation keeps the LUT address generation in a
        separate ALU precisely "to change the frequency during execution".
    phase_bits:
        Width of the phase accumulator (default 32).
    lut_addr_bits:
        log2 of the LUT length used in LUT mode (default 10 → 1024 entries).
    amplitude_bits:
        If not ``None``, LUT entries are quantised to this word length
        (signed); models the 12-/16-bit tables of the hardware targets.
    mode:
        LUT or Taylor evaluation.
    taylor_order:
        Polynomial order for Taylor mode (default 3).
    quarter_wave:
        Store only a quarter sine and reconstruct by symmetry (LUT mode).
    """

    sample_rate_hz: float
    frequency_hz: float
    phase_bits: int = 32
    lut_addr_bits: int = 10
    amplitude_bits: int | None = None
    mode: NCOMode = NCOMode.LUT
    taylor_order: int = 3
    quarter_wave: bool = False
    _phase_acc: int = field(default=0, repr=False)
    _fcw: int = field(default=0, repr=False)
    _lut: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if not 4 <= self.phase_bits <= 48:
            raise ConfigurationError("phase_bits must be in 4..48")
        if not 2 <= self.lut_addr_bits <= 20:
            raise ConfigurationError("lut_addr_bits must be in 2..20")
        if self.amplitude_bits is not None and not 2 <= self.amplitude_bits <= 32:
            raise ConfigurationError("amplitude_bits must be in 2..32")
        if self.taylor_order < 1:
            raise ConfigurationError("taylor_order must be >= 1")
        if abs(self.frequency_hz) > self.sample_rate_hz / 2:
            raise ConfigurationError("frequency_hz must be below Nyquist")
        self._fcw = self._frequency_to_fcw(self.frequency_hz)
        if self.mode is NCOMode.LUT:
            self._lut = self._build_lut()

    # ------------------------------------------------------------ internals
    def _frequency_to_fcw(self, freq_hz: float) -> int:
        fcw = round(freq_hz / self.sample_rate_hz * (1 << self.phase_bits))
        return fcw % (1 << self.phase_bits)

    def _build_lut(self) -> np.ndarray:
        n = 1 << self.lut_addr_bits
        if self.quarter_wave:
            # Quarter sine on n/4 points, sampled at bin centres so the
            # reconstruction by symmetry has no duplicated end points.
            quarter = np.sin(2 * np.pi * (np.arange(n // 4) + 0.5) / n)
            table = np.concatenate(
                [quarter, quarter[::-1], -quarter, -quarter[::-1]]
            )
        else:
            table = np.sin(2 * np.pi * (np.arange(n) + 0.5) / n)
        if self.amplitude_bits is not None:
            fmt = QFormat(self.amplitude_bits, self.amplitude_bits - 1)
            table = to_fixed(table, fmt).astype(np.float64) * fmt.scale
        return table

    # --------------------------------------------------------------- tuning
    @property
    def frequency_resolution_hz(self) -> float:
        """Smallest frequency step of the accumulator."""
        return self.sample_rate_hz / (1 << self.phase_bits)

    @property
    def actual_frequency_hz(self) -> float:
        """Frequency actually produced after FCW rounding."""
        fcw = self._fcw
        half = 1 << (self.phase_bits - 1)
        if fcw >= half:
            fcw -= 1 << self.phase_bits
        return fcw / (1 << self.phase_bits) * self.sample_rate_hz

    def retune(self, frequency_hz: float) -> None:
        """Change the output frequency without resetting phase."""
        if abs(frequency_hz) > self.sample_rate_hz / 2:
            raise ConfigurationError("frequency_hz must be below Nyquist")
        self.frequency_hz = frequency_hz
        self._fcw = self._frequency_to_fcw(frequency_hz)

    def reset(self) -> None:
        """Reset the phase accumulator to zero."""
        self._phase_acc = 0

    # ------------------------------------------------------------ generation
    def phases(self, n: int) -> np.ndarray:
        """Advance the accumulator ``n`` steps; return raw phase words.

        The returned array holds the accumulator value *before* each step,
        i.e. the phase used for sample ``i``.
        """
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        modulus = 1 << self.phase_bits
        steps = (self._phase_acc + self._fcw * np.arange(n, dtype=np.int64)) % modulus
        self._phase_acc = int((self._phase_acc + self._fcw * n) % modulus)
        return steps

    def generate(
        self, n: int, engine: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Produce ``n`` samples of (cos, sin).

        The streams are phase-coherent: repeated calls continue where the
        previous call stopped, which the streaming DDC relies on.

        ``engine`` selects the kernel tier (``python``/``fused``/``jit``;
        ``None`` = the ``REPRO_KERNELS`` default) — LUT mode only, all
        tiers bit-identical.
        """
        if self.mode is NCOMode.LUT and self.phase_bits >= self.lut_addr_bits:
            from ..kernels import dispatch as _dispatch

            tier = _dispatch.resolve("nco", engine)
            if tier != "python":
                return _dispatch.kernel("nco", tier)(self, n)
        phase_words = self.phases(n)
        if self.mode is NCOMode.LUT:
            assert self._lut is not None
            index = (phase_words >> (self.phase_bits - self.lut_addr_bits)).astype(
                np.int64
            )
            n_lut = 1 << self.lut_addr_bits
            sin_v = self._lut[index]
            cos_v = self._lut[(index + n_lut // 4) % n_lut]
            return cos_v, sin_v
        # Taylor mode: evaluate sin/cos of the exact accumulator phase with a
        # truncated series around the nearest multiple of pi/2 (range
        # reduction keeps |x| <= pi/4 so low orders converge fast).
        theta = phase_words.astype(np.float64) / (1 << self.phase_bits) * 2 * np.pi
        sin_v = _taylor_sin(theta, self.taylor_order)
        cos_v = _taylor_sin(theta + np.pi / 2, self.taylor_order)
        if self.amplitude_bits is not None:
            fmt = QFormat(self.amplitude_bits, self.amplitude_bits - 1)
            sin_v = to_fixed(sin_v, fmt).astype(np.float64) * fmt.scale
            cos_v = to_fixed(cos_v, fmt).astype(np.float64) * fmt.scale
        return cos_v, sin_v

    def generate_complex(self, n: int, engine: str | None = None) -> np.ndarray:
        """Produce ``exp(-j*2*pi*f*t)`` for down-conversion: ``cos - j*sin``."""
        cos_v, sin_v = self.generate(n, engine=engine)
        return cos_v - 1j * sin_v


def _taylor_sin(theta: np.ndarray, order: int) -> np.ndarray:
    """Sine via range reduction to [-pi/4, pi/4] + truncated Taylor series.

    ``order`` counts the highest polynomial degree pair retained: order 1
    keeps ``x``; order 2 keeps ``x - x^3/6``; and so on.  Cosine of the
    reduced argument uses the matching even series.
    """
    two_pi = 2 * np.pi
    theta = np.mod(theta, two_pi)
    # Which quadrant: k = round(theta / (pi/2)); the residual must use the
    # *unwrapped* k so that x stays in [-pi/4, pi/4] even for theta ~ 2*pi.
    k_raw = np.round(theta / (np.pi / 2)).astype(np.int64)
    x = theta - k_raw * (np.pi / 2)
    k = k_raw % 4

    sin_x = np.zeros_like(x)
    cos_x = np.zeros_like(x)
    term_s = x.copy()
    term_c = np.ones_like(x)
    x2 = x * x
    for m in range(order):
        sin_x += term_s
        cos_x += term_c
        # next odd/even Taylor terms
        term_s = -term_s * x2 / ((2 * m + 2) * (2 * m + 3))
        term_c = -term_c * x2 / ((2 * m + 1) * (2 * m + 2))

    # sin(theta) by quadrant identity
    out = np.where(
        k == 0, sin_x, np.where(k == 1, cos_x, np.where(k == 2, -sin_x, -cos_x))
    )
    return out


def nco_sfdr_estimate_db(lut_addr_bits: int, amplitude_bits: int | None = None) -> float:
    """Rule-of-thumb SFDR of a phase-truncating LUT DDS.

    Phase truncation limits SFDR to ~6.02 dB per retained address bit;
    amplitude quantisation to ~6.02 dB per amplitude bit + 1.76 dB.  The
    achieved SFDR is roughly the minimum of the two mechanisms.  Used by the
    NCO ablation to sanity-check measured values.
    """
    phase_limit = 6.02 * lut_addr_bits
    if amplitude_bits is None:
        return phase_limit
    amp_limit = 6.02 * amplitude_bits + 1.76
    return min(phase_limit, amp_limit)
