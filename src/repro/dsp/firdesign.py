"""FIR coefficient design for the DDC's final filter stage.

The paper fixes the final filter at 125 taps (124 on the FPGA) but does not
publish the coefficients, so this module provides the standard designs a DDC
implementer would choose from:

- :func:`design_lowpass` — windowed-sinc with a selectable window;
- :func:`design_kaiser_lowpass` — Kaiser window from an attenuation spec;
- :func:`design_remez_lowpass` — equiripple (Parks-McClellan via
  ``scipy.signal.remez``);
- :func:`design_cic_compensator` — lowpass with inverse-CIC droop shaping in
  the passband, the textbook choice after a CIC chain whose "drawback ... is
  their sub-optimal frequency attenuation" (Section 2.1);
- :func:`reference_fir_taps` — the 125-tap filter used throughout this
  reproduction (Kaiser design with CIC5 droop compensation, cut for the
  24 kHz output band).

:func:`quantize_taps` converts any design to the 12-bit ROM contents of the
FPGA implementation (Fig. 5).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

from ..errors import ConfigurationError
from ..fixedpoint import QFormat, to_fixed
from .response import cic_response


def _check_taps(num_taps: int) -> None:
    if not isinstance(num_taps, int) or num_taps < 1:
        raise ConfigurationError(f"num_taps must be a positive int, got {num_taps!r}")


def design_lowpass(
    num_taps: int,
    cutoff_hz: float,
    sample_rate_hz: float,
    window: str = "hamming",
) -> np.ndarray:
    """Windowed-sinc lowpass, unit DC gain."""
    _check_taps(num_taps)
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ConfigurationError("cutoff must be in (0, Nyquist)")
    taps = _signal.firwin(
        num_taps, cutoff_hz, fs=sample_rate_hz, window=window, pass_zero=True
    )
    return taps / taps.sum()


def design_kaiser_lowpass(
    num_taps: int,
    cutoff_hz: float,
    sample_rate_hz: float,
    attenuation_db: float = 60.0,
) -> np.ndarray:
    """Kaiser-window lowpass with the beta implied by ``attenuation_db``."""
    _check_taps(num_taps)
    if attenuation_db <= 0:
        raise ConfigurationError("attenuation_db must be positive")
    beta = _signal.kaiser_beta(attenuation_db)
    taps = _signal.firwin(
        num_taps, cutoff_hz, fs=sample_rate_hz, window=("kaiser", beta),
        pass_zero=True,
    )
    return taps / taps.sum()


def design_remez_lowpass(
    num_taps: int,
    passband_hz: float,
    stopband_hz: float,
    sample_rate_hz: float,
    passband_weight: float = 1.0,
    stopband_weight: float = 10.0,
) -> np.ndarray:
    """Equiripple lowpass via Parks-McClellan."""
    _check_taps(num_taps)
    if not 0 < passband_hz < stopband_hz < sample_rate_hz / 2:
        raise ConfigurationError(
            "need 0 < passband < stopband < Nyquist, got "
            f"{passband_hz}, {stopband_hz}, fs={sample_rate_hz}"
        )
    taps = _signal.remez(
        num_taps,
        [0, passband_hz, stopband_hz, sample_rate_hz / 2],
        [1, 0],
        weight=[passband_weight, stopband_weight],
        fs=sample_rate_hz,
    )
    return taps / taps.sum()


def design_cic_compensator(
    num_taps: int,
    cutoff_hz: float,
    sample_rate_hz: float,
    cic_order: int,
    cic_decimation: int,
    cic_input_rate_hz: float,
    diff_delay: int = 1,
    grid_points: int = 512,
) -> np.ndarray:
    """Lowpass whose passband boosts the inverse of the preceding CIC droop.

    Designed by frequency sampling (``scipy.signal.firwin2``): below
    ``cutoff_hz`` the target gain is ``1 / |H_cic(f)|`` (normalised to 1 at
    DC), above it the target is 0.  This flattens the cascade passband —
    the role of the paper's 125-tap FIR after the CIC2/CIC5 pair.
    """
    _check_taps(num_taps)
    if num_taps % 2 == 0:
        raise ConfigurationError("compensator design requires an odd tap count")
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ConfigurationError("cutoff must be in (0, Nyquist)")
    freqs = np.linspace(0.0, sample_rate_hz / 2, grid_points)
    cic_mag = np.abs(
        cic_response(freqs, cic_order, cic_decimation, cic_input_rate_hz,
                     diff_delay=diff_delay, normalize=True)
    )
    cic_mag = np.maximum(cic_mag, 1e-6)
    gains = np.where(freqs <= cutoff_hz, 1.0 / cic_mag, 0.0)
    # Smooth the brick edge one grid step to keep firwin2 well conditioned.
    edge = np.searchsorted(freqs, cutoff_hz)
    if 0 < edge < grid_points - 1:
        gains[edge] = gains[max(edge - 1, 0)] / 2
    taps = _signal.firwin2(num_taps, freqs, gains, fs=sample_rate_hz)
    dc = taps.sum()
    if abs(dc) < 1e-12:
        raise ConfigurationError("designed filter has zero DC gain")
    return taps / dc


def reference_fir_taps(
    num_taps: int = 125,
    sample_rate_hz: float = 192_000.0,
    output_rate_hz: float = 24_000.0,
    compensate_cic5: bool = True,
) -> np.ndarray:
    """The 125-tap FIR used by this reproduction's reference DDC.

    Passband is the DRM-friendly ±output_rate/2 * 0.8 (9.6 kHz for the
    24 kHz output), with CIC5 droop compensation enabled by default.
    """
    cutoff = output_rate_hz / 2 * 0.8
    if compensate_cic5:
        return design_cic_compensator(
            num_taps if num_taps % 2 else num_taps - 1,
            cutoff,
            sample_rate_hz,
            cic_order=5,
            cic_decimation=21,
            cic_input_rate_hz=sample_rate_hz * 21,
        )
    return design_kaiser_lowpass(num_taps, cutoff, sample_rate_hz, 70.0)


def quantize_taps(
    taps: np.ndarray, width: int = 12, frac_bits: int | None = None
) -> tuple[np.ndarray, QFormat]:
    """Quantise float taps into signed ``width``-bit raw integers.

    Chooses ``frac_bits`` so the largest tap uses the full scale (unless
    given), returning the raw integer array and the format.  This fills the
    coefficient ROM of the FPGA polyphase FIR.
    """
    taps = np.asarray(taps, dtype=np.float64)
    if taps.size == 0:
        raise ConfigurationError("taps must be non-empty")
    if frac_bits is None:
        peak = np.abs(taps).max()
        if peak == 0:
            raise ConfigurationError("all-zero taps cannot be quantised")
        # Largest value representable is (2**(w-1)-1) * 2**-f; pick max f
        # with peak <= that bound.
        frac_bits = width - 1
        while frac_bits > -32 and peak > (2 ** (width - 1) - 1) * 2.0 ** (-frac_bits):
            frac_bits -= 1
    fmt = QFormat(width, frac_bits)
    raw = to_fixed(taps, fmt)
    return raw, fmt
